// Figure 7 reproduction: running time and welfare under the real
// (Last.fm-learned) utility configuration of Table 5, on NetHEPT-like and
// Orkut-like networks, uniform budgets {10, 20, 30, 40}.
//
// Paper shape: SeqGRD-NM fastest by orders of magnitude; SeqGRD and
// SeqGRD-NM coincide in welfare (pure competition); MaxGRD and TCIM fall
// behind because they effectively push one item.
#include <cstdio>
#include <string>
#include <vector>

#include "algo/max_grd.h"
#include "algo/seq_grd.h"
#include "baselines/tcim.h"
#include "bench_common.h"
#include "exp/configs.h"

int main() {
  using namespace cwm;
  using namespace cwm::bench;
  PrintHeader("Fig 7: real utility configuration (Table 5)",
              "Fig 7(a-d): time and welfare, NetHEPT and Orkut, 4 genre "
              "items");

  const UtilityConfig config = MakeLastFmConfig();
  std::printf("Table 5 reconstruction (U(i) = ln(10000 * p_i)):\n");
  for (ItemId i = 0; i < config.num_items(); ++i) {
    std::printf("  %-18s UD = %.2f\n", kLastFmGenres[i],
                config.DetUtility(SingletonSet(i)));
  }

  struct Net {
    std::string name;
    Graph graph;
  };
  std::vector<Net> nets;
  nets.push_back({"nethept-like", WithWeightedCascade(NetHeptLike())});
  nets.push_back({"orkut-like", WithWeightedCascade(OrkutLike(OrkutNodes()))});

  const std::vector<ItemId> items{0, 1, 2, 3};
  for (const Net& net : nets) {
    std::printf("\n-- %s\n", NetworkStatsRow(net.name, net.graph).c_str());
    for (const int budget : {10, 20, 30, 40}) {
      const BudgetVector budgets(4, budget);
      const Allocation empty_sp(4);
      const AlgoParams params = MakeParams(7000 + budget);
      ExperimentRunner runner(net.graph, config, EvalOptions(budget));
      PrintRow(net.name, "LastFM", budget,
               runner.Run("TCIM",
                          [&] {
                            return Tcim(net.graph, config, empty_sp, items,
                                        budgets, params);
                          },
                          empty_sp));
      PrintRow(net.name, "LastFM", budget,
               runner.Run("MaxGRD",
                          [&] {
                            return MaxGrd(net.graph, config, empty_sp, items,
                                          budgets, params);
                          },
                          empty_sp));
      PrintRow(net.name, "LastFM", budget,
               runner.Run("SeqGRD",
                          [&] {
                            return SeqGrd(net.graph, config, empty_sp, items,
                                          budgets, params);
                          },
                          empty_sp));
      PrintRow(net.name, "LastFM", budget,
               runner.Run("SeqGRD-NM",
                          [&] {
                            return SeqGrdNm(net.graph, config, empty_sp,
                                            items, budgets, params);
                          },
                          empty_sp));
    }
  }
  std::printf("\nExpected shape (Fig 7): SeqGRD ~= SeqGRD-NM welfare (pure "
              "competition); both above MaxGRD and TCIM; SeqGRD-NM fastest.\n");
  return 0;
}
