// Figure 7 reproduction: running time and welfare under the real
// (Last.fm-learned) utility configuration of Table 5, on NetHEPT-like and
// Orkut-like networks, uniform budgets {10, 20, 30, 40}. Thin wrapper
// over the scenario engine (scenario "fig7-real-utility").
//
// Paper shape: SeqGRD-NM fastest by orders of magnitude; SeqGRD and
// SeqGRD-NM coincide in welfare (pure competition); MaxGRD and TCIM fall
// behind because they effectively push one item.
#include "bench_common.h"

#include "exp/configs.h"
#include "model/items.h"

int main() {
  using namespace cwm;
  using namespace cwm::bench;
  PrintHeader("Fig 7: real utility configuration (Table 5)",
              "Fig 7(a-d): time and welfare, NetHEPT and Orkut, 4 genre "
              "items");
  const UtilityConfig config = MakeLastFmConfig();
  std::printf("Table 5 reconstruction (U(i) = ln(10000 * p_i)):\n");
  for (ItemId i = 0; i < config.num_items(); ++i) {
    std::printf("  %-18s UD = %.2f\n", kLastFmGenres[i],
                config.DetUtility(SingletonSet(i)));
  }
  const int code = RunRegisteredScenarios({"fig7-real-utility"});
  std::printf("\nExpected shape (Fig 7): SeqGRD ~= SeqGRD-NM welfare (pure "
              "competition); both above MaxGRD and TCIM; SeqGRD-NM fastest.\n");
  return code;
}
