// Ablation benches for the design choices DESIGN.md calls out:
//
//  1. Common random numbers (CRN) in marginal-welfare estimation vs two
//     independent estimates — variance at equal sample budget. CRN is what
//     makes SeqGRD's marginal checks affordable.
//  2. Lazy (CELF) greedy max-coverage vs naive re-evaluating greedy —
//     identical selections, very different running time.
//  3. PRIMA+ epsilon sweep — RR-set count and seed quality as the accuracy
//     knob moves (the paper fixes eps = 0.5).
//  4. Seed-ranking quality: PRIMA+ greedy order vs the classic heuristics
//     (HighDegree, DegreeDiscount, reverse PageRank) under the Table 5
//     configuration — now the engine scenario "ranking-quality"; the
//     RR-set ranking must dominate.
//
// Sections 1-3 probe estimator/kernel internals below the scenario
// abstraction, so they drive the library directly; graphs come from the
// engine's NetworkSpec, and section 4 runs through the registry.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "exp/configs.h"
#include "rrset/node_selection.h"
#include "rrset/prima_plus.h"
#include "rrset/rr_sampler.h"
#include "scenario/scenario.h"
#include "simulate/estimator.h"
#include "support/timer.h"

namespace {

using namespace cwm;
using namespace cwm::bench;

void CrnVariance(const Graph& graph) {
  std::printf("\n-- (1) CRN vs independent marginal estimation "
              "(C1, marginal of 5 extra seeds on 5 base seeds)\n");
  const UtilityConfig config = MakeConfigC1();
  Allocation base(2), extra(2);
  for (NodeId v = 0; v < 5; ++v) base.Add(v * 31, 0);
  for (NodeId v = 0; v < 5; ++v) extra.Add(v * 57 + 3, 1);

  const int kRepeats = 25;
  for (const int sims : {50, 200}) {
    double crn_mean = 0, crn_m2 = 0, ind_mean = 0, ind_m2 = 0;
    for (int r = 0; r < kRepeats; ++r) {
      WelfareEstimator crn(graph, config,
                           {.num_worlds = sims,
                            .seed = 0x100 + static_cast<uint64_t>(r)});
      const double m = crn.MarginalWelfare(base, extra);
      crn_mean += m;
      crn_m2 += m * m;
      // Independent: two estimators with unrelated world seeds.
      WelfareEstimator a(graph, config,
                         {.num_worlds = sims,
                          .seed = 0x9000 + static_cast<uint64_t>(r)});
      WelfareEstimator b(graph, config,
                         {.num_worlds = sims,
                          .seed = 0x5000'000 + static_cast<uint64_t>(r)});
      const double mi =
          a.Welfare(Allocation::Union(base, extra)) - b.Welfare(base);
      ind_mean += mi;
      ind_m2 += mi * mi;
    }
    crn_mean /= kRepeats;
    ind_mean /= kRepeats;
    const double crn_sd =
        std::sqrt(std::max(0.0, crn_m2 / kRepeats - crn_mean * crn_mean));
    const double ind_sd =
        std::sqrt(std::max(0.0, ind_m2 / kRepeats - ind_mean * ind_mean));
    std::printf("  sims=%-4d CRN: mean=%8.2f sd=%7.2f | independent: "
                "mean=%8.2f sd=%7.2f | sd ratio %.1fx\n",
                sims, crn_mean, crn_sd, ind_mean, ind_sd,
                ind_sd / std::max(1e-9, crn_sd));
  }
}

void LazyVsNaiveGreedy(const Graph& graph) {
  std::printf("\n-- (2) lazy (CELF) vs naive greedy max-coverage\n");
  RrSampler sampler(graph);
  Rng rng(17);
  RrCollection rr(graph.num_nodes());
  std::vector<NodeId> scratch;
  for (int i = 0; i < 50000; ++i) {
    sampler.SampleStandard(rng, &scratch);
    rr.Add(scratch, 1.0);
  }
  Timer lazy_timer;
  const GreedySelection lazy = SelectMaxCoverage(rr, 50);
  const double lazy_s = lazy_timer.Seconds();

  // Naive greedy: recompute every node's marginal gain each round.
  Timer naive_timer;
  std::vector<char> covered(rr.size(), 0);
  std::vector<char> taken(graph.num_nodes(), 0);
  std::vector<NodeId> naive_seeds;
  double naive_covered = 0;
  for (int pick = 0; pick < 50; ++pick) {
    double best_gain = -1;
    NodeId best_node = 0;
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      if (taken[v]) continue;
      double gain = 0;
      for (uint32_t id : rr.RrSetsOf(v)) {
        if (!covered[id]) gain += rr.Weight(id);
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_node = v;
      }
    }
    taken[best_node] = 1;
    naive_seeds.push_back(best_node);
    naive_covered += best_gain;
    for (uint32_t id : rr.RrSetsOf(best_node)) covered[id] = 1;
  }
  const double naive_s = naive_timer.Seconds();
  std::printf("  lazy: %.3fs, covered %.0f | naive: %.3fs, covered %.0f | "
              "speedup %.0fx, selections %s\n",
              lazy_s, lazy.covered_prefix.back(), naive_s, naive_covered,
              naive_s / std::max(1e-9, lazy_s),
              lazy.seeds == naive_seeds ? "identical" : "differ (ties)");
}

void EpsilonSweep(const Graph& graph) {
  std::printf("\n-- (3) PRIMA+ epsilon sweep (budget 50)\n");
  const UtilityConfig unit = [] {
    UtilityConfigBuilder b(1);
    b.SetItemValue(0, 1.0);
    return std::move(b).Build().value();
  }();
  WelfareEstimator est(graph, unit, {.num_worlds = 1000, .seed = 5});
  for (const double eps : {0.9, 0.5, 0.3, 0.2}) {
    Timer t;
    const ImmResult r = PrimaPlus(graph, {}, {50}, 50,
                                  {.epsilon = eps, .ell = 1.0, .seed = 7});
    std::printf("  eps=%.1f: %8zu RR sets, %6.2fs, spread(seeds)=%8.1f\n",
                eps, r.rr_count, t.Seconds(), est.Spread(r.seeds));
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  PrintHeader("Ablations: CRN marginals, lazy greedy, epsilon, rankings",
              "design-choice ablations from DESIGN.md (not a paper figure)");
  NetworkSpec nethept_spec;
  nethept_spec.family = "nethept-like";
  const Graph graph = nethept_spec.Build().value();
  std::printf("%s\n", NetworkStatsRow("nethept-like", graph).c_str());
  CrnVariance(graph);
  LazyVsNaiveGreedy(graph);
  EpsilonSweep(graph);
  std::printf("\n-- (4) seed-ranking quality (engine scenario)\n");
  return RunRegisteredScenarios({"ranking-quality"});
}
