// Micro-benchmarks (google-benchmark) for the hot kernels: RR-set
// sampling (standard / marginal / weighted), UIC world simulation, bundle
// utility tables, greedy coverage selection, graph generation, edge-list
// parsing, and artifact-store opens (cold regeneration vs. warm mmap).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include <memory>

#include "exp/configs.h"
#include "exp/networks.h"
#include "graph/edge_prob.h"
#include "graph/generators.h"
#include "graph/loader.h"
#include "model/allocation.h"
#include "obs/trace.h"
#include "rrset/node_selection.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_pipeline.h"
#include "rrset/rr_sampler.h"
#include "simulate/estimator.h"
#include "simulate/uic_simulator.h"
#include "store/graph_store.h"
#include "support/rng.h"

namespace cwm {
namespace {

const Graph& BenchGraph() {
  static const Graph g = WithWeightedCascade(NetHeptLike());
  return g;
}

std::string BenchTempPath(const char* name) {
  // Unique per process: a fixed name on a shared /tmp could collide with
  // another user's (unwritable, differently-shaped) fixture and feed the
  // CI perf gate a foreign file.
  static const uint64_t token = std::random_device{}();
  return (std::filesystem::temp_directory_path() /
          (std::to_string(token) + "_" + name))
      .string();
}

void BM_SampleStandardRr(benchmark::State& state) {
  RrSampler sampler(BenchGraph());
  Rng rng(3);
  std::vector<NodeId> out;
  std::size_t members = 0;
  for (auto _ : state) {
    sampler.SampleStandard(rng, &out);
    members += out.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["avg_members"] =
      static_cast<double>(members) / state.iterations();
}
BENCHMARK(BM_SampleStandardRr);

void BM_SampleMarginalRr(benchmark::State& state) {
  const Graph& g = BenchGraph();
  RrSampler sampler(g);
  Rng rng(5);
  std::vector<char> blocked(g.num_nodes(), 0);
  for (NodeId v = 0; v < 50; ++v) blocked[v * 100] = 1;
  std::vector<NodeId> out;
  for (auto _ : state) {
    sampler.SampleMarginal(rng, blocked, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampleMarginalRr);

void BM_SampleWeightedRr(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const UtilityConfig config = MakeConfigC6();
  Allocation sp(2);
  for (NodeId v = 0; v < 50; ++v) sp.Add(v * 100, 1);
  const auto fixed = FixedAllocationIndex::Build(g.num_nodes(), config, sp);
  const double wmax = config.ExpectedTruncatedUtility(0);
  RrSampler sampler(g);
  Rng rng(7);
  std::vector<NodeId> out;
  double acc = 0;
  for (auto _ : state) {
    acc += sampler.SampleWeighted(rng, fixed, wmax, &out);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampleWeightedRr);

// Deterministic parallel pipeline throughput at 1/2/4/8 workers, fixed
// seed. `items_per_second` (RR sets/s, wall clock) is the number the CI
// perf gate compares across thread counts; `rr_sets_per_iter` documents
// the fixed batch. Samples are identical at every thread count, so the
// arg sweep measures pure scaling.
void BM_RrPipelineSampling(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const unsigned threads = static_cast<unsigned>(state.range(0));
  constexpr std::size_t kRrSets = 16384;
  const RrSourceFactory source = [&g]() -> RrSampleFn {
    auto sampler = std::make_shared<RrSampler>(g);
    return [sampler](Rng& rng, std::vector<NodeId>* out) {
      sampler->SampleStandard(rng, out);
      return 1.0;
    };
  };
  std::size_t members = 0;
  for (auto _ : state) {
    RrPipeline pipeline(source, /*seed=*/123, threads);
    RrCollection rr(g.num_nodes());
    pipeline.ExtendTo(&rr, kRrSets);
    members += rr.TotalMembers();
    benchmark::DoNotOptimize(rr.TotalWeight());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kRrSets));
  state.counters["rr_sets_per_iter"] = static_cast<double>(kRrSets);
  state.counters["avg_members"] =
      static_cast<double>(members) /
      static_cast<double>(state.iterations() * kRrSets);
}
BENCHMARK(BM_RrPipelineSampling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Batched welfare estimation: score `batch` candidate allocations with
// one StatsBatch call on a fresh estimator, so every iteration pays the
// world materialization (snapshot + utility table per world) exactly
// once, amortized over the batch — the cost shape of MaxGRD's argmax and
// greedyWM's CELF population. `items_per_second` counts candidates, so
// per-candidate throughput rising with the batch arg is the win the CI
// gate (scripts/check_batch_speedup.py) asserts: batch 16 >= 3x batch 1.
// Single estimator thread for stable cross-arm ratios.
void BM_WelfareBatch(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const UtilityConfig config = MakeConfigC1();
  const int batch = static_cast<int>(state.range(0));
  std::vector<Allocation> candidates;
  candidates.reserve(batch);
  for (int j = 0; j < batch; ++j) {
    Allocation a(2);
    for (NodeId k = 0; k < 5; ++k) {
      a.Add(static_cast<NodeId>((j * 131 + k * 37) %
                                static_cast<int>(g.num_nodes())),
            static_cast<ItemId>(k % 2));
    }
    candidates.push_back(std::move(a));
  }
  double acc = 0.0;
  for (auto _ : state) {
    const WelfareEstimator estimator(
        g, config, {.num_worlds = 64, .seed = 29, .num_threads = 1});
    const std::vector<WelfareStats> stats =
        estimator.StatsBatch(candidates);
    acc += stats.back().welfare;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) * batch);
  state.counters["candidates"] = static_cast<double>(batch);
}
BENCHMARK(BM_WelfareBatch)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Word-parallel diffusion kernel vs. the scalar snapshot path: score a
// fixed 16-candidate batch over `worlds` evaluation worlds with one
// long-lived estimator per arm. The workload is the packed kernel's
// target regime — a strong-tie graph (uniform p = 0.5) with the
// noise-heavy C5 utility config — where the 64 lanes of a word mostly
// agree and word-parallel evaluation pays off; on weak-tie
// weighted-cascade graphs the estimator's packed_min_mean_prob
// heuristic keeps the scalar path instead (see docs/kernel.md). The
// estimator is primed OUTSIDE the timing loop (one throwaway
// StatsBatch builds the packed set / snapshot pool), so the loop
// measures pure per-world diffusion throughput — items/s counts
// (worlds x candidates) evaluated per second. Arg pair: (packed 0/1,
// worlds). The CI gate (scripts/check_packed_speedup.py) asserts
// packed >= 8x scalar at equal world count. Single estimator thread
// for stable cross-arm ratios.
void BM_PackedDiffusion(benchmark::State& state) {
  static const Graph g =
      WithConstantProb(DirectedPreferentialAttachment(2000, 10, 0.1, 5), 0.5);
  const UtilityConfig config = MakeConfigC5();
  const bool packed = state.range(0) != 0;
  const int worlds = static_cast<int>(state.range(1));
  constexpr int kBatch = 16;
  std::vector<Allocation> candidates;
  candidates.reserve(kBatch);
  for (int j = 0; j < kBatch; ++j) {
    Allocation a(2);
    for (NodeId k = 0; k < 20; ++k) {
      a.Add(static_cast<NodeId>((j * 131 + k * 37) %
                                static_cast<int>(g.num_nodes())),
            static_cast<ItemId>(k % 2));
    }
    candidates.push_back(std::move(a));
  }
  const WelfareEstimator estimator(g, config,
                                   {.num_worlds = worlds,
                                    .seed = 29,
                                    .num_threads = 1,
                                    .packed_kernel = packed,
                                    .packed_min_worlds = 1});
  benchmark::DoNotOptimize(estimator.StatsBatch(candidates));  // prime
  double acc = 0.0;
  for (auto _ : state) {
    const std::vector<WelfareStats> stats = estimator.StatsBatch(candidates);
    acc += stats.back().welfare;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * worlds *
                          kBatch);
  state.counters["worlds"] = static_cast<double>(worlds);
}
BENCHMARK(BM_PackedDiffusion)
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({0, 256})
    ->Args({1, 256})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_UicWorldC1(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const UtilityConfig config = MakeConfigC1();
  UicSimulator sim(g, config);
  Allocation alloc(2);
  for (NodeId v = 0; v < 25; ++v) {
    alloc.Add(v * 3, 0);
    alloc.Add(v * 3 + 1, 1);
  }
  Rng rng(9);
  uint64_t world = 0;
  for (auto _ : state) {
    const WorldUtilityTable table(config, rng);
    benchmark::DoNotOptimize(
        sim.RunWorld(alloc, EdgeWorld{++world}, table));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UicWorldC1);

void BM_UicWorldLastFm(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const UtilityConfig config = MakeLastFmConfig();
  UicSimulator sim(g, config);
  Allocation alloc(4);
  for (NodeId v = 0; v < 40; ++v) alloc.Add(v * 7, static_cast<ItemId>(v % 4));
  Rng rng(11);
  uint64_t world = 0;
  for (auto _ : state) {
    const WorldUtilityTable table(config, rng);
    benchmark::DoNotOptimize(
        sim.RunWorld(alloc, EdgeWorld{++world}, table));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UicWorldLastFm);

void BM_WorldUtilityTable(benchmark::State& state) {
  const UtilityConfig config =
      MakeUniformPureCompetition(static_cast<int>(state.range(0)));
  Rng rng(13);
  for (auto _ : state) {
    const WorldUtilityTable table(config, rng);
    benchmark::DoNotOptimize(table.Utility(1));
  }
}
BENCHMARK(BM_WorldUtilityTable)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_BestAdoption(benchmark::State& state) {
  const UtilityConfig config = MakeLastFmConfig();
  const WorldUtilityTable table(config, {0.0, 0.0, 0.0, 0.0});
  ItemSet desire = 0;
  double acc = 0;
  for (auto _ : state) {
    desire = static_cast<ItemSet>((desire + 5) & 0xF);
    acc += table.BestAdoption(desire, 0);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_BestAdoption);

void BM_SelectMaxCoverage(benchmark::State& state) {
  const Graph& g = BenchGraph();
  RrSampler sampler(g);
  Rng rng(17);
  RrCollection rr(g.num_nodes());
  std::vector<NodeId> out;
  for (int i = 0; i < 20000; ++i) {
    sampler.SampleStandard(rng, &out);
    rr.Add(out, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SelectMaxCoverage(rr, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_SelectMaxCoverage)->Arg(10)->Arg(50)->Arg(100);

void BM_GenerateNetHeptLike(benchmark::State& state) {
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(NetHeptLike(++seed).num_edges());
  }
}
BENCHMARK(BM_GenerateNetHeptLike);

// Buffered from_chars edge-list ingestion; items/s = edges/s. The fixture
// file (200K weighted edges, ~4.4 MB) is written once per process.
void BM_EdgeListParse(benchmark::State& state) {
  static const std::string path = [] {
    const std::string p = BenchTempPath("cwm_bench_edges.txt");
    const Graph g = WithWeightedCascade(
        DirectedPreferentialAttachment(25000, 8, 0.1, 5));
    // A failed fixture write must not be benchmarked; empty path makes
    // the parse below fail and the benchmark skip with an error.
    return WriteEdgeList(g, p).ok() ? p : std::string();
  }();
  std::size_t edges = 0;
  for (auto _ : state) {
    StatusOr<Graph> g = ReadEdgeList(path, {.default_prob = 0.0});
    if (!g.ok()) {
      state.SkipWithError("parse failed");
      break;
    }
    edges = g.value().num_edges();
    benchmark::DoNotOptimize(edges);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * edges));
  state.counters["edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_EdgeListParse)->Unit(benchmark::kMillisecond);

// Cold vs. warm "graph availability" on an Orkut-like network (Table 2
// density at a CI-sized node count): regenerating + re-weighting from the
// factory, versus one zero-copy mmap open of the binary store image. The
// CI gate (scripts/check_store_speedup.py) asserts >= 10x.
constexpr std::size_t kStoreBenchNodes = 20000;

const std::string& StoreBenchFile() {
  static const std::string path = [] {
    const std::string p = BenchTempPath("cwm_bench_orkut.cwg");
    const Graph g =
        WithWeightedCascade(OrkutLike(kStoreBenchNodes, /*seed=*/14));
    return WriteGraphFile(g, p).ok() ? p : std::string();
  }();
  return path;
}

void BM_GraphBuildOrkutLike(benchmark::State& state) {
  for (auto _ : state) {
    const Graph g =
        WithWeightedCascade(OrkutLike(kStoreBenchNodes, /*seed=*/14));
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GraphBuildOrkutLike)->Unit(benchmark::kMillisecond);

void BM_GraphStoreOpenOrkutLike(benchmark::State& state) {
  const std::string& path = StoreBenchFile();
  std::size_t edges = 0;
  for (auto _ : state) {
    StatusOr<Graph> g = OpenGraphFile(path);
    if (!g.ok()) {
      state.SkipWithError("open failed");
      break;
    }
    edges = g.value().num_edges();
    benchmark::DoNotOptimize(edges);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_GraphStoreOpenOrkutLike)->Unit(benchmark::kMillisecond);

// Cost of an instrumentation site around a realistic hot work unit (~512
// dependent MixHash rounds, the scale of one RR-set hop loop). Three
// arms: Arg(0) = span present, no recorder installed (the production
// default — must cost one relaxed load); Arg(1) = recorder installed and
// recording (the priced-in enabled cost, informational); Arg(2) = the
// same work with no instrumentation site at all (baseline). The CI gate
// (scripts/check_trace_overhead.py) asserts Arg(0) is within 2% of
// Arg(2)'s throughput.
constexpr int kTraceWorkRounds = 512;

uint64_t TraceWorkUnit(uint64_t x) {
  for (int i = 0; i < kTraceWorkRounds; ++i) x = MixHash(x, 0x9e37u + i);
  return x;
}

void BM_TraceOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  // Bounded so the enabled arm cannot grow without limit across
  // iterations; overflow is counted, not stored.
  std::unique_ptr<TraceRecorder> recorder;
  if (mode == 1) {
    recorder = std::make_unique<TraceRecorder>(
        TraceRecorderOptions{.max_events_per_thread = 1u << 16});
    recorder->Install();
  }
  uint64_t x = 0x2545f4914f6cdd1dULL;
  for (auto _ : state) {
    if (mode == 2) {
      // Baseline: the same work with no instrumentation site at all.
      x = TraceWorkUnit(x);
    } else {
      CWM_TRACE_SPAN("bench.work", {{"round", kTraceWorkRounds}});
      x = TraceWorkUnit(x);
    }
    benchmark::DoNotOptimize(x);
  }
  if (recorder != nullptr) recorder->Uninstall();
  state.SetItemsProcessed(state.iterations());
  state.counters["rounds"] = static_cast<double>(kTraceWorkRounds);
}
BENCHMARK(BM_TraceOverhead)->Arg(0)->Arg(1)->Arg(2)->UseRealTime();

}  // namespace
}  // namespace cwm

BENCHMARK_MAIN();
