// Micro-benchmarks (google-benchmark) for the hot kernels: RR-set
// sampling (standard / marginal / weighted), UIC world simulation, bundle
// utility tables, greedy coverage selection, graph generation, edge-list
// parsing, and artifact-store opens (cold regeneration vs. warm mmap).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include <memory>

#include "delta/delta_log.h"
#include "delta/overlay.h"
#include "delta/rr_patch.h"
#include "exp/configs.h"
#include "exp/networks.h"
#include "graph/edge_prob.h"
#include "graph/generators.h"
#include "graph/loader.h"
#include "model/allocation.h"
#include "obs/trace.h"
#include "rrset/imm.h"
#include "rrset/node_selection.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_pipeline.h"
#include "rrset/rr_sampler.h"
#include "simulate/estimator.h"
#include "simulate/packed_world.h"
#include "simulate/uic_simulator.h"
#include "store/artifact_cache.h"
#include "store/graph_store.h"
#include "support/rng.h"

namespace cwm {
namespace {

const Graph& BenchGraph() {
  static const Graph g = WithWeightedCascade(NetHeptLike());
  return g;
}

std::string BenchTempPath(const char* name) {
  // Unique per process: a fixed name on a shared /tmp could collide with
  // another user's (unwritable, differently-shaped) fixture and feed the
  // CI perf gate a foreign file.
  static const uint64_t token = std::random_device{}();
  return (std::filesystem::temp_directory_path() /
          (std::to_string(token) + "_" + name))
      .string();
}

void BM_SampleStandardRr(benchmark::State& state) {
  RrSampler sampler(BenchGraph());
  Rng rng(3);
  std::vector<NodeId> out;
  std::size_t members = 0;
  for (auto _ : state) {
    sampler.SampleStandard(rng, &out);
    members += out.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["avg_members"] =
      static_cast<double>(members) / state.iterations();
}
BENCHMARK(BM_SampleStandardRr);

void BM_SampleMarginalRr(benchmark::State& state) {
  const Graph& g = BenchGraph();
  RrSampler sampler(g);
  Rng rng(5);
  std::vector<char> blocked(g.num_nodes(), 0);
  for (NodeId v = 0; v < 50; ++v) blocked[v * 100] = 1;
  std::vector<NodeId> out;
  for (auto _ : state) {
    sampler.SampleMarginal(rng, blocked, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampleMarginalRr);

void BM_SampleWeightedRr(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const UtilityConfig config = MakeConfigC6();
  Allocation sp(2);
  for (NodeId v = 0; v < 50; ++v) sp.Add(v * 100, 1);
  const auto fixed = FixedAllocationIndex::Build(g.num_nodes(), config, sp);
  const double wmax = config.ExpectedTruncatedUtility(0);
  RrSampler sampler(g);
  Rng rng(7);
  std::vector<NodeId> out;
  double acc = 0;
  for (auto _ : state) {
    acc += sampler.SampleWeighted(rng, fixed, wmax, &out);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampleWeightedRr);

// Deterministic parallel pipeline throughput at 1/2/4/8 workers, fixed
// seed. `items_per_second` (RR sets/s, wall clock) is the number the CI
// perf gate compares across thread counts; `rr_sets_per_iter` documents
// the fixed batch. Samples are identical at every thread count, so the
// arg sweep measures pure scaling.
void BM_RrPipelineSampling(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const unsigned threads = static_cast<unsigned>(state.range(0));
  constexpr std::size_t kRrSets = 16384;
  const RrSourceFactory source = [&g]() -> RrSampleFn {
    auto sampler = std::make_shared<RrSampler>(g);
    return [sampler](Rng& rng, std::vector<NodeId>* out) {
      sampler->SampleStandard(rng, out);
      return 1.0;
    };
  };
  std::size_t members = 0;
  for (auto _ : state) {
    RrPipeline pipeline(source, /*seed=*/123, threads);
    RrCollection rr(g.num_nodes());
    pipeline.ExtendTo(&rr, kRrSets);
    members += rr.TotalMembers();
    benchmark::DoNotOptimize(rr.TotalWeight());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kRrSets));
  state.counters["rr_sets_per_iter"] = static_cast<double>(kRrSets);
  state.counters["avg_members"] =
      static_cast<double>(members) /
      static_cast<double>(state.iterations() * kRrSets);
}
BENCHMARK(BM_RrPipelineSampling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Batched welfare estimation: score `batch` candidate allocations with
// one StatsBatch call on a fresh estimator, so every iteration pays the
// world materialization (snapshot + utility table per world) exactly
// once, amortized over the batch — the cost shape of MaxGRD's argmax and
// greedyWM's CELF population. `items_per_second` counts candidates, so
// per-candidate throughput rising with the batch arg is the win the CI
// gate (scripts/check_batch_speedup.py) asserts: batch 16 >= 3x batch 1.
// Single estimator thread for stable cross-arm ratios.
void BM_WelfareBatch(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const UtilityConfig config = MakeConfigC1();
  const int batch = static_cast<int>(state.range(0));
  std::vector<Allocation> candidates;
  candidates.reserve(batch);
  for (int j = 0; j < batch; ++j) {
    Allocation a(2);
    for (NodeId k = 0; k < 5; ++k) {
      a.Add(static_cast<NodeId>((j * 131 + k * 37) %
                                static_cast<int>(g.num_nodes())),
            static_cast<ItemId>(k % 2));
    }
    candidates.push_back(std::move(a));
  }
  double acc = 0.0;
  for (auto _ : state) {
    const WelfareEstimator estimator(
        g, config, {.num_worlds = 64, .seed = 29, .num_threads = 1});
    const std::vector<WelfareStats> stats =
        estimator.StatsBatch(candidates);
    acc += stats.back().welfare;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) * batch);
  state.counters["candidates"] = static_cast<double>(batch);
}
BENCHMARK(BM_WelfareBatch)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Word-parallel diffusion kernel vs. the scalar snapshot path: score a
// fixed 16-candidate batch over `worlds` evaluation worlds with one
// long-lived estimator per arm. The workload is the packed kernel's
// target regime — a strong-tie graph (uniform p = 0.5) with the
// noise-heavy C5 utility config — where the 64 lanes of a word mostly
// agree and word-parallel evaluation pays off; on weak-tie
// weighted-cascade graphs the estimator's packed_min_mean_prob
// heuristic keeps the scalar path instead (see docs/kernel.md). The
// estimator is primed OUTSIDE the timing loop (one throwaway
// StatsBatch builds the packed set / snapshot pool), so the loop
// measures pure per-world diffusion throughput — items/s counts
// (worlds x candidates) evaluated per second. Arg pair: (packed 0/1,
// worlds). The CI gate (scripts/check_packed_speedup.py) asserts
// packed >= 8x scalar at equal world count. Single estimator thread
// for stable cross-arm ratios.
void BM_PackedDiffusion(benchmark::State& state) {
  static const Graph g =
      WithConstantProb(DirectedPreferentialAttachment(2000, 10, 0.1, 5), 0.5);
  const UtilityConfig config = MakeConfigC5();
  const bool packed = state.range(0) != 0;
  const int worlds = static_cast<int>(state.range(1));
  constexpr int kBatch = 16;
  std::vector<Allocation> candidates;
  candidates.reserve(kBatch);
  for (int j = 0; j < kBatch; ++j) {
    Allocation a(2);
    for (NodeId k = 0; k < 20; ++k) {
      a.Add(static_cast<NodeId>((j * 131 + k * 37) %
                                static_cast<int>(g.num_nodes())),
            static_cast<ItemId>(k % 2));
    }
    candidates.push_back(std::move(a));
  }
  const WelfareEstimator estimator(g, config,
                                   {.num_worlds = worlds,
                                    .seed = 29,
                                    .num_threads = 1,
                                    .packed_kernel = packed,
                                    .packed_min_worlds = 1});
  benchmark::DoNotOptimize(estimator.StatsBatch(candidates));  // prime
  double acc = 0.0;
  for (auto _ : state) {
    const std::vector<WelfareStats> stats = estimator.StatsBatch(candidates);
    acc += stats.back().welfare;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * worlds *
                          kBatch);
  state.counters["worlds"] = static_cast<double>(worlds);
}
BENCHMARK(BM_PackedDiffusion)
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({0, 256})
    ->Args({1, 256})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_UicWorldC1(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const UtilityConfig config = MakeConfigC1();
  UicSimulator sim(g, config);
  Allocation alloc(2);
  for (NodeId v = 0; v < 25; ++v) {
    alloc.Add(v * 3, 0);
    alloc.Add(v * 3 + 1, 1);
  }
  Rng rng(9);
  uint64_t world = 0;
  for (auto _ : state) {
    const WorldUtilityTable table(config, rng);
    benchmark::DoNotOptimize(
        sim.RunWorld(alloc, EdgeWorld{++world}, table));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UicWorldC1);

void BM_UicWorldLastFm(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const UtilityConfig config = MakeLastFmConfig();
  UicSimulator sim(g, config);
  Allocation alloc(4);
  for (NodeId v = 0; v < 40; ++v) alloc.Add(v * 7, static_cast<ItemId>(v % 4));
  Rng rng(11);
  uint64_t world = 0;
  for (auto _ : state) {
    const WorldUtilityTable table(config, rng);
    benchmark::DoNotOptimize(
        sim.RunWorld(alloc, EdgeWorld{++world}, table));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UicWorldLastFm);

void BM_WorldUtilityTable(benchmark::State& state) {
  const UtilityConfig config =
      MakeUniformPureCompetition(static_cast<int>(state.range(0)));
  Rng rng(13);
  for (auto _ : state) {
    const WorldUtilityTable table(config, rng);
    benchmark::DoNotOptimize(table.Utility(1));
  }
}
BENCHMARK(BM_WorldUtilityTable)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_BestAdoption(benchmark::State& state) {
  const UtilityConfig config = MakeLastFmConfig();
  const WorldUtilityTable table(config, {0.0, 0.0, 0.0, 0.0});
  ItemSet desire = 0;
  double acc = 0;
  for (auto _ : state) {
    desire = static_cast<ItemSet>((desire + 5) & 0xF);
    acc += table.BestAdoption(desire, 0);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_BestAdoption);

void BM_SelectMaxCoverage(benchmark::State& state) {
  const Graph& g = BenchGraph();
  RrSampler sampler(g);
  Rng rng(17);
  RrCollection rr(g.num_nodes());
  std::vector<NodeId> out;
  for (int i = 0; i < 20000; ++i) {
    sampler.SampleStandard(rng, &out);
    rr.Add(out, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SelectMaxCoverage(rr, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_SelectMaxCoverage)->Arg(10)->Arg(50)->Arg(100);

void BM_GenerateNetHeptLike(benchmark::State& state) {
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(NetHeptLike(++seed).num_edges());
  }
}
BENCHMARK(BM_GenerateNetHeptLike);

// Buffered from_chars edge-list ingestion; items/s = edges/s. The fixture
// file (200K weighted edges, ~4.4 MB) is written once per process.
void BM_EdgeListParse(benchmark::State& state) {
  static const std::string path = [] {
    const std::string p = BenchTempPath("cwm_bench_edges.txt");
    const Graph g = WithWeightedCascade(
        DirectedPreferentialAttachment(25000, 8, 0.1, 5));
    // A failed fixture write must not be benchmarked; empty path makes
    // the parse below fail and the benchmark skip with an error.
    return WriteEdgeList(g, p).ok() ? p : std::string();
  }();
  std::size_t edges = 0;
  for (auto _ : state) {
    StatusOr<Graph> g = ReadEdgeList(path, {.default_prob = 0.0});
    if (!g.ok()) {
      state.SkipWithError("parse failed");
      break;
    }
    edges = g.value().num_edges();
    benchmark::DoNotOptimize(edges);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * edges));
  state.counters["edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_EdgeListParse)->Unit(benchmark::kMillisecond);

// Cold vs. warm "graph availability" on an Orkut-like network (Table 2
// density at a CI-sized node count): regenerating + re-weighting from the
// factory, versus one zero-copy mmap open of the binary store image. The
// CI gate (scripts/check_store_speedup.py) asserts >= 10x.
constexpr std::size_t kStoreBenchNodes = 20000;

const std::string& StoreBenchFile() {
  static const std::string path = [] {
    const std::string p = BenchTempPath("cwm_bench_orkut.cwg");
    const Graph g =
        WithWeightedCascade(OrkutLike(kStoreBenchNodes, /*seed=*/14));
    return WriteGraphFile(g, p).ok() ? p : std::string();
  }();
  return path;
}

void BM_GraphBuildOrkutLike(benchmark::State& state) {
  for (auto _ : state) {
    const Graph g =
        WithWeightedCascade(OrkutLike(kStoreBenchNodes, /*seed=*/14));
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GraphBuildOrkutLike)->Unit(benchmark::kMillisecond);

void BM_GraphStoreOpenOrkutLike(benchmark::State& state) {
  const std::string& path = StoreBenchFile();
  std::size_t edges = 0;
  for (auto _ : state) {
    StatusOr<Graph> g = OpenGraphFile(path);
    if (!g.ok()) {
      state.SkipWithError("open failed");
      break;
    }
    edges = g.value().num_edges();
    benchmark::DoNotOptimize(edges);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_GraphStoreOpenOrkutLike)->Unit(benchmark::kMillisecond);

// Dynamic-graph deltas (delta/): the steady-state cost of absorbing a
// small edit stream into a live deployment, measured as the cost of the
// "rebuild + resample" unit. The incremental arm is what
// Engine::ApplyDelta executes synchronously: splice the delta into the
// in-memory base CSR (delta/overlay.cc) and re-key the cached RR era
// (clean sets reused verbatim, dirty ones resampled bit-identically).
// Packed world pools are deliberately in neither arm: WorldPoolStore
// absorbs a delta lazily — NotifyDelta only records a patch hint, and
// the prefix-copy repair runs at the next pool build, off the
// delta-absorption path. The full arm pays what a deployment without
// the delta subsystem pays for the same change: regenerate the network
// from its recipe, compose the edits, and resample the entire era.
// Both arms produce bit-identical artifacts (tests/delta_test.cc), so
// the ratio is pure speedup.
//
// Two fixtures, because the probability model bounds the design from
// each side:
//  * Uniform-p independent cascade on a directed Erdős–Rényi network
//    (the classic IC benchmark configuration), tuned subcritical: the
//    light-tailed degree distribution keeps RR sets small, so only the
//    few sets that actually touch a dirty vertex cost anything and the
//    era patch is near-free. Uniform p on the heavy-tailed OrkutLike
//    shape would NOT qualify — hubs drive the size-biased branching
//    ratio p * E[d^2]/E[d] supercritical even at p = 0.01 — hence the
//    ER shape here. The CI gate (scripts/check_delta_speedup.py)
//    asserts incremental >= 10x full at the 10-edit arg on this pair.
//  * Weighted cascade, prob = 1/in-degree, on the OrkutLike shape (the
//    paper's model): the branching process is critical, so a few giant
//    RR sets carry a large share of total sampling time and almost
//    surely contain a dirty vertex. Reuse by set COUNT stays above
//    95%, but reuse by TIME is bounded near the giant sets' share of
//    the era (~2-3x measured) no matter how many sets are drawn. The
//    Wc pair is reported for trend-watching, not gated;
//    docs/dynamic-graphs.md walks through the asymmetry.
constexpr std::size_t kDeltaBenchNodes = 20000;
constexpr std::size_t kDeltaBenchIcEdges = 1500000;
constexpr std::size_t kDeltaBenchSets = 32768;
constexpr uint64_t kDeltaBenchRrSeed = 77;
// Mean in-degree 75, so backward branching ratio 75 * 0.012 = 0.9:
// subcritical with mean RR-set size ~10, large enough that resampling
// the era is the dominant full-rebuild cost.
constexpr double kDeltaBenchIcProb = 0.012;

/// Regenerates a benchmark network from its recipe. Both fixtures and
/// the full-rebuild arm call this, so the "full" arm pays exactly the
/// regeneration the incremental arm avoids.
Graph DeltaBenchRegenerate(bool weighted) {
  if (weighted) {
    return WithWeightedCascade(OrkutLike(kDeltaBenchNodes, /*seed=*/14));
  }
  return WithConstantProb(
      ErdosRenyi(kDeltaBenchNodes, kDeltaBenchIcEdges, /*seed=*/14),
      kDeltaBenchIcProb);
}

const Graph& DeltaBenchBase(bool weighted) {
  static const Graph ic = DeltaBenchRegenerate(false);
  static const Graph wc = DeltaBenchRegenerate(true);
  return weighted ? wc : ic;
}

uint64_t DeltaBenchBaseHash(bool weighted) {
  static const uint64_t ic = GraphContentHash(DeltaBenchBase(false));
  static const uint64_t wc = GraphContentHash(DeltaBenchBase(true));
  return weighted ? wc : ic;
}

/// Samples the full standard era on `g` per the pipeline's per-index
/// stream contract — both the cache priming and the full-rebuild arm go
/// through this, so the cold and patched eras compare like for like.
RrCollection DeltaBenchSampleEra(const Graph& g) {
  RrSampler sampler(g);
  RrCollection rr(g.num_nodes());
  std::vector<NodeId> out;
  for (std::size_t k = 0; k < kDeltaBenchSets; ++k) {
    Rng rng(MixHash(kDeltaBenchRrSeed, kRrSampleTag ^ k));
    sampler.SampleStandard(rng, &out);
    rr.Add(out, 1.0);
  }
  return rr;
}

/// A shared cache primed with both base graphs' standard eras: the
/// state a live deployment holds when a delta arrives. PatchCachedRrEras
/// keys on the base graph hash, so the two fixtures never cross.
ArtifactCache* DeltaBenchCache() {
  static ArtifactCache* cache = [] {
    StatusOr<std::unique_ptr<ArtifactCache>> opened =
        ArtifactCache::Open(BenchTempPath("cwm_bench_delta_cache"));
    if (!opened.ok()) return static_cast<ArtifactCache*>(nullptr);
    ArtifactCache* c = opened.value().release();
    for (const bool weighted : {false, true}) {
      const RrProvenance provenance{DeltaBenchBaseHash(weighted),
                                    kDeltaBenchRrSeed, kStandardRrSourceId,
                                    /*era_start=*/0};
      const RrCollection rr = DeltaBenchSampleEra(DeltaBenchBase(weighted));
      const uint64_t recipe =
          RrRecipeHash(provenance.graph_hash, provenance.source_id,
                       provenance.sample_seed, provenance.era_start);
      if (!c->StoreRrEra(recipe, provenance, rr).ok()) {
        return static_cast<ArtifactCache*>(nullptr);
      }
    }
    return c;
  }();
  return cache;
}

void DeltaIncrementalArm(benchmark::State& state, bool weighted) {
  const std::size_t num_edits = static_cast<std::size_t>(state.range(0));
  const Graph& base = DeltaBenchBase(weighted);
  ArtifactCache* cache = DeltaBenchCache();
  if (cache == nullptr) {
    state.SkipWithError("cache priming failed");
    return;
  }
  const DeltaLog log = GenerateChurnDelta(base, /*seed=*/99, num_edits);
  uint64_t resampled = 0;
  uint64_t reused = 0;
  for (auto _ : state) {
    StatusOr<AppliedDelta> applied =
        ApplyDeltaToGraph(base, log, DeltaBenchBaseHash(weighted));
    if (!applied.ok()) {
      state.SkipWithError("apply failed");
      break;
    }
    const RrPatchStats rr = PatchCachedRrEras(
        *cache, applied.value().graph, DeltaBenchBaseHash(weighted),
        applied.value().result_hash, applied.value().dirty_nodes);
    resampled += rr.sets_resampled;
    reused += rr.sets_reused;
    benchmark::DoNotOptimize(applied.value().graph.num_edges());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["rr_sets"] = static_cast<double>(kDeltaBenchSets);
  const double iters =
      state.iterations() == 0 ? 1.0 : static_cast<double>(state.iterations());
  state.counters["sets_resampled_per_iter"] =
      static_cast<double>(resampled) / iters;
  state.counters["sets_reused_per_iter"] =
      static_cast<double>(reused) / iters;
}

void DeltaFullRebuildArm(benchmark::State& state, bool weighted) {
  const std::size_t num_edits = static_cast<std::size_t>(state.range(0));
  ArtifactCache* cache = DeltaBenchCache();
  if (cache == nullptr) {
    state.SkipWithError("cache priming failed");
    return;
  }
  const DeltaLog log =
      GenerateChurnDelta(DeltaBenchBase(weighted), /*seed=*/99, num_edits);
  for (auto _ : state) {
    // No in-memory base, no patchable era: regenerate the network from
    // its recipe, compose the delta, resample the era from scratch.
    const Graph regenerated = DeltaBenchRegenerate(weighted);
    StatusOr<AppliedDelta> applied = ApplyDeltaToGraph(regenerated, log);
    if (!applied.ok()) {
      state.SkipWithError("apply failed");
      break;
    }
    const RrCollection rr = DeltaBenchSampleEra(applied.value().graph);
    const RrProvenance provenance{applied.value().result_hash,
                                  kDeltaBenchRrSeed, kStandardRrSourceId,
                                  /*era_start=*/0};
    (void)cache->StoreRrEra(
        RrRecipeHash(provenance.graph_hash, provenance.source_id,
                     provenance.sample_seed, provenance.era_start),
        provenance, rr);
    benchmark::DoNotOptimize(rr.size());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["rr_sets"] = static_cast<double>(kDeltaBenchSets);
}

void BM_ApplyDeltaIncremental(benchmark::State& state) {
  DeltaIncrementalArm(state, /*weighted=*/false);
}
BENCHMARK(BM_ApplyDeltaIncremental)
    ->Arg(1)
    ->Arg(10)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_ApplyDeltaFullRebuild(benchmark::State& state) {
  DeltaFullRebuildArm(state, /*weighted=*/false);
}
BENCHMARK(BM_ApplyDeltaFullRebuild)
    ->Arg(1)
    ->Arg(10)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_ApplyDeltaIncrementalWc(benchmark::State& state) {
  DeltaIncrementalArm(state, /*weighted=*/true);
}
BENCHMARK(BM_ApplyDeltaIncrementalWc)
    ->Arg(1)
    ->Arg(10)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_ApplyDeltaFullRebuildWc(benchmark::State& state) {
  DeltaFullRebuildArm(state, /*weighted=*/true);
}
BENCHMARK(BM_ApplyDeltaFullRebuildWc)
    ->Arg(1)
    ->Arg(10)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Cost of an instrumentation site around a realistic hot work unit (~512
// dependent MixHash rounds, the scale of one RR-set hop loop). Three
// arms: Arg(0) = span present, no recorder installed (the production
// default — must cost one relaxed load); Arg(1) = recorder installed and
// recording (the priced-in enabled cost, informational); Arg(2) = the
// same work with no instrumentation site at all (baseline). The CI gate
// (scripts/check_trace_overhead.py) asserts Arg(0) is within 2% of
// Arg(2)'s throughput.
constexpr int kTraceWorkRounds = 512;

uint64_t TraceWorkUnit(uint64_t x) {
  for (int i = 0; i < kTraceWorkRounds; ++i) x = MixHash(x, 0x9e37u + i);
  return x;
}

void BM_TraceOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  // Bounded so the enabled arm cannot grow without limit across
  // iterations; overflow is counted, not stored.
  std::unique_ptr<TraceRecorder> recorder;
  if (mode == 1) {
    recorder = std::make_unique<TraceRecorder>(
        TraceRecorderOptions{.max_events_per_thread = 1u << 16});
    recorder->Install();
  }
  uint64_t x = 0x2545f4914f6cdd1dULL;
  for (auto _ : state) {
    if (mode == 2) {
      // Baseline: the same work with no instrumentation site at all.
      x = TraceWorkUnit(x);
    } else {
      CWM_TRACE_SPAN("bench.work", {{"round", kTraceWorkRounds}});
      x = TraceWorkUnit(x);
    }
    benchmark::DoNotOptimize(x);
  }
  if (recorder != nullptr) recorder->Uninstall();
  state.SetItemsProcessed(state.iterations());
  state.counters["rounds"] = static_cast<double>(kTraceWorkRounds);
}
BENCHMARK(BM_TraceOverhead)->Arg(0)->Arg(1)->Arg(2)->UseRealTime();

}  // namespace
}  // namespace cwm

BENCHMARK_MAIN();
