// Table 6 reproduction: adoption count per item and overall welfare for
// Round-robin (RR), Snake, and utility-ordered blocks (= SeqGRD-NM's
// placement) over one shared PRIMA+ seed ranking, under the real
// (Table 5) and synthetic (Table 4) utility configurations, on
// NetHEPT-like and Orkut-like networks with per-item budgets 10 and 40.
// Thin wrapper over the scenario engine (scenario "table6-adoption");
// per-item adopter counts appear in the adopters=[...] column.
//
// Paper shape: total adoptions roughly constant across the three
// allocators; the utility-ordered block allocation shifts adoptions from
// inferior to superior items and achieves the highest welfare (the paper
// reports welfare gains up to +37.8% and inferior-item adoption drops up
// to -50.1%).
#include "bench_common.h"

int main() {
  using namespace cwm::bench;
  PrintHeader("Table 6: adoption count vs social welfare",
              "Table 6: RR / Snake / SeqGRD-NM adoption redistribution");
  const int code = RunRegisteredScenarios({"table6-adoption"});
  std::printf("\nExpected shape (Table 6): totals roughly equal across "
              "allocators; BlockUtil raises superior-item adoptions, cuts "
              "inferior-item adoptions, and yields the top welfare.\n");
  return code;
}
