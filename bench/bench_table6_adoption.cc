// Table 6 reproduction: adoption count per item and overall welfare for
// Round-robin (RR), Snake, and SeqGRD-NM (= block allocation over the same
// PRIMA+ seed order), under the real (Table 5) and synthetic (Table 4)
// utility configurations, on NetHEPT-like and Orkut-like networks with
// per-item budgets 10 and 40.
//
// Paper shape: total adoptions roughly constant across the three
// allocators; SeqGRD-NM shifts adoptions from inferior to superior items
// and achieves the highest welfare (the paper reports welfare gains up to
// +37.8% and inferior-item adoption drops up to -50.1%).
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/simple_alloc.h"
#include "bench_common.h"
#include "exp/configs.h"
#include "rrset/prima_plus.h"
#include "simulate/estimator.h"

namespace {

using namespace cwm;
using namespace cwm::bench;

void PrintAdoptionRow(const std::string& algo, const UtilityConfig& config,
                      const WelfareStats& stats, const char* const* names) {
  std::printf("  %-10s", algo.c_str());
  for (ItemId i = 0; i < config.num_items(); ++i) {
    std::printf(" %s=%-9.1f", names == nullptr
                                  ? ("i" + std::to_string(i)).c_str()
                                  : names[i],
                stats.adopters_per_item[i]);
  }
  std::printf(" welfare=%.1f\n", stats.welfare);
  std::fflush(stdout);
}

void RunBlock(const std::string& net_name, const Graph& graph,
              const UtilityConfig& config, const char* config_name,
              const char* const* item_names, int budget) {
  const int m = config.num_items();
  std::vector<ItemId> items;
  for (ItemId i = 0; i < m; ++i) items.push_back(i);
  const BudgetVector budgets(m, budget);
  // One shared seed ranking, as in §6.4.3: the seed nodes are fixed, only
  // the item-to-node assignment differs.
  const ImmResult prima =
      PrimaPlus(graph, {}, budgets, m * budget,
                {.epsilon = 0.5, .ell = 1.0, .seed = 97});
  // SeqGRD-NM assigns blocks in decreasing utility order.
  std::vector<ItemId> by_utility = config.ItemsByTruncatedUtilityDesc();

  WelfareEstimator est(graph, config, EvalOptions(budget));
  std::printf("\n%s, %s, budget %d per item:\n", net_name.c_str(),
              config_name, budget);
  PrintAdoptionRow(
      "RR", config,
      est.Stats(RoundRobinAllocate(m, prima.seeds, items, budgets)),
      item_names);
  PrintAdoptionRow(
      "Snake", config,
      est.Stats(SnakeAllocate(m, prima.seeds, items, budgets)), item_names);
  PrintAdoptionRow(
      "SGRD-NM", config,
      est.Stats(BlockAllocate(m, prima.seeds, by_utility, budgets)),
      item_names);
}

}  // namespace

int main() {
  PrintHeader("Table 6: adoption count vs social welfare",
              "Table 6: RR / Snake / SeqGRD-NM adoption redistribution");

  struct Net {
    std::string name;
    Graph graph;
  };
  std::vector<Net> nets;
  nets.push_back({"nethept-like", WithWeightedCascade(NetHeptLike())});
  nets.push_back({"orkut-like", WithWeightedCascade(OrkutLike(OrkutNodes()))});

  const UtilityConfig real = MakeLastFmConfig();
  const UtilityConfig synth = MakeThreeItemConfig();
  static const char* const kSynthNames[3] = {"i", "j", "k"};

  for (const Net& net : nets) {
    std::printf("\n-- %s\n", NetworkStatsRow(net.name, net.graph).c_str());
    for (const int budget : {10, 40}) {
      RunBlock(net.name, net.graph, real, "Real (Table 5)", kLastFmGenres,
               budget);
      RunBlock(net.name, net.graph, synth, "Synthetic (Table 4)", kSynthNames,
               budget);
    }
  }
  std::printf("\nExpected shape (Table 6): totals roughly equal across "
              "allocators; SeqGRD-NM raises superior-item adoptions, cuts "
              "inferior-item adoptions, and yields the top welfare.\n");
  return 0;
}
