// Figure 3 reproduction: running times of greedyWM, Balance-C, TCIM,
// MaxGRD, SeqGRD and SeqGRD-NM under configuration C1 on four networks,
// budgets {10, 30, 50} per item.
//
// Paper shape to reproduce: SeqGRD-NM is orders of magnitude faster than
// everything else; greedyWM and Balance-C are the slowest (they did not
// finish on Orkut within 6 hours — here they are skipped on the larger
// networks unless CWM_GREEDY=1).
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "algo/max_grd.h"
#include "algo/seq_grd.h"
#include "baselines/balance_c.h"
#include "baselines/greedy_wm.h"
#include "baselines/tcim.h"
#include "bench_common.h"
#include "exp/configs.h"

int main() {
  using namespace cwm;
  using namespace cwm::bench;
  PrintHeader("Fig 3: running time, configuration C1",
              "Fig 3(a-d): greedyWM / Balance-C / TCIM / MaxGRD / SeqGRD / "
              "SeqGRD-NM on NetHEPT, Douban-Book, Douban-Movie, Orkut");

  const UtilityConfig config = MakeConfigC1();
  struct Net {
    std::string name;
    Graph graph;
    bool slow_baselines;  // run greedyWM / Balance-C here
  };
  std::vector<Net> nets;
  nets.push_back({"nethept-like", WithWeightedCascade(NetHeptLike()), true});
  nets.push_back(
      {"douban-book-like", WithWeightedCascade(DoubanBookLike()), false});
  nets.push_back(
      {"douban-movie-like", WithWeightedCascade(DoubanMovieLike()), false});
  nets.push_back(
      {"orkut-like", WithWeightedCascade(OrkutLike(OrkutNodes())), false});

  const std::vector<ItemId> items{0, 1};
  for (const Net& net : nets) {
    std::printf("\n-- %s\n", NetworkStatsRow(net.name, net.graph).c_str());
    for (const int budget : {10, 30, 50}) {
      const BudgetVector budgets{budget, budget};
      const AlgoParams params = MakeParams(1000 + budget);
      ExperimentRunner runner(net.graph, config, EvalOptions(budget));
      const Allocation empty_sp(2);

      if (net.slow_baselines || RunSlowBaselinesEverywhere()) {
        const std::size_t pool = static_cast<std::size_t>(budget) + 20;
        PrintRow(net.name, "C1", budget,
                 runner.Run("greedyWM",
                            [&] {
                              return GreedyWm(net.graph, config, empty_sp,
                                              items, budgets, params,
                                              {.candidate_pool = pool});
                            },
                            empty_sp));
        PrintRow(net.name, "C1", budget,
                 runner.Run("Balance-C",
                            [&] {
                              return BalanceC(net.graph, config, empty_sp,
                                              items, budgets, params,
                                              {.candidate_pool = pool});
                            },
                            empty_sp));
      } else {
        std::printf("%-20s %-10s budget=%-4d greedyWM     skipped (paper: "
                    "did not finish; set CWM_GREEDY=1)\n",
                    net.name.c_str(), "C1", budget);
        std::printf("%-20s %-10s budget=%-4d Balance-C    skipped (paper: "
                    "did not finish; set CWM_GREEDY=1)\n",
                    net.name.c_str(), "C1", budget);
      }
      PrintRow(net.name, "C1", budget,
               runner.Run("TCIM",
                          [&] {
                            return Tcim(net.graph, config, empty_sp, items,
                                        budgets, params);
                          },
                          empty_sp));
      PrintRow(net.name, "C1", budget,
               runner.Run("MaxGRD",
                          [&] {
                            return MaxGrd(net.graph, config, empty_sp, items,
                                          budgets, params);
                          },
                          empty_sp));
      PrintRow(net.name, "C1", budget,
               runner.Run("SeqGRD",
                          [&] {
                            return SeqGrd(net.graph, config, empty_sp, items,
                                          budgets, params);
                          },
                          empty_sp));
      PrintRow(net.name, "C1", budget,
               runner.Run("SeqGRD-NM",
                          [&] {
                            return SeqGrdNm(net.graph, config, empty_sp,
                                            items, budgets, params);
                          },
                          empty_sp));
    }
  }
  std::printf("\nExpected shape (Fig 3): SeqGRD-NM fastest by orders of "
              "magnitude; greedyWM and Balance-C slowest.\n");
  return 0;
}
