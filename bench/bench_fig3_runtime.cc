// Figure 3 reproduction: running times of greedyWM, Balance-C, TCIM,
// MaxGRD, SeqGRD and SeqGRD-NM under configuration C1 on four networks,
// budgets {10, 30, 50} per item. Thin wrapper over the scenario engine
// (scenario "fig3-runtime"); the CWM_* env knobs still apply, and
// `cwm_run fig3-runtime` produces the same rows plus JSONL/CSV artifacts.
//
// Paper shape to reproduce: SeqGRD-NM is orders of magnitude faster than
// everything else; greedyWM and Balance-C are the slowest (they did not
// finish on Orkut within 6 hours — here they are gated to the smallest
// cell unless CWM_GREEDY=1).
#include "bench_common.h"

int main() {
  using namespace cwm::bench;
  PrintHeader("Fig 3: running time, configuration C1",
              "Fig 3(a-d): greedyWM / Balance-C / TCIM / MaxGRD / SeqGRD / "
              "SeqGRD-NM on NetHEPT, Douban-Book, Douban-Movie, Orkut");
  const int code = RunRegisteredScenarios({"fig3-runtime"});
  std::printf("\nExpected shape (Fig 3): SeqGRD-NM fastest by orders of "
              "magnitude; greedyWM and Balance-C slowest.\n");
  return code;
}
