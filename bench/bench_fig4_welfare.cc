// Figure 4 reproduction: expected social welfare of the algorithms under
// the four two-item configurations of Table 3 on the Douban-Movie-like
// network.
//
//   (a) C1 — pure competition, comparable utilities, budgets 10..50.
//   (b) C2 — pure competition, 10x utility gap.
//   (c) C3 — soft competition.
//   (d) C4 — C3 utilities, non-uniform budgets: b_i = 50 fixed,
//       b_j in {30, 70, 110}.
//
// Paper shape: SeqGRD / SeqGRD-NM / greedyWM dominate (up to 3x); MaxGRD
// loses under soft competition (it allocates one item only); Balance-C
// recovers somewhat under C3 but drops again under non-uniform budgets.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "algo/max_grd.h"
#include "algo/seq_grd.h"
#include "baselines/balance_c.h"
#include "baselines/greedy_wm.h"
#include "baselines/tcim.h"
#include "bench_common.h"
#include "exp/configs.h"

namespace {

using namespace cwm;
using namespace cwm::bench;

void RunCell(const Graph& graph, const UtilityConfig& config,
             const std::string& label, const BudgetVector& budgets,
             int budget_axis, bool slow_baselines) {
  const std::vector<ItemId> items{0, 1};
  const AlgoParams params = MakeParams(2000 + budget_axis);
  ExperimentRunner runner(graph, config, EvalOptions(budget_axis));
  const Allocation empty_sp(2);

  if (slow_baselines) {
    const std::size_t pool =
        static_cast<std::size_t>(std::max(budgets[0], budgets[1])) + 20;
    PrintRow("douban-movie-like", label, budget_axis,
             runner.Run("greedyWM",
                        [&] {
                          return GreedyWm(graph, config, empty_sp, items,
                                          budgets, params,
                                          {.candidate_pool = pool});
                        },
                        empty_sp));
    PrintRow("douban-movie-like", label, budget_axis,
             runner.Run("Balance-C",
                        [&] {
                          return BalanceC(graph, config, empty_sp, items,
                                          budgets, params,
                                          {.candidate_pool = pool});
                        },
                        empty_sp));
  }
  PrintRow("douban-movie-like", label, budget_axis,
           runner.Run("TCIM",
                      [&] {
                        return Tcim(graph, config, empty_sp, items, budgets,
                                    params);
                      },
                      empty_sp));
  PrintRow("douban-movie-like", label, budget_axis,
           runner.Run("MaxGRD",
                      [&] {
                        return MaxGrd(graph, config, empty_sp, items, budgets,
                                      params);
                      },
                      empty_sp));
  PrintRow("douban-movie-like", label, budget_axis,
           runner.Run("SeqGRD",
                      [&] {
                        return SeqGrd(graph, config, empty_sp, items, budgets,
                                      params);
                      },
                      empty_sp));
  PrintRow("douban-movie-like", label, budget_axis,
           runner.Run("SeqGRD-NM",
                      [&] {
                        return SeqGrdNm(graph, config, empty_sp, items,
                                        budgets, params);
                      },
                      empty_sp));
}

}  // namespace

int main() {
  PrintHeader("Fig 4: expected social welfare, configurations C1-C4",
              "Fig 4(a-d) on Douban-Movie; Table 3 configurations");
  const Graph graph = WithWeightedCascade(DoubanMovieLike());
  std::printf("%s\n", NetworkStatsRow("douban-movie-like", graph).c_str());
  const bool slow = RunSlowBaselinesEverywhere();
  if (!slow) {
    std::printf("greedyWM/Balance-C run at budget 10 only by default "
                "(set CWM_GREEDY=1 for all cells)\n");
  }

  std::printf("\n-- (a) C1: pure competition, comparable utilities\n");
  const UtilityConfig c1 = MakeConfigC1();
  for (const int b : {10, 30, 50}) {
    RunCell(graph, c1, "C1", {b, b}, b, slow || b == 10);
  }

  std::printf("\n-- (b) C2: pure competition, 10x utility gap\n");
  const UtilityConfig c2 = MakeConfigC2();
  for (const int b : {10, 30, 50}) {
    RunCell(graph, c2, "C2", {b, b}, b, slow || b == 10);
  }

  std::printf("\n-- (c) C3: soft competition\n");
  const UtilityConfig c3 = MakeConfigC3();
  for (const int b : {10, 30, 50}) {
    RunCell(graph, c3, "C3", {b, b}, b, slow || b == 10);
  }

  std::printf("\n-- (d) C4: C3 utilities, b_i = 50, varying b_j\n");
  for (const int bj : {30, 70, 110}) {
    RunCell(graph, c3, "C4", {50, bj}, bj, slow || bj == 30);
  }

  std::printf("\nExpected shape (Fig 4): SeqGRD/SeqGRD-NM/greedyWM highest; "
              "MaxGRD lags under soft competition (C3/C4).\n");
  return 0;
}
