// Figure 4 reproduction: expected social welfare of the algorithms under
// the four two-item configurations of Table 3 on the Douban-Movie-like
// network. Thin wrapper over the scenario engine: "fig4-welfare" covers
// (a)-(c) (C1/C2/C3, uniform budgets) and "fig4d-budget-skew" covers (d)
// (C3 utilities, b_i = 50 fixed, b_j in {30, 70, 110}).
//
// Paper shape: SeqGRD / SeqGRD-NM / greedyWM dominate (up to 3x); MaxGRD
// loses under soft competition (it allocates one item only); Balance-C
// recovers somewhat under C3 but drops again under non-uniform budgets.
#include "bench_common.h"

int main() {
  using namespace cwm::bench;
  PrintHeader("Fig 4: expected social welfare, configurations C1-C4",
              "Fig 4(a-d) on Douban-Movie; Table 3 configurations");
  const int code =
      RunRegisteredScenarios({"fig4-welfare", "fig4d-budget-skew"});
  std::printf("\nExpected shape (Fig 4): SeqGRD/SeqGRD-NM/greedyWM highest; "
              "MaxGRD lags under soft competition (C3/C4).\n");
  return code;
}
