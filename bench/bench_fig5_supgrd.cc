// Figure 5 reproduction: SupGRD vs SeqGRD-NM under the superior-item
// configurations C5 and C6 on the two largest networks.
//
// Setup per §6.2.3: the inferior item j is fixed on the top-50 IMM seeds;
// the superior item i receives a budget swept over {10, 30, 50}.
//
// Paper shape: on C5 (small utility gap) the two algorithms produce
// comparable welfare; on C6 (large gap) SupGRD clearly wins, because
// SeqGRD-NM's marginal-spread objective steers i away from the top seeds
// that j holds, while SupGRD happily displaces j where that pays.
// Running time: SupGRD within ~2x of SeqGRD-NM.
#include <cstdio>
#include <string>
#include <vector>

#include "algo/seq_grd.h"
#include "algo/sup_grd.h"
#include "bench_common.h"
#include "exp/configs.h"
#include "rrset/imm.h"

int main() {
  using namespace cwm;
  using namespace cwm::bench;
  PrintHeader("Fig 5: SupGRD vs SeqGRD-NM on C5/C6",
              "Fig 5(a-d): welfare and running time on Orkut and Twitter");

  struct Net {
    std::string name;
    Graph graph;
  };
  std::vector<Net> nets;
  nets.push_back({"orkut-like", WithWeightedCascade(OrkutLike(OrkutNodes()))});
  nets.push_back(
      {"twitter-like", WithWeightedCascade(TwitterLike(TwitterNodes()))});

  for (const Net& net : nets) {
    std::printf("\n-- %s\n", NetworkStatsRow(net.name, net.graph).c_str());
    // Fixed inferior seeds: top-50 IMM nodes (shared by C5 and C6).
    const ImmResult top = Imm(net.graph, 50,
                              {.epsilon = 0.5, .ell = 1.0, .seed = 71});
    for (const char* config_name : {"C5", "C6"}) {
      const UtilityConfig config = std::string(config_name) == "C5"
                                       ? MakeConfigC5()
                                       : MakeConfigC6();
      Allocation sp(2);
      for (NodeId v : top.seeds) sp.Add(v, 1);
      ExperimentRunner runner(net.graph, config, EvalOptions(91));
      for (const int budget : {10, 30, 50}) {
        const AlgoParams params = MakeParams(3000 + budget);
        PrintRow(net.name, config_name, budget,
                 runner.Run("SupGRD",
                            [&] {
                              return SupGrd(net.graph, config, sp, budget,
                                            params);
                            },
                            sp));
        PrintRow(net.name, config_name, budget,
                 runner.Run("SeqGRD-NM",
                            [&] {
                              BudgetVector budgets{budget, 1};
                              return SeqGrdNm(net.graph, config, sp, {0},
                                              budgets, params);
                            },
                            sp));
      }
    }
  }
  std::printf("\nExpected shape (Fig 5): comparable welfare on C5; SupGRD "
              "ahead on C6; SupGRD time within ~2x of SeqGRD-NM.\n");
  return 0;
}
