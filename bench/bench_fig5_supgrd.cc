// Figure 5 reproduction: SupGRD vs SeqGRD-NM under the superior-item
// configurations C5 and C6 on the two largest networks. Thin wrapper over
// the scenario engine (scenario "fig5-supgrd"): the engine fixes the
// inferior item on the top-50 IMM seeds per network (§6.2.3) and sweeps
// the superior item's budget over {10, 30, 50}.
//
// Paper shape: on C5 (small utility gap) the two algorithms produce
// comparable welfare; on C6 (large gap) SupGRD clearly wins, because
// SeqGRD-NM's marginal-spread objective steers i away from the top seeds
// that j holds, while SupGRD happily displaces j where that pays.
// Running time: SupGRD within ~2x of SeqGRD-NM.
#include "bench_common.h"

int main() {
  using namespace cwm::bench;
  PrintHeader("Fig 5: SupGRD vs SeqGRD-NM on C5/C6",
              "Fig 5(a-d): welfare and running time on Orkut and Twitter");
  const int code = RunRegisteredScenarios({"fig5-supgrd"});
  std::printf("\nExpected shape (Fig 5): comparable welfare on C5; SupGRD "
              "ahead on C6; SupGRD time within ~2x of SeqGRD-NM.\n");
  return code;
}
