// Shared helpers for the figure/table reproduction benches.
//
// Environment knobs (all optional):
//   CWM_SIMS        Monte-Carlo worlds per estimate (default 200; the
//                   paper uses 5000 on a 128 GB server).
//   CWM_EVAL_SIMS   worlds for the final welfare evaluation (default 500).
//   CWM_BENCH_SCALE multiplier on the default node counts of the scaled
//                   Orkut/Twitter stand-ins (default 1.0).
//   CWM_GREEDY      set to 1 to run the greedyWM / Balance-C baselines on
//                   every network (default: smallest network only — the
//                   paper reports they do not finish on large ones).
#ifndef CWM_BENCH_BENCH_COMMON_H_
#define CWM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "algo/params.h"
#include "exp/networks.h"
#include "exp/runner.h"
#include "graph/edge_prob.h"

namespace cwm {
namespace bench {

inline int Sims() { return EnvInt("CWM_SIMS", 200); }
inline int EvalSims() { return EnvInt("CWM_EVAL_SIMS", 500); }
inline double Scale() { return EnvDouble("CWM_BENCH_SCALE", 1.0); }
inline bool RunSlowBaselinesEverywhere() {
  return EnvInt("CWM_GREEDY", 0) == 1;
}

inline AlgoParams MakeParams(uint64_t seed) {
  AlgoParams p;
  p.imm = {.epsilon = 0.5, .ell = 1.0, .seed = seed};
  p.estimator = {.num_worlds = Sims(),
                 .seed = seed ^ 0xabcdefULL};
  return p;
}

inline EstimatorOptions EvalOptions(uint64_t seed) {
  return {.num_worlds = EvalSims(), .seed = seed ^ 0x777ULL};
}

/// Default scaled sizes for the two giant networks (paper: 3.07M / 41.7M
/// nodes; see DESIGN.md substitutions).
inline std::size_t OrkutNodes() {
  return static_cast<std::size_t>(20000 * Scale());
}
inline std::size_t TwitterNodes() {
  return static_cast<std::size_t>(30000 * Scale());
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("sims=%d eval_sims=%d scale=%.2f\n", Sims(), EvalSims(),
              Scale());
  std::printf("==============================================================\n");
}

inline void PrintRow(const std::string& network, const std::string& config,
                     int budget, const RunRecord& r) {
  std::printf("%-20s %-10s budget=%-4d %-12s time=%9.3fs welfare=%12.2f\n",
              network.c_str(), config.c_str(), budget, r.algorithm.c_str(),
              r.seconds, r.welfare);
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace cwm

#endif  // CWM_BENCH_BENCH_COMMON_H_
