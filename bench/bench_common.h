// Shared helpers for the figure/table reproduction benches, which are
// thin wrappers over the scenario engine (src/scenario/).
//
// Environment knobs (all optional; parsed by EnvSweepOptions):
//   CWM_SIMS        Monte-Carlo worlds per estimate (default 200; the
//                   paper uses 5000 on a 128 GB server).
//   CWM_EVAL_SIMS   worlds for the final welfare evaluation (default 500).
//   CWM_BENCH_SCALE multiplier on the default node counts of the scaled
//                   Orkut/Twitter stand-ins (default 1.0).
//   CWM_GREEDY      set to 1 to run the greedyWM / Balance-C baselines on
//                   every cell (default 0: each scenario's gate window
//                   only — the paper reports they do not finish on the
//                   large networks).
//   CWM_THREADS / CWM_INNER_THREADS
//                   sweep- and estimator-level parallelism.
#ifndef CWM_BENCH_BENCH_COMMON_H_
#define CWM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <initializer_list>

#include "exp/networks.h"
#include "scenario/registry.h"
#include "scenario/sink.h"
#include "scenario/sweep.h"

namespace cwm {
namespace bench {

inline void PrintHeader(const char* title, const char* paper_ref) {
  const SweepOptions options = EnvSweepOptions();
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("sims=%d eval_sims=%d scale=%.2f\n", options.default_sims,
              options.default_eval_sims, options.scale);
  std::printf("==============================================================\n");
}

/// Runs registered scenarios through the sweep engine with env-derived
/// options (the CWM_* knobs above become spec overrides), streaming
/// aligned rows to stdout. Returns a process exit code, so bench mains
/// reduce to PrintHeader + RunRegisteredScenarios.
inline int RunRegisteredScenarios(std::initializer_list<const char*> names) {
  SweepOptions options = EnvSweepOptions();
  TablePrinter table(stdout);
  options.on_result = [&table](const TaskResult& row) { table.Print(row); };
  for (const char* name : names) {
    const StatusOr<ScenarioSpec> spec = GlobalScenarioRegistry().Find(name);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 1;
    }
    std::printf("\n-- %s: %s (%s)\n", spec.value().name.c_str(),
                spec.value().title.c_str(),
                spec.value().paper_ref.empty()
                    ? "beyond paper"
                    : spec.value().paper_ref.c_str());
    const StatusOr<SweepResult> result = RunSweep(spec.value(), options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", name,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("   (%zu rows, %.2fs)\n", result.value().rows.size(),
                result.value().total_seconds);
  }
  return 0;
}

}  // namespace bench
}  // namespace cwm

#endif  // CWM_BENCH_BENCH_COMMON_H_
