// Figure 6 reproduction: multi-item experiments, as three engine
// scenarios:
//
//  "fig6ab-num-items"  (a,b) runtime and welfare vs number of items
//                      (1..5 unit-utility items, budget 50 each).
//  "fig6c-blocking"    (c) effect of the marginal check (SeqGRD vs
//                      SeqGRD-NM) under the Table 4 configuration.
//  "fig6d-scaling"     (d) SeqGRD-NM on Orkut-like BFS subgraphs
//                      (50..100% of nodes) under weighted-cascade and
//                      constant-0.01 probabilities.
#include "bench_common.h"

int main() {
  using namespace cwm::bench;
  PrintHeader("Fig 6: multi-item experiments",
              "Fig 6(a,b): #items sweep; Fig 6(c): marginal-check ablation; "
              "Fig 6(d): SeqGRD-NM scalability");
  const int code = RunRegisteredScenarios(
      {"fig6ab-num-items", "fig6c-blocking", "fig6d-scaling"});
  std::printf("\nExpected shape (Fig 6): (a) SeqGRD-NM runtime nearly flat "
              "in m, others grow; (b) welfare grows with m for SeqGRD*, "
              "flat for MaxGRD/TCIM; (c) SeqGRD >= SeqGRD-NM, gap widens "
              "with inferior budgets; (d) roughly linear scaling.\n");
  return code;
}
