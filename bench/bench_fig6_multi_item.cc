// Figure 6 reproduction: multi-item experiments.
//
//  (a,b) Runtime and welfare vs number of items (1..5 unit-utility items
//        in pure competition, budget 50 each) on NetHEPT-like.
//  (c)   Effect of the marginal check (SeqGRD vs SeqGRD-NM) under the
//        Table 4 three-item configuration: budget of i fixed, budgets of
//        j and k swept; blocking grows with the inferior budgets.
//  (d)   Scalability of SeqGRD-NM on Orkut-like BFS subgraphs (50..100% of
//        nodes) under weighted-cascade and constant-0.01 probabilities.
#include <cstdio>
#include <string>
#include <vector>

#include "algo/max_grd.h"
#include "algo/seq_grd.h"
#include "baselines/greedy_wm.h"
#include "baselines/tcim.h"
#include "bench_common.h"
#include "exp/configs.h"
#include "graph/generators.h"
#include "support/timer.h"

int main() {
  using namespace cwm;
  using namespace cwm::bench;
  PrintHeader("Fig 6: multi-item experiments",
              "Fig 6(a,b): #items sweep; Fig 6(c): marginal-check ablation; "
              "Fig 6(d): SeqGRD-NM scalability");

  const Graph nethept = WithWeightedCascade(NetHeptLike());
  std::printf("%s\n", NetworkStatsRow("nethept-like", nethept).c_str());

  std::printf("\n-- (a,b) runtime and welfare vs number of items "
              "(budget 50 each)\n");
  for (int m = 1; m <= 5; ++m) {
    const UtilityConfig config = MakeUniformPureCompetition(m);
    std::vector<ItemId> items;
    for (ItemId i = 0; i < m; ++i) items.push_back(i);
    const BudgetVector budgets(m, 50);
    const Allocation empty_sp(m);
    const AlgoParams params = MakeParams(4000 + m);
    ExperimentRunner runner(nethept, config, EvalOptions(m));
    const std::string label = "m=" + std::to_string(m);

    if (RunSlowBaselinesEverywhere() || m <= 2) {
      PrintRow("nethept-like", label, 50,
               runner.Run("greedyWM",
                          [&] {
                            return GreedyWm(nethept, config, empty_sp, items,
                                            budgets, params,
                                            {.candidate_pool = 70});
                          },
                          empty_sp));
    }
    PrintRow("nethept-like", label, 50,
             runner.Run("TCIM",
                        [&] {
                          return Tcim(nethept, config, empty_sp, items,
                                      budgets, params);
                        },
                        empty_sp));
    PrintRow("nethept-like", label, 50,
             runner.Run("MaxGRD",
                        [&] {
                          return MaxGrd(nethept, config, empty_sp, items,
                                        budgets, params);
                        },
                        empty_sp));
    PrintRow("nethept-like", label, 50,
             runner.Run("SeqGRD",
                        [&] {
                          return SeqGrd(nethept, config, empty_sp, items,
                                        budgets, params);
                        },
                        empty_sp));
    PrintRow("nethept-like", label, 50,
             runner.Run("SeqGRD-NM",
                        [&] {
                          return SeqGrdNm(nethept, config, empty_sp, items,
                                          budgets, params);
                        },
                        empty_sp));
  }

  std::printf("\n-- (c) marginal-check ablation, Table 4 configuration "
              "(b_i = 100; b_j = b_k swept)\n");
  {
    const UtilityConfig config = MakeThreeItemConfig();
    const std::vector<ItemId> items{0, 1, 2};
    const Allocation empty_sp(3);
    ExperimentRunner runner(nethept, config, EvalOptions(17));
    for (const int bjk : {20, 60, 100}) {
      const BudgetVector budgets{100, bjk, bjk};
      const AlgoParams params = MakeParams(5000 + bjk);
      const std::string label = "T4 bjk=" + std::to_string(bjk);
      PrintRow("nethept-like", label, bjk,
               runner.Run("SeqGRD",
                          [&] {
                            return SeqGrd(nethept, config, empty_sp, items,
                                          budgets, params);
                          },
                          empty_sp));
      PrintRow("nethept-like", label, bjk,
               runner.Run("SeqGRD-NM",
                          [&] {
                            return SeqGrdNm(nethept, config, empty_sp, items,
                                            budgets, params);
                          },
                          empty_sp));
    }
  }

  std::printf("\n-- (d) SeqGRD-NM scalability on orkut-like subgraphs "
              "(3 items, budget 50 each)\n");
  {
    const Graph orkut_wc = WithWeightedCascade(OrkutLike(OrkutNodes()));
    const Graph orkut_const = WithConstantProb(OrkutLike(OrkutNodes()), 0.01);
    const UtilityConfig config = MakeUniformPureCompetition(3);
    const std::vector<ItemId> items{0, 1, 2};
    const BudgetVector budgets(3, 50);
    for (const double frac : {0.5, 0.75, 1.0}) {
      for (const bool wc : {true, false}) {
        const Graph& base = wc ? orkut_wc : orkut_const;
        const Graph sub =
            frac < 1.0 ? InducedBfsSubgraph(base, frac, 99) : base;
        const AlgoParams params =
            MakeParams(6000 + static_cast<int>(frac * 100) + wc);
        Timer timer;
        const Allocation alloc =
            SeqGrdNm(sub, config, Allocation(3), items, budgets, params);
        std::printf("orkut-like %3.0f%% nodes, %-14s SeqGRD-NM time=%8.3fs "
                    "(%zu nodes, %zu edges)\n",
                    frac * 100, wc ? "p=1/din(v)" : "p=0.01", timer.Seconds(),
                    sub.num_nodes(), sub.num_edges());
        (void)alloc;
        std::fflush(stdout);
      }
    }
  }

  std::printf("\nExpected shape (Fig 6): (a) SeqGRD-NM runtime nearly flat "
              "in m, others grow; (b) welfare grows with m for SeqGRD*, "
              "flat for MaxGRD/TCIM; (c) SeqGRD >= SeqGRD-NM, gap widens "
              "with inferior budgets; (d) roughly linear scaling.\n");
  return 0;
}
