// Table 2 stand-in: prints the statistics of the synthetic network catalog
// used by every other bench, next to the figures the paper reports for the
// real datasets.
#include <cstdio>

#include "bench_common.h"
#include "exp/networks.h"
#include "support/timer.h"

int main() {
  using namespace cwm;
  using namespace cwm::bench;
  PrintHeader("Network catalog (synthetic stand-ins for Table 2)",
              "Table 2: NetHEPT / Douban-Book / Douban-Movie / Orkut / "
              "Twitter statistics");

  std::printf("paper:  NetHEPT       15.2K nodes  31.4K undirected edges  "
              "avg deg 4.13\n");
  std::printf("paper:  Douban-Book   23.3K nodes  141K  directed edges    "
              "avg deg 6.5\n");
  std::printf("paper:  Douban-Movie  34.9K nodes  274K  directed edges    "
              "avg deg 7.9\n");
  std::printf("paper:  Orkut         3.07M nodes  117M  undirected edges  "
              "avg deg 77.5 (scaled here)\n");
  std::printf("paper:  Twitter       41.7M nodes  1.47G directed edges    "
              "avg deg 70.5 (scaled here)\n\n");

  Timer t;
  const Graph nethept = NetHeptLike();
  std::printf("%s  (%.2fs)\n", NetworkStatsRow("nethept-like", nethept).c_str(),
              t.Seconds());
  t.Reset();
  const Graph book = DoubanBookLike();
  std::printf("%s  (%.2fs)\n",
              NetworkStatsRow("douban-book-like", book).c_str(), t.Seconds());
  t.Reset();
  const Graph movie = DoubanMovieLike();
  std::printf("%s  (%.2fs)\n",
              NetworkStatsRow("douban-movie-like", movie).c_str(),
              t.Seconds());
  t.Reset();
  const Graph orkut = OrkutLike(OrkutNodes());
  std::printf("%s  (%.2fs)\n", NetworkStatsRow("orkut-like", orkut).c_str(),
              t.Seconds());
  t.Reset();
  const Graph twitter = TwitterLike(TwitterNodes());
  std::printf("%s  (%.2fs)\n",
              NetworkStatsRow("twitter-like", twitter).c_str(), t.Seconds());
  std::printf("\nRaise CWM_BENCH_SCALE to grow the Orkut/Twitter stand-ins "
              "toward paper scale.\n");
  return 0;
}
