// Table 2 stand-in: prints the statistics of the synthetic network
// catalog next to the figures the paper reports for the real datasets.
// The graphs are built through the scenario engine's NetworkSpec — the
// same resolution path every scenario and the cwm_run CLI use — so this
// bench doubles as a smoke test of the network factory.
#include <cstdio>

#include "bench_common.h"
#include "scenario/scenario.h"
#include "support/timer.h"

int main() {
  using namespace cwm;
  using namespace cwm::bench;
  PrintHeader("Network catalog (synthetic stand-ins for Table 2)",
              "Table 2: NetHEPT / Douban-Book / Douban-Movie / Orkut / "
              "Twitter statistics");

  std::printf("paper:  NetHEPT       15.2K nodes  31.4K undirected edges  "
              "avg deg 4.13\n");
  std::printf("paper:  Douban-Book   23.3K nodes  141K  directed edges    "
              "avg deg 6.5\n");
  std::printf("paper:  Douban-Movie  34.9K nodes  274K  directed edges    "
              "avg deg 7.9\n");
  std::printf("paper:  Orkut         3.07M nodes  117M  undirected edges  "
              "avg deg 77.5 (scaled here)\n");
  std::printf("paper:  Twitter       41.7M nodes  1.47G directed edges    "
              "avg deg 70.5 (scaled here)\n\n");

  const double scale = EnvSweepOptions().scale;
  for (const char* family :
       {"nethept-like", "douban-book-like", "douban-movie-like",
        "orkut-like", "twitter-like", "erdos-renyi", "barabasi-albert",
        "directed-pa", "watts-strogatz"}) {
    NetworkSpec net;
    net.family = family;
    Timer t;
    const StatusOr<Graph> graph = net.Build(scale);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", family,
                   graph.status().ToString().c_str());
      return 1;
    }
    std::printf("%s  (%.2fs)\n",
                NetworkStatsRow(net.Label(), graph.value()).c_str(),
                t.Seconds());
    std::fflush(stdout);
  }
  std::printf("\nRaise CWM_BENCH_SCALE to grow the scalable stand-ins "
              "toward paper scale.\n");
  return 0;
}
