#include "algo/sup_grd.h"

#include <memory>

#include "api/registry.h"
#include "rrset/rr_sampler.h"

namespace cwm {

Status CanRunSupGrd(const UtilityConfig& config, const Allocation& sp) {
  const auto superior = config.SuperiorItem();
  if (!superior.has_value()) {
    return Status::InvalidArgument(
        "no superior item (needs bounded noise and a strictly dominant "
        "item)");
  }
  if (!config.IsPureCompetition()) {
    return Status::InvalidArgument("items are not purely competitive");
  }
  if (sp.num_items() != config.num_items()) {
    return Status::InvalidArgument("S_P item universe mismatch");
  }
  if (!sp.SeedsOf(*superior).empty()) {
    return Status::InvalidArgument(
        "superior item must not be pre-allocated in S_P");
  }
  return Status::OK();
}

Allocation SupGrd(const Graph& graph, const UtilityConfig& config,
                  const Allocation& sp, int budget, const AlgoParams& params,
                  AlgoDiagnostics* diagnostics) {
  CWM_CHECK(budget >= 1);
  {
    const Status status = CanRunSupGrd(config, sp);
    CWM_CHECK_MSG(status.ok(), status.ToString().c_str());
  }
  const ItemId im = *config.SuperiorItem();
  const double wmax = config.ExpectedTruncatedUtility(im);
  Allocation result(config.num_items());
  if (wmax <= 0.0) {
    // The superior item can never yield positive welfare; any allocation
    // is optimal. Return the first `budget` nodes.
    for (NodeId v = 0; v < static_cast<NodeId>(budget); ++v) {
      result.Add(v, im);
    }
    return result;
  }

  // The fixed-seed index is shared immutable state; each worker gets its
  // own sampler (mutable BFS scratch).
  auto fixed = std::make_shared<FixedAllocationIndex>(
      FixedAllocationIndex::Build(graph.num_nodes(), config, sp));
  const RrSourceFactory source = [&graph, fixed, wmax]() -> RrSampleFn {
    auto sampler = std::make_shared<RrSampler>(graph);
    return [sampler, fixed, wmax](Rng& rng, std::vector<NodeId>* out) {
      const double w = sampler->SampleWeighted(rng, *fixed, wmax, out);
      return w / wmax;  // normalized weight in [0, 1]
    };
  };

  const ImmResult imm =
      RunImmDriver(graph.num_nodes(), {budget}, params.imm, source);
  if (diagnostics != nullptr) {
    diagnostics->rr_count = imm.rr_count;
    // Rescale from normalized coverage to welfare units.
    diagnostics->internal_estimate = imm.coverage_estimate * wmax;
  }
  for (NodeId v : imm.seeds) result.Add(v, im);
  return result;
}

namespace {

class SupGrdAllocator final : public Allocator {
 public:
  AlgoKind Kind() const override { return AlgoKind::kSupGrd; }
  AllocatorCapabilities Capabilities() const override {
    return {.needs_superior_item = true};
  }

  Status Allocate(const AllocateRequest& request,
                  AllocateResult* result) const override {
    if (Status cancelled = CheckCancelled(request); !cancelled.ok()) {
      return cancelled;
    }
    const Allocation& sp = FixedOf(request);
    const Status can = CanRunSupGrd(*request.config, sp);
    if (!can.ok()) {
      return Status::FailedPrecondition("SupGRD preconditions: " +
                                        can.ToString());
    }
    const ItemId superior = request.config->SuperiorItem().value();
    result->allocation =
        SupGrd(*request.graph, *request.config, sp,
               request.budgets[superior], request.params,
               &result->diagnostics);
    return Status::OK();
  }
};

}  // namespace

void RegisterSupGrdAllocator(AllocatorRegistry& registry) {
  registry.Register(std::make_unique<SupGrdAllocator>());
}

}  // namespace cwm
