#include "algo/params.h"

// Aggregates only; translation unit anchors the module.
namespace cwm {}  // namespace cwm
