#include "algo/best_of.h"

#include "algo/max_grd.h"
#include "algo/seq_grd.h"
#include "simulate/estimator.h"

namespace cwm {

Allocation BestOfSeqMax(const Graph& graph, const UtilityConfig& config,
                        const Allocation& sp,
                        const std::vector<ItemId>& items,
                        const BudgetVector& budgets, const AlgoParams& params,
                        const char** chosen) {
  const Allocation sp_or_empty =
      sp.num_items() == 0 ? Allocation(config.num_items()) : sp;
  Allocation seq =
      SeqGrd(graph, config, sp_or_empty, items, budgets, params);
  Allocation max =
      MaxGrd(graph, config, sp_or_empty, items, budgets, params);
  WelfareEstimator estimator(graph, config, params.estimator);
  const double seq_welfare =
      estimator.Welfare(Allocation::Union(seq, sp_or_empty));
  const double max_welfare =
      estimator.Welfare(Allocation::Union(max, sp_or_empty));
  if (seq_welfare >= max_welfare) {
    if (chosen != nullptr) *chosen = "SeqGRD";
    return seq;
  }
  if (chosen != nullptr) *chosen = "MaxGRD";
  return max;
}

}  // namespace cwm
