#include "algo/best_of.h"

#include <memory>

#include "algo/max_grd.h"
#include "algo/seq_grd.h"
#include "api/registry.h"
#include "simulate/estimator.h"

namespace cwm {

Allocation BestOfSeqMax(const Graph& graph, const UtilityConfig& config,
                        const Allocation& sp,
                        const std::vector<ItemId>& items,
                        const BudgetVector& budgets, const AlgoParams& params,
                        const char** chosen) {
  const Allocation sp_or_empty =
      sp.num_items() == 0 ? Allocation(config.num_items()) : sp;
  Allocation seq =
      SeqGrd(graph, config, sp_or_empty, items, budgets, params);
  Allocation max =
      MaxGrd(graph, config, sp_or_empty, items, budgets, params);
  WelfareEstimator estimator(graph, config, params.estimator);
  // One batched pass: both arms share each world's snapshot and utility
  // table instead of materializing the world sequence twice.
  const Allocation finals[] = {Allocation::Union(seq, sp_or_empty),
                               Allocation::Union(max, sp_or_empty)};
  const std::vector<WelfareStats> stats = estimator.StatsBatch(finals);
  const double seq_welfare = stats[0].welfare;
  const double max_welfare = stats[1].welfare;
  if (seq_welfare >= max_welfare) {
    if (chosen != nullptr) *chosen = "SeqGRD";
    return seq;
  }
  if (chosen != nullptr) *chosen = "MaxGRD";
  return max;
}

namespace {

class BestOfAllocator final : public Allocator {
 public:
  AlgoKind Kind() const override { return AlgoKind::kBestOf; }
  AllocatorCapabilities Capabilities() const override { return {}; }

  Status Allocate(const AllocateRequest& request,
                  AllocateResult* result) const override {
    if (Status cancelled = CheckCancelled(request); !cancelled.ok()) {
      return cancelled;
    }
    ReportProgress(request, "SeqGRD + MaxGRD arms");
    const char* chosen = nullptr;
    result->allocation =
        BestOfSeqMax(*request.graph, *request.config, FixedOf(request),
                     request.items, request.budgets, request.params,
                     &chosen);
    if (chosen != nullptr) result->note = std::string("chose ") + chosen;
    return Status::OK();
  }
};

}  // namespace

void RegisterBestOfAllocator(AllocatorRegistry& registry) {
  registry.Register(std::make_unique<BestOfAllocator>());
}

}  // namespace cwm
