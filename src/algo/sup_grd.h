// SupGRD (§5.3): (1 - 1/e - eps)-approximate welfare maximization for the
// superior item.
//
// Preconditions (checked by CanRunSupGrd):
//  (i)   the configuration has a superior item i_m — its lowest possible
//        utility beats every other item's highest possible utility (needs
//        bounded noise);
//  (ii)  every inferior item's seeds are fixed in S_P, and I_2 = {i_m};
//  (iii) items are purely competitive (no bundle ever beats its best
//        single item), so each node adopts exactly one item.
//
// Under these conditions welfare is monotone submodular in i_m's seed set
// (Lemmas 4-5), and the weighted-RR-set estimator (Definition 2, Lemma 6)
// is unbiased for marginal welfare, so the IMM driver yields a
// (1 - 1/e - eps)-approximation (Theorem 5).
#ifndef CWM_ALGO_SUP_GRD_H_
#define CWM_ALGO_SUP_GRD_H_

#include "algo/params.h"
#include "graph/graph.h"
#include "model/allocation.h"
#include "model/utility.h"
#include "support/status.h"

namespace cwm {

/// Verifies the SupGRD preconditions for allocating `budget` seeds of the
/// configuration's superior item on top of `sp`. OK iff all three
/// conditions hold.
Status CanRunSupGrd(const UtilityConfig& config, const Allocation& sp);

/// Runs SupGRD; allocates `budget` seeds of the superior item. Aborts if
/// the preconditions fail (call CanRunSupGrd first on fallible paths).
Allocation SupGrd(const Graph& graph, const UtilityConfig& config,
                  const Allocation& sp, int budget, const AlgoParams& params,
                  AlgoDiagnostics* diagnostics = nullptr);

class AllocatorRegistry;
/// Registers the SupGRD adapter (api/registry.h); it maps CanRunSupGrd
/// failures to FailedPrecondition.
void RegisterSupGrdAllocator(AllocatorRegistry& registry);

}  // namespace cwm

#endif  // CWM_ALGO_SUP_GRD_H_
