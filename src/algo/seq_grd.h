// SeqGRD and SeqGRD-NM (§5.1, Algorithm 1).
//
// SeqGRD selects one pooled seed set of size b = sum of item budgets with
// PRIMA+ (approximately optimal marginal spread over the fixed allocation
// S_P), then assigns items to contiguous blocks of the greedy order in
// decreasing expected-truncated-utility order. With the marginal check on,
// an item's block is committed only if it adds positive marginal welfare;
// rejected items are appended at the end so budgets are always exhausted
// (required for the Theorem 3 guarantee).
//
// Guarantee: rho(S_Seq ∪ S_P) >= (umin/umax)(1 - 1/e - eps) * rho(S_A ∪ S_P)
// for any feasible allocation S_A, w.p. >= 1 - n^-ell.
//
// SeqGRD-NM is the no-marginal-check variant: same guarantee, much faster
// (no Monte-Carlo marginals), but vulnerable to item blocking (§6.3.2).
#ifndef CWM_ALGO_SEQ_GRD_H_
#define CWM_ALGO_SEQ_GRD_H_

#include <span>
#include <vector>

#include "algo/params.h"
#include "graph/graph.h"
#include "model/allocation.h"
#include "model/utility.h"

namespace cwm {

/// Options for SeqGrd.
struct SeqGrdOptions {
  /// Perform the positive-marginal-welfare check (line 8 of Algorithm 1).
  /// false == SeqGRD-NM.
  bool marginal_check = true;
};

/// Runs SeqGRD. `items` lists I_2 (the items to allocate); `budgets` is
/// indexed by global ItemId and read only for items in I_2. `sp` is the
/// fixed allocation S_P (may be empty). Returns the allocation for I_2
/// only (union with `sp` to obtain the deployed allocation).
Allocation SeqGrd(const Graph& graph, const UtilityConfig& config,
                  const Allocation& sp, const std::vector<ItemId>& items,
                  const BudgetVector& budgets, const AlgoParams& params,
                  const SeqGrdOptions& options = {},
                  AlgoDiagnostics* diagnostics = nullptr);

/// Runs SeqGRD at several budget points of one cell in a single pass: one
/// pooled PRIMA+ seed set sized for the largest point (levels = the union
/// of every point's per-item budgets and totals), then each point's block
/// assignment consumes its own prefix, with all marginal checks sharing
/// one estimator (and therefore one world-snapshot pool). A batch of one
/// is bit-identical to SeqGrd; larger batches share the ranking, so a
/// point's allocation may differ from a standalone run at that point
/// (same approximation guarantee, different sampled ranking).
std::vector<Allocation> SeqGrdBatch(
    const Graph& graph, const UtilityConfig& config, const Allocation& sp,
    const std::vector<ItemId>& items,
    std::span<const BudgetVector> budget_points, const AlgoParams& params,
    const SeqGrdOptions& options = {},
    AlgoDiagnostics* diagnostics = nullptr);

/// Convenience wrapper for SeqGRD-NM.
inline Allocation SeqGrdNm(const Graph& graph, const UtilityConfig& config,
                           const Allocation& sp,
                           const std::vector<ItemId>& items,
                           const BudgetVector& budgets,
                           const AlgoParams& params,
                           AlgoDiagnostics* diagnostics = nullptr) {
  return SeqGrd(graph, config, sp, items, budgets, params,
                {.marginal_check = false}, diagnostics);
}

class AllocatorRegistry;
/// Registers the SeqGRD and SeqGRD-NM adapters (api/registry.h).
void RegisterSeqGrdAllocators(AllocatorRegistry& registry);

}  // namespace cwm

#endif  // CWM_ALGO_SEQ_GRD_H_
