#include "algo/seq_grd.h"

#include <algorithm>
#include <memory>

#include "api/registry.h"
#include "rrset/prima_plus.h"
#include "simulate/estimator.h"

namespace cwm {

Allocation SeqGrd(const Graph& graph, const UtilityConfig& config,
                  const Allocation& sp, const std::vector<ItemId>& items,
                  const BudgetVector& budgets, const AlgoParams& params,
                  const SeqGrdOptions& options,
                  AlgoDiagnostics* diagnostics) {
  // The batched form with one point runs exactly Algorithm 1 — the level
  // set (point total == total_b is filtered and re-appended by PRIMA+)
  // and the block loop degenerate to the single-point ones — so
  // delegating keeps the two entry points bit-identical by construction.
  return std::move(SeqGrdBatch(graph, config, sp, items,
                               std::span<const BudgetVector>(&budgets, 1),
                               params, options, diagnostics)[0]);
}

std::vector<Allocation> SeqGrdBatch(
    const Graph& graph, const UtilityConfig& config, const Allocation& sp,
    const std::vector<ItemId>& items,
    std::span<const BudgetVector> budget_points, const AlgoParams& params,
    const SeqGrdOptions& options, AlgoDiagnostics* diagnostics) {
  CWM_CHECK(!items.empty());
  CWM_CHECK(!budget_points.empty());
  const Allocation sp_or_empty =
      sp.num_items() == 0 ? Allocation(config.num_items()) : sp;
  CWM_CHECK(sp_or_empty.num_items() == config.num_items());

  int total_b = 0;
  std::vector<int> levels;
  for (const BudgetVector& budgets : budget_points) {
    CWM_CHECK(budgets.size() ==
              static_cast<std::size_t>(config.num_items()));
    int point_total = 0;
    for (ItemId i : items) {
      CWM_CHECK(budgets[i] >= 1);
      point_total += budgets[i];
      levels.push_back(budgets[i]);
    }
    // Each point's block assignment consumes the prefix of size
    // point_total, so that prefix must be preserved too.
    levels.push_back(point_total);
    total_b = std::max(total_b, point_total);
  }

  // Line 2: one pooled PRIMA+ seed set sized for the largest point, with
  // every point's levels preserved — the whole budget sweep shares one
  // ranking instead of resampling per point.
  const ImmResult prima = PrimaPlus(graph, sp_or_empty.SeedNodes(), levels,
                                    total_b, params.imm);
  if (diagnostics != nullptr) {
    diagnostics->rr_count = prima.rr_count;
    diagnostics->internal_estimate = prima.coverage_estimate;
  }

  // Line 4: items in decreasing expected truncated utility (depends only
  // on the config, so it is shared by every point).
  std::vector<ItemId> order = items;
  std::stable_sort(order.begin(), order.end(), [&](ItemId a, ItemId b) {
    return config.ExpectedTruncatedUtility(a) >
           config.ExpectedTruncatedUtility(b);
  });

  // One estimator for every point's marginal checks: each check's result
  // is a pure function of (base, candidate), so sharing the instance —
  // and through it the world-snapshot pool — never changes a decision.
  WelfareEstimator estimator(graph, config, params.estimator);
  std::vector<Allocation> out;
  out.reserve(budget_points.size());
  for (const BudgetVector& budgets : budget_points) {
    Allocation result(config.num_items());
    std::size_t cursor = 0;  // next unused position in the greedy order
    std::vector<ItemId> skipped;

    for (ItemId i : order) {
      // Greedy rounds poll the cooperative-cancellation flag: the
      // marginal check below is a full Monte-Carlo estimate, so without
      // this a deadline could stall one whole estimate per remaining
      // item. A cancelled run just stops accepting blocks (result
      // discarded by the caller after it re-checks the flag).
      if (CancelRequested(params.imm.cancel)) break;
      const std::size_t bi = static_cast<std::size_t>(budgets[i]);
      CWM_CHECK(cursor + bi <= prima.seeds.size());
      Allocation candidate(config.num_items());
      for (std::size_t k = 0; k < bi; ++k) {
        candidate.Add(prima.seeds[cursor + k], i);
      }
      bool accept = true;
      if (options.marginal_check) {
        // Line 8: commit only if the block adds positive marginal welfare
        // on top of everything allocated so far (including S_P). Checks
        // are inherently sequential (each base depends on the previous
        // accept), so the batch is a single candidate — but routing it
        // through the batch API shares the estimator's world-snapshot
        // pool across all of this run's checks.
        const Allocation base = Allocation::Union(result, sp_or_empty);
        accept =
            estimator.MarginalWelfareBatch(base, {&candidate, 1})[0] > 0.0;
      }
      if (accept) {
        result = Allocation::Union(result, candidate);
        cursor += bi;  // consume these seeds
      } else {
        skipped.push_back(i);
      }
    }

    // Lines 14-18: append the skipped items (arbitrary order — we reuse
    // the utility order) so every budget is exhausted. Cheap (no
    // estimator calls), so it runs even for cancelled runs — the result
    // keeps its structural invariants either way.
    for (ItemId i : skipped) {
      const std::size_t bi = static_cast<std::size_t>(budgets[i]);
      CWM_CHECK(cursor + bi <= prima.seeds.size());
      for (std::size_t k = 0; k < bi; ++k) {
        result.Add(prima.seeds[cursor + k], i);
      }
      cursor += bi;
    }
    out.push_back(std::move(result));
  }
  return out;
}

namespace {

class SeqGrdAllocator final : public Allocator {
 public:
  explicit SeqGrdAllocator(bool marginal_check)
      : marginal_check_(marginal_check) {}

  AlgoKind Kind() const override {
    return marginal_check_ ? AlgoKind::kSeqGrd : AlgoKind::kSeqGrdNm;
  }
  AllocatorCapabilities Capabilities() const override { return {}; }

  Status Allocate(const AllocateRequest& request,
                  AllocateResult* result) const override {
    if (Status cancelled = CheckCancelled(request); !cancelled.ok()) {
      return cancelled;
    }
    result->allocation =
        SeqGrd(*request.graph, *request.config, FixedOf(request),
               request.items, request.budgets, request.params,
               {.marginal_check = marginal_check_}, &result->diagnostics);
    return Status::OK();
  }

 private:
  bool marginal_check_;
};

}  // namespace

void RegisterSeqGrdAllocators(AllocatorRegistry& registry) {
  registry.Register(std::make_unique<SeqGrdAllocator>(true));
  registry.Register(std::make_unique<SeqGrdAllocator>(false));
}

}  // namespace cwm
