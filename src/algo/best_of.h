// BestOf combiner (§5.2): run SeqGRD and MaxGRD, return the allocation
// with the higher estimated welfare. With S_P = ∅ this achieves a
// max{umin/umax, 1/m}(1 - 1/e - eps)-approximation (Theorems 3 + 4).
#ifndef CWM_ALGO_BEST_OF_H_
#define CWM_ALGO_BEST_OF_H_

#include <vector>

#include "algo/params.h"
#include "graph/graph.h"
#include "model/allocation.h"
#include "model/utility.h"

namespace cwm {

/// Runs SeqGRD and MaxGRD and returns the better of the two allocations
/// (by Monte-Carlo welfare on top of `sp`). `chosen`, if non-null, is set
/// to "SeqGRD" or "MaxGRD".
Allocation BestOfSeqMax(const Graph& graph, const UtilityConfig& config,
                        const Allocation& sp,
                        const std::vector<ItemId>& items,
                        const BudgetVector& budgets, const AlgoParams& params,
                        const char** chosen = nullptr);

class AllocatorRegistry;
/// Registers the BestOf adapter (api/registry.h).
void RegisterBestOfAllocator(AllocatorRegistry& registry);

}  // namespace cwm

#endif  // CWM_ALGO_BEST_OF_H_
