#include "algo/max_grd.h"

#include <algorithm>
#include <memory>

#include "api/registry.h"
#include "rrset/prima_plus.h"
#include "simulate/estimator.h"

namespace cwm {

Allocation MaxGrd(const Graph& graph, const UtilityConfig& config,
                  const Allocation& sp, const std::vector<ItemId>& items,
                  const BudgetVector& budgets, const AlgoParams& params,
                  AlgoDiagnostics* diagnostics) {
  CWM_CHECK(!items.empty());
  CWM_CHECK(budgets.size() == static_cast<std::size_t>(config.num_items()));
  const Allocation sp_or_empty =
      sp.num_items() == 0 ? Allocation(config.num_items()) : sp;

  int max_b = 0;
  std::vector<int> levels;
  for (ItemId i : items) {
    CWM_CHECK(budgets[i] >= 1);
    max_b = std::max(max_b, budgets[i]);
    levels.push_back(budgets[i]);
  }

  // Line 1: PRIMA+ seed set of size b = max budget; prefix preservation
  // makes every first-b_i block near-optimal for its own budget.
  const ImmResult prima = PrimaPlus(graph, sp_or_empty.SeedNodes(), levels,
                                    max_b, params.imm);
  if (diagnostics != nullptr) {
    diagnostics->rr_count = prima.rr_count;
    diagnostics->internal_estimate = prima.coverage_estimate;
  }

  // Line 3: pick the item whose prefix allocation yields the best marginal
  // welfare. With S_P = ∅ this is E[U+(i)] * sigma(S_i) (single-item
  // allocations diffuse independently), estimated by Monte Carlo for
  // consistency with S_P != ∅ runs. All candidates are scored in one
  // batched pass, so every possible world is materialized once for the
  // whole argmax instead of once per item.
  WelfareEstimator estimator(graph, config, params.estimator);
  std::vector<Allocation> candidates;
  candidates.reserve(items.size());
  for (ItemId i : items) {
    Allocation candidate(config.num_items());
    const std::size_t bi = static_cast<std::size_t>(budgets[i]);
    for (std::size_t k = 0; k < bi; ++k) candidate.Add(prima.seeds[k], i);
    candidates.push_back(std::move(candidate));
  }
  std::vector<double> welfare;
  if (sp_or_empty.Empty()) {
    welfare.reserve(candidates.size());
    for (const WelfareStats& stats : estimator.StatsBatch(candidates)) {
      welfare.push_back(stats.welfare);
    }
  } else {
    welfare = estimator.MarginalWelfareBatch(sp_or_empty, candidates);
  }
  double best_welfare = -1.0;
  Allocation best(config.num_items());
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    if (welfare[j] > best_welfare) {
      best_welfare = welfare[j];
      best = candidates[j];
    }
  }
  return best;
}

namespace {

class MaxGrdAllocator final : public Allocator {
 public:
  AlgoKind Kind() const override { return AlgoKind::kMaxGrd; }
  AllocatorCapabilities Capabilities() const override { return {}; }

  Status Allocate(const AllocateRequest& request,
                  AllocateResult* result) const override {
    if (Status cancelled = CheckCancelled(request); !cancelled.ok()) {
      return cancelled;
    }
    result->allocation =
        MaxGrd(*request.graph, *request.config, FixedOf(request),
               request.items, request.budgets, request.params,
               &result->diagnostics);
    return Status::OK();
  }
};

}  // namespace

void RegisterMaxGrdAllocator(AllocatorRegistry& registry) {
  registry.Register(std::make_unique<MaxGrdAllocator>());
}

}  // namespace cwm
