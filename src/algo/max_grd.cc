#include "algo/max_grd.h"

#include <algorithm>

#include "rrset/prima_plus.h"
#include "simulate/estimator.h"

namespace cwm {

Allocation MaxGrd(const Graph& graph, const UtilityConfig& config,
                  const Allocation& sp, const std::vector<ItemId>& items,
                  const BudgetVector& budgets, const AlgoParams& params,
                  AlgoDiagnostics* diagnostics) {
  CWM_CHECK(!items.empty());
  CWM_CHECK(budgets.size() == static_cast<std::size_t>(config.num_items()));
  const Allocation sp_or_empty =
      sp.num_items() == 0 ? Allocation(config.num_items()) : sp;

  int max_b = 0;
  std::vector<int> levels;
  for (ItemId i : items) {
    CWM_CHECK(budgets[i] >= 1);
    max_b = std::max(max_b, budgets[i]);
    levels.push_back(budgets[i]);
  }

  // Line 1: PRIMA+ seed set of size b = max budget; prefix preservation
  // makes every first-b_i block near-optimal for its own budget.
  const ImmResult prima = PrimaPlus(graph, sp_or_empty.SeedNodes(), levels,
                                    max_b, params.imm);
  if (diagnostics != nullptr) {
    diagnostics->rr_count = prima.rr_count;
    diagnostics->internal_estimate = prima.coverage_estimate;
  }

  // Line 3: pick the item whose prefix allocation yields the best marginal
  // welfare. With S_P = ∅ this is E[U+(i)] * sigma(S_i) (single-item
  // allocations diffuse independently), estimated by Monte Carlo for
  // consistency with S_P != ∅ runs.
  WelfareEstimator estimator(graph, config, params.estimator);
  double best_welfare = -1.0;
  Allocation best(config.num_items());
  for (ItemId i : items) {
    Allocation candidate(config.num_items());
    const std::size_t bi = static_cast<std::size_t>(budgets[i]);
    for (std::size_t k = 0; k < bi; ++k) candidate.Add(prima.seeds[k], i);
    const double welfare =
        sp_or_empty.Empty()
            ? estimator.Welfare(candidate)
            : estimator.MarginalWelfare(sp_or_empty, candidate);
    if (welfare > best_welfare) {
      best_welfare = welfare;
      best = candidate;
    }
  }
  return best;
}

}  // namespace cwm
