#include "algo/max_grd.h"

#include <algorithm>
#include <memory>

#include "api/registry.h"
#include "rrset/prima_plus.h"
#include "simulate/estimator.h"

namespace cwm {

Allocation MaxGrd(const Graph& graph, const UtilityConfig& config,
                  const Allocation& sp, const std::vector<ItemId>& items,
                  const BudgetVector& budgets, const AlgoParams& params,
                  AlgoDiagnostics* diagnostics) {
  // The batched form with one point runs exactly Algorithm 2 — the level
  // set, ranking, and scoring sweep all degenerate to the single-point
  // ones — so delegating keeps the two entry points bit-identical by
  // construction.
  return std::move(MaxGrdBatch(graph, config, sp, items,
                               std::span<const BudgetVector>(&budgets, 1),
                               params, diagnostics)[0]);
}

std::vector<Allocation> MaxGrdBatch(
    const Graph& graph, const UtilityConfig& config, const Allocation& sp,
    const std::vector<ItemId>& items,
    std::span<const BudgetVector> budget_points, const AlgoParams& params,
    AlgoDiagnostics* diagnostics) {
  CWM_CHECK(!items.empty());
  CWM_CHECK(!budget_points.empty());
  const Allocation sp_or_empty =
      sp.num_items() == 0 ? Allocation(config.num_items()) : sp;

  int max_b = 0;
  std::vector<int> levels;
  for (const BudgetVector& budgets : budget_points) {
    CWM_CHECK(budgets.size() ==
              static_cast<std::size_t>(config.num_items()));
    for (ItemId i : items) {
      CWM_CHECK(budgets[i] >= 1);
      max_b = std::max(max_b, budgets[i]);
      levels.push_back(budgets[i]);
    }
  }

  // Line 1: one PRIMA+ seed set of size b = the largest budget anywhere
  // in the batch. Prefix preservation holds at the union of every
  // point's levels, so each (point, item) prefix is near-optimal for its
  // own budget — this is what lets a whole budget sweep share one
  // ranking instead of resampling per point.
  const ImmResult prima = PrimaPlus(graph, sp_or_empty.SeedNodes(), levels,
                                    max_b, params.imm);
  if (diagnostics != nullptr) {
    diagnostics->rr_count = prima.rr_count;
    diagnostics->internal_estimate = prima.coverage_estimate;
  }

  // Line 3: pick, per point, the item whose prefix allocation yields the
  // best marginal welfare. With S_P = ∅ this is E[U+(i)] * sigma(S_i)
  // (single-item allocations diffuse independently), estimated by Monte
  // Carlo for consistency with S_P != ∅ runs. All (point, item)
  // candidates are scored in one batched pass, so every possible world
  // is materialized once for the entire sweep instead of once per item
  // per point.
  WelfareEstimator estimator(graph, config, params.estimator);
  std::vector<Allocation> candidates;
  candidates.reserve(budget_points.size() * items.size());
  for (const BudgetVector& budgets : budget_points) {
    for (ItemId i : items) {
      Allocation candidate(config.num_items());
      const std::size_t bi = static_cast<std::size_t>(budgets[i]);
      for (std::size_t k = 0; k < bi; ++k) candidate.Add(prima.seeds[k], i);
      candidates.push_back(std::move(candidate));
    }
  }
  std::vector<double> welfare;
  if (sp_or_empty.Empty()) {
    welfare.reserve(candidates.size());
    for (const WelfareStats& stats : estimator.StatsBatch(candidates)) {
      welfare.push_back(stats.welfare);
    }
  } else {
    welfare = estimator.MarginalWelfareBatch(sp_or_empty, candidates);
  }

  std::vector<Allocation> out;
  out.reserve(budget_points.size());
  std::size_t j = 0;
  for (std::size_t p = 0; p < budget_points.size(); ++p) {
    double best_welfare = -1.0;
    Allocation best(config.num_items());
    for (std::size_t k = 0; k < items.size(); ++k, ++j) {
      if (welfare[j] > best_welfare) {
        best_welfare = welfare[j];
        best = candidates[j];
      }
    }
    out.push_back(std::move(best));
  }
  return out;
}

namespace {

class MaxGrdAllocator final : public Allocator {
 public:
  AlgoKind Kind() const override { return AlgoKind::kMaxGrd; }
  AllocatorCapabilities Capabilities() const override { return {}; }

  Status Allocate(const AllocateRequest& request,
                  AllocateResult* result) const override {
    if (Status cancelled = CheckCancelled(request); !cancelled.ok()) {
      return cancelled;
    }
    result->allocation =
        MaxGrd(*request.graph, *request.config, FixedOf(request),
               request.items, request.budgets, request.params,
               &result->diagnostics);
    return Status::OK();
  }
};

}  // namespace

void RegisterMaxGrdAllocator(AllocatorRegistry& registry) {
  registry.Register(std::make_unique<MaxGrdAllocator>());
}

}  // namespace cwm
