// MaxGRD (§5.2, Algorithm 2).
//
// Selects a PRIMA+ seed set of size b = max item budget, then — for every
// item — evaluates the marginal welfare of giving that item the first b_i
// seeds, and returns the single best (item, prefix) allocation.
//
// Guarantee (Theorem 4, requires S_P = ∅):
//   rho(S_Max) >= (1/m)(1 - 1/e - eps) * rho(S_A) for any feasible S_A,
// relying on PRIMA+'s prefix preservation (Definition 1) and the
// subadditivity of welfare across items under competition (Lemma 3).
// The algorithm itself also runs with S_P != ∅ (no guarantee then).
#ifndef CWM_ALGO_MAX_GRD_H_
#define CWM_ALGO_MAX_GRD_H_

#include <span>
#include <vector>

#include "algo/params.h"
#include "graph/graph.h"
#include "model/allocation.h"
#include "model/utility.h"

namespace cwm {

/// Runs MaxGRD; same calling convention as SeqGrd. The returned allocation
/// assigns exactly one item (the argmax of line 3).
Allocation MaxGrd(const Graph& graph, const UtilityConfig& config,
                  const Allocation& sp, const std::vector<ItemId>& items,
                  const BudgetVector& budgets, const AlgoParams& params,
                  AlgoDiagnostics* diagnostics = nullptr);

/// Runs MaxGRD at several budget points of one cell in a single pass: one
/// PRIMA+ ranking over the union of every point's budget levels (prefix
/// preservation keeps each point's prefix near-optimal), and one batched
/// welfare sweep scoring all (point, item) candidates together. A batch
/// of one is bit-identical to MaxGrd; larger batches share the ranking,
/// so point p's allocation may differ from a standalone MaxGrd run at p
/// (same approximation guarantee, different sampled ranking).
std::vector<Allocation> MaxGrdBatch(
    const Graph& graph, const UtilityConfig& config, const Allocation& sp,
    const std::vector<ItemId>& items,
    std::span<const BudgetVector> budget_points, const AlgoParams& params,
    AlgoDiagnostics* diagnostics = nullptr);

class AllocatorRegistry;
/// Registers the MaxGRD adapter (api/registry.h).
void RegisterMaxGrdAllocator(AllocatorRegistry& registry);

}  // namespace cwm

#endif  // CWM_ALGO_MAX_GRD_H_
