// Unified metrics: named counters, gauges, and fixed-bucket histograms
// behind one process-wide registry, so there is one way to count things
// across layers (the `cache.*`, `pool.*`, `simulate.*`, `api.*`,
// `scenario.*` families — see the README's Observability section).
//
// Hot paths cache the instrument reference once and then touch a single
// relaxed atomic:
//
//   static Counter& hits =
//       MetricsRegistry::Global().GetCounter("cache.graph_hits");
//   hits.Add(1);
//
// Instruments are create-on-first-use and live for the process: Get*
// never invalidates a previously returned reference, and ResetForTest()
// zeroes values without destroying instruments, so cached references in
// function-local statics stay valid across tests.
//
// Snapshots (MetricsRegistry::Snapshot) are name-sorted value copies —
// the input to MetricsToJson (`cwm_run --metrics`) and to the stderr
// one-liners rendered through MetricsLineFormatter.
#ifndef CWM_OBS_METRICS_H_
#define CWM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cwm {

/// Monotonically increasing relaxed-atomic counter.
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. resident bytes).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations v <= bounds[i]
/// (first matching bound; inclusive upper edges), plus one overflow
/// bucket for v > bounds.back(). Bounds are fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 (the overflow bucket).
  std::size_t num_buckets() const { return bounds_.size() + 1; }
  uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  uint64_t total_count() const {
    return total_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  const std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

/// Name-sorted value copy of every registered instrument.
struct MetricsSnapshot {
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<uint64_t> counts;  ///< bounds.size() + 1 entries
    uint64_t total_count = 0;
    double sum = 0.0;
  };

  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramValue> histograms;
};

/// The process-wide instrument registry. Thread-safe; instruments are
/// never destroyed, so returned references are stable for the process.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// First registration fixes the bucket bounds; later calls under the
  /// same name must pass identical bounds (aborts otherwise — two sites
  /// disagreeing on buckets is a naming bug).
  Histogram& GetHistogram(std::string_view name,
                          std::span<const double> bounds);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every instrument's value. References stay valid — tests
  /// reset between cases while hot paths keep cached instruments.
  void ResetForTest();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Records one degraded-mode event: bumps the named counter (e.g.
/// "store.degraded.heap_loads", "cache.quarantined") and the shared
/// "store.degraded.events" total the serve layer watches to mark
/// responses `degraded`. Degradations are rare by definition, so the
/// name lookup per call is fine.
void NoteDegradedEvent(const char* counter_name);

/// The shared "store.degraded.events" counter (every NoteDegradedEvent
/// bumps it); cwm_serve snapshots it around request execution.
Counter& DegradedEventsCounter();

/// Renders `snapshot` as one JSON object:
///   {"counters":{...},"gauges":{...},
///    "histograms":{"name":{"count":..,"sum":..,
///                          "buckets":[{"le":0.01,"count":..},...,
///                                     {"le":"inf","count":..}]}}}
std::string MetricsToJson(const MetricsSnapshot& snapshot);

/// Builder for the `key=value key=value; key=value` stderr telemetry
/// lines (cache stats, pool stats, phase totals): the one formatter every
/// hand-printed stats block renders through, so the lines CI greps keep
/// one canonical shape.
class MetricsLineFormatter {
 public:
  /// Appends "key=<integer>".
  MetricsLineFormatter& Count(const char* key, uint64_t value);
  /// Appends "key=<value formatted %.*f><suffix>", e.g. resident=12.3MB.
  MetricsLineFormatter& Fixed(const char* key, double value, int precision,
                              const char* suffix = "");
  /// Overrides the next separator (default " "), e.g. "; " between the
  /// graphs and rr groups of the cache line.
  MetricsLineFormatter& Sep(const char* separator);

  const std::string& str() const { return line_; }

 private:
  void BeforeField();

  std::string line_;
  const char* next_sep_ = nullptr;
};

}  // namespace cwm

#endif  // CWM_OBS_METRICS_H_
