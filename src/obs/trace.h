// In-process tracing: RAII spans and instant events, recorded into
// per-thread buffers and flushed as Chrome trace-event JSON (loadable in
// chrome://tracing and https://ui.perfetto.dev).
//
// Usage at an instrumentation site:
//
//   CWM_TRACE_SPAN("rr.sample_era", {{"count", fresh}, {"seed", seed_}});
//   CWM_TRACE_INSTANT("api.stage", {{"stage", label}});
//
// Span and argument names follow the `<layer>.<verb>` convention
// (rr.sample_era, store.build_graph, simulate.stats_batch, api.allocate,
// scenario.task — see the README's Observability section).
//
// Cost model. Tracing is off unless a TraceRecorder is installed
// (TraceRecorder::Install, normally driven by `cwm_run --trace`). The
// disabled path is a single relaxed atomic load and a branch — no
// allocation, no clock read, no argument formatting — so instrumentation
// can live in hot loops. The enabled path appends a fixed-size event
// (two steady-clock reads per span) to a per-thread buffer without
// locking; buffers are merged into timestamp order only at flush.
//
// Constraints that make the cheap path possible:
//  * Event and argument names must be string literals or otherwise
//    outlive the recorder's flush (AlgoName(), Allocator::Name() and
//    other static-duration strings qualify). Events store the pointers.
//  * Arguments are a tagged union of cheap scalar types; at most
//    kMaxTraceArgs per event (extras are dropped).
//  * Per-thread buffers are bounded (TraceRecorderOptions); events past
//    the cap are counted in events_dropped(), never reallocated into
//    unbounded memory.
//
// Tracing is observation only: installing a recorder never changes any
// result bytes, at any thread count (enforced by tests/obs_test.cc and
// the golden-sweep gate).
#ifndef CWM_OBS_TRACE_H_
#define CWM_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

#include "support/timer.h"

namespace cwm {

/// One key=value event attribute. Cheap scalar kinds only, so building an
/// argument list never allocates; string values must outlive the flush.
struct TraceArg {
  enum class Kind : uint8_t { kNone, kInt, kUint, kDouble, kBool, kString };

  const char* key;
  Kind kind;
  union {
    int64_t int_value;
    uint64_t uint_value;
    double double_value;
    bool bool_value;
    const char* string_value;
  };

  TraceArg() : key(nullptr), kind(Kind::kNone), int_value(0) {}
  TraceArg(const char* k, bool v)
      : key(k), kind(Kind::kBool), bool_value(v) {}
  TraceArg(const char* k, int v) : key(k), kind(Kind::kInt), int_value(v) {}
  TraceArg(const char* k, long v) : key(k), kind(Kind::kInt), int_value(v) {}
  TraceArg(const char* k, long long v)
      : key(k), kind(Kind::kInt), int_value(v) {}
  TraceArg(const char* k, unsigned v)
      : key(k), kind(Kind::kUint), uint_value(v) {}
  TraceArg(const char* k, unsigned long v)
      : key(k), kind(Kind::kUint), uint_value(v) {}
  TraceArg(const char* k, unsigned long long v)
      : key(k), kind(Kind::kUint), uint_value(v) {}
  TraceArg(const char* k, double v)
      : key(k), kind(Kind::kDouble), double_value(v) {}
  TraceArg(const char* k, const char* v)
      : key(k), kind(Kind::kString), string_value(v) {}
};

inline constexpr std::size_t kMaxTraceArgs = 4;

/// One recorded event. 'X' = complete span (ts + dur), 'i' = instant.
/// Plain data; the unused tail of `args` is never read.
struct TraceEvent {
  const char* name;
  char ph;
  uint32_t tid;
  uint64_t ts_ns;
  uint64_t dur_ns;
  uint32_t num_args;
  TraceArg args[kMaxTraceArgs];
};

/// Bounds on a recorder's memory.
struct TraceRecorderOptions {
  /// Cap per thread; events past it increment events_dropped(). The
  /// default bounds a pathological run at ~100 MB/thread.
  std::size_t max_events_per_thread = 1u << 20;
};

/// Collects events from all threads while installed. At most one
/// recorder is installed at a time; flush (snapshot_events /
/// WriteChromeJson) only after the traced work has completed — recording
/// and flushing are not synchronized against each other.
class TraceRecorder {
 public:
  explicit TraceRecorder(TraceRecorderOptions options = {});
  ~TraceRecorder();  ///< uninstalls itself if still installed

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Makes this the process-wide recorder. Aborts if another recorder is
  /// already installed (nested tracing is a bug, not a feature).
  void Install();

  /// Stops recording. Buffered events remain available for flushing.
  void Uninstall();

  /// The installed recorder, or nullptr. This is the whole disabled-path
  /// cost: one relaxed load.
  static TraceRecorder* Current() {
    return current_.load(std::memory_order_relaxed);
  }

  /// Appends an event to the calling thread's buffer (called by TraceSpan
  /// and TraceInstant, not by instrumentation sites directly).
  void Record(const TraceEvent& event);

  /// All recorded events merged across threads, in timestamp order.
  std::vector<TraceEvent> snapshot_events() const;

  /// Events discarded because a thread hit max_events_per_thread.
  uint64_t events_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Writes the Chrome trace-event JSON object ({"traceEvents":[...]}).
  void WriteChromeJson(std::ostream& out) const;

 private:
  struct ThreadBuffer {
    uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  ThreadBuffer* RegisterThread();

  static std::atomic<TraceRecorder*> current_;

  const TraceRecorderOptions options_;
  /// Process-unique id keying the thread-local buffer cache, so a thread
  /// that outlives one recorder re-registers with the next instead of
  /// writing into freed memory.
  const uint64_t generation_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<uint64_t> dropped_{0};
};

/// RAII complete-span ('X') scope. The constructor snapshots the start
/// time and arguments; the destructor records the event. When no
/// recorder is installed both are a pointer test.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     std::initializer_list<TraceArg> args = {})
      : recorder_(TraceRecorder::Current()) {
    if (recorder_ == nullptr) return;
    event_.name = name;
    event_.ph = 'X';
    event_.dur_ns = 0;
    event_.num_args = 0;
    for (const TraceArg& arg : args) {
      if (event_.num_args == kMaxTraceArgs) break;
      event_.args[event_.num_args++] = arg;
    }
    event_.ts_ns = Timer::NowNanos();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (recorder_ == nullptr) return;
    // A recorder uninstalled mid-span may already be flushing: drop the
    // event rather than race the merge.
    if (TraceRecorder::Current() != recorder_) return;
    event_.dur_ns = Timer::NowNanos() - event_.ts_ns;
    recorder_->Record(event_);
  }

 private:
  TraceRecorder* const recorder_;
  TraceEvent event_;  // only initialized when recorder_ != nullptr
};

/// Records an instant ('i') event; no-op without an installed recorder.
void TraceInstant(const char* name, std::initializer_list<TraceArg> args = {});

// The macros are the instrumentation surface: a span scoped to the
// enclosing block, and a point event. Both forward verbatim, so argument
// lists with embedded commas ({{"k", v}, ...}) pass through unchanged.
#define CWM_TRACE_CONCAT_(a, b) a##b
#define CWM_TRACE_CONCAT(a, b) CWM_TRACE_CONCAT_(a, b)
#define CWM_TRACE_SPAN(...) \
  ::cwm::TraceSpan CWM_TRACE_CONCAT(cwm_trace_span_, __LINE__)(__VA_ARGS__)
#define CWM_TRACE_INSTANT(...) ::cwm::TraceInstant(__VA_ARGS__)

}  // namespace cwm

#endif  // CWM_OBS_TRACE_H_
