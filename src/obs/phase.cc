#include "obs/phase.h"

#include "support/timer.h"

namespace cwm {

namespace {

thread_local PhaseCollector* t_collector = nullptr;
/// Outermost-scope-wins guard: set while any ScopedPhaseTimer is open on
/// this thread, so nested entry points don't double-count.
thread_local bool t_phase_open = false;

}  // namespace

PhaseCollector::PhaseCollector() : previous_(t_collector) {
  t_collector = this;
}

PhaseCollector::~PhaseCollector() { t_collector = previous_; }

bool PhaseCollector::Active() { return t_collector != nullptr; }

void PhaseCollector::AddSeconds(Phase phase, double s) {
  if (t_collector != nullptr) t_collector->times_.Add(phase, s);
}

ScopedPhaseTimer::ScopedPhaseTimer(Phase phase)
    : phase_(phase),
      active_(t_collector != nullptr && !t_phase_open),
      start_ns_(0) {
  if (!active_) return;
  t_phase_open = true;
  start_ns_ = Timer::NowNanos();
}

ScopedPhaseTimer::~ScopedPhaseTimer() {
  if (!active_) return;
  PhaseCollector::AddSeconds(
      phase_, static_cast<double>(Timer::NowNanos() - start_ns_) / 1e9);
  t_phase_open = false;
}

}  // namespace cwm
