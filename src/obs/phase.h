// Per-phase wall-time attribution for one allocation run: how long the
// task spent sampling RR sets, selecting seed nodes, and estimating
// welfare — the phase structure of the paper's runtime analysis (IMM /
// PRIMA+ sampling vs. greedy selection vs. Monte-Carlo evaluation).
//
// Engine::Allocate installs a PhaseCollector on the calling thread for
// the duration of the run; the instrumented entry points
// (RrPipeline::ExtendTo, SelectMaxCoverage, the WelfareEstimator public
// methods) each open a ScopedPhaseTimer. Those calls parallelize
// internally but block on the task's thread, so thread-local attribution
// sees every phase exactly once per call. Nested estimator entry points
// (Spread -> MarginalSpread, BalancedExposure -> MarginalBalancedExposure)
// are handled by an outermost-scope-wins reentrancy guard, so nesting
// never double-counts.
//
// Without an installed collector a ScopedPhaseTimer is two thread-local
// reads and no clock access — cheap enough for every entry point,
// including direct (non-engine) estimator users.
#ifndef CWM_OBS_PHASE_H_
#define CWM_OBS_PHASE_H_

#include <cstdint>

namespace cwm {

/// The attributed phases of one allocation run.
enum class Phase : int {
  kSample = 0,    ///< RR-set sampling (rrset/rr_pipeline)
  kSelect = 1,    ///< greedy max-coverage node selection
  kEstimate = 2,  ///< Monte-Carlo welfare estimation (simulate/)
};

inline constexpr int kNumPhases = 3;

/// Accumulated seconds per phase; part of AllocateResult and TaskResult.
struct PhaseTimes {
  double seconds[kNumPhases] = {0.0, 0.0, 0.0};

  double sample_s() const { return seconds[0]; }
  double select_s() const { return seconds[1]; }
  double estimate_s() const { return seconds[2]; }

  void Add(Phase phase, double s) { seconds[static_cast<int>(phase)] += s; }
};

/// Collects phase times from the constructing thread while alive.
/// Collectors nest (an allocator running inside a traced harness): the
/// innermost collector on the thread receives the time.
class PhaseCollector {
 public:
  PhaseCollector();
  ~PhaseCollector();

  PhaseCollector(const PhaseCollector&) = delete;
  PhaseCollector& operator=(const PhaseCollector&) = delete;

  const PhaseTimes& times() const { return times_; }

  /// True when a collector is installed on the calling thread.
  static bool Active();

 private:
  friend class ScopedPhaseTimer;
  static void AddSeconds(Phase phase, double s);

  PhaseTimes times_;
  PhaseCollector* previous_;
};

/// RAII phase scope. Only the outermost open scope on a thread times —
/// a nested scope (of any phase) is a no-op, so delegating entry points
/// never double-count. No-op when no PhaseCollector is installed.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(Phase phase);
  ~ScopedPhaseTimer();

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  const Phase phase_;
  bool active_;
  uint64_t start_ns_;
};

}  // namespace cwm

#endif  // CWM_OBS_PHASE_H_
