// Cooperative-cancellation polling, shared by every layer.
//
// A cancellation flag is a caller-owned std::atomic<bool> that flips to
// true exactly once (a deadline firing, a client disconnecting). Code on
// a cancellable path polls it at bounded intervals — per RR-sampling
// chunk, per greedy/CELF round — so a request stops within milliseconds
// of the flag, not at the next phase boundary. Polling never changes
// results: a run that is never cancelled is bit-identical to one whose
// request carried no flag at all.
//
// Every poll increments the process-wide `api.cancel_checks` counter
// (obs/metrics.h), which is why this helper lives in the obs layer: the
// counter is the observable contract tests and `--metrics` consumers use
// to verify that fine-grained polling actually happens.
#ifndef CWM_OBS_CANCEL_H_
#define CWM_OBS_CANCEL_H_

#include <atomic>

#include "obs/metrics.h"

namespace cwm {

/// Polls a cooperative-cancellation flag (null = never cancelled) and
/// counts the check. memory_order_relaxed: the flag carries no data, only
/// the request to stop.
inline bool CancelRequested(const std::atomic<bool>* cancel) {
  static Counter& checks =
      MetricsRegistry::Global().GetCounter("api.cancel_checks");
  checks.Add(1);
  return cancel != nullptr && cancel->load(std::memory_order_relaxed);
}

}  // namespace cwm

#endif  // CWM_OBS_CANCEL_H_
