#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "support/check.h"

namespace cwm {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  CWM_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must be ascending");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double value) {
  // First bound >= value; inclusive upper edges, overflow past the back.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::span<const double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::vector<double>(
                          bounds.begin(), bounds.end())))
             .first;
  } else {
    CWM_CHECK_MSG(it->second->bounds().size() == bounds.size() &&
                      std::equal(bounds.begin(), bounds.end(),
                                 it->second->bounds().begin()),
                  "histogram re-registered with different bounds");
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramValue value;
    value.name = name;
    value.bounds = histogram->bounds();
    value.counts.resize(histogram->num_buckets());
    for (std::size_t i = 0; i < value.counts.size(); ++i) {
      value.counts[i] = histogram->bucket_count(i);
    }
    value.total_count = histogram->total_count();
    value.sum = histogram->sum();
    snapshot.histograms.push_back(std::move(value));
  }
  return snapshot;
}

Counter& DegradedEventsCounter() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("store.degraded.events");
  return counter;
}

void NoteDegradedEvent(const char* counter_name) {
  MetricsRegistry::Global().GetCounter(counter_name).Add(1);
  DegradedEventsCounter().Add(1);
}

void MetricsRegistry::ResetForTest() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

namespace {

void AppendQuoted(std::string* out, const std::string& s) {
  *out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
  *out += '"';
}

void AppendDouble(std::string* out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

}  // namespace

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    AppendQuoted(&out, name);
    out += ":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    AppendQuoted(&out, name);
    out += ":";
    AppendDouble(&out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const MetricsSnapshot::HistogramValue& histogram :
       snapshot.histograms) {
    if (!first) out += ",";
    first = false;
    AppendQuoted(&out, histogram.name);
    out += ":{\"count\":" + std::to_string(histogram.total_count) +
           ",\"sum\":";
    AppendDouble(&out, histogram.sum);
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < histogram.counts.size(); ++i) {
      if (i > 0) out += ",";
      out += "{\"le\":";
      if (i < histogram.bounds.size()) {
        AppendDouble(&out, histogram.bounds[i]);
      } else {
        out += "\"inf\"";
      }
      out += ",\"count\":" + std::to_string(histogram.counts[i]) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void MetricsLineFormatter::BeforeField() {
  if (!line_.empty()) line_ += next_sep_ != nullptr ? next_sep_ : " ";
  next_sep_ = nullptr;
}

MetricsLineFormatter& MetricsLineFormatter::Count(const char* key,
                                                 uint64_t value) {
  BeforeField();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  line_ += key;
  line_ += '=';
  line_ += buf;
  return *this;
}

MetricsLineFormatter& MetricsLineFormatter::Fixed(const char* key,
                                                 double value, int precision,
                                                 const char* suffix) {
  BeforeField();
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  line_ += key;
  line_ += '=';
  line_ += buf;
  line_ += suffix;
  return *this;
}

MetricsLineFormatter& MetricsLineFormatter::Sep(const char* separator) {
  next_sep_ = separator;
  return *this;
}

}  // namespace cwm
