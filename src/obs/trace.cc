#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <string>

#include "support/check.h"

namespace cwm {

namespace {

/// JSON string escaping for event/arg names. Names are expected to be
/// plain identifiers, but a stray quote must not corrupt the file.
void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendArgValue(std::string* out, const TraceArg& arg) {
  char buf[40];
  switch (arg.kind) {
    case TraceArg::Kind::kNone:
      *out += "null";
      return;
    case TraceArg::Kind::kInt:
      std::snprintf(buf, sizeof(buf), "%" PRId64, arg.int_value);
      *out += buf;
      return;
    case TraceArg::Kind::kUint:
      std::snprintf(buf, sizeof(buf), "%" PRIu64, arg.uint_value);
      *out += buf;
      return;
    case TraceArg::Kind::kDouble:
      std::snprintf(buf, sizeof(buf), "%.17g", arg.double_value);
      *out += buf;
      return;
    case TraceArg::Kind::kBool:
      *out += arg.bool_value ? "true" : "false";
      return;
    case TraceArg::Kind::kString:
      *out += '"';
      AppendJsonEscaped(out, arg.string_value != nullptr ? arg.string_value
                                                         : "");
      *out += '"';
      return;
  }
}

}  // namespace

std::atomic<TraceRecorder*> TraceRecorder::current_{nullptr};

namespace {

uint64_t NextGeneration() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

TraceRecorder::TraceRecorder(TraceRecorderOptions options)
    : options_(options), generation_(NextGeneration()) {}

TraceRecorder::~TraceRecorder() {
  TraceRecorder* expected = this;
  current_.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_acq_rel);
}

void TraceRecorder::Install() {
  TraceRecorder* expected = nullptr;
  const bool installed = current_.compare_exchange_strong(
      expected, this, std::memory_order_acq_rel);
  CWM_CHECK_MSG(installed || expected == this,
                "another TraceRecorder is already installed");
}

void TraceRecorder::Uninstall() {
  TraceRecorder* expected = this;
  current_.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_acq_rel);
}

TraceRecorder::ThreadBuffer* TraceRecorder::RegisterThread() {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<uint32_t>(buffers_.size() + 1);
  buffers_.push_back(std::move(buffer));
  return buffers_.back().get();
}

void TraceRecorder::Record(const TraceEvent& event) {
  // The (generation, buffer) pair caches this thread's registration: a
  // mismatch means this recorder has never seen this thread (or the
  // thread last recorded into a different recorder) and re-registers.
  thread_local uint64_t cached_generation = 0;
  thread_local ThreadBuffer* cached_buffer = nullptr;
  if (cached_generation != generation_) {
    cached_buffer = RegisterThread();
    cached_generation = generation_;
  }
  if (cached_buffer->events.size() >= options_.max_events_per_thread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  cached_buffer->events.push_back(event);
  cached_buffer->events.back().tid = cached_buffer->tid;
}

std::vector<TraceEvent> TraceRecorder::snapshot_events() const {
  std::vector<TraceEvent> merged;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const auto& buffer : buffers_) total += buffer->events.size();
    merged.reserve(total);
    for (const auto& buffer : buffers_) {
      merged.insert(merged.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return merged;
}

void TraceRecorder::WriteChromeJson(std::ostream& out) const {
  const std::vector<TraceEvent> events = snapshot_events();
  // Timestamps are steady-clock epoch-relative; rebase to the earliest
  // event so the viewer's time axis starts near zero.
  const uint64_t base_ns = events.empty() ? 0 : events.front().ts_ns;

  std::string line;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    line.clear();
    if (!first) line += ",";
    first = false;
    line += "\n{\"name\":\"";
    AppendJsonEscaped(&line, event.name != nullptr ? event.name : "");
    line += "\",\"cat\":\"cwm\",\"ph\":\"";
    line += event.ph;
    line += "\",\"pid\":1,\"tid\":";
    line += std::to_string(event.tid);
    // Chrome trace timestamps are microseconds (fractional allowed).
    char buf[48];
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f",
                  static_cast<double>(event.ts_ns - base_ns) / 1e3);
    line += buf;
    if (event.ph == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                    static_cast<double>(event.dur_ns) / 1e3);
      line += buf;
    } else if (event.ph == 'i') {
      line += ",\"s\":\"t\"";  // thread-scoped instant
    }
    if (event.num_args > 0) {
      line += ",\"args\":{";
      for (uint32_t a = 0; a < event.num_args; ++a) {
        if (a > 0) line += ",";
        line += '"';
        AppendJsonEscaped(&line,
                          event.args[a].key != nullptr ? event.args[a].key
                                                       : "");
        line += "\":";
        AppendArgValue(&line, event.args[a]);
      }
      line += "}";
    }
    line += "}";
    out << line;
  }
  out << "\n]";
  const uint64_t dropped = events_dropped();
  if (dropped > 0) {
    // Surfaced in the file itself, so a truncated trace is self-reporting.
    out << ",\"metadata\":{\"events_dropped\":" << dropped << "}";
  }
  out << "}\n";
}

void TraceInstant(const char* name, std::initializer_list<TraceArg> args) {
  TraceRecorder* recorder = TraceRecorder::Current();
  if (recorder == nullptr) return;
  TraceEvent event;
  event.name = name;
  event.ph = 'i';
  event.dur_ns = 0;
  event.num_args = 0;
  for (const TraceArg& arg : args) {
    if (event.num_args == kMaxTraceArgs) break;
    event.args[event.num_args++] = arg;
  }
  event.ts_ns = Timer::NowNanos();
  recorder->Record(event);
}

}  // namespace cwm
