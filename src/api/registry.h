// Registry of allocation algorithms, keyed by AlgoKind and display name.
//
// Each algorithm module (src/algo/*, src/baselines/*) implements its
// Allocator adapters next to the algorithm and exposes a
// Register*(AllocatorRegistry&) hook declared in its own header; the
// global registry seeds itself from every hook via
// RegisterBuiltinAllocators, so a module's allocators can never be
// dropped by static-library link order. The registry coverage test
// asserts every AlgoKind resolves — a new algorithm cannot silently miss
// registration.
#ifndef CWM_API_REGISTRY_H_
#define CWM_API_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/allocator.h"
#include "support/status.h"

namespace cwm {

/// An ordered, kind- and name-keyed collection of allocators.
class AllocatorRegistry {
 public:
  /// Adds an allocator; fails on null, duplicate kind, or duplicate name.
  Status Register(std::unique_ptr<Allocator> allocator);

  /// Lookup by kind / by AlgoName; nullptr when absent.
  const Allocator* Find(AlgoKind kind) const;
  const Allocator* Find(std::string_view name) const;

  /// Registered allocators, in registration order.
  std::vector<const Allocator*> All() const;

  /// Registered display names, in registration order (CLI error listings).
  std::vector<std::string> Names() const;

 private:
  std::vector<std::unique_ptr<Allocator>> allocators_;
};

/// Registers every built-in allocator (all 14 AlgoKind values) into
/// `registry`; exposed so tests can build isolated registries.
void RegisterBuiltinAllocators(AllocatorRegistry& registry);

/// The immutable global registry, built once (thread-safe) from the
/// built-in allocators.
const AllocatorRegistry& GlobalAllocatorRegistry();

}  // namespace cwm

#endif  // CWM_API_REGISTRY_H_
