#include "api/registry.h"

#include <utility>

#include "algo/best_of.h"
#include "algo/max_grd.h"
#include "algo/seq_grd.h"
#include "algo/sup_grd.h"
#include "baselines/balance_c.h"
#include "baselines/greedy_wm.h"
#include "baselines/heuristics.h"
#include "baselines/simple_alloc.h"
#include "baselines/tcim.h"
#include "support/check.h"

namespace cwm {

Status AllocatorRegistry::Register(std::unique_ptr<Allocator> allocator) {
  if (allocator == nullptr) {
    return Status::InvalidArgument("null allocator");
  }
  for (const auto& existing : allocators_) {
    if (existing->Kind() == allocator->Kind()) {
      return Status::InvalidArgument(
          std::string("duplicate allocator kind: ") + allocator->Name());
    }
    if (std::string_view(existing->Name()) == allocator->Name()) {
      return Status::InvalidArgument(
          std::string("duplicate allocator name: ") + allocator->Name());
    }
  }
  allocators_.push_back(std::move(allocator));
  return Status::OK();
}

const Allocator* AllocatorRegistry::Find(AlgoKind kind) const {
  for (const auto& allocator : allocators_) {
    if (allocator->Kind() == kind) return allocator.get();
  }
  return nullptr;
}

const Allocator* AllocatorRegistry::Find(std::string_view name) const {
  for (const auto& allocator : allocators_) {
    if (std::string_view(allocator->Name()) == name) return allocator.get();
  }
  return nullptr;
}

std::vector<const Allocator*> AllocatorRegistry::All() const {
  std::vector<const Allocator*> all;
  all.reserve(allocators_.size());
  for (const auto& allocator : allocators_) all.push_back(allocator.get());
  return all;
}

std::vector<std::string> AllocatorRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(allocators_.size());
  for (const auto& allocator : allocators_) {
    names.emplace_back(allocator->Name());
  }
  return names;
}

void RegisterBuiltinAllocators(AllocatorRegistry& registry) {
  // Calling each module's hook by name (not static initializers) keeps
  // registration immune to static-library dead-stripping: this TU is
  // referenced by every registry user, so every module's adapters link.
  RegisterSeqGrdAllocators(registry);
  RegisterMaxGrdAllocator(registry);
  RegisterSupGrdAllocator(registry);
  RegisterBestOfAllocator(registry);
  RegisterTcimAllocator(registry);
  RegisterGreedyWmAllocator(registry);
  RegisterBalanceCAllocator(registry);
  RegisterPositionalAllocators(registry);
  RegisterHeuristicRankAllocators(registry);
}

const AllocatorRegistry& GlobalAllocatorRegistry() {
  static const AllocatorRegistry* registry = [] {
    auto* built = new AllocatorRegistry();
    RegisterBuiltinAllocators(*built);
    for (AlgoKind kind : AllAlgoKinds()) {
      CWM_CHECK_MSG(built->Find(kind) != nullptr,
                    "AlgoKind missing from the builtin allocator registry");
    }
    return built;
  }();
  return *registry;
}

}  // namespace cwm
