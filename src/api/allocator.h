// The stable allocation API: one algorithm-agnostic entry point.
//
// Every algorithm of the paper (SeqGRD/MaxGRD/SupGRD/BestOf) and every
// baseline (TCIM, greedyWM, Balance-C, the positional and heuristic
// allocators) implements the Allocator interface and registers itself in
// the AllocatorRegistry (api/registry.h), so callers — the sweep engine,
// the bench harness, the CLIs, and third-party embedders — run any of
// them through one AllocateRequest/AllocateResult pair instead of
// hand-wiring per-algorithm estimator and RR-pipeline plumbing.
//
// Determinism contract: an allocator's output is a pure function of the
// request (graph, config, budgets, seeds, accuracy knobs). Thread-count
// knobs inside the request never change the allocation, matching the
// repo-wide bit-reproducibility guarantees.
//
// Layering: this header and api/registry.h depend on graph/, model/,
// algo/params.h, rrset/ and simulate/ — never on scenario/ (only the
// Engine facade consumes the declarative NetworkSpec/ConfigSpec types).
// Algorithm modules implement adapters in their own .cc files and expose
// a Register*(AllocatorRegistry&) hook (declared in their headers with a
// forward declaration only), so no algorithm header depends on this one.
#ifndef CWM_API_ALLOCATOR_H_
#define CWM_API_ALLOCATOR_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "algo/params.h"
#include "api/algo_kind.h"
#include "graph/graph.h"
#include "model/allocation.h"
#include "model/utility.h"
#include "obs/cancel.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/trace.h"
#include "simulate/world_pool.h"
#include "support/status.h"

namespace cwm {

/// What an allocator can and cannot do; drives gating, validation, and
/// the README capability table (instead of hand-maintained comments).
struct AllocatorCapabilities {
  /// Monte-Carlo-greedy: too slow for large cells; the sweep gates it.
  bool slow = false;
  /// Only defined for two-item configurations (Balance-C).
  bool two_items_only = false;
  /// Requires a superior item and every inferior item fixed in S_P
  /// (SupGRD); Allocate returns FailedPrecondition otherwise.
  bool needs_superior_item = false;
  /// Consumes AllocateRequest::ranking (the shared positional ranking)
  /// rather than running its own RR-set selection.
  bool uses_shared_ranking = false;
};

/// Progress hook: invoked with a short stage label ("SeqGRD arm",
/// "evaluate", ...) from the calling thread. May be empty.
using ProgressFn = std::function<void(std::string_view stage)>;

/// Everything an allocation needs, as one stable value type. Seeds are
/// explicit (ImmParams::seed, EstimatorOptions::seed), so a request is a
/// complete, replayable description of the run.
struct AllocateRequest {
  /// Which registered allocator runs (registry lookup key).
  AlgoKind algo = AlgoKind::kSeqGrdNm;

  /// The network. Engine::Allocate fills this with the engine's graph;
  /// only direct Allocator::Allocate callers set it.
  const Graph* graph = nullptr;
  /// The utility configuration; same ownership rule as `graph`.
  const UtilityConfig* config = nullptr;

  /// The fixed allocation S_P (nullptr or zero items = empty).
  const Allocation* fixed = nullptr;
  /// I_2 — the items the allocator assigns (everything S_P does not fix).
  std::vector<ItemId> items;
  /// Per-item budgets, indexed by global ItemId.
  BudgetVector budgets;

  /// RR-set accuracy + marginal-check estimator knobs (epsilon, ell,
  /// seeds, sims, threads, cache binding).
  AlgoParams params;
  /// The shared seed ranking consumed by the positional allocators
  /// (capabilities().uses_shared_ranking): one cell-keyed PRIMA+ ranking
  /// lets RR / Snake / BlockUtil differ only in the item-to-position
  /// assignment (§6.4.3).
  ImmParams ranking;
  /// Candidate pool for the slow Monte-Carlo baselines; 0 lets the
  /// engine derive the bench default (max budget + 20).
  std::size_t candidate_pool = 0;

  /// Evaluation estimator for the returned allocation's welfare stats
  /// (consumed by Engine::Allocate, not by allocators).
  EstimatorOptions eval;
  /// Evaluate welfare after allocating (Engine::Allocate). Off = the
  /// caller only wants the allocation.
  bool evaluate = true;

  /// Optional progress callback (stage labels, calling thread).
  ProgressFn progress;
  /// Optional cooperative cancellation flag. Allocators and the engine
  /// poll it between phases and return Cancelled when set; a cancelled
  /// run produces no result. Not owned; may be null.
  const std::atomic<bool>* cancel = nullptr;
};

/// Everything a run produces. Allocators fill the first block; the
/// engine adds evaluation, timing, and telemetry.
struct AllocateResult {
  /// The chosen allocation over `items` only (union with S_P to deploy).
  Allocation allocation;
  AlgoDiagnostics diagnostics;
  /// Free-form annotation (e.g. BestOf's chosen arm).
  std::string note;

  // --- Filled by Engine::Allocate ---
  /// True when the allocator's preconditions failed (FailedPrecondition);
  /// `skip_reason` carries the message and the fields below stay empty.
  bool skipped = false;
  std::string skip_reason;
  /// Welfare statistics of allocation ∪ S_P under the request's `eval`
  /// estimator (all algorithms of one cell are compared on the same
  /// sampled worlds when the caller keys `eval.seed` per cell).
  WelfareStats stats;
  double allocate_seconds = 0.0;  ///< seed-selection wall time
  double evaluate_seconds = 0.0;  ///< evaluation wall time
  /// Wall-time breakdown of the run by phase (RR sampling, greedy node
  /// selection, Monte-Carlo estimation — obs/phase.h). Collected on the
  /// calling thread by Engine::Allocate; zero for direct allocator calls.
  PhaseTimes phases;
  /// Keyed snapshot-pool telemetry after this call (engine-lifetime
  /// counters; pool_reuses > 0 means cross-estimator sharing happened).
  WorldPoolStoreStats pool_stats;
};

/// One allocation algorithm behind the stable API. Implementations are
/// stateless and thread-safe: Allocate is const and every run's state
/// lives on the stack.
class Allocator {
 public:
  virtual ~Allocator() = default;

  /// The registry key this allocator serves.
  virtual AlgoKind Kind() const = 0;
  /// Canonical display name; equals AlgoName(Kind()).
  virtual const char* Name() const { return AlgoName(Kind()); }
  virtual AllocatorCapabilities Capabilities() const = 0;

  /// Runs the algorithm. Fills result->allocation (and diagnostics/note);
  /// returns FailedPrecondition when the request violates the
  /// capabilities' preconditions, Cancelled when request.cancel was set.
  virtual Status Allocate(const AllocateRequest& request,
                          AllocateResult* result) const = 0;
};

/// Shared adapter helper: polls the cooperative cancellation flag
/// (obs/cancel.h — same counted poll the RR pipeline and the greedy
/// round loops use).
inline Status CheckCancelled(const AllocateRequest& request) {
  if (CancelRequested(request.cancel)) {
    return Status::Cancelled(std::string(AlgoName(request.algo)) +
                             " cancelled");
  }
  return Status::OK();
}

/// Shared adapter helper: reports a stage label if a progress hook is
/// set, and records it as a trace instant. `stage` must be a static-
/// duration string (literal, AlgoName(), Allocator::Name()) — the trace
/// event keeps the pointer until flush.
inline void ReportProgress(const AllocateRequest& request,
                           const char* stage) {
  CWM_TRACE_INSTANT("api.stage", {{"stage", stage}});
  if (request.progress) request.progress(stage);
}

/// Shared adapter helper: the request's fixed allocation S_P, or the
/// zero-item empty allocation (which every algorithm treats as "no fixed
/// seeds").
inline const Allocation& FixedOf(const AllocateRequest& request) {
  static const Allocation kEmpty;
  return request.fixed != nullptr ? *request.fixed : kEmpty;
}

/// Shared adapter helper: the request's items in decreasing expected
/// truncated utility order — the block order of SeqGRD-NM's placement
/// (Table 6), used by every block-assigning allocator.
inline std::vector<ItemId> ItemsByUtilityOf(const AllocateRequest& request) {
  std::vector<ItemId> ordered;
  for (ItemId i : request.config->ItemsByTruncatedUtilityDesc()) {
    if (std::find(request.items.begin(), request.items.end(), i) !=
        request.items.end()) {
      ordered.push_back(i);
    }
  }
  return ordered;
}

}  // namespace cwm

#endif  // CWM_API_ALLOCATOR_H_
