// Algorithm identity for the cwm::api layer.
//
// AlgoKind enumerates every allocation algorithm and positional baseline
// the system can run; AlgoName/ParseAlgo map it to the stable display
// names used in result artifacts, CLI flags, and the allocator registry
// (api/registry.h). The enum lives in the API layer — not the scenario
// engine — so embedders can name algorithms without pulling in the sweep
// machinery; scenario/scenario.h re-exports it for existing callers.
#ifndef CWM_API_ALGO_KIND_H_
#define CWM_API_ALGO_KIND_H_

#include <optional>
#include <span>
#include <string_view>

namespace cwm {

/// Algorithms and positional allocators runnable by the engine.
enum class AlgoKind {
  kSeqGrd,          ///< SeqGRD (Algorithm 1, marginal check on)
  kSeqGrdNm,        ///< SeqGRD-NM (no marginal check)
  kMaxGrd,          ///< MaxGRD (Algorithm 2)
  kSupGrd,          ///< SupGRD (§5.3; needs a superior item + fixed S_P)
  kBestOf,          ///< better of SeqGRD / MaxGRD (Theorems 3+4)
  kTcim,            ///< TCIM baseline (Lin & Lui)
  kGreedyWm,        ///< lazy greedy on Monte-Carlo welfare (slow)
  kBalanceC,        ///< balanced-exposure greedy (slow, 2 items only)
  kRoundRobin,      ///< PRIMA+ ranking, round-robin item assignment
  kSnake,           ///< PRIMA+ ranking, snake item assignment
  kBlockUtility,    ///< PRIMA+ ranking, utility-ordered blocks (SeqGRD-NM's
                    ///< placement, Table 6)
  kHighDegreeRank,  ///< HighDegree ranking, utility-ordered blocks
  kDegreeDiscountRank,  ///< DegreeDiscount ranking, utility-ordered blocks
  kPageRankRank,        ///< reverse-PageRank ranking, utility-ordered blocks
};

/// Every AlgoKind value, in enum order. The canonical iteration source for
/// registries and coverage tests — a new enum value must be added here
/// (the registry coverage test fails otherwise).
std::span<const AlgoKind> AllAlgoKinds();

/// Canonical display name ("SeqGRD-NM", "greedyWM", ...).
const char* AlgoName(AlgoKind kind);

/// Inverse of AlgoName; nullopt for unknown names.
std::optional<AlgoKind> ParseAlgo(std::string_view name);

/// True for the Monte-Carlo-greedy baselines the paper could not finish on
/// large networks (greedyWM, Balance-C); the sweep gates them by default.
/// Mirrors AllocatorCapabilities::slow (asserted equal by the coverage
/// test) but stays registry-free so grid expansion cannot depend on
/// registration order.
bool IsSlowAlgo(AlgoKind kind);

}  // namespace cwm

#endif  // CWM_API_ALGO_KIND_H_
