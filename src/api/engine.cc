#include "api/engine.h"

#include <algorithm>
#include <span>
#include <utility>

#include "obs/phase.h"
#include "obs/trace.h"
#include "simulate/estimator.h"
#include "store/format.h"
#include "support/timer.h"

namespace cwm {

Engine::Engine(const Graph& graph, const UtilityConfig& config,
               EngineOptions options)
    : graph_(&graph),
      config_(&config),
      options_(options),
      graph_hash_(options.graph_hash != 0 ? options.graph_hash
                                          : GraphContentHash(graph)),
      pool_store_(options.snapshot_budget_bytes) {}

Engine::Engine(std::unique_ptr<const Graph> owned_graph,
               std::unique_ptr<const UtilityConfig> owned_config,
               EngineOptions options)
    : owned_graph_(std::move(owned_graph)),
      owned_config_(std::move(owned_config)),
      graph_(owned_graph_.get()),
      config_(owned_config_.get()),
      options_(options),
      graph_hash_(options.graph_hash != 0 ? options.graph_hash
                                          : GraphContentHash(*graph_)),
      pool_store_(options.snapshot_budget_bytes) {}

StatusOr<std::unique_ptr<Engine>> Engine::Open(const NetworkSpec& network,
                                               const ConfigSpec& config,
                                               EngineOptions options,
                                               double scale) {
  uint64_t stored_hash = 0;
  StatusOr<Graph> graph = network.Build(scale, options.cache, &stored_hash);
  if (!graph.ok()) return graph.status();
  StatusOr<UtilityConfig> utilities = config.Build();
  if (!utilities.ok()) return utilities.status();
  if (options.graph_hash == 0) options.graph_hash = stored_hash;
  return std::unique_ptr<Engine>(new Engine(
      std::make_unique<const Graph>(std::move(graph).value()),
      std::make_unique<const UtilityConfig>(std::move(utilities).value()),
      options));
}

namespace {

/// Structural validation of a request against the engine's configuration,
/// so malformed embedder input fails with a Status instead of reaching
/// the algorithms' unchecked indexing / CWM_CHECK aborts.
Status ValidateRequest(const AllocateRequest& request,
                       const UtilityConfig& config) {
  const int m = config.num_items();
  if (request.items.empty()) {
    return Status::InvalidArgument("AllocateRequest: no items to allocate");
  }
  if (request.budgets.size() != static_cast<std::size_t>(m)) {
    return Status::InvalidArgument(
        "AllocateRequest: budgets must have one entry per config item");
  }
  for (ItemId i : request.items) {
    if (i < 0 || i >= m) {
      return Status::InvalidArgument(
          "AllocateRequest: item id out of range");
    }
    if (std::count(request.items.begin(), request.items.end(), i) != 1) {
      return Status::InvalidArgument("AllocateRequest: duplicate item id");
    }
  }
  for (int b : request.budgets) {
    if (b < 0) {
      return Status::InvalidArgument("AllocateRequest: negative budget");
    }
  }
  if (request.fixed != nullptr && request.fixed->num_items() != 0 &&
      request.fixed->num_items() != m) {
    return Status::InvalidArgument(
        "AllocateRequest: fixed allocation item count mismatch");
  }
  return Status::OK();
}

}  // namespace

Status Engine::Allocate(AllocateRequest request,
                        AllocateResult* result) const {
  const Allocator* allocator = GlobalAllocatorRegistry().Find(request.algo);
  if (allocator == nullptr) {
    return Status::NotFound(std::string("no allocator registered for '") +
                            AlgoName(request.algo) + "'");
  }
  if (Status valid = ValidateRequest(request, *config_); !valid.ok()) {
    return valid;
  }
  *result = AllocateResult{};

  // Bind the engine's long-lived state into the request, never
  // overriding caller-pinned values.
  request.graph = graph_;
  request.config = config_;
  if (request.params.imm.cache == nullptr) {
    request.params.imm.cache = options_.cache;
  }
  if (request.params.imm.graph_hash == 0) {
    request.params.imm.graph_hash = graph_hash_;
  }
  if (request.ranking.cache == nullptr) request.ranking.cache = options_.cache;
  if (request.ranking.graph_hash == 0) request.ranking.graph_hash = graph_hash_;
  if (request.params.estimator.pool_store == nullptr) {
    request.params.estimator.pool_store = &pool_store_;
  }
  if (request.eval.pool_store == nullptr) {
    request.eval.pool_store = &pool_store_;
  }
  if (request.candidate_pool == 0 && !request.budgets.empty()) {
    // The bench default for the slow baselines: a pool around the
    // largest budget.
    request.candidate_pool =
        static_cast<std::size_t>(*std::max_element(request.budgets.begin(),
                                                   request.budgets.end())) +
        20;
  }

  if (Status cancelled = CheckCancelled(request); !cancelled.ok()) {
    return cancelled;
  }
  // Phase attribution (obs/phase.h): the instrumented entry points all
  // block on this thread, so the collector sees the whole run.
  PhaseCollector phases;
  CWM_TRACE_SPAN("api.allocate", {{"algo", allocator->Name()}});
  ReportProgress(request, allocator->Name());
  Timer allocate_timer;
  const Status run = allocator->Allocate(request, result);
  result->allocate_seconds = allocate_timer.Seconds();
  if (!run.ok()) {
    if (run.code() == Status::Code::kFailedPrecondition) {
      // Preconditions are a property of the request's content, not an
      // engine failure: report a skipped result the caller can record.
      result->skipped = true;
      result->skip_reason = run.message();
      result->pool_stats = pool_store_.stats();
      result->phases = phases.times();
      return Status::OK();
    }
    return run;
  }

  if (request.evaluate) {
    if (Status cancelled = CheckCancelled(request); !cancelled.ok()) {
      return cancelled;
    }
    ReportProgress(request, "evaluate");
    CWM_TRACE_SPAN("api.evaluate", {{"worlds", request.eval.num_worlds}});
    Timer evaluate_timer;
    const WelfareEstimator evaluator(*graph_, *config_, request.eval);
    const Allocation& sp = FixedOf(request);
    const Allocation deployed = Allocation::Union(
        result->allocation,
        sp.num_items() == 0 ? Allocation(config_->num_items()) : sp);
    // Batch-of-1 so the evaluation worlds resolve through the keyed pool
    // store: every estimator with this (seed, num_worlds) — e.g. each
    // task of one sweep cell — shares the materialization. Bit-identical
    // to the streaming Stats() path.
    result->stats =
        evaluator.StatsBatch(std::span<const Allocation>(&deployed, 1))[0];
    result->evaluate_seconds = evaluate_timer.Seconds();
  }
  result->pool_stats = pool_store_.stats();
  result->phases = phases.times();
  return Status::OK();
}

}  // namespace cwm
