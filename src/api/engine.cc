#include "api/engine.h"

#include <algorithm>
#include <mutex>
#include <span>
#include <utility>

#include "algo/max_grd.h"
#include "algo/seq_grd.h"
#include "delta/overlay.h"
#include "obs/phase.h"
#include "obs/trace.h"
#include "simulate/estimator.h"
#include "store/format.h"
#include "support/timer.h"

namespace cwm {

Engine::Engine(const Graph& graph, const UtilityConfig& config,
               EngineOptions options)
    : config_(&config),
      options_(options),
      pool_store_(options.snapshot_budget_bytes) {
  auto state = std::make_shared<GraphState>();
  state->graph = &graph;
  state->hash = options.graph_hash != 0 ? options.graph_hash
                                        : GraphContentHash(graph);
  state_ = std::move(state);
}

Engine::Engine(std::unique_ptr<const Graph> owned_graph,
               std::unique_ptr<const UtilityConfig> owned_config,
               EngineOptions options)
    : owned_config_(std::move(owned_config)),
      config_(owned_config_.get()),
      options_(options),
      pool_store_(options.snapshot_budget_bytes) {
  auto state = std::make_shared<GraphState>();
  state->owned = std::move(owned_graph);
  state->graph = state->owned.get();
  state->hash = options.graph_hash != 0 ? options.graph_hash
                                        : GraphContentHash(*state->graph);
  state_ = std::move(state);
}

std::shared_ptr<const Engine::GraphState> Engine::CurrentState() const {
  std::shared_lock lock(state_mutex_);
  return state_;
}

std::vector<DeltaChainLink> Engine::delta_chain() const {
  std::shared_lock lock(state_mutex_);
  return chain_;
}

Status Engine::ApplyDelta(const DeltaLog& log, ApplyDeltaResult* result) {
  // Appliers serialize here; readers keep pinning the pre-swap state via
  // CurrentState() until the single unique-lock swap below.
  std::lock_guard apply_lock(apply_mutex_);
  const std::shared_ptr<const GraphState> old_state = CurrentState();

  CWM_TRACE_SPAN("api.apply_delta", {{"edits", log.edits.size()}});
  StatusOr<AppliedDelta> applied =
      ApplyDeltaToGraph(*old_state->graph, log, old_state->hash);
  if (!applied.ok()) return applied.status();
  AppliedDelta& a = applied.value();

  ApplyDeltaResult outcome;
  outcome.old_hash = a.base_hash;
  outcome.new_hash = a.result_hash;
  outcome.dirty_nodes = a.dirty_nodes.size();
  outcome.first_dirty_edge = a.first_dirty_edge;
  if (options_.cache != nullptr) {
    outcome.rr = PatchCachedRrEras(*options_.cache, a.graph, a.base_hash,
                                   a.result_hash, a.dirty_nodes);
  }

  auto next = std::make_shared<GraphState>();
  next->owned = std::make_unique<const Graph>(std::move(a.graph));
  next->graph = next->owned.get();
  next->hash = a.result_hash;
  pool_store_.NotifyDelta(*old_state->graph, *next->graph,
                          a.first_dirty_edge);

  {
    std::unique_lock lock(state_mutex_);
    retired_.push_back(state_);
    state_ = std::move(next);
    chain_.push_back(DeltaChainLink{a.log_hash, log.edits.size(),
                                    a.dirty_nodes.size(), a.result_hash});
  }
  if (result != nullptr) *result = outcome;
  return Status::OK();
}

StatusOr<std::unique_ptr<Engine>> Engine::Open(const NetworkSpec& network,
                                               const ConfigSpec& config,
                                               EngineOptions options,
                                               double scale) {
  uint64_t stored_hash = 0;
  StatusOr<Graph> graph = network.Build(scale, options.cache, &stored_hash);
  if (!graph.ok()) return graph.status();
  StatusOr<UtilityConfig> utilities = config.Build();
  if (!utilities.ok()) return utilities.status();
  if (options.graph_hash == 0) options.graph_hash = stored_hash;
  return std::unique_ptr<Engine>(new Engine(
      std::make_unique<const Graph>(std::move(graph).value()),
      std::make_unique<const UtilityConfig>(std::move(utilities).value()),
      options));
}

namespace {

/// Structural validation of a request against the engine's configuration,
/// so malformed embedder input fails with a Status instead of reaching
/// the algorithms' unchecked indexing / CWM_CHECK aborts.
Status ValidateRequest(const AllocateRequest& request,
                       const UtilityConfig& config) {
  const int m = config.num_items();
  if (request.items.empty()) {
    return Status::InvalidArgument("AllocateRequest: no items to allocate");
  }
  if (request.budgets.size() != static_cast<std::size_t>(m)) {
    return Status::InvalidArgument(
        "AllocateRequest: budgets must have one entry per config item");
  }
  for (ItemId i : request.items) {
    if (i < 0 || i >= m) {
      return Status::InvalidArgument(
          "AllocateRequest: item id out of range");
    }
    if (std::count(request.items.begin(), request.items.end(), i) != 1) {
      return Status::InvalidArgument("AllocateRequest: duplicate item id");
    }
  }
  for (int b : request.budgets) {
    if (b < 0) {
      return Status::InvalidArgument("AllocateRequest: negative budget");
    }
  }
  if (request.fixed != nullptr && request.fixed->num_items() != 0 &&
      request.fixed->num_items() != m) {
    return Status::InvalidArgument(
        "AllocateRequest: fixed allocation item count mismatch");
  }
  return Status::OK();
}

}  // namespace

void Engine::BindRequest(AllocateRequest* request,
                         const GraphState& state) const {
  request->graph = state.graph;
  request->config = config_;
  if (request->params.imm.cache == nullptr) {
    request->params.imm.cache = options_.cache;
  }
  if (request->params.imm.graph_hash == 0) {
    request->params.imm.graph_hash = state.hash;
  }
  if (request->ranking.cache == nullptr) {
    request->ranking.cache = options_.cache;
  }
  if (request->ranking.graph_hash == 0) {
    request->ranking.graph_hash = state.hash;
  }
  // Thread the request-level cancellation flag into the sampling and
  // ranking parameter blocks, so the RR pipeline's per-chunk polls and
  // the greedy round loops observe a deadline mid-run instead of only
  // between engine phases.
  if (request->params.imm.cancel == nullptr) {
    request->params.imm.cancel = request->cancel;
  }
  if (request->ranking.cancel == nullptr) {
    request->ranking.cancel = request->cancel;
  }
  if (request->params.estimator.pool_store == nullptr) {
    request->params.estimator.pool_store = &pool_store_;
  }
  if (request->eval.pool_store == nullptr) {
    request->eval.pool_store = &pool_store_;
  }
  if (request->candidate_pool == 0 && !request->budgets.empty()) {
    // The bench default for the slow baselines: a pool around the
    // largest budget.
    request->candidate_pool =
        static_cast<std::size_t>(*std::max_element(
            request->budgets.begin(), request->budgets.end())) +
        20;
  }
}

Status Engine::Allocate(AllocateRequest request,
                        AllocateResult* result) const {
  const Allocator* allocator = GlobalAllocatorRegistry().Find(request.algo);
  if (allocator == nullptr) {
    return Status::NotFound(std::string("no allocator registered for '") +
                            AlgoName(request.algo) + "'");
  }
  if (Status valid = ValidateRequest(request, *config_); !valid.ok()) {
    return valid;
  }
  *result = AllocateResult{};

  // Pin the graph state current right now: a concurrent ApplyDelta swap
  // never retargets an allocation mid-run.
  const std::shared_ptr<const GraphState> state = CurrentState();
  // Bind the engine's long-lived state into the request, never
  // overriding caller-pinned values.
  BindRequest(&request, *state);

  if (Status cancelled = CheckCancelled(request); !cancelled.ok()) {
    return cancelled;
  }
  // Phase attribution (obs/phase.h): the instrumented entry points all
  // block on this thread, so the collector sees the whole run.
  PhaseCollector phases;
  CWM_TRACE_SPAN("api.allocate", {{"algo", allocator->Name()}});
  ReportProgress(request, allocator->Name());
  Timer allocate_timer;
  const Status run = allocator->Allocate(request, result);
  result->allocate_seconds = allocate_timer.Seconds();
  if (!run.ok()) {
    if (run.code() == Status::Code::kFailedPrecondition) {
      // Preconditions are a property of the request's content, not an
      // engine failure: report a skipped result the caller can record.
      result->skipped = true;
      result->skip_reason = run.message();
      result->pool_stats = pool_store_.stats();
      result->phases = phases.times();
      return Status::OK();
    }
    return run;
  }
  // A cancelled inner loop returns OK with a structurally valid filler
  // allocation (so mid-algorithm invariants hold); the engine is the
  // discard point — re-check the flag here so a cancelled run never
  // reaches evaluation or the caller's hands.
  if (Status cancelled = CheckCancelled(request); !cancelled.ok()) {
    return cancelled;
  }

  if (request.evaluate) {
    ReportProgress(request, "evaluate");
    CWM_TRACE_SPAN("api.evaluate", {{"worlds", request.eval.num_worlds}});
    Timer evaluate_timer;
    const WelfareEstimator evaluator(*state->graph, *config_, request.eval);
    const Allocation& sp = FixedOf(request);
    const Allocation deployed = Allocation::Union(
        result->allocation,
        sp.num_items() == 0 ? Allocation(config_->num_items()) : sp);
    // Batch-of-1 so the evaluation worlds resolve through the keyed pool
    // store: every estimator with this (seed, num_worlds) — e.g. each
    // task of one sweep cell — shares the materialization. Bit-identical
    // to the streaming Stats() path.
    result->stats =
        evaluator.StatsBatch(std::span<const Allocation>(&deployed, 1))[0];
    result->evaluate_seconds = evaluate_timer.Seconds();
  }
  result->pool_stats = pool_store_.stats();
  result->phases = phases.times();
  return Status::OK();
}

Status Engine::AllocateBatch(AllocateRequest request,
                             std::span<const BudgetVector> budget_points,
                             std::vector<AllocateResult>* results) const {
  if (budget_points.empty()) {
    return Status::InvalidArgument("AllocateBatch: no budget points");
  }
  results->clear();

  const bool shares_ranking = request.algo == AlgoKind::kMaxGrd ||
                              request.algo == AlgoKind::kSeqGrd ||
                              request.algo == AlgoKind::kSeqGrdNm;
  if (!shares_ranking) {
    // No cross-point sharing for this algorithm: one Allocate per point,
    // bit-identical to the loop this call replaces.
    results->resize(budget_points.size());
    for (std::size_t p = 0; p < budget_points.size(); ++p) {
      AllocateRequest point = request;
      point.budgets = budget_points[p];
      if (Status run = Allocate(std::move(point), &(*results)[p]);
          !run.ok()) {
        return run;
      }
    }
    return Status::OK();
  }

  // Validate every point up front: one bad point fails the whole batch
  // before any sampling happens. The batch algorithms additionally
  // require a positive budget per allocated item (their prefix blocks
  // have no zero-size form).
  for (const BudgetVector& budgets : budget_points) {
    AllocateRequest point = request;
    point.budgets = budgets;
    if (Status valid = ValidateRequest(point, *config_); !valid.ok()) {
      return valid;
    }
    for (ItemId i : request.items) {
      if (budgets[i] < 1) {
        return Status::InvalidArgument(
            "AllocateBatch: every allocated item needs budget >= 1");
      }
    }
  }

  request.budgets = budget_points.front();
  const std::shared_ptr<const GraphState> state = CurrentState();
  BindRequest(&request, *state);
  if (Status cancelled = CheckCancelled(request); !cancelled.ok()) {
    return cancelled;
  }

  PhaseCollector phases;
  CWM_TRACE_SPAN("api.allocate_batch", {{"algo", AlgoName(request.algo)},
                                        {"points", budget_points.size()}});
  ReportProgress(request, AlgoName(request.algo));
  Timer allocate_timer;
  AlgoDiagnostics diagnostics;
  std::vector<Allocation> allocations;
  if (request.algo == AlgoKind::kMaxGrd) {
    allocations =
        MaxGrdBatch(*state->graph, *config_, FixedOf(request), request.items,
                    budget_points, request.params, &diagnostics);
  } else {
    allocations = SeqGrdBatch(
        *state->graph, *config_, FixedOf(request), request.items,
        budget_points, request.params,
        {.marginal_check = request.algo == AlgoKind::kSeqGrd},
        &diagnostics);
  }
  const double allocate_seconds = allocate_timer.Seconds();
  // Same discard point as Allocate: a cancelled batch returns filler
  // allocations that must never reach evaluation or the caller.
  if (Status cancelled = CheckCancelled(request); !cancelled.ok()) {
    return cancelled;
  }

  results->resize(budget_points.size());
  double evaluate_seconds = 0.0;
  if (request.evaluate) {
    ReportProgress(request, "evaluate");
    CWM_TRACE_SPAN("api.evaluate", {{"worlds", request.eval.num_worlds}});
    Timer evaluate_timer;
    const WelfareEstimator evaluator(*state->graph, *config_, request.eval);
    const Allocation& sp = FixedOf(request);
    const Allocation sp_or_empty =
        sp.num_items() == 0 ? Allocation(config_->num_items()) : sp;
    std::vector<Allocation> deployed;
    deployed.reserve(allocations.size());
    for (const Allocation& allocation : allocations) {
      deployed.push_back(Allocation::Union(allocation, sp_or_empty));
    }
    // One batched evaluation for the whole sweep: every point is scored
    // on the same materialized worlds, bit-identical to evaluating each
    // point alone with the same eval options.
    const std::vector<WelfareStats> stats = evaluator.StatsBatch(deployed);
    for (std::size_t p = 0; p < budget_points.size(); ++p) {
      (*results)[p].stats = stats[p];
    }
    evaluate_seconds = evaluate_timer.Seconds();
  }

  const PhaseTimes batch_phases = phases.times();
  const WorldPoolStoreStats pool_stats = pool_store_.stats();
  for (std::size_t p = 0; p < budget_points.size(); ++p) {
    AllocateResult& result = (*results)[p];
    result.allocation = std::move(allocations[p]);
    result.diagnostics = diagnostics;
    // The ranking and evaluation are shared across the batch, so wall
    // time is attributed evenly — per-point times are averages, not
    // independent measurements.
    result.allocate_seconds =
        allocate_seconds / static_cast<double>(budget_points.size());
    result.evaluate_seconds =
        evaluate_seconds / static_cast<double>(budget_points.size());
    result.phases = batch_phases;
    result.pool_stats = pool_stats;
  }
  return Status::OK();
}

}  // namespace cwm
