#include "api/algo_kind.h"

namespace cwm {

namespace {

constexpr AlgoKind kAllAlgoKinds[] = {
    AlgoKind::kSeqGrd,         AlgoKind::kSeqGrdNm,
    AlgoKind::kMaxGrd,         AlgoKind::kSupGrd,
    AlgoKind::kBestOf,         AlgoKind::kTcim,
    AlgoKind::kGreedyWm,       AlgoKind::kBalanceC,
    AlgoKind::kRoundRobin,     AlgoKind::kSnake,
    AlgoKind::kBlockUtility,   AlgoKind::kHighDegreeRank,
    AlgoKind::kDegreeDiscountRank, AlgoKind::kPageRankRank,
};

}  // namespace

std::span<const AlgoKind> AllAlgoKinds() { return kAllAlgoKinds; }

const char* AlgoName(AlgoKind kind) {
  switch (kind) {
    case AlgoKind::kSeqGrd: return "SeqGRD";
    case AlgoKind::kSeqGrdNm: return "SeqGRD-NM";
    case AlgoKind::kMaxGrd: return "MaxGRD";
    case AlgoKind::kSupGrd: return "SupGRD";
    case AlgoKind::kBestOf: return "BestOf";
    case AlgoKind::kTcim: return "TCIM";
    case AlgoKind::kGreedyWm: return "greedyWM";
    case AlgoKind::kBalanceC: return "Balance-C";
    case AlgoKind::kRoundRobin: return "RR";
    case AlgoKind::kSnake: return "Snake";
    case AlgoKind::kBlockUtility: return "BlockUtil";
    case AlgoKind::kHighDegreeRank: return "HighDegree";
    case AlgoKind::kDegreeDiscountRank: return "DegDiscount";
    case AlgoKind::kPageRankRank: return "PageRank";
  }
  return "?";
}

std::optional<AlgoKind> ParseAlgo(std::string_view name) {
  for (AlgoKind kind : AllAlgoKinds()) {
    if (name == AlgoName(kind)) return kind;
  }
  return std::nullopt;
}

bool IsSlowAlgo(AlgoKind kind) {
  return kind == AlgoKind::kGreedyWm || kind == AlgoKind::kBalanceC;
}

}  // namespace cwm
