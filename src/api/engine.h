// Engine — the long-lived facade over the allocation stack.
//
// An Engine binds the per-task state the sweep used to rebuild ad hoc for
// every algorithm run: the (possibly mmap'd) Graph, the utility
// configuration, the ArtifactCache serving RR-set eras, and a keyed
// WorldPoolStore so every estimator resolving the same world-sequence
// identity — the per-cell evaluator rebuilt by each task, or the
// estimators one AlgoParams spawns inside BestOf — shares one
// materialized snapshot pool under one byte budget.
//
// Allocate() is the single algorithm-agnostic entry point: it resolves
// the requested AlgoKind in the global AllocatorRegistry, binds the
// engine's cache/hash/pool-store into the request (without overriding
// caller-pinned values), times the allocator, evaluates the resulting
// allocation's welfare on the request's evaluation estimator, and reports
// pool/cache telemetry. Results are bit-identical to hand-wiring the
// underlying algorithm: the engine only shares state that never changes
// results (artifact cache, snapshot pools).
//
// Thread-safety: Allocate is const and safe to call concurrently; the
// pool store serializes pool construction internally. ApplyDelta may run
// concurrently with Allocate calls: each allocation pins the graph state
// current at its entry and runs to completion on it, while the swap to
// the post-delta state is atomic (readers never observe a half-applied
// delta). Retired states are retained for the engine's lifetime, so
// references handed out before a delta stay valid.
#ifndef CWM_API_ENGINE_H_
#define CWM_API_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <vector>

#include "api/registry.h"
#include "delta/delta_log.h"
#include "delta/overlay.h"
#include "delta/rr_patch.h"
#include "scenario/scenario.h"
#include "simulate/world_pool.h"
#include "store/artifact_cache.h"
#include "support/status.h"

namespace cwm {

/// Long-lived bindings of an Engine.
struct EngineOptions {
  /// Artifact cache serving graph images and RR eras (not owned; may be
  /// null). Bound into requests that did not pin their own.
  ArtifactCache* cache = nullptr;
  /// GraphContentHash of the engine's graph; 0 = compute on construction
  /// (one O(edges) pass). Callers that already know it (the sweep, warm
  /// cache opens) pass it to skip the pass.
  uint64_t graph_hash = 0;
  /// Byte budget of the engine's keyed snapshot-pool store
  /// (CWM_SNAPSHOT_BUDGET_MB semantics; 0 streams every world lazily).
  std::size_t snapshot_budget_bytes = 256ull << 20;
};

/// Outcome of one Engine::ApplyDelta call.
struct ApplyDeltaResult {
  uint64_t old_hash = 0;        ///< GraphContentHash before the delta
  uint64_t new_hash = 0;        ///< GraphContentHash after the delta
  std::size_t dirty_nodes = 0;  ///< vertices whose in-edge lists changed
  /// Forward edges below this are unchanged (simulate pools patch by
  /// prefix copy above it).
  EdgeId first_dirty_edge = 0;
  /// RR-era repair outcome (all zero when the engine has no cache).
  RrPatchStats rr;
};

/// The facade. Construct over borrowed graph/config (the sweep's cells),
/// or Open() a declarative NetworkSpec/ConfigSpec pair the engine owns —
/// served mmap zero-copy from the artifact cache when bound.
class Engine {
 public:
  /// Borrows `graph` and `config`; both must outlive the engine.
  Engine(const Graph& graph, const UtilityConfig& config,
         EngineOptions options = {});

  /// Builds (or cache-opens) the network and utility configuration and
  /// returns an engine owning both. `scale` multiplies scalable network
  /// families (CWM_BENCH_SCALE semantics).
  static StatusOr<std::unique_ptr<Engine>> Open(const NetworkSpec& network,
                                                const ConfigSpec& config,
                                                EngineOptions options = {},
                                                double scale = 1.0);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs the registered allocator named by request.algo and fills
  /// `result` (allocation, diagnostics, welfare stats, timing,
  /// telemetry). FailedPrecondition from the allocator becomes a
  /// *skipped* result with OK status (the caller decides severity);
  /// unknown kinds, cancellation, and other failures return non-OK and
  /// leave `result` unspecified.
  Status Allocate(AllocateRequest request, AllocateResult* result) const;

  /// Runs request.algo once per budget point (request.budgets is ignored;
  /// each point replaces it) and fills one result per point. MaxGRD and
  /// SeqGRD/SeqGRD-NM share a single PRIMA+ ranking across the whole
  /// batch and evaluate every point's welfare in one batched sweep — the
  /// per-point results keep the algorithms' approximation guarantees but
  /// are NOT bit-identical to per-point Allocate calls when the batch has
  /// more than one point (the shared ranking samples under the union of
  /// levels). Every other algorithm falls back to one Allocate per point,
  /// bit-identical to the loop it replaces.
  Status AllocateBatch(AllocateRequest request,
                       std::span<const BudgetVector> budget_points,
                       std::vector<AllocateResult>* results) const;

  /// Applies one delta log to the engine's current graph and atomically
  /// swaps the composition in: in-flight Allocate calls finish on the
  /// graph they pinned at entry; calls entering after the swap see the
  /// new graph. Cached RR eras are re-keyed onto the new graph (dirty
  /// sets resampled, the rest reused) and the snapshot-pool store is told
  /// to patch rather than rebuild pools above the dirty-edge watermark.
  /// Concurrent ApplyDelta calls serialize in arrival order. On failure
  /// the engine is unchanged. `result` may be null.
  Status ApplyDelta(const DeltaLog& log, ApplyDeltaResult* result = nullptr);

  const Graph& graph() const { return *CurrentState()->graph; }
  const UtilityConfig& config() const { return *config_; }
  uint64_t graph_hash() const { return CurrentState()->hash; }
  ArtifactCache* cache() const { return options_.cache; }

  /// Delta logs applied over the engine's lifetime (provenance of the
  /// current graph relative to the one the engine opened with).
  std::vector<DeltaChainLink> delta_chain() const;

  /// Keyed snapshot-pool telemetry (engine lifetime).
  WorldPoolStoreStats pool_stats() const { return pool_store_.stats(); }

 private:
  /// One immutable graph identity: the engine swaps whole states on
  /// ApplyDelta so readers pin a consistent (graph, hash) pair. `owned`
  /// is null when the engine borrows the caller's graph (the pre-delta
  /// state of the borrowing constructor).
  struct GraphState {
    std::unique_ptr<const Graph> owned;
    const Graph* graph = nullptr;
    uint64_t hash = 0;
  };

  Engine(std::unique_ptr<const Graph> owned_graph,
         std::unique_ptr<const UtilityConfig> owned_config,
         EngineOptions options);

  /// The graph state current right now, pinned against concurrent swaps.
  std::shared_ptr<const GraphState> CurrentState() const;

  /// Binds the engine's long-lived state (graph, config, cache, hash,
  /// pool store, cancellation threading, candidate-pool default) into a
  /// request, never overriding caller-pinned values.
  void BindRequest(AllocateRequest* request, const GraphState& state) const;

  // Owned storage for the Open() path; null when borrowing.
  std::unique_ptr<const UtilityConfig> owned_config_;
  const UtilityConfig* config_;
  EngineOptions options_;
  mutable WorldPoolStore pool_store_;

  /// Guards state_ and chain_ only; ApplyDelta holds apply_mutex_ across
  /// the whole application so appliers serialize without blocking
  /// readers.
  mutable std::shared_mutex state_mutex_;
  std::shared_ptr<const GraphState> state_;
  std::mutex apply_mutex_;
  /// States replaced by deltas, retained so references (and pool-store
  /// keys) handed out before the swap stay valid for the engine's
  /// lifetime — a reused heap address must never alias a distinct graph.
  std::vector<std::shared_ptr<const GraphState>> retired_;
  std::vector<DeltaChainLink> chain_;
};

}  // namespace cwm

#endif  // CWM_API_ENGINE_H_
