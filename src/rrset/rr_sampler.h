// Reverse-reachable set samplers.
//
// Three flavours, all rooted at a uniformly random node and grown by a
// reverse BFS that keeps each incoming edge (u', u) with probability
// p_{u'u} (fresh randomness per RR set, as in Borgs et al. / IMM):
//
//  * Standard — classic RR set for sigma(S) estimation.
//  * Marginal (Algorithm 3) — zeroed to the empty set the moment the BFS
//    touches the fixed seed set S_P; estimates the *marginal* spread
//    sigma(S | S_P).
//  * Weighted (Definition 2) — BFS terminates at the first level that
//    overlaps S_P; the set's weight is E[U+(i_m)] minus the best fixed
//    item value among the S_P seeds hit (0 hit => full E[U+(i_m)]).
//    Estimates the marginal *welfare* of seeding the superior item i_m.
#ifndef CWM_RRSET_RR_SAMPLER_H_
#define CWM_RRSET_RR_SAMPLER_H_

#include <vector>

#include "graph/graph.h"
#include "model/allocation.h"
#include "model/utility.h"
#include "support/rng.h"

namespace cwm {

/// Dense per-node view of a fixed allocation S_P used by the marginal and
/// weighted samplers.
struct FixedAllocationIndex {
  /// is_seed[v] != 0 iff v hosts at least one fixed item seed.
  std::vector<char> is_seed;
  /// best_value[v] = max over items i seeded at v of E[U+(i)] (0 if none).
  std::vector<double> best_value;

  /// Builds the index for `sp` on a graph with `num_nodes` nodes.
  static FixedAllocationIndex Build(std::size_t num_nodes,
                                    const UtilityConfig& config,
                                    const Allocation& sp);
};

/// Reusable sampler with O(touched) per-sample cost (epoch-stamped visited
/// marks). Not thread-safe; one instance per worker.
class RrSampler {
 public:
  explicit RrSampler(const Graph& graph);

  /// Standard RR set. `out` receives the members (root always included).
  void SampleStandard(Rng& rng, std::vector<NodeId>* out);

  /// Marginal RR set (Algorithm 3): `out` is empty iff the BFS hit a node
  /// with blocked[v] != 0.
  void SampleMarginal(Rng& rng, const std::vector<char>& blocked,
                      std::vector<NodeId>* out);

  /// Weighted RR set (Definition 2). Grows level-by-level; at the first
  /// level containing fixed seeds, finishes that level and stops. Returns
  /// the *unnormalized* weight wmax_im - best_hit_value, where wmax_im
  /// must be E[U+(i_m)]. `out` receives the members.
  double SampleWeighted(Rng& rng, const FixedAllocationIndex& fixed,
                        double wmax_im, std::vector<NodeId>* out);

 private:
  bool Visit(NodeId v);  // true if first visit this epoch

  const Graph& graph_;
  uint32_t epoch_ = 0;
  std::vector<uint32_t> stamp_;
  std::vector<NodeId> queue_;
};

}  // namespace cwm

#endif  // CWM_RRSET_RR_SAMPLER_H_
