#include "rrset/node_selection.h"

#include <algorithm>
#include <queue>

#include "obs/phase.h"
#include "obs/trace.h"
#include "support/check.h"

namespace cwm {

GreedySelection SelectMaxCoverage(const RrCollection& rr,
                                  std::size_t budget) {
  ScopedPhaseTimer phase(Phase::kSelect);
  CWM_TRACE_SPAN("rr.select_nodes",
                 {{"rr_sets", rr.size()}, {"budget", budget}});
  const std::size_t n = rr.num_nodes();
  budget = std::min(budget, n);

  // gain[v] = sum of weights of not-yet-covered RR sets containing v.
  std::vector<double> gain(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    for (uint32_t id : rr.RrSetsOf(v)) gain[v] += rr.Weight(id);
  }
  std::vector<char> covered(rr.size(), 0);
  std::vector<char> taken(n, 0);

  // Lazy greedy: entries carry the gain at push time; an entry is stale if
  // the node's gain shrank since. Ties break toward smaller node id for
  // determinism.
  using Entry = std::pair<double, NodeId>;
  auto cmp = [](const Entry& a, const Entry& b) {
    return a.first != b.first ? a.first < b.first : a.second > b.second;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (NodeId v = 0; v < n; ++v) {
    if (gain[v] > 0.0) heap.push({gain[v], v});
  }

  GreedySelection out;
  out.seeds.reserve(budget);
  out.covered_prefix.reserve(budget);
  double covered_weight = 0.0;

  while (out.seeds.size() < budget && !heap.empty()) {
    const auto [g, v] = heap.top();
    heap.pop();
    if (taken[v]) continue;
    if (g > gain[v] + 1e-12) {
      // Stale: reinsert with the refreshed gain.
      if (gain[v] > 0.0) heap.push({gain[v], v});
      continue;
    }
    taken[v] = 1;
    covered_weight += gain[v];
    out.seeds.push_back(v);
    out.covered_prefix.push_back(covered_weight);
    // Mark v's RR sets covered and debit other members' gains.
    for (uint32_t id : rr.RrSetsOf(v)) {
      if (covered[id]) continue;
      covered[id] = 1;
      const double w = rr.Weight(id);
      for (NodeId u : rr.Members(id)) {
        gain[u] -= w;
      }
    }
  }

  // Fill remaining slots with zero-gain nodes (smallest ids first).
  for (NodeId v = 0; out.seeds.size() < budget && v < n; ++v) {
    if (!taken[v]) {
      taken[v] = 1;
      out.seeds.push_back(v);
      out.covered_prefix.push_back(covered_weight);
    }
  }
  CWM_CHECK(out.seeds.size() == budget);
  return out;
}

}  // namespace cwm
