#include "rrset/imm.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "obs/cancel.h"
#include "rrset/node_selection.h"
#include "rrset/rr_sampler.h"
#include "store/format.h"
#include "support/check.h"
#include "support/mathx.h"

namespace cwm {

namespace {

constexpr double kOneMinusInvE = 1.0 - 0.36787944117144232159552377016146;

double CoverageOfPrefix(const RrCollection& rr, const GreedySelection& sel,
                        std::size_t k, std::size_t n) {
  if (rr.size() == 0) return 0.0;
  return static_cast<double>(n) * sel.CoveredAt(k) /
         static_cast<double>(rr.size());
}

}  // namespace

double LambdaStar(std::size_t n, int b, double epsilon, double ell) {
  const double logn = std::log(static_cast<double>(n));
  const double alpha = std::sqrt(ell * logn + std::log(2.0));
  const double beta = std::sqrt(
      kOneMinusInvE * (LogBinomial(n, static_cast<uint64_t>(b)) + ell * logn +
                       std::log(2.0)));
  const double s = kOneMinusInvE * alpha + beta;
  return 2.0 * static_cast<double>(n) * s * s / (epsilon * epsilon);
}

double LambdaPrime(std::size_t n, int b, double eps_prime, double ell_prime) {
  const double logn = std::log(static_cast<double>(n));
  const double loglog2n =
      std::log(std::max(2.0, std::log2(static_cast<double>(n))));
  return (2.0 + 2.0 / 3.0 * eps_prime) *
         (LogBinomial(n, static_cast<uint64_t>(b)) + ell_prime * logn +
          loglog2n) *
         static_cast<double>(n) / (eps_prime * eps_prime);
}

uint64_t MarginalRrSourceId(std::vector<NodeId> prior_seeds) {
  std::sort(prior_seeds.begin(), prior_seeds.end());
  prior_seeds.erase(std::unique(prior_seeds.begin(), prior_seeds.end()),
                    prior_seeds.end());
  // Tagged so an empty blocked set still differs from the standard source.
  uint64_t h = 0x4D72675252ull;  // "MrgRR"
  const uint64_t count = prior_seeds.size();
  h = Fnv1a64(&count, sizeof(count), h);
  return Fnv1a64(prior_seeds.data(), prior_seeds.size() * sizeof(NodeId), h);
}

ImmResult RunImmDriver(std::size_t num_nodes,
                       const std::vector<int>& budget_levels,
                       const ImmParams& params,
                       const RrSourceFactory& source,
                       uint64_t source_id) {
  CWM_CHECK(!budget_levels.empty());
  CWM_CHECK(std::is_sorted(budget_levels.begin(), budget_levels.end()));
  CWM_CHECK(num_nodes >= 2);
  const std::size_t n = num_nodes;
  const double logn = std::log(static_cast<double>(n));
  const double eps = params.epsilon;
  const double eps_prime = std::sqrt(2.0) * eps;
  // ell adjustments of Algorithm 4/6: success probability splits between
  // the search phase and the final phase, and union-bounds over the
  // budget levels.
  const double ell_adj = params.ell + std::log(2.0) / logn;
  const double ell_prime =
      ell_adj +
      std::log(static_cast<double>(budget_levels.size())) / logn;

  RrPipeline pipeline(source, params.seed, params.num_threads);
  if (params.cache != nullptr && params.graph_hash != 0 && source_id != 0) {
    pipeline.BindCache(params.cache, params.graph_hash, source_id);
  }
  pipeline.BindCancel(params.cancel);
  RrCollection rr(n);
  // Sticky cancellation: once observed (by the pipeline's per-chunk polls
  // or between phases here), every later sampling request is a no-op and
  // the driver falls through to a structurally valid filler result — full
  // seed-set size, zero estimates — that the caller discards after
  // re-checking the flag. Never taken by uncancelled runs, so it cannot
  // change their results.
  bool cancel_seen = false;
  auto check_cancel = [&]() {
    if (!cancel_seen &&
        (pipeline.cancelled() ||
         (params.cancel != nullptr && CancelRequested(params.cancel)))) {
      cancel_seen = true;
    }
    return cancel_seen;
  };
  auto sample_until = [&](double theta) {
    if (cancel_seen) return;
    std::size_t want = static_cast<std::size_t>(std::ceil(theta));
    if (params.max_rr_sets > 0) want = std::min(want, params.max_rr_sets);
    pipeline.ExtendTo(&rr, want);
    check_cancel();
  };

  const int i_max = std::max(1, static_cast<int>(std::log2(
                                    static_cast<double>(n))) - 1);
  double theta_final = 0.0;
  int i = 1;
  for (int b : budget_levels) {
    const double lam_prime = LambdaPrime(n, b, eps_prime, ell_prime);
    const double lam_star = LambdaStar(n, b, eps, ell_adj);
    double lb = 1.0;
    while (i <= i_max) {
      const double x = static_cast<double>(n) / std::exp2(i);
      sample_until(lam_prime / x);
      if (cancel_seen) break;
      const GreedySelection sel = SelectMaxCoverage(rr, b);
      const double est = CoverageOfPrefix(rr, sel, sel.seeds.size(), n);
      if (est >= (1.0 + eps_prime) * x) {
        lb = est / (1.0 + eps_prime);
        break;
      }
      ++i;
    }
    if (cancel_seen) break;
    const double theta_b = lam_star / lb;
    // Keep the working collection at this level's theta so the next
    // level's statistical test sees at least as many samples (the
    // "budgetSwitch" sampling of Algorithm 4).
    sample_until(theta_b);
    theta_final = std::max(theta_final, theta_b);
  }

  // Final pass with fresh RR sets (fix of [17]). A cancelled run skips it
  // and selects over the just-cleared collection: SelectMaxCoverage pads
  // to the full budget with smallest untaken ids, so the result has the
  // shape every caller relies on (size, distinctness, range) at
  // O(budget) cost.
  rr.Clear();
  sample_until(theta_final);
  const int total_b = budget_levels.back();
  const GreedySelection sel = SelectMaxCoverage(rr, total_b);

  ImmResult result;
  result.seeds = sel.seeds;
  result.rr_count = rr.size();
  result.coverage_estimate = CoverageOfPrefix(rr, sel, sel.seeds.size(), n);
  result.prefix_estimates.reserve(budget_levels.size());
  for (int b : budget_levels) {
    result.prefix_estimates.push_back(
        CoverageOfPrefix(rr, sel, static_cast<std::size_t>(b), n));
  }
  return result;
}

ImmResult Imm(const Graph& graph, int budget, const ImmParams& params) {
  CWM_CHECK(budget >= 1);
  const RrSourceFactory source = [&graph]() -> RrSampleFn {
    auto sampler = std::make_shared<RrSampler>(graph);
    return [sampler](Rng& rng, std::vector<NodeId>* out) {
      sampler->SampleStandard(rng, out);
      return 1.0;
    };
  };
  return RunImmDriver(graph.num_nodes(), {budget}, params, source,
                      kStandardRrSourceId);
}

}  // namespace cwm
