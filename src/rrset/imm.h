// IMM-style sampling driver with martingale stopping (Tang et al. [44],
// including the corrected final fresh-sampling pass of Chen [17]), shared
// by three clients:
//
//  * Imm()        — classic single-item influence maximization (standard
//                   RR sets, unit weights);
//  * PrimaPlus()  — prefix-preserving marginal seed selection over several
//                   budget levels (rrset/prima_plus.h);
//  * SupGrd()     — weighted RR sets for marginal-welfare maximization
//                   (algo/sup_grd.h).
//
// The driver works in *normalized* coverage units: every RR set carries a
// weight in [0, 1] (unit for spread, w(R)/wmax for welfare), so the
// bounds of Lemma 7 / Eqs. (6)-(8) apply verbatim; callers rescale the
// returned estimate by their wmax.
//
// Sampling runs on the deterministic parallel pipeline (rr_pipeline.h):
// per-sample RNG streams derived from (ImmParams::seed, sample index), so
// seed sets and estimates are bit-identical at any ImmParams::num_threads.
#ifndef CWM_RRSET_IMM_H_
#define CWM_RRSET_IMM_H_

#include <atomic>
#include <vector>

#include "graph/graph.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_pipeline.h"
#include "support/rng.h"

namespace cwm {

class ArtifactCache;

/// Accuracy parameters shared by all RR-set algorithms (paper defaults
/// epsilon = 0.5, ell = 1; §6.1.3).
struct ImmParams {
  double epsilon = 0.5;
  double ell = 1.0;
  uint64_t seed = 0x1337u;
  /// Safety valve: never materialize more than this many RR sets (the
  /// theoretical theta can explode when OPT is near zero, e.g. when S_P
  /// already saturates the graph). 0 = unlimited.
  std::size_t max_rr_sets = 50'000'000;
  /// Worker threads for RR-set sampling (0 = hardware concurrency).
  /// Never affects results — only wall time. Callers running many IMM
  /// instances concurrently (the sweep engine) keep this at 1 unless the
  /// product of outer tasks and inner threads stays within the pool.
  unsigned num_threads = 1;
  /// Optional persistent RR cache (store/artifact_cache.h). Only consulted
  /// when `graph_hash` is nonzero AND the driver invocation supplies a
  /// sampler source id — drivers whose samplers cannot describe their
  /// provenance (e.g. per-iteration blocked masks) stay uncached. Results
  /// are bit-identical with or without a cache.
  ArtifactCache* cache = nullptr;
  /// Content hash of the graph being sampled (store/format.h's
  /// GraphContentHash); 0 = unknown, disables caching.
  uint64_t graph_hash = 0;
  /// Optional cooperative cancellation flag (obs/cancel.h), polled per
  /// sampling chunk inside the RR pipeline and between driver phases so a
  /// deadline fires within milliseconds, not at the next phase boundary.
  /// A cancelled driver run returns fast with structurally valid filler
  /// seeds (callers observing the flag must discard the result). Not
  /// owned; may be null. Never affects results of uncancelled runs.
  const std::atomic<bool>* cancel = nullptr;
};

/// Result of a driver run.
struct ImmResult {
  /// Selected nodes in greedy order; size = the last budget level.
  std::vector<NodeId> seeds;
  /// n/theta * M_R(seeds) over the final fresh collection — an unbiased
  /// estimate of the (normalized) objective of `seeds`. Multiply by wmax
  /// for welfare units.
  double coverage_estimate = 0.0;
  /// prefix_estimates[j] = the same estimate for the prefix of size
  /// budget_levels[j].
  std::vector<double> prefix_estimates;
  /// Number of RR sets in the final pass.
  std::size_t rr_count = 0;
};

/// Stable source id of the standard (unblocked) RR sampler; marginal
/// samplers derive theirs from the blocked set (MarginalRrSourceId).
inline constexpr uint64_t kStandardRrSourceId = 0x5374645252ull;  // "StdRR"

/// Source id of a marginal sampler blocked on `prior_seeds` (order
/// independent: the nodes are hashed in sorted order).
uint64_t MarginalRrSourceId(std::vector<NodeId> prior_seeds);

/// Runs the sampling + selection pipeline of Algorithms 4/6.
/// `budget_levels` must be ascending and non-empty; the returned seed set
/// has size budget_levels.back() and every prefix of size budget_levels[j]
/// is (1 - 1/e - epsilon)-optimal w.r.t. its own budget w.h.p.
/// `source` builds one RR sampler per worker (rr_pipeline.h).
/// `source_id` identifies the sampler for the persistent RR cache
/// (0 = this source is not cacheable; see ImmParams::cache).
ImmResult RunImmDriver(std::size_t num_nodes,
                       const std::vector<int>& budget_levels,
                       const ImmParams& params,
                       const RrSourceFactory& source,
                       uint64_t source_id = 0);

/// Classic IMM: seeds maximizing expected spread sigma(S), |S| = budget.
/// Used to place the fixed inferior-item seeds of configurations C5/C6 and
/// as a component of baselines.
ImmResult Imm(const Graph& graph, int budget, const ImmParams& params);

/// lambda* of Eq. (6) (normalized units, natural logs).
double LambdaStar(std::size_t n, int b, double epsilon, double ell);
/// lambda' of Eq. (8).
double LambdaPrime(std::size_t n, int b, double eps_prime, double ell_prime);

}  // namespace cwm

#endif  // CWM_RRSET_IMM_H_
