#include "rrset/rr_collection.h"

#include "support/check.h"

namespace cwm {

uint32_t RrCollection::Add(std::span<const NodeId> members, double weight) {
  CWM_CHECK(weight >= 0.0 && weight <= 1.0 + 1e-9);
  const uint32_t id = static_cast<uint32_t>(size());
  rr_members_.insert(rr_members_.end(), members.begin(), members.end());
  rr_offsets_.push_back(rr_members_.size());
  rr_weights_.push_back(weight);
  total_weight_ += weight;
  for (NodeId v : members) {
    CWM_CHECK(v < node_to_rr_.size());
    node_to_rr_[v].push_back(id);
  }
  return id;
}

void RrCollection::Clear() {
  rr_offsets_.assign(1, 0);
  rr_members_.clear();
  rr_weights_.clear();
  total_weight_ = 0.0;
  for (auto& list : node_to_rr_) list.clear();
}

}  // namespace cwm
