#include "rrset/rr_collection.h"

#include "support/check.h"

namespace cwm {

uint32_t RrCollection::Add(std::span<const NodeId> members, double weight) {
  CWM_CHECK(weight >= 0.0 && weight <= 1.0 + 1e-9);
  const uint32_t id = static_cast<uint32_t>(size());
  for (NodeId v : members) CWM_CHECK(v < num_nodes_);
  rr_members_.insert(rr_members_.end(), members.begin(), members.end());
  rr_offsets_.push_back(rr_members_.size());
  rr_weights_.push_back(weight);
  total_weight_ += weight;
  return id;
}

void RrCollection::Merge(const RrShard& shard) {
  for (NodeId v : shard.members) CWM_CHECK(v < num_nodes_);
  const uint64_t base = rr_members_.size();
  rr_members_.insert(rr_members_.end(), shard.members.begin(),
                     shard.members.end());
  rr_offsets_.reserve(rr_offsets_.size() + shard.size());
  for (std::size_t s = 1; s < shard.offsets.size(); ++s) {
    rr_offsets_.push_back(base + shard.offsets[s]);
  }
  rr_weights_.insert(rr_weights_.end(), shard.weights.begin(),
                     shard.weights.end());
  for (double w : shard.weights) {
    CWM_CHECK(w >= 0.0 && w <= 1.0 + 1e-9);
    total_weight_ += w;
  }
}

void RrCollection::BuildIndex() const {
  // Counting sort of (node -> RR id) pairs; ids emitted ascending, so each
  // node's list is sorted.
  node_to_rr_offsets_.assign(num_nodes_ + 1, 0);
  for (NodeId v : rr_members_) node_to_rr_offsets_[v + 1]++;
  for (std::size_t v = 0; v < num_nodes_; ++v) {
    node_to_rr_offsets_[v + 1] += node_to_rr_offsets_[v];
  }
  node_to_rr_ids_.resize(rr_members_.size());
  std::vector<uint64_t> cursor(node_to_rr_offsets_.begin(),
                               node_to_rr_offsets_.end() - 1);
  const std::size_t sets = size();
  for (std::size_t id = 0; id < sets; ++id) {
    for (uint64_t m = rr_offsets_[id]; m < rr_offsets_[id + 1]; ++m) {
      node_to_rr_ids_[cursor[rr_members_[m]]++] =
          static_cast<uint32_t>(id);
    }
  }
  indexed_sets_ = sets;
}

void RrCollection::Clear() {
  rr_offsets_.assign(1, 0);
  rr_members_.clear();
  rr_weights_.clear();
  total_weight_ = 0.0;
  indexed_sets_ = 0;
  node_to_rr_offsets_.assign(num_nodes_ + 1, 0);
  node_to_rr_ids_.clear();
}

}  // namespace cwm
