// Greedy weighted max-coverage seed selection (Algorithm 5, NodeSelection).
//
// Selects up to b nodes greedily by marginal covered weight over an
// RrCollection, with CELF-style lazy evaluation (valid because coverage
// gain is submodular in the selected set). Returns seeds in greedy order —
// the order is what gives PRIMA+ its prefix-preservation property
// (Definition 1) and SeqGRD/MaxGRD their per-budget prefixes.
#ifndef CWM_RRSET_NODE_SELECTION_H_
#define CWM_RRSET_NODE_SELECTION_H_

#include <vector>

#include "rrset/rr_collection.h"

namespace cwm {

/// Result of a greedy max-coverage run.
struct GreedySelection {
  /// Selected nodes in greedy (descending marginal gain) order.
  std::vector<NodeId> seeds;
  /// covered_prefix[k] = total covered weight after the first k+1 seeds;
  /// covered_prefix.back() is M_R(seeds).
  std::vector<double> covered_prefix;

  /// Covered weight of the first `k` seeds (0 for k == 0).
  double CoveredAt(std::size_t k) const {
    return k == 0 ? 0.0 : covered_prefix[k - 1];
  }
};

/// Greedy max-coverage of `budget` seeds over `rr`. If fewer than `budget`
/// nodes have positive gain, remaining slots are filled with the smallest
/// untaken node ids (gain 0) so callers always receive `budget` seeds, as
/// SeqGRD requires to exhaust item budgets.
GreedySelection SelectMaxCoverage(const RrCollection& rr, std::size_t budget);

}  // namespace cwm

#endif  // CWM_RRSET_NODE_SELECTION_H_
