#include "rrset/prima_plus.h"

#include <algorithm>
#include <memory>

#include "rrset/rr_sampler.h"
#include "support/check.h"

namespace cwm {

ImmResult PrimaPlus(const Graph& graph,
                    const std::vector<NodeId>& prior_seeds,
                    const std::vector<int>& budgets, int total_b,
                    const ImmParams& params) {
  CWM_CHECK(total_b >= 1);
  CWM_CHECK(!budgets.empty());

  // Budget levels: sorted unique budgets, with total_b as the final level.
  std::vector<int> levels = budgets;
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  levels.erase(std::remove_if(levels.begin(), levels.end(),
                              [&](int b) { return b <= 0 || b >= total_b; }),
               levels.end());
  levels.push_back(total_b);

  // The blocked mask is shared immutable state; each worker gets its own
  // sampler (mutable BFS scratch).
  auto blocked = std::make_shared<std::vector<char>>(graph.num_nodes(), 0);
  for (NodeId v : prior_seeds) {
    CWM_CHECK(v < graph.num_nodes());
    (*blocked)[v] = 1;
  }
  const RrSourceFactory source = [&graph, blocked]() -> RrSampleFn {
    auto sampler = std::make_shared<RrSampler>(graph);
    return [sampler, blocked](Rng& rng, std::vector<NodeId>* out) {
      sampler->SampleMarginal(rng, *blocked, out);
      return 1.0;
    };
  };
  ImmResult result = RunImmDriver(graph.num_nodes(), levels, params, source,
                                  MarginalRrSourceId(prior_seeds));

  // Blocked nodes appear in no marginal RR set, so greedy never picks
  // them; only the zero-gain budget filler can. Swap any such filler for
  // the smallest unblocked, unused node — a prior seed must never be
  // returned as a new seed.
  std::vector<char> used(graph.num_nodes(), 0);
  for (NodeId s : result.seeds) used[s] = 1;
  NodeId cursor = 0;
  for (NodeId& s : result.seeds) {
    if (!(*blocked)[s]) continue;
    while (cursor < graph.num_nodes() &&
           ((*blocked)[cursor] || used[cursor])) {
      ++cursor;
    }
    CWM_CHECK_MSG(cursor < graph.num_nodes(),
                  "budget exceeds unblocked node count");
    used[cursor] = 1;
    s = cursor;
  }
  return result;
}

}  // namespace cwm
