// PRIMA+ (§5.2.1, Algorithm 4): seed selection that is *prefix-preserving
// on marginals* (Definition 1).
//
// Given a fixed prior seed set S_P and a budget vector b⃗, PRIMA+ returns
// an ordered set S of b nodes such that, w.h.p., the whole set and every
// prefix of size b_i are (1 - 1/e - epsilon)-approximately optimal w.r.t.
// the *marginal* spread sigma(. | S_P). Marginality is achieved by the
// modified RR construction of Algorithm 3: any reverse BFS that touches
// S_P yields the empty sample.
//
// SeqGRD calls this with b = sum of budgets; MaxGRD with b = max budget.
#ifndef CWM_RRSET_PRIMA_PLUS_H_
#define CWM_RRSET_PRIMA_PLUS_H_

#include <vector>

#include "graph/graph.h"
#include "model/allocation.h"
#include "rrset/imm.h"

namespace cwm {

/// Runs PRIMA+. `budgets` are the per-item budgets (the prefix levels to
/// preserve); `total_b` is the number of seeds to return. `prior_seeds`
/// are the seed *nodes* of S_P (item identity is irrelevant for spread).
/// Returns seeds in greedy order plus marginal-spread estimates per level.
ImmResult PrimaPlus(const Graph& graph,
                    const std::vector<NodeId>& prior_seeds,
                    const std::vector<int>& budgets, int total_b,
                    const ImmParams& params);

}  // namespace cwm

#endif  // CWM_RRSET_PRIMA_PLUS_H_
