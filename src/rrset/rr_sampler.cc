#include "rrset/rr_sampler.h"

#include <algorithm>

namespace cwm {

FixedAllocationIndex FixedAllocationIndex::Build(std::size_t num_nodes,
                                                 const UtilityConfig& config,
                                                 const Allocation& sp) {
  FixedAllocationIndex out;
  out.is_seed.assign(num_nodes, 0);
  out.best_value.assign(num_nodes, 0.0);
  for (ItemId i = 0; i < sp.num_items(); ++i) {
    const double value = config.ExpectedTruncatedUtility(i);
    for (NodeId v : sp.SeedsOf(i)) {
      CWM_CHECK(v < num_nodes);
      out.is_seed[v] = 1;
      out.best_value[v] = std::max(out.best_value[v], value);
    }
  }
  return out;
}

RrSampler::RrSampler(const Graph& graph)
    : graph_(graph), stamp_(graph.num_nodes(), 0) {}

bool RrSampler::Visit(NodeId v) {
  if (stamp_[v] == epoch_) return false;
  stamp_[v] = epoch_;
  return true;
}

void RrSampler::SampleStandard(Rng& rng, std::vector<NodeId>* out) {
  out->clear();
  ++epoch_;
  const NodeId root = static_cast<NodeId>(rng.NextBounded(graph_.num_nodes()));
  Visit(root);
  out->push_back(root);
  for (std::size_t head = 0; head < out->size(); ++head) {
    const NodeId u = (*out)[head];
    for (const InEdge& e : graph_.InEdges(u)) {
      if (!rng.NextBernoulli(e.prob)) continue;
      if (!Visit(e.from)) continue;
      out->push_back(e.from);
    }
  }
}

void RrSampler::SampleMarginal(Rng& rng, const std::vector<char>& blocked,
                               std::vector<NodeId>* out) {
  out->clear();
  ++epoch_;
  const NodeId root = static_cast<NodeId>(rng.NextBounded(graph_.num_nodes()));
  if (blocked[root]) return;  // zeroed immediately
  Visit(root);
  out->push_back(root);
  for (std::size_t head = 0; head < out->size(); ++head) {
    const NodeId u = (*out)[head];
    for (const InEdge& e : graph_.InEdges(u)) {
      if (!rng.NextBernoulli(e.prob)) continue;
      if (!Visit(e.from)) continue;
      if (blocked[e.from]) {
        // Hitting S_P zeroes the whole sample (Algorithm 3, line 4-5).
        out->clear();
        return;
      }
      out->push_back(e.from);
    }
  }
}

double RrSampler::SampleWeighted(Rng& rng, const FixedAllocationIndex& fixed,
                                 double wmax_im, std::vector<NodeId>* out) {
  out->clear();
  ++epoch_;
  queue_.clear();
  const NodeId root = static_cast<NodeId>(rng.NextBounded(graph_.num_nodes()));
  Visit(root);
  queue_.push_back(root);
  double best_hit = -1.0;  // best fixed-item value among hit S_P seeds
  if (fixed.is_seed[root]) best_hit = fixed.best_value[root];

  std::size_t level_begin = 0;
  while (level_begin < queue_.size() && best_hit < 0.0) {
    const std::size_t level_end = queue_.size();
    for (std::size_t idx = level_begin; idx < level_end; ++idx) {
      const NodeId u = queue_[idx];
      for (const InEdge& e : graph_.InEdges(u)) {
        if (!rng.NextBernoulli(e.prob)) continue;
        if (!Visit(e.from)) continue;
        queue_.push_back(e.from);
        if (fixed.is_seed[e.from]) {
          // Complete this level (so all equally-near S_P seeds count for
          // the weight) and then stop expanding.
          best_hit = std::max(best_hit, fixed.best_value[e.from]);
        }
      }
    }
    level_begin = level_end;
  }
  out->assign(queue_.begin(), queue_.end());
  const double weight = best_hit < 0.0 ? wmax_im : wmax_im - best_hit;
  return std::max(0.0, weight);
}

}  // namespace cwm
