// Storage for (weighted) reverse-reachable set collections.
//
// A collection R of RR sets supports the coverage estimator at the heart of
// IMM-family algorithms: M_R(S) = sum over R in R of w(R) * I[S covers R]
// (§5.3, Lemma 6). Weights are normalized by the caller to [0, 1] so the
// martingale concentration bounds apply unchanged (Lemma 7's x_i).
//
// Empty RR sets are first-class citizens: the marginal sampler (Algorithm 3)
// yields the empty set whenever a reverse BFS hits the fixed seed set S_P,
// and those samples still count toward the sample-size target theta.
//
// Layout: RR members live in one flat CSR array (rr_offsets_/rr_members_),
// and the node -> RR inverted index is a second flat CSR
// (node_to_rr_offsets_/node_to_rr_ids_) rebuilt by counting sort whenever
// sets were appended since the last build. The rebuild visits RR ids in
// ascending order, so each node's id list is sorted — exactly the order the
// old per-node vector<vector> accumulated — while the flat layout removes
// per-node allocation and keeps the greedy max-coverage scan cache-friendly.
//
// Parallel producers append into private RrShards (no inverted index, no
// node-universe allocation) which are merged single-threaded in a
// deterministic order; see rrset/rr_pipeline.h.
#ifndef CWM_RRSET_RR_COLLECTION_H_
#define CWM_RRSET_RR_COLLECTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace cwm {

/// A lightweight, append-only batch of weighted RR sets produced by one
/// worker/chunk. Cheap to construct (no per-node state), merged into an
/// RrCollection with RrCollection::Merge.
struct RrShard {
  std::vector<uint64_t> offsets{0};
  std::vector<NodeId> members;
  std::vector<double> weights;

  /// Appends one RR set (possibly empty) with normalized weight.
  void Add(std::span<const NodeId> set, double weight) {
    members.insert(members.end(), set.begin(), set.end());
    offsets.push_back(members.size());
    weights.push_back(weight);
  }

  std::size_t size() const { return weights.size(); }

  void Clear() {
    offsets.assign(1, 0);
    members.clear();
    weights.clear();
  }
};

/// Append-only collection of weighted RR sets with a flat CSR node -> RR
/// inverted index (used by the greedy max-coverage selection). Appends and
/// reads are single-threaded; parallel producers fill RrShards and Merge
/// them in a deterministic order.
class RrCollection {
 public:
  /// `num_nodes` sizes the inverted index.
  explicit RrCollection(std::size_t num_nodes)
      : num_nodes_(num_nodes), node_to_rr_offsets_(num_nodes + 1, 0) {}

  /// Adds one RR set with normalized weight in [0, 1]. `members` may be
  /// empty (a zeroed marginal sample). Returns the new RR id.
  uint32_t Add(std::span<const NodeId> members, double weight);

  /// Appends every RR set of `shard`, in shard order. Merging the same
  /// shards in the same order yields the same collection regardless of
  /// how many workers produced them.
  void Merge(const RrShard& shard);

  /// Number of RR sets, including empty ones (the theta denominator).
  std::size_t size() const { return rr_weights_.size(); }

  /// Total member entries across all RR sets (memory/telemetry).
  std::size_t TotalMembers() const { return rr_members_.size(); }

  /// Members of RR set `id`.
  std::span<const NodeId> Members(uint32_t id) const {
    return {rr_members_.data() + rr_offsets_[id],
            rr_members_.data() + rr_offsets_[id + 1]};
  }

  /// Normalized weight of RR set `id`.
  double Weight(uint32_t id) const { return rr_weights_[id]; }

  /// Sum of all weights (the maximum possible coverage).
  double TotalWeight() const { return total_weight_; }

  /// RR ids containing node `v`, ascending. Rebuilds the inverted index if
  /// sets were appended since the last build (O(total members), amortized
  /// over the sampling epoch). Not safe to call concurrently with appends
  /// or with a first post-append call on another thread.
  std::span<const uint32_t> RrSetsOf(NodeId v) const {
    if (indexed_sets_ != size()) BuildIndex();
    return {node_to_rr_ids_.data() + node_to_rr_offsets_[v],
            node_to_rr_ids_.data() + node_to_rr_offsets_[v + 1]};
  }

  std::size_t num_nodes() const { return num_nodes_; }

  // Raw CSR sections in storage order, exactly as persisted by the
  // artifact store (store/rr_store.h): offsets has size()+1 entries, set
  // k's members span [offsets[k], offsets[k+1]).
  std::span<const uint64_t> RawOffsets() const { return rr_offsets_; }
  std::span<const NodeId> RawMembers() const { return rr_members_; }
  std::span<const double> RawWeights() const { return rr_weights_; }

  /// Drops all RR sets but keeps the node universe (IMM's fresh final
  /// sampling pass, following the fix of Chen [17]).
  void Clear();

 private:
  void BuildIndex() const;

  std::size_t num_nodes_;
  std::vector<uint64_t> rr_offsets_{0};
  std::vector<NodeId> rr_members_;
  std::vector<double> rr_weights_;
  double total_weight_ = 0.0;

  // Inverted index (lazily rebuilt CSR); mutable so reads stay const.
  mutable std::size_t indexed_sets_ = 0;
  mutable std::vector<uint64_t> node_to_rr_offsets_;
  mutable std::vector<uint32_t> node_to_rr_ids_;
};

}  // namespace cwm

#endif  // CWM_RRSET_RR_COLLECTION_H_
