// Storage for (weighted) reverse-reachable set collections.
//
// A collection R of RR sets supports the coverage estimator at the heart of
// IMM-family algorithms: M_R(S) = sum over R in R of w(R) * I[S covers R]
// (§5.3, Lemma 6). Weights are normalized by the caller to [0, 1] so the
// martingale concentration bounds apply unchanged (Lemma 7's x_i).
//
// Empty RR sets are first-class citizens: the marginal sampler (Algorithm 3)
// yields the empty set whenever a reverse BFS hits the fixed seed set S_P,
// and those samples still count toward the sample-size target theta.
#ifndef CWM_RRSET_RR_COLLECTION_H_
#define CWM_RRSET_RR_COLLECTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace cwm {

/// Append-only collection of weighted RR sets with a node -> RR inverted
/// index (built incrementally; used by the greedy max-coverage selection).
class RrCollection {
 public:
  /// `num_nodes` sizes the inverted index.
  explicit RrCollection(std::size_t num_nodes)
      : node_to_rr_(num_nodes) {}

  /// Adds one RR set with normalized weight in [0, 1]. `members` may be
  /// empty (a zeroed marginal sample). Returns the new RR id.
  uint32_t Add(std::span<const NodeId> members, double weight);

  /// Number of RR sets, including empty ones (the theta denominator).
  std::size_t size() const { return rr_offsets_.size() - 1; }

  /// Total member entries across all RR sets (memory/telemetry).
  std::size_t TotalMembers() const { return rr_members_.size(); }

  /// Members of RR set `id`.
  std::span<const NodeId> Members(uint32_t id) const {
    return {rr_members_.data() + rr_offsets_[id],
            rr_members_.data() + rr_offsets_[id + 1]};
  }

  /// Normalized weight of RR set `id`.
  double Weight(uint32_t id) const { return rr_weights_[id]; }

  /// Sum of all weights (the maximum possible coverage).
  double TotalWeight() const { return total_weight_; }

  /// RR ids containing node `v`.
  const std::vector<uint32_t>& RrSetsOf(NodeId v) const {
    return node_to_rr_[v];
  }

  std::size_t num_nodes() const { return node_to_rr_.size(); }

  /// Drops all RR sets but keeps the node universe (IMM's fresh final
  /// sampling pass, following the fix of Chen [17]).
  void Clear();

 private:
  std::vector<uint64_t> rr_offsets_{0};
  std::vector<NodeId> rr_members_;
  std::vector<double> rr_weights_;
  std::vector<std::vector<uint32_t>> node_to_rr_;
  double total_weight_ = 0.0;
};

}  // namespace cwm

#endif  // CWM_RRSET_RR_COLLECTION_H_
