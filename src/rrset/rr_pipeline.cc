#include "rrset/rr_pipeline.h"

#include <algorithm>
#include <utility>

#include "support/check.h"
#include "support/thread_pool.h"

namespace cwm {

RrPipeline::RrPipeline(RrSourceFactory factory, uint64_t seed,
                       unsigned num_threads)
    : factory_(std::move(factory)),
      seed_(seed),
      num_threads_(num_threads == 0 ? DefaultThreads() : num_threads) {
  CWM_CHECK(factory_ != nullptr);
  workers_.resize(num_threads_);
  scratch_.resize(num_threads_);
}

void RrPipeline::ExtendTo(RrCollection* rr, std::size_t target) {
  if (rr->size() >= target) return;
  const std::size_t fresh = target - rr->size();
  const std::size_t num_chunks = (fresh + kChunkSize - 1) / kChunkSize;
  std::vector<RrShard> shards(num_chunks);

  ParallelForWorkers(
      num_chunks,
      [&](std::size_t worker, std::size_t chunk) {
        RrSampleFn& sample = workers_[worker];
        if (!sample) sample = factory_();
        std::vector<NodeId>& members = scratch_[worker];
        RrShard& shard = shards[chunk];
        const std::size_t begin = chunk * kChunkSize;
        const std::size_t end = std::min(fresh, begin + kChunkSize);
        for (std::size_t j = begin; j < end; ++j) {
          // The sample's whole randomness budget comes from its global
          // index, never from worker state: sample k is reproducible in
          // isolation.
          Rng rng(MixHash(seed_, kRrSampleTag ^ (next_sample_ + j)));
          const double weight = sample(rng, &members);
          shard.Add(members, weight);
        }
      },
      num_threads_);

  next_sample_ += fresh;
  for (const RrShard& shard : shards) rr->Merge(shard);
}

}  // namespace cwm
