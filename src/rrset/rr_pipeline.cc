#include "rrset/rr_pipeline.h"

#include <algorithm>
#include <utility>

#include "obs/cancel.h"
#include "obs/phase.h"
#include "obs/trace.h"
#include "store/artifact_cache.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace cwm {

RrPipeline::RrPipeline(RrSourceFactory factory, uint64_t seed,
                       unsigned num_threads)
    : factory_(std::move(factory)),
      seed_(seed),
      num_threads_(num_threads == 0 ? DefaultThreads() : num_threads) {
  CWM_CHECK(factory_ != nullptr);
  workers_.resize(num_threads_);
  scratch_.resize(num_threads_);
}

RrPipeline::~RrPipeline() = default;

void RrPipeline::BindCache(ArtifactCache* cache, uint64_t graph_hash,
                           uint64_t source_id) {
  CWM_CHECK_MSG(next_sample_ == 0,
                "BindCache must precede the first ExtendTo");
  cache_ = cache;
  graph_hash_ = graph_hash;
  source_id_ = source_id;
}

void RrPipeline::ServeFromCache(RrCollection* rr, std::size_t target) {
  // Era bookkeeping: the era's first sample has global index
  // next_sample_ - rr->size(); it changes exactly when the caller Clears
  // the collection (IMM's fresh final pass) or starts a new collection.
  const uint64_t era_start = next_sample_ - rr->size();
  if (!era_valid_ || era_start != era_start_) {
    // Era provenance is derived from the collection's size, which is only
    // sound if every era's samples land in one collection that started
    // empty. Interleaving collections would store misattributed eras and
    // silently poison the persistent cache — abort instead.
    CWM_CHECK_MSG(rr->size() == 0,
                  "cached RrPipeline eras must start from an empty "
                  "RrCollection (one collection per era)");
    era_valid_ = true;
    era_start_ = era_start;
    era_stored_ = 0;
    era_data_.reset();
    era_collection_ = rr;
    const RrProvenance expect{.graph_hash = graph_hash_,
                              .sample_seed = seed_,
                              .source_id = source_id_,
                              .era_start = era_start};
    // Degraded-mode contract: a corrupt or unreadable era comes back as
    // nullopt (the cache quarantines it), so the pipeline falls through
    // to resampling below — bit-identical, because sample k's RNG stream
    // is derived from (seed, k), never from what the cache held.
    std::optional<RrEraData> loaded = cache_->LoadRrEra(
        RrRecipeHash(graph_hash_, source_id_, seed_, era_start), expect,
        rr->num_nodes());
    if (loaded.has_value()) {
      era_data_ = std::make_unique<RrEraData>(std::move(*loaded));
      era_stored_ = era_data_->num_sets();
    }
  }
  CWM_CHECK_MSG(rr == era_collection_,
                "cached RrPipeline fed a different RrCollection mid-era");
  if (era_data_ == nullptr) return;

  // Serve cached samples [rr->size(), min(target, cached count)). Replay
  // through Add in sample order, so weight accumulation and member layout
  // are bit-identical to the cold path's chunk-ordered merges.
  const std::size_t upto =
      std::min<std::size_t>(target, era_data_->num_sets());
  for (std::size_t k = rr->size(); k < upto; ++k) {
    const uint64_t begin = era_data_->offsets[k];
    const uint64_t end = era_data_->offsets[k + 1];
    rr->Add({era_data_->members.data() + begin,
             era_data_->members.data() + end},
            era_data_->weights[k]);
    ++next_sample_;
  }
  // Fully consumed: the arrays are dead weight (eras only grow past them).
  if (rr->size() >= era_data_->num_sets()) era_data_.reset();
}

void RrPipeline::ExtendTo(RrCollection* rr, std::size_t target) {
  ScopedPhaseTimer phase(Phase::kSample);
  std::size_t served = 0;
  if (cache_ != nullptr && rr->size() < target) {
    const std::size_t before = rr->size();
    CWM_TRACE_SPAN("rr.serve_cache", {{"have", before}, {"target", target}});
    ServeFromCache(rr, target);
    served = rr->size() - before;
  }
  if (rr->size() >= target) return;
  if (cancel_ != nullptr && CancelRequested(cancel_)) {
    cancel_observed_.store(true, std::memory_order_relaxed);
  }
  if (cancelled()) return;
  const std::size_t fresh = target - rr->size();
  const std::size_t num_chunks = (fresh + kChunkSize - 1) / kChunkSize;
  std::vector<RrShard> shards(num_chunks);

  CWM_TRACE_SPAN("rr.sample_era", {{"era_start", next_sample_},
                                   {"count", fresh},
                                   {"cache_served", served},
                                   {"seed", seed_}});
  ParallelForWorkers(
      num_chunks,
      [&](std::size_t worker, std::size_t chunk) {
        // Fine-grained cancellation: one poll per chunk (~kChunkSize
        // samples) bounds the latency between a deadline firing and the
        // pipeline going quiet, without a per-sample atomic in the hot
        // loop. Skipped chunks leave their shard empty; the collection is
        // then not the canonical prefix, which is fine because a
        // cancelled run's output is discarded and never cached.
        if (cancel_ != nullptr && CancelRequested(cancel_)) {
          cancel_observed_.store(true, std::memory_order_relaxed);
          return;
        }
        RrSampleFn& sample = workers_[worker];
        if (!sample) sample = factory_();
        std::vector<NodeId>& members = scratch_[worker];
        RrShard& shard = shards[chunk];
        const std::size_t begin = chunk * kChunkSize;
        const std::size_t end = std::min(fresh, begin + kChunkSize);
        for (std::size_t j = begin; j < end; ++j) {
          // The sample's whole randomness budget comes from its global
          // index, never from worker state: sample k is reproducible in
          // isolation.
          Rng rng(MixHash(seed_, kRrSampleTag ^ (next_sample_ + j)));
          const double weight = sample(rng, &members);
          shard.Add(members, weight);
        }
      },
      num_threads_);

  next_sample_ += fresh;
  for (const RrShard& shard : shards) rr->Merge(shard);

  // Persist the grown era. Epochs grow geometrically, so rewriting the
  // whole collection each time costs at most ~2x the final bytes. Never
  // after a cancellation: skipped chunks mean the collection is not the
  // canonical prefix its provenance would claim, and storing it would
  // poison the persistent cache for every later run.
  if (cache_ != nullptr && !cancelled() && rr->size() > era_stored_) {
    // ServeFromCache ran earlier in this call and validated that `rr` is
    // the era's single collection, so era_start_ is its true provenance.
    const RrProvenance provenance{.graph_hash = graph_hash_,
                                  .sample_seed = seed_,
                                  .source_id = source_id_,
                                  .era_start = era_start_};
    const Status stored = cache_->StoreRrEra(
        RrRecipeHash(graph_hash_, source_id_, seed_, era_start_),
        provenance, *rr);
    // A failed store only loses the warm start; sampling stays correct.
    if (stored.ok()) era_stored_ = rr->size();
  }
}

}  // namespace cwm
