// Items and itemsets.
//
// The paper evaluates at most five concurrent items; we support up to 16.
// An ItemSet is a bitmask, which makes the per-world bundle-utility table
// (2^m doubles) and the constrained adoption argmax of §3 exact and cheap.
#ifndef CWM_MODEL_ITEMS_H_
#define CWM_MODEL_ITEMS_H_

#include <bit>
#include <cstdint>

#include "support/check.h"

namespace cwm {

/// Item identifier: dense in [0, num_items).
using ItemId = int;

/// Bitmask of items; bit i set <=> item i in the set.
using ItemSet = uint16_t;

/// Maximum number of concurrent items supported by the bitmask encoding.
inline constexpr int kMaxItems = 16;

/// The empty itemset.
inline constexpr ItemSet kEmptyItemSet = 0;

/// Singleton set {i}.
inline ItemSet SingletonSet(ItemId i) {
  CWM_CHECK(i >= 0 && i < kMaxItems);
  return static_cast<ItemSet>(1u << i);
}

inline bool Contains(ItemSet s, ItemId i) {
  return (s >> i) & 1u;
}

inline ItemSet WithItem(ItemSet s, ItemId i) {
  return static_cast<ItemSet>(s | SingletonSet(i));
}

inline int SetSize(ItemSet s) { return std::popcount(s); }

/// Full set {0, ..., num_items-1}.
inline ItemSet FullSet(int num_items) {
  CWM_CHECK(num_items >= 0 && num_items <= kMaxItems);
  return static_cast<ItemSet>((1u << num_items) - 1u);
}

/// Calls fn(ItemId) for every item in `s`, ascending.
template <typename Fn>
void ForEachItem(ItemSet s, Fn fn) {
  while (s != 0) {
    const int i = std::countr_zero(s);
    fn(static_cast<ItemId>(i));
    s = static_cast<ItemSet>(s & (s - 1));
  }
}

/// Calls fn(ItemSet) for every subset of `s`, including empty and s itself.
/// Standard submask-enumeration; visits 2^|s| sets.
template <typename Fn>
void ForEachSubset(ItemSet s, Fn fn) {
  ItemSet sub = s;
  for (;;) {
    fn(sub);
    if (sub == 0) break;
    sub = static_cast<ItemSet>((sub - 1) & s);
  }
}

}  // namespace cwm

#endif  // CWM_MODEL_ITEMS_H_
