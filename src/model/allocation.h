// Seed allocations and budget vectors.
//
// An allocation S ⊆ V × I assigns items to seed nodes (§3). The budget
// vector b⃗ caps |S_i| per item. Allocations are the unit the algorithms
// produce and the simulator consumes.
#ifndef CWM_MODEL_ALLOCATION_H_
#define CWM_MODEL_ALLOCATION_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "model/items.h"

namespace cwm {

/// Per-item seed budgets; budgets[i] is b_i of the paper.
using BudgetVector = std::vector<int>;

/// A seed allocation S: for each item, the list of seed nodes.
class Allocation {
 public:
  Allocation() = default;
  /// Creates an empty allocation over `num_items` items.
  explicit Allocation(int num_items) : seeds_(num_items) {}

  int num_items() const { return static_cast<int>(seeds_.size()); }

  /// Adds the pair (v, i) to the allocation. Duplicate pairs are ignored.
  void Add(NodeId v, ItemId i);

  /// Adds every node of `nodes` as a seed of item `i`.
  void AddAll(const std::vector<NodeId>& nodes, ItemId i);

  /// S_i — the seeds of item `i`.
  const std::vector<NodeId>& SeedsOf(ItemId i) const {
    CWM_CHECK(i >= 0 && i < num_items());
    return seeds_[i];
  }

  /// S — the union of all items' seed nodes (deduplicated, sorted).
  std::vector<NodeId> SeedNodes() const;

  /// Number of (node, item) pairs.
  std::size_t TotalPairs() const;

  bool Empty() const { return TotalPairs() == 0; }

  /// Itemset seeded at each node, as a dense map keyed by node id; nodes
  /// without seeds map to the empty set. Used to initialize desire sets at
  /// t = 1.
  std::vector<std::pair<NodeId, ItemSet>> SeededItemsets() const;

  /// Union of two allocations over the same item universe.
  static Allocation Union(const Allocation& a, const Allocation& b);

  /// True if |S_i| <= budgets[i] for every item.
  bool RespectsBudgets(const BudgetVector& budgets) const;

  /// Debug rendering, e.g. "{i0: [3, 7], i1: [5]}".
  std::string ToString() const;

 private:
  std::vector<std::vector<NodeId>> seeds_;
};

}  // namespace cwm

#endif  // CWM_MODEL_ALLOCATION_H_
