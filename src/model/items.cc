#include "model/items.h"

// Header-only helpers; translation unit anchors the module.
namespace cwm {}  // namespace cwm
