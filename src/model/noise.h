// Zero-mean noise distributions for item utilities (the N(.) term of the
// UIC model, §3). Each item has an independent noise law; noise is sampled
// once per possible world and is additive over a bundle's items.
//
// Supported laws:
//  * Zero          — deterministic utilities (used by the hardness gadget
//                    and the real-item configuration).
//  * Normal(sigma) — the N(0,1) noise of configurations C1-C4 (Table 3).
//  * ClampedNormal(sigma, bound)
//                  — N(0,sigma) clamped to [-bound, bound]. Symmetric
//                    clamping preserves the zero mean; bounded support is
//                    the "practical way to bound the noise" that §5.3/§6
//                    require for the superior-item condition (C5/C6).
//  * Uniform(a)    — Uniform(-a, a).
#ifndef CWM_MODEL_NOISE_H_
#define CWM_MODEL_NOISE_H_

#include "support/rng.h"

namespace cwm {

/// A zero-mean noise distribution. Value type; cheap to copy.
class NoiseDistribution {
 public:
  enum class Kind { kZero, kNormal, kClampedNormal, kUniform };

  /// Point mass at 0 (no noise).
  static NoiseDistribution Zero() { return NoiseDistribution(Kind::kZero, 0, 0); }
  /// N(0, sigma^2).
  static NoiseDistribution Normal(double sigma);
  /// N(0, sigma^2) clamped to [-bound, bound] (bound > 0).
  static NoiseDistribution ClampedNormal(double sigma, double bound);
  /// Uniform(-halfwidth, halfwidth).
  static NoiseDistribution Uniform(double halfwidth);

  Kind kind() const { return kind_; }
  double sigma() const { return sigma_; }
  double bound() const { return bound_; }

  /// Draws one noise value.
  double Sample(Rng& rng) const;

  /// E[max(0, mu + N)] — the expected truncated utility of an item whose
  /// deterministic utility is `mu`. Closed form for zero/normal/uniform,
  /// quadrature plus boundary point-masses for the clamped normal.
  double ExpectedPositivePart(double mu) const;

  /// True when the support is bounded (needed for superior-item checks).
  bool IsBounded() const { return kind_ != Kind::kNormal; }

  /// Infimum of the support; only meaningful when IsBounded().
  double MinSupport() const;
  /// Supremum of the support; only meaningful when IsBounded().
  double MaxSupport() const;

 private:
  NoiseDistribution(Kind kind, double sigma, double bound)
      : kind_(kind), sigma_(sigma), bound_(bound) {}

  Kind kind_;
  double sigma_;  // normal / clamped-normal scale
  double bound_;  // clamp bound or uniform halfwidth
};

}  // namespace cwm

#endif  // CWM_MODEL_NOISE_H_
