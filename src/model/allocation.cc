#include "model/allocation.h"

#include <algorithm>
#include <unordered_map>

namespace cwm {

void Allocation::Add(NodeId v, ItemId i) {
  CWM_CHECK(i >= 0 && i < num_items());
  auto& list = seeds_[i];
  if (std::find(list.begin(), list.end(), v) == list.end()) {
    list.push_back(v);
  }
}

void Allocation::AddAll(const std::vector<NodeId>& nodes, ItemId i) {
  for (NodeId v : nodes) Add(v, i);
}

std::vector<NodeId> Allocation::SeedNodes() const {
  std::vector<NodeId> all;
  for (const auto& list : seeds_) {
    all.insert(all.end(), list.begin(), list.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

std::size_t Allocation::TotalPairs() const {
  std::size_t total = 0;
  for (const auto& list : seeds_) total += list.size();
  return total;
}

std::vector<std::pair<NodeId, ItemSet>> Allocation::SeededItemsets() const {
  std::unordered_map<NodeId, ItemSet> map;
  for (ItemId i = 0; i < num_items(); ++i) {
    for (NodeId v : seeds_[i]) {
      map[v] = static_cast<ItemSet>(map[v] | SingletonSet(i));
    }
  }
  std::vector<std::pair<NodeId, ItemSet>> out(map.begin(), map.end());
  std::sort(out.begin(), out.end());
  return out;
}

Allocation Allocation::Union(const Allocation& a, const Allocation& b) {
  CWM_CHECK(a.num_items() == b.num_items());
  Allocation out(a.num_items());
  for (ItemId i = 0; i < a.num_items(); ++i) {
    out.AddAll(a.seeds_[i], i);
    out.AddAll(b.seeds_[i], i);
  }
  return out;
}

bool Allocation::RespectsBudgets(const BudgetVector& budgets) const {
  CWM_CHECK(budgets.size() == seeds_.size());
  for (ItemId i = 0; i < num_items(); ++i) {
    if (seeds_[i].size() > static_cast<std::size_t>(budgets[i])) return false;
  }
  return true;
}

std::string Allocation::ToString() const {
  std::string out = "{";
  for (ItemId i = 0; i < num_items(); ++i) {
    if (i > 0) out += ", ";
    out += "i" + std::to_string(i) + ": [";
    for (std::size_t k = 0; k < seeds_[i].size(); ++k) {
      if (k > 0) out += ", ";
      out += std::to_string(seeds_[i][k]);
    }
    out += "]";
  }
  out += "}";
  return out;
}

}  // namespace cwm
