#include "model/utility.h"

#include <algorithm>
#include <cmath>

namespace cwm {

UtilityConfigBuilder::UtilityConfigBuilder(int num_items)
    : num_items_(num_items),
      item_values_(num_items, 0.0),
      item_prices_(num_items, 0.0),
      noise_(num_items, NoiseDistribution::Zero()) {
  CWM_CHECK(num_items >= 1 && num_items <= kMaxItems);
}

UtilityConfigBuilder& UtilityConfigBuilder::SetName(std::string name) {
  name_ = std::move(name);
  return *this;
}

UtilityConfigBuilder& UtilityConfigBuilder::SetItemValue(ItemId i,
                                                         double value) {
  CWM_CHECK(i >= 0 && i < num_items_);
  item_values_[i] = value;
  return *this;
}

UtilityConfigBuilder& UtilityConfigBuilder::SetItemPrice(ItemId i,
                                                         double price) {
  CWM_CHECK(i >= 0 && i < num_items_);
  item_prices_[i] = price;
  return *this;
}

UtilityConfigBuilder& UtilityConfigBuilder::SetBundleValue(ItemSet bundle,
                                                           double value) {
  CWM_CHECK(SetSize(bundle) >= 2 && bundle < (1 << num_items_));
  bundle_overrides_.emplace_back(bundle, value);
  return *this;
}

UtilityConfigBuilder& UtilityConfigBuilder::SetNoise(ItemId i,
                                                     NoiseDistribution noise) {
  CWM_CHECK(i >= 0 && i < num_items_);
  noise_[i] = noise;
  return *this;
}

UtilityConfigBuilder& UtilityConfigBuilder::SetAllNoise(
    NoiseDistribution noise) {
  for (auto& n : noise_) n = noise;
  return *this;
}

UtilityConfigBuilder& UtilityConfigBuilder::SetValidation(
    BundleValidation validation) {
  validation_ = validation;
  return *this;
}

StatusOr<UtilityConfig> UtilityConfigBuilder::Build() && {
  const std::size_t table = std::size_t{1} << num_items_;
  UtilityConfig config;
  config.num_items_ = num_items_;
  config.name_ = std::move(name_);
  config.noise_ = std::move(noise_);
  config.value_.assign(table, 0.0);
  config.price_.assign(table, 0.0);

  // Default completion: V(s) = max singleton value in s (monotone and
  // submodular); additive prices.
  for (uint32_t sm = 1; sm < table; ++sm) {
    const ItemSet s = static_cast<ItemSet>(sm);
    double vmax = 0.0;
    double price = 0.0;
    ForEachItem(s, [&](ItemId i) {
      vmax = std::max(vmax, item_values_[i]);
      price += item_prices_[i];
    });
    config.value_[s] = SetSize(s) == 1 ? item_values_[std::countr_zero(s)]
                                       : vmax;
    config.price_[s] = price;
  }
  for (const auto& [bundle, value] : bundle_overrides_) {
    config.value_[bundle] = value;
  }

  // Validate V: V(empty)=0, monotone, submodular.
  if (config.value_[0] != 0.0) {
    return Status::InvalidArgument("V(empty) must be 0");
  }
  for (uint32_t sm = 0; sm < table; ++sm) {
    const ItemSet s = static_cast<ItemSet>(sm);
    for (ItemId i = 0; i < num_items_; ++i) {
      if (Contains(s, i)) continue;
      const ItemSet si = WithItem(s, i);
      if (config.value_[si] + 1e-12 < config.value_[s]) {
        return Status::InvalidArgument(
            "value function not monotone at bundle " + std::to_string(si));
      }
      if (validation_ == BundleValidation::kMonotoneOnly) continue;
      // Submodularity: marginal of i w.r.t. any superset t of s is no
      // larger than w.r.t. s.
      for (uint32_t tm = sm; tm < table; tm = (tm + 1) | sm) {
        const ItemSet t = static_cast<ItemSet>(tm);
        if (Contains(t, i) || (t & s) != s) {
          if (tm == table - 1) break;
          continue;
        }
        const double margin_s = config.value_[si] - config.value_[s];
        const double margin_t =
            config.value_[WithItem(t, i)] - config.value_[t];
        if (margin_t > margin_s + 1e-9) {
          return Status::InvalidArgument(
              "value function not submodular (item " + std::to_string(i) +
              ", sets " + std::to_string(s) + " vs " + std::to_string(t) +
              ")");
        }
        if (tm == table - 1) break;
      }
    }
  }
  return config;
}

double UtilityConfig::ExpectedTruncatedUtility(ItemId i) const {
  CWM_CHECK(i >= 0 && i < num_items_);
  return noise_[i].ExpectedPositivePart(DetUtility(SingletonSet(i)));
}

double UtilityConfig::UMin() const {
  double out = HUGE_VAL;
  for (ItemId i = 0; i < num_items_; ++i) {
    out = std::min(out, ExpectedTruncatedUtility(i));
  }
  return out;
}

double UtilityConfig::UMax(uint64_t seed, int samples) const {
  const std::size_t table = std::size_t{1} << num_items_;
  // Exact when all items are noiseless.
  bool deterministic = true;
  for (ItemId i = 0; i < num_items_; ++i) {
    if (noise_[i].kind() != NoiseDistribution::Kind::kZero) {
      deterministic = false;
      break;
    }
  }
  if (deterministic) {
    double best = 0.0;
    for (uint32_t sm = 0; sm < table; ++sm) {
      best = std::max(best, DetUtility(static_cast<ItemSet>(sm)));
    }
    return best;
  }
  Rng rng(seed);
  std::vector<double> noise(num_items_);
  double acc = 0.0;
  for (int it = 0; it < samples; ++it) {
    for (ItemId i = 0; i < num_items_; ++i) noise[i] = noise_[i].Sample(rng);
    double best = 0.0;
    for (uint32_t sm = 1; sm < table; ++sm) {
      const ItemSet s = static_cast<ItemSet>(sm);
      double u = DetUtility(s);
      ForEachItem(s, [&](ItemId i) { u += noise[i]; });
      best = std::max(best, u);
    }
    acc += best;
  }
  return acc / samples;
}

std::optional<ItemId> UtilityConfig::SuperiorItem() const {
  if (num_items_ < 2) return num_items_ == 1 ? std::optional<ItemId>(0)
                                             : std::nullopt;
  for (ItemId m = 0; m < num_items_; ++m) {
    if (!noise_[m].IsBounded()) continue;
    const double m_low =
        DetUtility(SingletonSet(m)) + noise_[m].MinSupport();
    bool superior = true;
    for (ItemId i = 0; i < num_items_ && superior; ++i) {
      if (i == m) continue;
      if (!noise_[i].IsBounded()) {
        superior = false;
        break;
      }
      const double i_high =
          DetUtility(SingletonSet(i)) + noise_[i].MaxSupport();
      if (m_low <= i_high) superior = false;
    }
    if (superior) return m;
  }
  return std::nullopt;
}

bool UtilityConfig::IsPureCompetition() const {
  const std::size_t table = std::size_t{1} << num_items_;
  // Pure competition: growing a non-empty bundle never strictly raises
  // utility, in any noise world. Because noise is additive, adding item i
  // changes utility by V(s+i)-V(s)-P(i)+N(i); this is maximized at the top
  // of i's noise support.
  for (uint32_t sm = 1; sm < table; ++sm) {
    const ItemSet s = static_cast<ItemSet>(sm);
    for (ItemId i = 0; i < num_items_; ++i) {
      if (Contains(s, i)) continue;
      if (!noise_[i].IsBounded()) return false;
      const ItemSet si = WithItem(s, i);
      const double best_gain = Value(si) - Value(s) -
                               Price(SingletonSet(i)) +
                               noise_[i].MaxSupport();
      if (best_gain > 1e-12) return false;
    }
  }
  return true;
}

bool UtilityConfig::HasComplementaryBundle() const {
  const std::size_t table = std::size_t{1} << num_items_;
  for (uint32_t sm = 1; sm < table; ++sm) {
    const ItemSet s = static_cast<ItemSet>(sm);
    for (ItemId i = 0; i < num_items_; ++i) {
      if (Contains(s, i)) continue;
      // Complementarity shows as a marginal value above the standalone
      // value: V(s + i) - V(s) > V({i}).
      const double marginal = Value(WithItem(s, i)) - Value(s);
      if (marginal > Value(SingletonSet(i)) + 1e-12) return true;
    }
  }
  return false;
}

std::vector<ItemId> UtilityConfig::ItemsByTruncatedUtilityDesc() const {
  std::vector<ItemId> order(num_items_);
  for (ItemId i = 0; i < num_items_; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](ItemId a, ItemId b) {
    return ExpectedTruncatedUtility(a) > ExpectedTruncatedUtility(b);
  });
  return order;
}

WorldUtilityTable::WorldUtilityTable(const UtilityConfig& config,
                                     const std::vector<double>& noise)
    : num_items_(config.num_items()) {
  CWM_CHECK(static_cast<int>(noise.size()) == num_items_);
  Fill(config, noise);
}

WorldUtilityTable::WorldUtilityTable(const UtilityConfig& config, Rng& rng)
    : num_items_(config.num_items()) {
  std::vector<double> noise(num_items_);
  for (ItemId i = 0; i < num_items_; ++i) {
    noise[i] = config.Noise(i).Sample(rng);
  }
  Fill(config, noise);
}

void WorldUtilityTable::Fill(const UtilityConfig& config,
                             const std::vector<double>& noise) {
  const std::size_t table = std::size_t{1} << num_items_;
  utility_.resize(table);
  for (uint32_t sm = 0; sm < table; ++sm) {
    const ItemSet s = static_cast<ItemSet>(sm);
    double u = config.DetUtility(s);
    ForEachItem(s, [&](ItemId i) { u += noise[i]; });
    utility_[s] = u;
  }
}

ItemSet WorldUtilityTable::BestAdoption(ItemSet desired,
                                        ItemSet adopted) const {
  CWM_CHECK((adopted & desired) == adopted);
  ItemSet best = adopted;
  // When nothing is adopted yet the node may also stay empty; the empty
  // bundle has utility 0, which "U(T) >= 0" already encodes.
  double best_u = adopted == kEmptyItemSet ? 0.0 : utility_[adopted];
  const ItemSet free_items = static_cast<ItemSet>(desired & ~adopted);
  ForEachSubset(free_items, [&](ItemSet extra) {
    const ItemSet cand = static_cast<ItemSet>(adopted | extra);
    const double u = utility_[cand];
    if (u < 0.0) return;
    if (u > best_u + 1e-12 ||
        (u > best_u - 1e-12 &&
         (SetSize(cand) < SetSize(best) ||
          (SetSize(cand) == SetSize(best) && cand < best)))) {
      best = cand;
      best_u = std::max(best_u, u);
    }
  });
  return best;
}

}  // namespace cwm
