#include "model/noise.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"
#include "support/mathx.h"

namespace cwm {

NoiseDistribution NoiseDistribution::Normal(double sigma) {
  CWM_CHECK(sigma > 0.0);
  return NoiseDistribution(Kind::kNormal, sigma, 0.0);
}

NoiseDistribution NoiseDistribution::ClampedNormal(double sigma,
                                                   double bound) {
  CWM_CHECK(sigma > 0.0 && bound > 0.0);
  return NoiseDistribution(Kind::kClampedNormal, sigma, bound);
}

NoiseDistribution NoiseDistribution::Uniform(double halfwidth) {
  CWM_CHECK(halfwidth > 0.0);
  return NoiseDistribution(Kind::kUniform, 0.0, halfwidth);
}

double NoiseDistribution::Sample(Rng& rng) const {
  switch (kind_) {
    case Kind::kZero:
      return 0.0;
    case Kind::kNormal:
      return sigma_ * rng.NextGaussian();
    case Kind::kClampedNormal:
      return std::clamp(sigma_ * rng.NextGaussian(), -bound_, bound_);
    case Kind::kUniform:
      return bound_ * (2.0 * rng.NextDouble() - 1.0);
  }
  return 0.0;
}

double NoiseDistribution::ExpectedPositivePart(double mu) const {
  switch (kind_) {
    case Kind::kZero:
      return mu > 0.0 ? mu : 0.0;
    case Kind::kNormal:
      return ExpectedPositivePartNormal(mu, sigma_);
    case Kind::kClampedNormal: {
      // Density part on (-bound, bound) plus point masses at the clamps.
      const double zb = bound_ / sigma_;
      const double tail = NormalCdf(-zb);  // mass clamped to each side
      const double sigma = sigma_;
      const double body = GaussLegendre64(
          [mu, sigma](double x) {
            const double u = mu + x;
            return (u > 0.0 ? u : 0.0) * NormalPdf(x / sigma) / sigma;
          },
          -bound_, bound_);
      const double lo = std::max(0.0, mu - bound_);
      const double hi = std::max(0.0, mu + bound_);
      return body + tail * (lo + hi);
    }
    case Kind::kUniform:
      return ExpectedPositivePartUniform(mu, bound_);
  }
  return 0.0;
}

double NoiseDistribution::MinSupport() const {
  switch (kind_) {
    case Kind::kZero:
      return 0.0;
    case Kind::kNormal:
      return -HUGE_VAL;
    case Kind::kClampedNormal:
    case Kind::kUniform:
      return -bound_;
  }
  return 0.0;
}

double NoiseDistribution::MaxSupport() const {
  switch (kind_) {
    case Kind::kZero:
      return 0.0;
    case Kind::kNormal:
      return HUGE_VAL;
    case Kind::kClampedNormal:
    case Kind::kUniform:
      return bound_;
  }
  return 0.0;
}

}  // namespace cwm
