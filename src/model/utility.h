// Utility model of the UIC framework (§3):
//   U(I) = V(I) - P(I) + N(I)
// with V monotone submodular, V(empty) = 0, price and noise additive over
// items, and independent zero-mean noise per item.
//
// UtilityConfig stores V explicitly as a 2^m table (the paper's
// configurations have m <= 5), item prices, and per-item noise laws. It
// derives the quantities the algorithms need: expected truncated utilities
// E[U+(i)], umin, umax, and the superior item, per §5.
//
// WorldUtilityTable is the per-possible-world (noise-fixed) deterministic
// utility table together with the constrained adoption argmax
//   A(u,t) = argmax { U(T) : A(u,t-1) ⊆ T ⊆ R(u,t), U(T) >= 0 }
// used by the simulator. Ties prefer smaller bundles, then smaller masks,
// so "pure competition" configurations (bundles never strictly better)
// yield at-most-one-item adoptions deterministically.
#ifndef CWM_MODEL_UTILITY_H_
#define CWM_MODEL_UTILITY_H_

#include <optional>
#include <string>
#include <vector>

#include "model/items.h"
#include "model/noise.h"
#include "support/rng.h"
#include "support/status.h"

namespace cwm {

class UtilityConfig;

/// Which structural properties UtilityConfigBuilder::Build() enforces on
/// the value function V.
enum class BundleValidation {
  /// Monotone + submodular: the competitive setting this paper studies
  /// (default). Supermodular (complementary) bundles are rejected.
  kMonotoneSubmodular,
  /// Monotone only: permits supermodular bundles, enabling the mixed
  /// competitive/complementary configurations the paper's §7 poses as
  /// future work (and the complementary setting of Banerjee et al. [6]).
  /// The diffusion engine and estimators handle these unchanged; the
  /// approximation guarantees of §5 do not apply.
  kMonotoneOnly,
};

/// Builder for UtilityConfig. Bundle values default to the maximum singleton
/// value within the bundle (a monotone submodular completion under which,
/// with positive prices, items are purely competitive); call SetBundleValue
/// to override specific bundles.
class UtilityConfigBuilder {
 public:
  explicit UtilityConfigBuilder(int num_items);

  UtilityConfigBuilder& SetName(std::string name);
  /// V({i}) = value.
  UtilityConfigBuilder& SetItemValue(ItemId i, double value);
  /// P({i}) = price (prices are additive over bundles).
  UtilityConfigBuilder& SetItemPrice(ItemId i, double price);
  /// V(bundle) = value, |bundle| >= 2.
  UtilityConfigBuilder& SetBundleValue(ItemSet bundle, double value);
  /// Noise law of item i (default: Zero()).
  UtilityConfigBuilder& SetNoise(ItemId i, NoiseDistribution noise);
  /// Applies `noise` to every item.
  UtilityConfigBuilder& SetAllNoise(NoiseDistribution noise);

  /// Chooses the validation mode (default kMonotoneSubmodular).
  UtilityConfigBuilder& SetValidation(BundleValidation validation);

  /// Finalizes. Fails if the assembled value function is not monotone
  /// submodular with V(empty) = 0.
  StatusOr<UtilityConfig> Build() &&;

 private:
  int num_items_;
  std::string name_;
  std::vector<double> item_values_;
  std::vector<double> item_prices_;
  std::vector<std::pair<ItemSet, double>> bundle_overrides_;
  std::vector<NoiseDistribution> noise_;
  BundleValidation validation_ = BundleValidation::kMonotoneSubmodular;
};

/// Immutable utility configuration; see file comment.
class UtilityConfig {
 public:
  /// Empty placeholder (0 items); assign one produced by
  /// UtilityConfigBuilder before use.
  UtilityConfig() = default;

  int num_items() const { return num_items_; }
  const std::string& name() const { return name_; }

  /// V(s): latent valuation of bundle `s`.
  double Value(ItemSet s) const { return value_[s]; }
  /// P(s): additive price of bundle `s`.
  double Price(ItemSet s) const { return price_[s]; }
  /// Deterministic utility V(s) - P(s) (noise ignored; the "UD" column of
  /// Table 5).
  double DetUtility(ItemSet s) const { return value_[s] - price_[s]; }

  const NoiseDistribution& Noise(ItemId i) const { return noise_[i]; }

  /// E[U+(i)] = E[max(0, U({i}))] — expected truncated utility of item i.
  double ExpectedTruncatedUtility(ItemId i) const;

  /// umin = min_i E[U+(i)] (§5, "minimum utility bundle").
  double UMin() const;

  /// umax = E[max_I U+(I)] estimated by averaging `samples` noise worlds
  /// (exact when all noise is Zero). Deterministic in `seed`.
  double UMax(uint64_t seed = 7, int samples = 20000) const;

  /// The superior item (§5): an item whose *least possible* utility strictly
  /// exceeds every other item's *highest possible* utility. Requires bounded
  /// noise; returns nullopt if no such item exists.
  std::optional<ItemId> SuperiorItem() const;

  /// True if no bundle of size >= 2 can ever strictly improve on its best
  /// sub-singleton, i.e. nodes adopt at most one item ("pure competition").
  /// Checked on deterministic utilities with noise support bounds.
  bool IsPureCompetition() const;

  /// Items sorted by decreasing E[U+(i)] (the order SeqGRD allocates in).
  std::vector<ItemId> ItemsByTruncatedUtilityDesc() const;

  /// True if some bundle is strictly supermodular — i.e. some item's
  /// marginal value w.r.t. a bundle exceeds its marginal w.r.t. a subset
  /// (a complementary interaction). Always false for configurations built
  /// with kMonotoneSubmodular validation.
  bool HasComplementaryBundle() const;

 private:
  friend class UtilityConfigBuilder;

  int num_items_ = 0;
  std::string name_;
  std::vector<double> value_;  // size 2^m
  std::vector<double> price_;  // size 2^m (additive)
  std::vector<NoiseDistribution> noise_;
};

/// Deterministic bundle utilities for one noise world, plus the adoption
/// argmax. Rebuilt (cheaply: 2^m entries) whenever noise is resampled.
class WorldUtilityTable {
 public:
  /// Builds the table for `config` with per-item noise values `noise`
  /// (noise.size() == num_items).
  WorldUtilityTable(const UtilityConfig& config,
                    const std::vector<double>& noise);

  /// Convenience: samples noise for every item from `rng` first.
  WorldUtilityTable(const UtilityConfig& config, Rng& rng);

  int num_items() const { return num_items_; }

  /// U_w(s) in this world.
  double Utility(ItemSet s) const { return utility_[s]; }

  /// Solves the §3 adoption step: best T with `adopted` ⊆ T ⊆ `desired`,
  /// U(T) maximal and U(T) >= 0. Returns `adopted` unchanged when no such
  /// T improves on it (or none is non-negative). Ties prefer fewer items,
  /// then the smaller bitmask.
  ItemSet BestAdoption(ItemSet desired, ItemSet adopted) const;

 private:
  void Fill(const UtilityConfig& config, const std::vector<double>& noise);

  int num_items_;
  std::vector<double> utility_;  // size 2^m
};

}  // namespace cwm

#endif  // CWM_MODEL_UTILITY_H_
