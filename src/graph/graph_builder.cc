#include "graph/graph_builder.h"

#include <algorithm>

namespace cwm {

void GraphBuilder::AddEdge(NodeId u, NodeId v, double prob) {
  CWM_CHECK(u < num_nodes_ && v < num_nodes_);
  CWM_CHECK(prob >= 0.0 && prob <= 1.0);
  if (u == v) return;
  edges_.push_back({u, v, static_cast<float>(prob)});
}

Graph GraphBuilder::Build() && {
  std::sort(edges_.begin(), edges_.end(),
            [](const PendingEdge& a, const PendingEdge& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  // Merge parallel edges keeping the max probability.
  std::size_t out = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (out > 0 && edges_[out - 1].u == edges_[i].u &&
        edges_[out - 1].v == edges_[i].v) {
      edges_[out - 1].prob = std::max(edges_[out - 1].prob, edges_[i].prob);
    } else {
      edges_[out++] = edges_[i];
    }
  }
  edges_.resize(out);

  Graph g;
  const std::size_t n = num_nodes_;
  const std::size_t m = edges_.size();
  g.out_offsets_storage_.assign(n + 1, 0);
  g.in_offsets_storage_.assign(n + 1, 0);
  g.out_edges_storage_.resize(m);
  g.in_edges_storage_.resize(m);

  for (const PendingEdge& e : edges_) {
    ++g.out_offsets_storage_[e.u + 1];
    ++g.in_offsets_storage_[e.v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) {
    g.out_offsets_storage_[i] += g.out_offsets_storage_[i - 1];
    g.in_offsets_storage_[i] += g.in_offsets_storage_[i - 1];
  }
  // Forward edges are already sorted: EdgeId == position.
  for (std::size_t id = 0; id < m; ++id) {
    g.out_edges_storage_[id] = {edges_[id].v, edges_[id].prob};
  }
  // Scatter reverse edges.
  std::vector<uint64_t> cursor(g.in_offsets_storage_.begin(),
                               g.in_offsets_storage_.end() - 1);
  for (std::size_t id = 0; id < m; ++id) {
    const PendingEdge& e = edges_[id];
    g.in_edges_storage_[cursor[e.v]++] = {e.u, e.prob,
                                          static_cast<EdgeId>(id)};
  }
  g.RespanOwned();
  edges_.clear();
  edges_.shrink_to_fit();
  return g;
}

Graph GraphBuilder::AdoptCsr(std::vector<uint64_t> out_offsets,
                             std::vector<OutEdge> out_edges,
                             std::vector<uint64_t> in_offsets,
                             std::vector<InEdge> in_edges) {
  CWM_CHECK(!out_offsets.empty() && out_offsets.size() == in_offsets.size());
  CWM_CHECK(out_offsets.front() == 0 && in_offsets.front() == 0);
  CWM_CHECK(out_offsets.back() == out_edges.size());
  CWM_CHECK(in_offsets.back() == in_edges.size());
  CWM_CHECK(out_edges.size() == in_edges.size());
  Graph g;
  g.out_offsets_storage_ = std::move(out_offsets);
  g.out_edges_storage_ = std::move(out_edges);
  g.in_offsets_storage_ = std::move(in_offsets);
  g.in_edges_storage_ = std::move(in_edges);
  g.RespanOwned();
  return g;
}

}  // namespace cwm
