#include "graph/loader.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph_builder.h"

namespace cwm {

StatusOr<Graph> ReadEdgeList(const std::string& path,
                             const LoadOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path);
  }
  struct RawEdge {
    uint64_t u, v;
    double p;
  };
  std::vector<RawEdge> raw;
  std::unordered_map<uint64_t, NodeId> dense;
  char line[512];
  std::size_t line_no = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    const char* s = line;
    while (*s == ' ' || *s == '\t') ++s;
    if (*s == '#' || *s == '\n' || *s == '\0' || *s == '\r') continue;
    uint64_t u = 0, v = 0;
    double p = options.default_prob;
    const int got = std::sscanf(s, "%lu %lu %lf", &u, &v, &p);
    if (got < 2) {
      std::fclose(f);
      return Status::Corruption(path + ": malformed line " +
                                std::to_string(line_no));
    }
    if (p < 0.0 || p > 1.0) {
      std::fclose(f);
      return Status::Corruption(path + ": probability out of [0,1] at line " +
                                std::to_string(line_no));
    }
    raw.push_back({u, v, p});
    dense.emplace(u, 0);
    dense.emplace(v, 0);
  }
  std::fclose(f);

  // Densify ids in first-appearance order for determinism.
  NodeId next = 0;
  for (auto& kv : dense) kv.second = static_cast<NodeId>(-1);
  for (const RawEdge& e : raw) {
    for (uint64_t id : {e.u, e.v}) {
      auto it = dense.find(id);
      if (it->second == static_cast<NodeId>(-1)) it->second = next++;
    }
  }

  GraphBuilder builder(next);
  builder.Reserve(raw.size() * (options.undirected ? 2 : 1));
  for (const RawEdge& e : raw) {
    const NodeId du = dense[e.u];
    const NodeId dv = dense[e.v];
    if (options.undirected) {
      builder.AddUndirectedEdge(du, dv, e.p);
    } else {
      builder.AddEdge(du, dv, e.p);
    }
  }
  return std::move(builder).Build();
}

Status WriteEdgeList(const Graph& g, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  std::fprintf(f, "# cwm edge list: %zu nodes %zu edges\n", g.num_nodes(),
               g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const OutEdge& e : g.OutEdges(u)) {
      std::fprintf(f, "%u %u %.9g\n", u, e.to, static_cast<double>(e.prob));
    }
  }
  if (std::fclose(f) != 0) {
    return Status::IOError("error closing " + path);
  }
  return Status::OK();
}

}  // namespace cwm
