#include "graph/loader.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph_builder.h"
#include "store/artifact_cache.h"
#include "store/format.h"
#include "store/mapped_file.h"

namespace cwm {

namespace {

struct RawEdge {
  uint64_t u, v;
  double p;
};

/// from_chars-shaped double parse. libc++ (AppleClang) still lacks the
/// floating-point from_chars overload; the fallback is a hand-rolled
/// locale-independent decimal parser (strtod honours LC_NUMERIC, which
/// would silently misparse "0.5" as 0 under a comma-decimal locale —
/// recreating the p=0 failure class the loader sentinel eliminates).
/// The fallback is not guaranteed correctly rounded in the last ulp;
/// probabilities are stored as float, which absorbs that in practice.
std::from_chars_result ParseDouble(const char* s, const char* end,
                                   double* out) {
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  return std::from_chars(s, end, *out);
#else
  const char* p = s;
  // Mirror from_chars's grammar exactly so both branches classify every
  // token the same way: no leading '+', but "inf"/"infinity"/"nan" are
  // numbers (the [0,1] range check then rejects them uniformly).
  bool negative = false;
  if (p < end && *p == '-') {
    negative = true;
    ++p;
  }
  const auto matches = [&](const char* word) {
    const char* q = p;
    for (const char* w = word; *w != '\0'; ++w, ++q) {
      if (q >= end || (*q | 0x20) != *w) return static_cast<const char*>(nullptr);
    }
    return q;
  };
  for (const char* word : {"infinity", "inf", "nan"}) {
    if (const char* q = matches(word)) {
      *out = word[0] == 'n' ? std::nan("")
                            : (negative ? -INFINITY : INFINITY);
      return {q, std::errc()};
    }
  }
  double value = 0.0;
  bool any_digit = false;
  while (p < end && *p >= '0' && *p <= '9') {
    value = value * 10.0 + (*p++ - '0');
    any_digit = true;
  }
  if (p < end && *p == '.') {
    ++p;
    double scale = 1.0;
    while (p < end && *p >= '0' && *p <= '9') {
      value = value * 10.0 + (*p++ - '0');
      scale *= 10.0;
      any_digit = true;
    }
    value /= scale;
  }
  if (!any_digit) return {s, std::errc::invalid_argument};
  if (p < end && (*p == 'e' || *p == 'E')) {
    const char* exp_start = p + 1;
    const char* q = exp_start;
    bool exp_negative = false;
    if (q < end && (*q == '+' || *q == '-')) exp_negative = *q++ == '-';
    long exponent = 0;
    bool exp_digit = false;
    while (q < end && *q >= '0' && *q <= '9' && exponent < 10000) {
      exponent = exponent * 10 + (*q++ - '0');
      exp_digit = true;
    }
    if (exp_digit) {  // else: trailing 'e' is not part of the number
      value *= std::pow(10.0, exp_negative ? -exponent : exponent);
      p = q;
    }
  }
  *out = negative ? -value : value;
  return {p, std::errc()};
#endif
}

/// Parses one complete line (no trailing newline). Returns OK and leaves
/// `out` untouched for comment/blank lines; extra columns beyond the
/// probability are ignored (SNAP files sometimes carry timestamps).
Status ParseLine(const char* begin, const char* end,
                 const LoadOptions& options, const std::string& path,
                 std::size_t line_no, std::vector<RawEdge>* out) {
  const char* s = begin;
  while (s < end && (*s == ' ' || *s == '\t' || *s == '\r')) ++s;
  if (s == end || *s == '#') return Status::OK();

  RawEdge edge{0, 0, options.default_prob};
  auto parsed = std::from_chars(s, end, edge.u);
  if (parsed.ec != std::errc()) {
    return Status::Corruption(path + ": malformed line " +
                              std::to_string(line_no));
  }
  s = parsed.ptr;
  while (s < end && (*s == ' ' || *s == '\t')) ++s;
  parsed = std::from_chars(s, end, edge.v);
  if (parsed.ec != std::errc()) {
    return Status::Corruption(path + ": malformed line " +
                              std::to_string(line_no));
  }
  s = parsed.ptr;
  while (s < end && (*s == ' ' || *s == '\t' || *s == '\r')) ++s;
  bool have_prob = false;
  if (s < end) {
    const auto prob_parsed = ParseDouble(s, end, &edge.p);
    // A third column that does not parse as a number is ignored, matching
    // the historical sscanf behaviour on annotated SNAP lines.
    have_prob = prob_parsed.ec == std::errc();
  }
  if (have_prob) {
    // Negated form so NaN (accepted by the number parser as "nan") is
    // rejected here instead of aborting later in GraphBuilder.
    if (!(edge.p >= 0.0 && edge.p <= 1.0)) {
      return Status::Corruption(path + ": probability out of [0,1] at line " +
                                std::to_string(line_no));
    }
  } else if (!options.has_default_prob()) {
    return Status::InvalidArgument(
        path + ": line " + std::to_string(line_no) +
        " has no probability column and LoadOptions::default_prob is "
        "unset; set it explicitly (0.0 is fine if an edge-probability "
        "model is applied afterwards)");
  }
  out->push_back(edge);
  return Status::OK();
}

/// Size of `path` in bytes, or 0 if unknown.
std::size_t FileSize(std::FILE* f) {
  const long pos = std::ftell(f);
  if (pos < 0) return 0;
  if (std::fseek(f, 0, SEEK_END) != 0) return 0;
  const long size = std::ftell(f);
  std::fseek(f, pos, SEEK_SET);
  return size < 0 ? 0 : static_cast<std::size_t>(size);
}

// ---------------------------------------------------------------------------
// (size, mtime) -> content-hash sidecar for ReadEdgeListCached.
//
// The cached load keys the artifact store on the edge list's *content*
// hash, which on its own forces a full re-read of the text file on every
// warm load — for a multi-GB SNAP file that read dwarfs the zero-copy
// graph open it gates. The sidecar memoizes the hash under the file's
// (size, mtime-ns) identity: warm loads stat the file, match the
// sidecar, and skip the read entirely. Any edit bumps size or mtime and
// falls back to re-hashing (which then refreshes the sidecar). A rewrite
// that preserves byte size AND nanosecond mtime is indistinguishable —
// the classic mtime-cache caveat, shared with every build system.
// ---------------------------------------------------------------------------

/// The stat identity a sidecar entry is valid for.
struct FileIdentity {
  uint64_t size = 0;
  int64_t mtime_ns = 0;  ///< file_time_type ticks (ns on Linux)
};

std::optional<FileIdentity> StatIdentity(const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  FileIdentity id;
  id.size = fs::file_size(path, ec);
  if (ec) return std::nullopt;
  const auto mtime = fs::last_write_time(path, ec);
  if (ec) return std::nullopt;
  id.mtime_ns = static_cast<int64_t>(mtime.time_since_epoch().count());
  return id;
}

/// Sidecar location: keyed by the (weakly canonical) absolute path so the
/// same dataset referenced via different working directories shares one
/// entry.
std::string SidecarPathFor(const ArtifactCache& cache,
                           const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path canonical = fs::weakly_canonical(path, ec);
  if (ec) canonical = path;
  return (fs::path(cache.root()) / "edge-hashes" /
          (HashToHex(Fnv1a64(canonical.string())) + ".txt"))
      .string();
}

/// Returns the memoized content hash if the sidecar matches `id` exactly.
std::optional<uint64_t> LoadSidecarHash(const std::string& sidecar_path,
                                        const FileIdentity& id) {
  std::FILE* f = std::fopen(sidecar_path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  char line[256];
  const bool got = std::fgets(line, sizeof(line), f) != nullptr;
  std::fclose(f);
  if (!got) return std::nullopt;
  unsigned long long size = 0, hash = 0;
  long long mtime = 0;
  if (std::sscanf(line, "v1 size=%llu mtime=%lld hash=%llx", &size, &mtime,
                  &hash) != 3) {
    return std::nullopt;
  }
  if (size != id.size || mtime != id.mtime_ns) return std::nullopt;
  return static_cast<uint64_t>(hash);
}

void StoreSidecarHash(const std::string& sidecar_path,
                      const FileIdentity& id, uint64_t hash,
                      const std::string& source_path) {
  char line[256];
  const int len = std::snprintf(
      line, sizeof(line), "v1 size=%llu mtime=%lld hash=%016llx\n",
      static_cast<unsigned long long>(id.size),
      static_cast<long long>(id.mtime_ns),
      static_cast<unsigned long long>(hash));
  // Second line: the source path — absolute, because Gc's orphan sweep
  // (store/artifact_cache.cc) existence-checks it from whatever cwd
  // `cwm_data gc` happens to run in.
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path canonical = fs::weakly_canonical(source_path, ec);
  if (ec) canonical = fs::absolute(source_path, ec);
  std::string body(line, static_cast<std::size_t>(len));
  body += ec ? source_path : canonical.string();
  body += '\n';
  const ByteSection section{body.data(), body.size()};
  // Best effort: a failed store only costs the next load a re-hash.
  (void)WriteFileAtomic(sidecar_path, {&section, 1});
}

}  // namespace

StatusOr<Graph> ReadEdgeList(const std::string& path,
                             const LoadOptions& options,
                             uint64_t* content_hash) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path);
  }
  uint64_t hash = kFnv1aBasis;
  std::vector<RawEdge> raw;
  // ~14 bytes per "u v" line is a safe lower bound for SNAP-scale ids;
  // one reservation instead of log(m) regrows.
  raw.reserve(FileSize(f) / 14 + 16);

  // Chunked reads with a carry for the partial trailing line: no per-line
  // I/O calls, no iostream locale machinery.
  constexpr std::size_t kChunk = 1 << 20;
  std::vector<char> buffer(kChunk);
  std::string carry;
  std::size_t line_no = 0;
  Status status = Status::OK();
  for (;;) {
    const std::size_t got = std::fread(buffer.data(), 1, kChunk, f);
    if (got == 0) break;
    if (content_hash != nullptr) hash = Fnv1a64(buffer.data(), got, hash);
    const char* begin = buffer.data();
    const char* end = begin + got;
    const char* line_start = begin;
    for (const char* p = begin; p < end; ++p) {
      if (*p != '\n') continue;
      ++line_no;
      if (!carry.empty()) {
        carry.append(line_start, p);
        status = ParseLine(carry.data(), carry.data() + carry.size(),
                           options, path, line_no, &raw);
        carry.clear();
      } else {
        status = ParseLine(line_start, p, options, path, line_no, &raw);
      }
      if (!status.ok()) {
        std::fclose(f);
        return status;
      }
      line_start = p + 1;
    }
    carry.append(line_start, end);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IOError("read error on " + path);
  if (!carry.empty()) {
    ++line_no;
    status = ParseLine(carry.data(), carry.data() + carry.size(), options,
                       path, line_no, &raw);
    if (!status.ok()) return status;
  }

  // Densify ids in first-appearance order for determinism.
  std::unordered_map<uint64_t, NodeId> dense;
  dense.reserve(raw.size() * 2);
  NodeId next = 0;
  for (const RawEdge& e : raw) {
    for (uint64_t id : {e.u, e.v}) {
      if (dense.emplace(id, next).second) ++next;
    }
  }

  GraphBuilder builder(next);
  builder.Reserve(raw.size() * (options.undirected ? 2 : 1));
  for (const RawEdge& e : raw) {
    const NodeId du = dense[e.u];
    const NodeId dv = dense[e.v];
    if (options.undirected) {
      builder.AddUndirectedEdge(du, dv, e.p);
    } else {
      builder.AddEdge(du, dv, e.p);
    }
  }
  if (content_hash != nullptr) *content_hash = hash;
  return std::move(builder).Build();
}

StatusOr<Graph> ReadEdgeListCached(const std::string& path,
                                   const LoadOptions& options,
                                   ArtifactCache* cache,
                                   uint64_t* graph_hash) {
  if (graph_hash != nullptr) *graph_hash = 0;
  if (cache == nullptr) return ReadEdgeList(path, options);

  // Key on content, not on path/mtime: the same dataset in two checkouts
  // hits, an edited file misses. The (size, mtime) sidecar only memoizes
  // the *computation* of the content hash; a memoized value disproved by
  // the keyed parse self-heals below. The residual trust in (size,
  // mtime) identity is the file-comment caveat: a rewrite aliasing both
  // would be served stale, exactly like any mtime-keyed build cache.
  const std::optional<FileIdentity> identity = StatIdentity(path);
  const std::string sidecar =
      identity.has_value() ? SidecarPathFor(*cache, path) : std::string();
  std::optional<uint64_t> memoized;
  if (identity.has_value()) {
    memoized = LoadSidecarHash(sidecar, *identity);
  }
  // Refresh the sidecar after a hashing pass, but only if the identity
  // did not move under the read — a concurrent writer would otherwise
  // pin its bytes under our stat.
  const auto memoize = [&](uint64_t hash) {
    if (!identity.has_value()) return;
    const std::optional<FileIdentity> after = StatIdentity(path);
    if (after.has_value() && after->size == identity->size &&
        after->mtime_ns == identity->mtime_ns) {
      StoreSidecarHash(sidecar, *identity, hash, path);
    }
  };

  // One cache attempt keyed on `key_hash`. The parse hashes exactly the
  // bytes it reads; if they do not match the key, storing would poison
  // the cache — the build fails instead and reports the true hash so the
  // caller can retry under it.
  const auto attempt = [&](uint64_t key_hash,
                           uint64_t* actual_hash) -> StatusOr<Graph> {
    char recipe[160];
    std::snprintf(
        recipe, sizeof(recipe),
        "edge-list;content=%s;default_prob=%.17g;undirected=%d;v=%u",
        HashToHex(key_hash).c_str(), options.default_prob,
        options.undirected ? 1 : 0, kFormatVersion);
    return cache->GetOrBuildGraph(
        recipe,
        [&]() -> StatusOr<Graph> {
          uint64_t parsed_hash = 0;
          StatusOr<Graph> parsed = ReadEdgeList(path, options, &parsed_hash);
          if (!parsed.ok()) return parsed;
          if (parsed_hash != key_hash) {
            if (actual_hash != nullptr) *actual_hash = parsed_hash;
            return Status::IOError(path + " does not match its cache key");
          }
          return parsed;
        },
        graph_hash);
  };

  if (memoized.has_value()) {
    uint64_t actual = 0;
    StatusOr<Graph> hit = attempt(*memoized, &actual);
    // actual != 0 means the parse succeeded but disproved the memoized
    // hash — a stale or corrupt sidecar (the (size, mtime) identity can
    // alias a rewrite in the worst case). Self-heal: refresh the sidecar
    // with the true hash and retry under it; everything else (including
    // real parse/IO errors) is returned verbatim.
    if (hit.ok() || actual == 0) return hit;
    memoize(actual);
    memoized = actual;
  }

  uint64_t content_hash = kFnv1aBasis;
  if (memoized.has_value()) {
    content_hash = *memoized;
  } else {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Status::IOError("cannot open " + path);
    std::vector<char> buffer(1 << 20);
    for (;;) {
      const std::size_t got = std::fread(buffer.data(), 1, buffer.size(), f);
      if (got == 0) break;
      content_hash = Fnv1a64(buffer.data(), got, content_hash);
    }
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) return Status::IOError("read error on " + path);
    memoize(content_hash);
  }

  uint64_t mismatch = 0;
  StatusOr<Graph> result = attempt(content_hash, &mismatch);
  if (!result.ok() && mismatch != 0) {
    return Status::IOError(path +
                           " changed while being ingested; retry the run");
  }
  return result;
}

Status WriteEdgeList(const Graph& g, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  std::fprintf(f, "# cwm edge list: %zu nodes %zu edges\n", g.num_nodes(),
               g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const OutEdge& e : g.OutEdges(u)) {
      std::fprintf(f, "%u %u %.9g\n", u, e.to, static_cast<double>(e.prob));
    }
  }
  if (std::fclose(f) != 0) {
    return Status::IOError("error closing " + path);
  }
  return Status::OK();
}

}  // namespace cwm
