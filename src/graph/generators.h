// Synthetic network generators.
//
// The paper evaluates on five SNAP/IM-benchmark networks (Table 2). Those
// datasets cannot be redistributed here, so the experiment catalog
// (exp/networks.h) synthesizes stand-ins with matching size, directedness
// and heavy-tailed degree structure from the generators below. All
// generators are deterministic in `seed` and return topology-only graphs
// (probability 0 on every edge); apply a model from graph/edge_prob.h next.
#ifndef CWM_GRAPH_GENERATORS_H_
#define CWM_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace cwm {

/// G(n, m) Erdős–Rényi: `num_edges` distinct directed edges drawn uniformly.
Graph ErdosRenyi(std::size_t num_nodes, std::size_t num_edges, uint64_t seed);

/// Barabási–Albert preferential attachment, undirected (each edge added in
/// both directions). Each new node attaches `edges_per_node` edges to
/// existing nodes with probability proportional to their current degree
/// (repeated-endpoint implementation). Produces the power-law degree
/// distribution characteristic of collaboration networks like NetHEPT and
/// friendship networks like Orkut.
Graph BarabasiAlbert(std::size_t num_nodes, std::size_t edges_per_node,
                     uint64_t seed);

/// Directed preferential attachment (Bollobás et al. style): each new node
/// picks `out_per_node` influencers, preferentially by popularity (a
/// fraction `random_frac` uniformly instead); the influence edge points
/// influencer -> newcomer, as in follower networks where the followed
/// node influences the follower. Out-degree is heavy-tailed (hubs),
/// in-degree concentrates near out_per_node. Models directed social /
/// rating networks (Douban, Twitter).
/// `influencer_frac` orients each edge: with that probability it points
/// influencer -> newcomer (viral direction), otherwise newcomer ->
/// influencer. Around 0.25-0.4 reproduces the moderate cascade sizes of
/// the paper's rating networks under weighted-cascade probabilities.
Graph DirectedPreferentialAttachment(std::size_t num_nodes,
                                     std::size_t out_per_node,
                                     double random_frac, uint64_t seed,
                                     double influencer_frac = 0.3);

/// Watts–Strogatz small world, undirected: ring of `num_nodes` nodes each
/// linked to `k` nearest neighbours, each edge rewired with prob `beta`.
Graph WattsStrogatz(std::size_t num_nodes, std::size_t k, double beta,
                    uint64_t seed);

/// Node-induced subgraph containing the first ceil(fraction * n) nodes
/// discovered by a BFS from random roots (§6.3.3 / Fig 6(d) methodology).
/// Node ids are re-densified; edge probabilities are preserved.
Graph InducedBfsSubgraph(const Graph& g, double fraction, uint64_t seed);

}  // namespace cwm

#endif  // CWM_GRAPH_GENERATORS_H_
