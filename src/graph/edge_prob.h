// Influence-probability assignment models.
//
// The paper (§6.1.3, following IMM/SSA practice) sets p(u,v) = 1/din(v) —
// the weighted-cascade (WC) model. Fig 6(d) additionally uses a constant
// p = 0.01. The trivalency model ({0.1, 0.01, 0.001} uniformly at random)
// is the third standard in the IM literature and is provided for
// completeness and ablations.
#ifndef CWM_GRAPH_EDGE_PROB_H_
#define CWM_GRAPH_EDGE_PROB_H_

#include <cstdint>

#include "graph/graph.h"

namespace cwm {

/// Returns a copy of `g` with p(u,v) = 1 / din(v) (weighted cascade).
Graph WithWeightedCascade(const Graph& g);

/// Returns a copy of `g` with every probability set to `p`.
Graph WithConstantProb(const Graph& g, double p);

/// Returns a copy of `g` with each edge assigned one of {0.1, 0.01, 0.001}
/// uniformly at random (trivalency model), deterministically from `seed`.
Graph WithTrivalency(const Graph& g, uint64_t seed);

}  // namespace cwm

#endif  // CWM_GRAPH_EDGE_PROB_H_
