// Immutable directed influence graph in compressed-sparse-row form.
//
// The graph G = (V, E, p) of §2: nodes are users, a directed edge (u, v)
// with probability p_uv means u's adoptions tempt v. Both forward (out)
// and reverse (in) adjacency are materialized: forward for diffusion
// simulation, reverse for reverse-reachable-set sampling.
//
// Every edge has a stable EdgeId (its position in the canonical forward
// ordering). The id keys the lazy possible-world coins (simulate/world.h),
// which is what makes one sampled "edge world" consistent across all items
// and all queries, as required by the possible-world model of §3.
#ifndef CWM_GRAPH_GRAPH_H_
#define CWM_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "support/check.h"

namespace cwm {

/// Node identifier: dense in [0, num_nodes).
using NodeId = uint32_t;
/// Edge identifier: dense in [0, num_edges), canonical forward order.
using EdgeId = uint32_t;

/// Outgoing half-edge. Its EdgeId is implicit: the index into the forward
/// CSR arrays at which it is stored.
struct OutEdge {
  NodeId to;
  float prob;
};

/// Incoming half-edge; carries the forward EdgeId explicitly so reverse
/// traversals can flip the same possible-world coin as forward ones.
struct InEdge {
  NodeId from;
  float prob;
  EdgeId id;
};

/// Immutable CSR digraph with per-edge influence probabilities.
/// Construct via GraphBuilder (graph/graph_builder.h).
class Graph {
 public:
  Graph() = default;

  std::size_t num_nodes() const { return out_offsets_.empty() ? 0 : out_offsets_.size() - 1; }
  std::size_t num_edges() const { return out_edges_.size(); }

  /// Outgoing edges of `u`, in canonical (EdgeId-contiguous) order.
  std::span<const OutEdge> OutEdges(NodeId u) const {
    CWM_CHECK(u + 1 < out_offsets_.size());
    return {out_edges_.data() + out_offsets_[u],
            out_edges_.data() + out_offsets_[u + 1]};
  }

  /// Incoming edges of `v`.
  std::span<const InEdge> InEdges(NodeId v) const {
    CWM_CHECK(v + 1 < in_offsets_.size());
    return {in_edges_.data() + in_offsets_[v],
            in_edges_.data() + in_offsets_[v + 1]};
  }

  /// EdgeId of the k-th outgoing edge of `u` (k < OutDegree(u)).
  EdgeId OutEdgeId(NodeId u, std::size_t k) const {
    return static_cast<EdgeId>(out_offsets_[u] + k);
  }

  std::size_t OutDegree(NodeId u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  std::size_t InDegree(NodeId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Average out-degree (== average in-degree), as reported in Table 2.
  double AverageDegree() const {
    return num_nodes() == 0
               ? 0.0
               : static_cast<double>(num_edges()) / static_cast<double>(num_nodes());
  }

 private:
  friend class GraphBuilder;

  std::vector<uint64_t> out_offsets_;  // size num_nodes()+1
  std::vector<OutEdge> out_edges_;     // size num_edges(), canonical order
  std::vector<uint64_t> in_offsets_;   // size num_nodes()+1
  std::vector<InEdge> in_edges_;       // size num_edges()
};

}  // namespace cwm

#endif  // CWM_GRAPH_GRAPH_H_
