// Immutable directed influence graph in compressed-sparse-row form.
//
// The graph G = (V, E, p) of §2: nodes are users, a directed edge (u, v)
// with probability p_uv means u's adoptions tempt v. Both forward (out)
// and reverse (in) adjacency are materialized: forward for diffusion
// simulation, reverse for reverse-reachable-set sampling.
//
// Every edge has a stable EdgeId (its position in the canonical forward
// ordering). The id keys the lazy possible-world coins (simulate/world.h),
// which is what makes one sampled "edge world" consistent across all items
// and all queries, as required by the possible-world model of §3.
//
// Storage model: accessors read std::span views that point either at
// owned vectors (GraphBuilder path) or at an externally owned flat buffer
// (the mmap-backed zero-copy open of store/graph_store.h, which pins the
// mapping alive via `external_`). The two flavors are indistinguishable
// to callers; copying an external graph just shares the mapping.
#ifndef CWM_GRAPH_GRAPH_H_
#define CWM_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "support/check.h"

namespace cwm {

/// Node identifier: dense in [0, num_nodes).
using NodeId = uint32_t;
/// Edge identifier: dense in [0, num_edges), canonical forward order.
using EdgeId = uint32_t;

/// Outgoing half-edge. Its EdgeId is implicit: the index into the forward
/// CSR arrays at which it is stored.
struct OutEdge {
  NodeId to;
  float prob;
};

/// Incoming half-edge; carries the forward EdgeId explicitly so reverse
/// traversals can flip the same possible-world coin as forward ones.
struct InEdge {
  NodeId from;
  float prob;
  EdgeId id;
};

/// Immutable CSR digraph with per-edge influence probabilities.
/// Construct via GraphBuilder (graph/graph_builder.h) or adopt flat
/// external storage with Graph::FromExternal (store/graph_store.h).
class Graph {
 public:
  Graph() = default;

  Graph(const Graph& other) { *this = other; }
  Graph& operator=(const Graph& other) {
    if (this == &other) return *this;
    if (other.external_ != nullptr) {
      // External storage is immutable and shared: copying is O(1).
      ClearOwned();
      external_ = other.external_;
      out_offsets_ = other.out_offsets_;
      out_edges_ = other.out_edges_;
      in_offsets_ = other.in_offsets_;
      in_edges_ = other.in_edges_;
    } else {
      external_.reset();
      out_offsets_storage_ = other.out_offsets_storage_;
      out_edges_storage_ = other.out_edges_storage_;
      in_offsets_storage_ = other.in_offsets_storage_;
      in_edges_storage_ = other.in_edges_storage_;
      RespanOwned();
    }
    return *this;
  }

  // Moving a vector transfers its heap buffer, so spans into owned
  // storage remain valid after member-wise moves; the source is reset to
  // the empty state for safety.
  Graph(Graph&& other) noexcept { *this = std::move(other); }
  Graph& operator=(Graph&& other) noexcept {
    if (this == &other) return *this;
    external_ = std::move(other.external_);
    out_offsets_storage_ = std::move(other.out_offsets_storage_);
    out_edges_storage_ = std::move(other.out_edges_storage_);
    in_offsets_storage_ = std::move(other.in_offsets_storage_);
    in_edges_storage_ = std::move(other.in_edges_storage_);
    out_offsets_ = other.out_offsets_;
    out_edges_ = other.out_edges_;
    in_offsets_ = other.in_offsets_;
    in_edges_ = other.in_edges_;
    other.external_.reset();
    other.ClearOwned();
    return *this;
  }

  /// Adopts CSR arrays owned by `owner` (e.g. a file mapping) without
  /// copying. The spans must stay valid for `owner`'s lifetime and satisfy
  /// the CSR invariants; store/graph_store.h validates before calling.
  static Graph FromExternal(std::shared_ptr<const void> owner,
                            std::span<const uint64_t> out_offsets,
                            std::span<const OutEdge> out_edges,
                            std::span<const uint64_t> in_offsets,
                            std::span<const InEdge> in_edges) {
    Graph g;
    g.external_ = std::move(owner);
    g.out_offsets_ = out_offsets;
    g.out_edges_ = out_edges;
    g.in_offsets_ = in_offsets;
    g.in_edges_ = in_edges;
    return g;
  }

  /// True when the CSR arrays live in externally owned storage (a mapped
  /// artifact file) rather than in this object's vectors.
  bool is_external() const { return external_ != nullptr; }

  std::size_t num_nodes() const {
    return out_offsets_.empty() ? 0 : out_offsets_.size() - 1;
  }
  std::size_t num_edges() const { return out_edges_.size(); }

  /// Outgoing edges of `u`, in canonical (EdgeId-contiguous) order.
  std::span<const OutEdge> OutEdges(NodeId u) const {
    CWM_CHECK(u + 1 < out_offsets_.size());
    return {out_edges_.data() + out_offsets_[u],
            out_edges_.data() + out_offsets_[u + 1]};
  }

  /// Incoming edges of `v`.
  std::span<const InEdge> InEdges(NodeId v) const {
    CWM_CHECK(v + 1 < in_offsets_.size());
    return {in_edges_.data() + in_offsets_[v],
            in_edges_.data() + in_offsets_[v + 1]};
  }

  /// EdgeId of the k-th outgoing edge of `u` (k < OutDegree(u)).
  EdgeId OutEdgeId(NodeId u, std::size_t k) const {
    return static_cast<EdgeId>(out_offsets_[u] + k);
  }

  std::size_t OutDegree(NodeId u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  std::size_t InDegree(NodeId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Average out-degree (== average in-degree), as reported in Table 2.
  double AverageDegree() const {
    return num_nodes() == 0
               ? 0.0
               : static_cast<double>(num_edges()) / static_cast<double>(num_nodes());
  }

  // Raw CSR sections, exactly as laid out in memory and in the binary
  // artifact format (store/format.h): serialization and content hashing.
  std::span<const uint64_t> RawOutOffsets() const { return out_offsets_; }
  std::span<const OutEdge> RawOutEdges() const { return out_edges_; }
  std::span<const uint64_t> RawInOffsets() const { return in_offsets_; }
  std::span<const InEdge> RawInEdges() const { return in_edges_; }

 private:
  friend class GraphBuilder;

  void ClearOwned() {
    out_offsets_storage_.clear();
    out_edges_storage_.clear();
    in_offsets_storage_.clear();
    in_edges_storage_.clear();
    out_offsets_ = {};
    out_edges_ = {};
    in_offsets_ = {};
    in_edges_ = {};
  }

  void RespanOwned() {
    out_offsets_ = out_offsets_storage_;
    out_edges_ = out_edges_storage_;
    in_offsets_ = in_offsets_storage_;
    in_edges_ = in_edges_storage_;
  }

  // Owned storage; empty when the graph is backed by `external_`.
  std::vector<uint64_t> out_offsets_storage_;  // size num_nodes()+1
  std::vector<OutEdge> out_edges_storage_;     // size num_edges()
  std::vector<uint64_t> in_offsets_storage_;   // size num_nodes()+1
  std::vector<InEdge> in_edges_storage_;       // size num_edges()

  // Views over either the owned vectors or `external_`'s buffer.
  std::span<const uint64_t> out_offsets_;
  std::span<const OutEdge> out_edges_;
  std::span<const uint64_t> in_offsets_;
  std::span<const InEdge> in_edges_;

  // Keep-alive for externally owned storage (a mapped artifact file).
  std::shared_ptr<const void> external_;
};

}  // namespace cwm

#endif  // CWM_GRAPH_GRAPH_H_
