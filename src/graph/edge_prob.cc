#include "graph/edge_prob.h"

#include "graph/graph_builder.h"
#include "support/rng.h"

namespace cwm {

namespace {

template <typename ProbFn>
Graph Reassign(const Graph& g, ProbFn prob_of) {
  GraphBuilder builder(g.num_nodes());
  builder.Reserve(g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::size_t k = 0;
    for (const InEdge& e : g.InEdges(v)) {
      builder.AddEdge(e.from, v, prob_of(e.from, v, e.id, k));
      ++k;
    }
  }
  return std::move(builder).Build();
}

}  // namespace

Graph WithWeightedCascade(const Graph& g) {
  return Reassign(g, [&g](NodeId, NodeId v, EdgeId, std::size_t) {
    return 1.0 / static_cast<double>(g.InDegree(v));
  });
}

Graph WithConstantProb(const Graph& g, double p) {
  CWM_CHECK(p >= 0.0 && p <= 1.0);
  return Reassign(g, [p](NodeId, NodeId, EdgeId, std::size_t) { return p; });
}

Graph WithTrivalency(const Graph& g, uint64_t seed) {
  static constexpr double kLevels[3] = {0.1, 0.01, 0.001};
  return Reassign(g, [seed](NodeId, NodeId, EdgeId id, std::size_t) {
    const uint64_t h = MixHash(seed, id);
    return kLevels[h % 3];
  });
}

}  // namespace cwm
