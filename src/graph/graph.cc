#include "graph/graph.h"

// Graph is a header-only CSR container; this translation unit anchors the
// module in the build.
namespace cwm {}  // namespace cwm
