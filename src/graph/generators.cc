#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>
#include <vector>

#include "graph/graph_builder.h"
#include "support/rng.h"

namespace cwm {

Graph ErdosRenyi(std::size_t num_nodes, std::size_t num_edges,
                 uint64_t seed) {
  CWM_CHECK(num_nodes >= 2);
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  builder.Reserve(num_edges);
  // Duplicate draws are merged by the builder; over-draw slightly to land
  // near the requested count, then rely on merge semantics. For the sparse
  // graphs used here collisions are rare.
  for (std::size_t i = 0; i < num_edges; ++i) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(num_nodes));
    NodeId v = static_cast<NodeId>(rng.NextBounded(num_nodes));
    if (v == u) v = (v + 1) % num_nodes;
    builder.AddEdge(u, v, 0.0);
  }
  return std::move(builder).Build();
}

Graph BarabasiAlbert(std::size_t num_nodes, std::size_t edges_per_node,
                     uint64_t seed) {
  CWM_CHECK(num_nodes > edges_per_node && edges_per_node >= 1);
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  builder.Reserve(2 * num_nodes * edges_per_node);
  // `endpoints` holds every half-edge endpoint seen so far; drawing a
  // uniform element implements degree-proportional sampling.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * num_nodes * edges_per_node);
  // Seed clique over the first edges_per_node+1 nodes.
  const std::size_t core = edges_per_node + 1;
  for (std::size_t u = 0; u < core; ++u) {
    for (std::size_t v = u + 1; v < core; ++v) {
      builder.AddUndirectedEdge(static_cast<NodeId>(u),
                                static_cast<NodeId>(v), 0.0);
      endpoints.push_back(static_cast<NodeId>(u));
      endpoints.push_back(static_cast<NodeId>(v));
    }
  }
  std::vector<NodeId> picked;
  for (std::size_t u = core; u < num_nodes; ++u) {
    picked.clear();
    for (std::size_t e = 0; e < edges_per_node; ++e) {
      // Retry a few times on self/duplicate targets so the realized degree
      // tracks edges_per_node even for dense graphs.
      for (int attempt = 0; attempt < 8; ++attempt) {
        const NodeId target = endpoints[rng.NextBounded(endpoints.size())];
        if (target == static_cast<NodeId>(u)) continue;
        if (std::find(picked.begin(), picked.end(), target) != picked.end()) {
          continue;
        }
        picked.push_back(target);
        builder.AddUndirectedEdge(static_cast<NodeId>(u), target, 0.0);
        endpoints.push_back(static_cast<NodeId>(u));
        endpoints.push_back(target);
        break;
      }
    }
  }
  return std::move(builder).Build();
}

Graph DirectedPreferentialAttachment(std::size_t num_nodes,
                                     std::size_t out_per_node,
                                     double random_frac, uint64_t seed,
                                     double influencer_frac) {
  CWM_CHECK(num_nodes > out_per_node && out_per_node >= 1);
  CWM_CHECK(random_frac >= 0.0 && random_frac <= 1.0);
  CWM_CHECK(influencer_frac >= 0.0 && influencer_frac <= 1.0);
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  builder.Reserve(num_nodes * out_per_node);
  std::vector<NodeId> targets_pool;  // multiset of past picks (popularity)
  targets_pool.reserve(num_nodes * out_per_node);
  const std::size_t core = out_per_node + 1;
  for (std::size_t u = 1; u < core; ++u) {
    for (std::size_t v = 0; v < u; ++v) {
      builder.AddEdge(static_cast<NodeId>(v), static_cast<NodeId>(u), 0.0);
      targets_pool.push_back(static_cast<NodeId>(v));
    }
  }
  std::vector<NodeId> picked;
  for (std::size_t u = core; u < num_nodes; ++u) {
    picked.clear();
    for (std::size_t e = 0; e < out_per_node; ++e) {
      for (int attempt = 0; attempt < 8; ++attempt) {
        NodeId target;
        if (rng.NextDouble() < random_frac || targets_pool.empty()) {
          target = static_cast<NodeId>(rng.NextBounded(u));
        } else {
          target = targets_pool[rng.NextBounded(targets_pool.size())];
        }
        if (target == static_cast<NodeId>(u)) continue;
        if (std::find(picked.begin(), picked.end(), target) != picked.end()) {
          continue;
        }
        picked.push_back(target);
        // With probability influencer_frac the popular endpoint influences
        // the newcomer (followed -> follower); otherwise the edge points
        // the other way. The mix controls how viral weighted-cascade
        // diffusion is: all-influencer graphs are supercritical (hubs with
        // huge out-degree and low-in-degree followers), all-reverse graphs
        // barely spread. Popularity accrues to the target either way.
        if (rng.NextDouble() < influencer_frac) {
          builder.AddEdge(target, static_cast<NodeId>(u), 0.0);
        } else {
          builder.AddEdge(static_cast<NodeId>(u), target, 0.0);
        }
        targets_pool.push_back(target);
        break;
      }
    }
  }
  return std::move(builder).Build();
}

Graph WattsStrogatz(std::size_t num_nodes, std::size_t k, double beta,
                    uint64_t seed) {
  CWM_CHECK(num_nodes > 2 * k && k >= 1);
  Rng rng(seed);
  GraphBuilder builder(num_nodes);
  builder.Reserve(2 * num_nodes * k);
  for (std::size_t u = 0; u < num_nodes; ++u) {
    for (std::size_t j = 1; j <= k; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % num_nodes);
      if (rng.NextDouble() < beta) {
        v = static_cast<NodeId>(rng.NextBounded(num_nodes));
        if (v == static_cast<NodeId>(u)) v = (v + 1) % num_nodes;
      }
      builder.AddUndirectedEdge(static_cast<NodeId>(u), v, 0.0);
    }
  }
  return std::move(builder).Build();
}

Graph InducedBfsSubgraph(const Graph& g, double fraction, uint64_t seed) {
  CWM_CHECK(fraction > 0.0 && fraction <= 1.0);
  const std::size_t n = g.num_nodes();
  const std::size_t want =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(fraction * n)));
  Rng rng(seed);
  std::vector<NodeId> new_id(n, static_cast<NodeId>(-1));
  std::vector<NodeId> order;
  order.reserve(want);
  std::queue<NodeId> frontier;
  while (order.size() < want) {
    // Pick an undiscovered random root; continue BFS (out-edges) from it.
    NodeId root = static_cast<NodeId>(rng.NextBounded(n));
    while (new_id[root] != static_cast<NodeId>(-1)) {
      root = (root + 1) % n;
    }
    new_id[root] = static_cast<NodeId>(order.size());
    order.push_back(root);
    frontier.push(root);
    while (!frontier.empty() && order.size() < want) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (const OutEdge& e : g.OutEdges(u)) {
        if (new_id[e.to] != static_cast<NodeId>(-1)) continue;
        new_id[e.to] = static_cast<NodeId>(order.size());
        order.push_back(e.to);
        frontier.push(e.to);
        if (order.size() >= want) break;
      }
    }
  }
  GraphBuilder builder(order.size());
  for (NodeId old_u : order) {
    for (const OutEdge& e : g.OutEdges(old_u)) {
      if (new_id[e.to] == static_cast<NodeId>(-1)) continue;
      builder.AddEdge(new_id[old_u], new_id[e.to], e.prob);
    }
  }
  return std::move(builder).Build();
}

}  // namespace cwm
