// Mutable accumulator that produces an immutable Graph.
//
// Accepts edges in any order, optionally deduplicates parallel edges
// (keeping the maximum probability) and drops self-loops, then builds the
// CSR forward/reverse arrays in one pass.
#ifndef CWM_GRAPH_GRAPH_BUILDER_H_
#define CWM_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"

namespace cwm {

/// Builder for Graph. Typical use:
///   GraphBuilder b(n);
///   b.AddEdge(u, v, 0.1);
///   Graph g = std::move(b).Build();
class GraphBuilder {
 public:
  /// `num_nodes` fixes the node-id universe [0, num_nodes).
  explicit GraphBuilder(std::size_t num_nodes) : num_nodes_(num_nodes) {}

  /// Adds directed edge (u, v) with probability `prob` in [0, 1].
  /// Self-loops are silently dropped (they never affect diffusion).
  void AddEdge(NodeId u, NodeId v, double prob);

  /// Adds both (u, v) and (v, u) — used for undirected networks such as
  /// NetHEPT and Orkut (Table 2 lists them as undirected).
  void AddUndirectedEdge(NodeId u, NodeId v, double prob) {
    AddEdge(u, v, prob);
    AddEdge(v, u, prob);
  }

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_pending_edges() const { return edges_.size(); }

  /// Reserves capacity for `n` pending edges.
  void Reserve(std::size_t n) { edges_.reserve(n); }

  /// Finalizes into an immutable Graph. Parallel edges are merged, keeping
  /// the maximum probability. The builder is consumed.
  Graph Build() &&;

  /// Adopts pre-built CSR arrays verbatim as owned storage, bypassing the
  /// sort/dedup pass. The caller must supply exactly the layout Build()
  /// would have produced: forward edges sorted by (u, to) with EdgeId ==
  /// position, reverse edges scattered in forward-id order, both offset
  /// arrays of size num_nodes + 1. Used by the delta subsystem to splice
  /// an edited graph out of its base in O(edges) copies instead of a full
  /// rebuild; the result is bit-identical to the rebuild by construction.
  static Graph AdoptCsr(std::vector<uint64_t> out_offsets,
                        std::vector<OutEdge> out_edges,
                        std::vector<uint64_t> in_offsets,
                        std::vector<InEdge> in_edges);

 private:
  struct PendingEdge {
    NodeId u;
    NodeId v;
    float prob;
  };

  std::size_t num_nodes_;
  std::vector<PendingEdge> edges_;
};

}  // namespace cwm

#endif  // CWM_GRAPH_GRAPH_BUILDER_H_
