// SNAP-compatible edge-list persistence.
//
// Format: one edge per line, "u v" or "u v p"; lines starting with '#' are
// comments. This matches the format of the SNAP datasets the paper uses
// (Table 2), so a user with the real NetHEPT/Orkut/Twitter files can load
// them directly in place of the synthetic catalog. Parsing is buffered
// (1 MiB chunks) with std::from_chars — no per-line iostream overhead —
// and the edge array is pre-reserved from the file size, so multi-GB SNAP
// files ingest at I/O speed. For repeated loads, prefer `cwm_data import`
// + the binary store (store/graph_store.h): the .cwg form opens zero-copy.
#ifndef CWM_GRAPH_LOADER_H_
#define CWM_GRAPH_LOADER_H_

#include <string>

#include "graph/graph.h"
#include "support/status.h"

namespace cwm {

class ArtifactCache;

/// Options controlling edge-list parsing.
struct LoadOptions {
  /// Sentinel for `default_prob`: "the caller did not opt in".
  static constexpr double kNoDefaultProb = -1.0;

  /// Probability used for edge lines with no probability column. The
  /// default is a sentinel meaning *unset*: a probability-less line then
  /// fails with InvalidArgument instead of silently producing p = 0
  /// edges on which diffusion is impossible. Callers that really want a
  /// fill-in (including 0.0, e.g. when an edge-probability model is
  /// applied afterwards) must set a value in [0, 1] explicitly.
  double default_prob = kNoDefaultProb;
  /// Treat each line as an undirected edge (add both directions).
  bool undirected = false;

  bool has_default_prob() const {
    return default_prob >= 0.0 && default_prob <= 1.0;
  }
};

/// Reads an edge list from `path`. Node ids may be sparse; they are
/// densified in first-appearance order. Returns the graph or a parse/IO
/// error; a line without a probability column is an InvalidArgument
/// unless `options.default_prob` was set (see LoadOptions).
/// If `content_hash` is non-null it receives the FNV-1a hash of exactly
/// the bytes that were parsed (computed in the same read pass, so it can
/// never diverge from the parse under concurrent file modification).
StatusOr<Graph> ReadEdgeList(const std::string& path,
                             const LoadOptions& options = {},
                             uint64_t* content_hash = nullptr);

/// Cache-aware ReadEdgeList: keys the artifact cache on the file's
/// *content hash* plus the load options, so a hit skips parsing entirely
/// (zero-copy .cwg open) and an edited file is keyed afresh. The content
/// hash itself is memoized in a (size, mtime)-validated sidecar under
/// the cache root, so warm loads of multi-GB files skip even the hashing
/// read; a sidecar disproved by the keyed parse self-heals with a
/// re-hash. Caveat shared with every mtime-keyed cache: a rewrite that
/// preserves both byte size and nanosecond mtime is indistinguishable
/// from the original and would be served stale. With a null cache this
/// is plain ReadEdgeList.
/// If `graph_hash` is non-null it receives GraphContentHash of the
/// returned graph — from the .cwg header on a cache hit (no edge
/// page-in), computed once on a miss, 0 when `cache` is null.
StatusOr<Graph> ReadEdgeListCached(const std::string& path,
                                   const LoadOptions& options,
                                   ArtifactCache* cache,
                                   uint64_t* graph_hash = nullptr);

/// Writes `g` to `path` as "u v p" lines with a '#' header.
Status WriteEdgeList(const Graph& g, const std::string& path);

}  // namespace cwm

#endif  // CWM_GRAPH_LOADER_H_
