// SNAP-compatible edge-list persistence.
//
// Format: one edge per line, "u v" or "u v p"; lines starting with '#' are
// comments. This matches the format of the SNAP datasets the paper uses
// (Table 2), so a user with the real NetHEPT/Orkut/Twitter files can load
// them directly in place of the synthetic catalog.
#ifndef CWM_GRAPH_LOADER_H_
#define CWM_GRAPH_LOADER_H_

#include <string>

#include "graph/graph.h"
#include "support/status.h"

namespace cwm {

/// Options controlling edge-list parsing.
struct LoadOptions {
  /// If an edge line has no probability column, this value is used.
  double default_prob = 0.0;
  /// Treat each line as an undirected edge (add both directions).
  bool undirected = false;
};

/// Reads an edge list from `path`. Node ids may be sparse; they are
/// densified in first-appearance order. Returns the graph or a parse/IO
/// error.
StatusOr<Graph> ReadEdgeList(const std::string& path,
                             const LoadOptions& options = {});

/// Writes `g` to `path` as "u v p" lines with a '#' header.
Status WriteEdgeList(const Graph& g, const std::string& path);

}  // namespace cwm

#endif  // CWM_GRAPH_LOADER_H_
