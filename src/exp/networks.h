// Synthetic stand-ins for the paper's evaluation networks (Table 2).
//
// The real datasets (NetHEPT; Douban-Book/Movie; SNAP Orkut and Twitter)
// cannot be shipped; these factories synthesize graphs with the same node
// count, directedness and average degree, and heavy-tailed degree
// distributions from preferential attachment — the properties that drive
// RR-set and diffusion behaviour under weighted-cascade probabilities.
// Orkut and Twitter are built at a reduced, configurable node count (the
// paper's 3.07M/41.7M-node runs used a 128 GB server); density is
// preserved. Anyone holding the real edge lists can substitute them via
// graph/loader.h.
//
// All factories return *topology only*; apply an edge-probability model
// (graph/edge_prob.h) before running algorithms.
#ifndef CWM_EXP_NETWORKS_H_
#define CWM_EXP_NETWORKS_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace cwm {

/// NetHEPT-like: 15.2K nodes, ~31.4K undirected edges (avg degree ~4.1),
/// collaboration-network power law.
Graph NetHeptLike(uint64_t seed = 11);

/// Douban-Book-like: 23.3K nodes, ~141K directed edges (avg degree ~6.5).
Graph DoubanBookLike(uint64_t seed = 12);

/// Douban-Movie-like: 34.9K nodes, ~274K directed edges (avg degree ~7.9).
Graph DoubanMovieLike(uint64_t seed = 13);

/// Orkut-like at `num_nodes` nodes (paper: 3.07M): undirected friendship
/// network, average degree ~76 like the SNAP original. Dense — size runs
/// accordingly.
Graph OrkutLike(std::size_t num_nodes, uint64_t seed = 14);

/// Twitter-like at `num_nodes` nodes (paper: 41.7M): directed follower
/// network, average out-degree ~35 (SNAP twitter-2010 density).
Graph TwitterLike(std::size_t num_nodes, uint64_t seed = 15);

/// One row of Table 2 for `g`, e.g.
/// "nethept-like  15200 nodes  62342 directed edges  avg deg 4.10".
std::string NetworkStatsRow(const std::string& name, const Graph& g);

}  // namespace cwm

#endif  // CWM_EXP_NETWORKS_H_
