#include "exp/env.h"

#include <cstdlib>

namespace cwm {

int EnvInt(const char* name, int fallback, int min_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || parsed < min_value) return fallback;
  return static_cast<int>(parsed);
}

double EnvDouble(const char* name, double fallback, double min_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || parsed < min_value) return fallback;
  return parsed;
}

}  // namespace cwm
