#include "exp/networks.h"

#include <cstdio>

#include "graph/generators.h"
#include "support/check.h"

namespace cwm {

Graph NetHeptLike(uint64_t seed) {
  // BA with 2 undirected edges per node: ~30.4K undirected edges over
  // 15.2K nodes, avg directed degree ~4 — Table 2 reports 4.13.
  return BarabasiAlbert(/*num_nodes=*/15200, /*edges_per_node=*/2, seed);
}

Graph DoubanBookLike(uint64_t seed) {
  // Directed rating network; 6 edges per node ~= 140K directed edges.
  // random_frac / influencer_frac are calibrated on two axes (see
  // DESIGN.md): cascade magnitude (sigma(50) ~ 7-10% of the network, the
  // paper's welfare band) and near-additive seed spreads
  // (sigma(20)/sigma(10) ~ 1.7), which real rating networks exhibit and
  // which drives the Fig 4 algorithm ordering.
  return DirectedPreferentialAttachment(/*num_nodes=*/23300,
                                        /*out_per_node=*/6,
                                        /*random_frac=*/0.8, seed,
                                        /*influencer_frac=*/0.08);
}

Graph DoubanMovieLike(uint64_t seed) {
  return DirectedPreferentialAttachment(/*num_nodes=*/34900,
                                        /*out_per_node=*/8,
                                        /*random_frac=*/0.8, seed,
                                        /*influencer_frac=*/0.08);
}

Graph OrkutLike(std::size_t num_nodes, uint64_t seed) {
  CWM_CHECK(num_nodes >= 64);
  // SNAP Orkut: avg degree 2m/n ~= 76 => 38 undirected edges per node.
  return BarabasiAlbert(num_nodes, /*edges_per_node=*/38, seed);
}

Graph TwitterLike(std::size_t num_nodes, uint64_t seed) {
  CWM_CHECK(num_nodes >= 64);
  return DirectedPreferentialAttachment(num_nodes, /*out_per_node=*/35,
                                        /*random_frac=*/0.8, seed,
                                        /*influencer_frac=*/0.05);
}

std::string NetworkStatsRow(const std::string& name, const Graph& g) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%-18s %9zu nodes %12zu directed edges  avg deg %6.2f",
                name.c_str(), g.num_nodes(), g.num_edges(),
                g.AverageDegree());
  return buf;
}

}  // namespace cwm
