#include "exp/configs.h"

#include <cmath>

#include "support/check.h"

namespace cwm {

namespace {

UtilityConfig MustBuild(UtilityConfigBuilder&& builder) {
  StatusOr<UtilityConfig> result = std::move(builder).Build();
  CWM_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).value();
}

// Shared two-item skeleton of Table 3: prices P(i)=3, P(j)=4.
UtilityConfigBuilder TwoItemSkeleton(const char* name, double vi, double vj,
                                     double vij) {
  UtilityConfigBuilder builder(2);
  builder.SetName(name)
      .SetItemValue(0, vi)
      .SetItemValue(1, vj)
      .SetItemPrice(0, 3.0)
      .SetItemPrice(1, 4.0)
      .SetBundleValue(0x3, vij);
  return builder;
}

}  // namespace

UtilityConfig MakeConfigC1() {
  auto builder = TwoItemSkeleton("C1", 4.0, 4.9, 4.9);
  builder.SetAllNoise(NoiseDistribution::Normal(1.0));
  return MustBuild(std::move(builder));
}

UtilityConfig MakeConfigC2() {
  auto builder = TwoItemSkeleton("C2", 4.0, 4.1, 4.1);
  builder.SetAllNoise(NoiseDistribution::Normal(1.0));
  return MustBuild(std::move(builder));
}

UtilityConfig MakeConfigC3() {
  auto builder = TwoItemSkeleton("C3", 4.0, 4.9, 8.7);
  builder.SetAllNoise(NoiseDistribution::Normal(1.0));
  return MustBuild(std::move(builder));
}

UtilityConfig MakeConfigC5() {
  // C1 utilities (U(i)=1 vs U(j)=0.9); the noise bound must be below half
  // the utility gap (0.1) for i to be superior. sigma = bound / 3 keeps
  // actual clamping rare.
  auto builder = TwoItemSkeleton("C5", 4.0, 4.9, 4.9);
  builder.SetAllNoise(NoiseDistribution::ClampedNormal(0.04 / 3.0, 0.04));
  return MustBuild(std::move(builder));
}

UtilityConfig MakeConfigC6() {
  // C2 utilities (U(i)=1 vs U(j)=0.1); gap 0.9 allows bound 0.40.
  auto builder = TwoItemSkeleton("C6", 4.0, 4.1, 4.1);
  builder.SetAllNoise(NoiseDistribution::ClampedNormal(0.40 / 3.0, 0.40));
  return MustBuild(std::move(builder));
}

UtilityConfig MakeThreeItemConfig() {
  // Realizes Table 4: U(i)=2, U(j)=0.11, U(k)=0.1, U({i,k})=2.1, every
  // other bundle < 0, via additive prices of 10 per item.
  UtilityConfigBuilder builder(3);
  builder.SetName("ThreeItem")
      .SetItemValue(0, 12.0)    // i
      .SetItemValue(1, 10.11)   // j
      .SetItemValue(2, 10.1)    // k
      .SetItemPrice(0, 10.0)
      .SetItemPrice(1, 10.0)
      .SetItemPrice(2, 10.0)
      .SetBundleValue(0x3, 19.9)    // {i,j}:  U = -0.1
      .SetBundleValue(0x5, 22.1)    // {i,k}:  U = +2.1 (soft competition)
      .SetBundleValue(0x6, 19.9)    // {j,k}:  U = -0.1
      .SetBundleValue(0x7, 29.69);  // {i,j,k}: U = -0.31
  return MustBuild(std::move(builder));
}

UtilityConfig MakeUniformPureCompetition(int num_items) {
  UtilityConfigBuilder builder(num_items);
  builder.SetName("Uniform-m" + std::to_string(num_items));
  for (ItemId i = 0; i < num_items; ++i) {
    builder.SetItemValue(i, 2.0).SetItemPrice(i, 1.0);
  }
  // Default bundle completion V(I) = max singleton = 2 already gives
  // U(I) = 2 - |I| < 1: pure competition.
  return MustBuild(std::move(builder));
}

const char* const kLastFmGenres[4] = {"indie", "rock", "industrial",
                                      "progressive metal"};

UtilityConfig MakeLastFmConfig() {
  // Learned adoption probabilities from Table 5 (Benson et al.'s discrete
  // choice model on the Last.fm log); utilities per §6.4.1:
  // U(i) = ln(10000 * p_i).
  static constexpr double kProbs[4] = {0.107, 0.091, 0.015, 0.011};
  // An additive price of 3 per item (values shifted up by 3) makes every
  // bundle strictly worse than its best singleton, matching the paper's
  // observation that the learned bundles indicate pure competition.
  static constexpr double kPrice = 3.0;
  UtilityConfigBuilder builder(4);
  builder.SetName("LastFM");
  for (ItemId i = 0; i < 4; ++i) {
    const double u = std::log(10000.0 * kProbs[i]);
    builder.SetItemValue(i, u + kPrice).SetItemPrice(i, kPrice);
  }
  return MustBuild(std::move(builder));
}

UtilityConfig MakeTheorem1Config() {
  // Utilities: U(i1)=4, U(i2)=3, U(i3)=3.5; U({i1,i2})=3 (tie: a node
  // holding i2 does not add i1), U({i1,i3})=4.5, U({i2,i3})=2.5,
  // U(all)=2. Matches every adoption step of the Theorem 1 proof.
  UtilityConfigBuilder builder(3);
  builder.SetName("Theorem1")
      .SetItemValue(0, 6.0)   // i1, price 2 -> U = 4
      .SetItemValue(1, 7.0)   // i2, price 4 -> U = 3
      .SetItemValue(2, 6.5)   // i3, price 3 -> U = 3.5
      .SetItemPrice(0, 2.0)
      .SetItemPrice(1, 4.0)
      .SetItemPrice(2, 3.0)
      .SetBundleValue(0x3, 9.0)    // {i1,i2}: U = 3
      .SetBundleValue(0x5, 9.5)    // {i1,i3}: U = 4.5
      .SetBundleValue(0x6, 9.5)    // {i2,i3}: U = 2.5
      .SetBundleValue(0x7, 11.0);  // all:     U = 2
  return MustBuild(std::move(builder));
}

UtilityConfig MakeMixedComplementConfig() {
  UtilityConfigBuilder builder(3);
  builder.SetName("MixedComplement")
      .SetValidation(BundleValidation::kMonotoneOnly)
      .SetItemValue(0, 5.0)    // phone,  price 4 -> U = 1.0
      .SetItemValue(1, 2.2)    // case,   price 2 -> U = 0.2
      .SetItemValue(2, 4.9)    // phone2, price 4 -> U = 0.9
      .SetItemPrice(0, 4.0)
      .SetItemPrice(1, 2.0)
      .SetItemPrice(2, 4.0)
      .SetBundleValue(0x3, 7.8)   // {phone, case}:   U = 1.8 (complement)
      .SetBundleValue(0x5, 5.5)   // {phone, phone2}: U = -2.5 (competition)
      .SetBundleValue(0x6, 7.3)   // {phone2, case}:  U = 1.3 (complement)
      .SetBundleValue(0x7, 8.3);  // all:             U = -1.7
  return MustBuild(std::move(builder));
}

UtilityConfig MakeTheorem2Config() {
  // Table 1 verbatim (c = 0.4). Items i1..i4 are ItemIds 0..3.
  UtilityConfigBuilder builder(4);
  builder.SetName("Theorem2")
      .SetItemValue(0, 15.1)
      .SetItemValue(1, 105.0)
      .SetItemValue(2, 105.0)
      .SetItemValue(3, 101.0)
      .SetItemPrice(0, 10.0)
      .SetItemPrice(1, 100.0)
      .SetItemPrice(2, 100.0)
      .SetItemPrice(3, 1.0)
      .SetBundleValue(0x3, 114.9)   // {i1,i2}
      .SetBundleValue(0x5, 114.9)   // {i1,i3}
      .SetBundleValue(0x9, 116.1)   // {i1,i4}
      .SetBundleValue(0x6, 210.0)   // {i2,i3}
      .SetBundleValue(0xA, 206.0)   // {i2,i4}
      .SetBundleValue(0xC, 206.0)   // {i3,i4}
      .SetBundleValue(0x7, 214.6)   // {i1,i2,i3}
      .SetBundleValue(0xB, 214.0)   // {i1,i2,i4}
      .SetBundleValue(0xD, 214.0)   // {i1,i3,i4}
      .SetBundleValue(0xE, 210.5)   // {i2,i3,i4}
      .SetBundleValue(0xF, 214.6);  // all
  return MustBuild(std::move(builder));
}

}  // namespace cwm
