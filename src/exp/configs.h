// The paper's utility configurations.
//
//  * C1-C4   — two-item synthetic configurations of Table 3 (shared prices
//              P(i)=3, P(j)=4; values differ; N(0,1) noise). C1/C2 are pure
//              competition, C3/C4 soft competition (C4 = C3 with
//              non-uniform budgets, which is a bench-side concern).
//  * C5/C6   — §6.2.3: the C1/C2 utilities with *clamped* normal noise so
//              item i is a superior item (SupGRD's precondition); the
//              inferior item's seeds are fixed to the top IMM nodes.
//  * Three-item configuration of Table 4 (§6.3.2, blocking study).
//  * Uniform pure competition with m items (§6.3.1, Fig 6(a,b)).
//  * Last.fm genre configuration of Table 5, reconstructed exactly as
//    §6.4.1 prescribes from the published learned adoption probabilities:
//    U(i) = ln(10000 * p_i); bundles priced so competition is pure.
//  * Theorem 1 (Fig 1(a)) and Theorem 2 (Table 1) theory configurations.
//
// Every factory returns a validated (monotone submodular) configuration.
#ifndef CWM_EXP_CONFIGS_H_
#define CWM_EXP_CONFIGS_H_

#include "model/utility.h"

namespace cwm {

/// C1: comparable utilities, pure competition. U(i)=1, U(j)=0.9,
/// U({i,j}) = -2.1; noise N(0,1).
UtilityConfig MakeConfigC1();

/// C2: high utility gap, pure competition. U(i)=1, U(j)=0.1,
/// U({i,j}) = -2.9; noise N(0,1).
UtilityConfig MakeConfigC2();

/// C3 (and C4): soft competition. U(i)=1, U(j)=0.9, U({i,j}) = 1.7;
/// noise N(0,1).
UtilityConfig MakeConfigC3();

/// C5: C1 utilities, clamped noise (bound 0.04) making i superior.
UtilityConfig MakeConfigC5();

/// C6: C2 utilities, clamped noise (bound 0.40) making i superior.
UtilityConfig MakeConfigC6();

/// Table 4: U(i)=2, U(j)=0.11, U(k)=0.1, U({i,k})=2.1, all other bundles
/// negative. Mix of pure and soft competition; drives the item-blocking
/// study of §6.3.2.
UtilityConfig MakeThreeItemConfig();

/// Fig 6(a,b): m unit-utility items in pure competition (V=2, P=1 each;
/// V(bundle) = 2).
UtilityConfig MakeUniformPureCompetition(int num_items);

/// Table 5 reconstruction: items {indie, rock, industrial, progressive
/// metal} with deterministic utilities {~7.0, ~6.8, ~5.0, ~4.7}; pure
/// competition. Item order matches Table 5.
UtilityConfig MakeLastFmConfig();

/// Item names for MakeLastFmConfig(), aligned by ItemId.
extern const char* const kLastFmGenres[4];

/// Fig 1(a): the 3-item configuration of the Theorem 1 counterexamples
/// (U(i1)=4, U(i2)=3, U(i3)=3.5, U({i1,i3})=4.5, other bundles dominated).
UtilityConfig MakeTheorem1Config();

/// Table 1: the 4-item configuration of the Theorem 2 reduction (c = 0.4).
UtilityConfig MakeTheorem2Config();

/// Mixed competition/complementarity (§7 future work): two competing
/// phones (items 0, 2) and a case (item 1) that complements either phone.
/// U(phone)=1, U(case)=0.2, U(phone2)=0.9; U({phone,case})=1.8 and
/// U({phone2,case})=1.3 are supermodular; the phone pair is purely
/// competitive. Built with BundleValidation::kMonotoneOnly.
UtilityConfig MakeMixedComplementConfig();

}  // namespace cwm

#endif  // CWM_EXP_CONFIGS_H_
