#include "exp/runner.h"

#include <cstdlib>
#include <utility>

#include "support/timer.h"

namespace cwm {

ExperimentRunner::ExperimentRunner(const Graph& graph,
                                   const UtilityConfig& config,
                                   EstimatorOptions eval_options)
    : graph_(graph),
      config_(config),
      evaluator_(graph, config, eval_options),
      engine_(graph, config) {}

RunRecord ExperimentRunner::Run(const std::string& name,
                                const std::function<Allocation()>& algo,
                                const Allocation& sp) const {
  RunRecord record;
  record.algorithm = name;
  Timer timer;
  record.allocation = algo();
  record.seconds = timer.Seconds();
  const Allocation sp_or_empty =
      sp.num_items() == 0 ? Allocation(config_.num_items()) : sp;
  record.stats =
      evaluator_.Stats(Allocation::Union(record.allocation, sp_or_empty));
  record.welfare = record.stats.welfare;
  return record;
}

RunRecord ExperimentRunner::Run(AlgoKind kind, AllocateRequest request,
                                const Allocation& sp) const {
  request.algo = kind;
  request.fixed = &sp;
  // The runner's common evaluator defines the comparison worlds for every
  // record; the engine's keyed pool shares their materialization across
  // consecutive Run calls.
  request.eval = evaluator_.options();
  request.eval.pool_store = nullptr;  // engine binds its own store

  RunRecord record;
  record.algorithm = AlgoName(kind);
  AllocateResult result;
  const Status status = engine_.Allocate(std::move(request), &result);
  if (!status.ok()) {
    record.note = status.ToString();
    return record;
  }
  if (result.skipped) {
    record.note = result.skip_reason;
    record.seconds = result.allocate_seconds;
    return record;
  }
  record.seconds = result.allocate_seconds;
  record.allocation = std::move(result.allocation);
  record.stats = std::move(result.stats);
  record.welfare = record.stats.welfare;
  record.note = std::move(result.note);
  return record;
}

int EnvInt(const char* name, int fallback, int min_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || parsed < min_value) return fallback;
  return static_cast<int>(parsed);
}

double EnvDouble(const char* name, double fallback, double min_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || parsed < min_value) return fallback;
  return parsed;
}

}  // namespace cwm
