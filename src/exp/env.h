// Environment-knob parsing shared by the sweep runtime and the bench
// binaries (CWM_SIMS, CWM_BENCH_SCALE, ...). Kept free of experiment
// machinery so anything can read a knob without pulling in the engine.
#ifndef CWM_EXP_ENV_H_
#define CWM_EXP_ENV_H_

namespace cwm {

/// Integer environment knob (e.g. CWM_SIMS). Returns `fallback` when the
/// variable is unset, empty, unparseable, or parses below `min_value`.
/// An explicit `VAR=0` is a real value: it is honoured whenever
/// min_value <= 0 (e.g. CWM_GREEDY=0), and only knobs that require a
/// positive value (pass min_value = 1) fall back on it.
int EnvInt(const char* name, int fallback, int min_value = 0);

/// Double environment knob (e.g. CWM_BENCH_SCALE); same zero/min_value
/// contract as EnvInt.
double EnvDouble(const char* name, double fallback, double min_value = 0.0);

}  // namespace cwm

#endif  // CWM_EXP_ENV_H_
