// Experiment harness helpers shared by the bench binaries: run an
// algorithm, time it (the paper's running-time figures), evaluate the
// resulting allocation's welfare with one common high-precision estimator
// (so algorithms are compared on the same possible worlds), and print
// aligned rows.
#ifndef CWM_EXP_RUNNER_H_
#define CWM_EXP_RUNNER_H_

#include <functional>
#include <string>

#include "api/engine.h"
#include "graph/graph.h"
#include "model/allocation.h"
#include "model/utility.h"
#include "simulate/estimator.h"

namespace cwm {

/// One (algorithm, configuration) measurement.
struct RunRecord {
  std::string algorithm;
  double seconds = 0.0;    ///< wall-clock seed-selection time
  double welfare = 0.0;    ///< rho(alloc ∪ sp), common evaluator
  WelfareStats stats;      ///< adoption counts etc.
  Allocation allocation;   ///< the algorithm's allocation (without sp)
  std::string note;        ///< annotation / skip reason (registry path)
};

/// Times `algo` and evaluates its allocation on top of `sp` with a shared
/// evaluator.
class ExperimentRunner {
 public:
  ExperimentRunner(const Graph& graph, const UtilityConfig& config,
                   EstimatorOptions eval_options);

  /// Runs one algorithm; `sp` may be an empty allocation.
  RunRecord Run(const std::string& name,
                const std::function<Allocation()>& algo,
                const Allocation& sp) const;

  /// Runs a *registered* allocator (api/registry.h) through the runner's
  /// long-lived Engine: `request.algo`/seeds/budgets come from the
  /// caller, evaluation uses the runner's common estimator options (so
  /// records stay comparable with the lambda overload), and consecutive
  /// calls share the engine's keyed snapshot pools. Precondition
  /// failures return a record whose `note` carries the skip reason and
  /// whose allocation is empty.
  RunRecord Run(AlgoKind kind, AllocateRequest request,
                const Allocation& sp) const;

  const WelfareEstimator& evaluator() const { return evaluator_; }
  const Engine& engine() const { return engine_; }

 private:
  const Graph& graph_;
  const UtilityConfig& config_;
  WelfareEstimator evaluator_;
  Engine engine_;
};

/// Integer environment knob (e.g. CWM_SIMS). Returns `fallback` when the
/// variable is unset, empty, unparseable, or parses below `min_value`.
/// An explicit `VAR=0` is a real value: it is honoured whenever
/// min_value <= 0 (e.g. CWM_GREEDY=0), and only knobs that require a
/// positive value (pass min_value = 1) fall back on it.
int EnvInt(const char* name, int fallback, int min_value = 0);

/// Double environment knob (e.g. CWM_BENCH_SCALE); same zero/min_value
/// contract as EnvInt.
double EnvDouble(const char* name, double fallback, double min_value = 0.0);

}  // namespace cwm

#endif  // CWM_EXP_RUNNER_H_
