#include "exp/reduction.h"

#include "exp/configs.h"
#include "graph/graph_builder.h"
#include "support/check.h"

namespace cwm {

Theorem2Gadget BuildTheorem2Gadget(const SetCoverInstance& instance,
                                   std::size_t num_copies) {
  const std::size_t n = static_cast<std::size_t>(instance.num_elements);
  const std::size_t r = instance.sets.size();
  CWM_CHECK(n >= 1 && r >= 1);
  CWM_CHECK(num_copies >= 1 && num_copies % n == 0);
  const std::size_t d_per_group = num_copies / n;

  // Shared nodes: s (r), a (n), b (n), j (n). Per copy: g, e, f, l, m, o
  // (n each) and N d-nodes.
  const std::size_t shared = r + 3 * n;
  const std::size_t per_copy = 6 * n + num_copies;
  const std::size_t total = shared + num_copies * per_copy;

  Theorem2Gadget out;
  out.num_copies = num_copies;
  out.num_d_nodes = num_copies * num_copies;
  out.utility = MakeTheorem2Config();
  out.budgets = {instance.k, static_cast<int>(n), static_cast<int>(n),
                 static_cast<int>(n)};

  const NodeId s0 = 0;
  const NodeId a0 = static_cast<NodeId>(r);
  const NodeId b0 = static_cast<NodeId>(r + n);
  const NodeId j0 = static_cast<NodeId>(r + 2 * n);
  auto copy_base = [&](std::size_t c) {
    return static_cast<NodeId>(shared + c * per_copy);
  };
  // Within a copy: g [0,n), e [n,2n), f [2n,3n), l [3n,4n), m [4n,5n),
  // o [5n,6n), d [6n, 6n+N).
  auto g_of = [&](std::size_t c, std::size_t i) {
    return static_cast<NodeId>(copy_base(c) + i);
  };
  auto e_of = [&](std::size_t c, std::size_t i) {
    return static_cast<NodeId>(copy_base(c) + n + i);
  };
  auto f_of = [&](std::size_t c, std::size_t i) {
    return static_cast<NodeId>(copy_base(c) + 2 * n + i);
  };
  auto l_of = [&](std::size_t c, std::size_t i) {
    return static_cast<NodeId>(copy_base(c) + 3 * n + i);
  };
  auto m_of = [&](std::size_t c, std::size_t i) {
    return static_cast<NodeId>(copy_base(c) + 4 * n + i);
  };
  auto o_of = [&](std::size_t c, std::size_t i) {
    return static_cast<NodeId>(copy_base(c) + 5 * n + i);
  };
  auto d_of = [&](std::size_t c, std::size_t idx) {
    return static_cast<NodeId>(copy_base(c) + 6 * n + idx);
  };

  GraphBuilder builder(total);
  for (std::size_t c = 0; c < num_copies; ++c) {
    // Set-cover bipartite part: s_t -> g_i iff element i in S_t.
    for (std::size_t t = 0; t < r; ++t) {
      for (int elem : instance.sets[t]) {
        CWM_CHECK(elem >= 0 && elem < instance.num_elements);
        builder.AddEdge(static_cast<NodeId>(s0 + t),
                        g_of(c, static_cast<std::size_t>(elem)), 1.0);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      // a_i -> g_i; b_i -> e_i -> f_i; j_i -> l_i -> m_i -> o_i.
      builder.AddEdge(static_cast<NodeId>(a0 + i), g_of(c, i), 1.0);
      builder.AddEdge(static_cast<NodeId>(b0 + i), e_of(c, i), 1.0);
      builder.AddEdge(e_of(c, i), f_of(c, i), 1.0);
      builder.AddEdge(static_cast<NodeId>(j0 + i), l_of(c, i), 1.0);
      builder.AddEdge(l_of(c, i), m_of(c, i), 1.0);
      builder.AddEdge(m_of(c, i), o_of(c, i), 1.0);
      // g -> f is complete bipartite: one g adopting i1 at t=1/2 reaches
      // every f before {i2, i3} can assemble, and one g adopting i2 makes
      // every f (which also hears i3 from its e) adopt the {i2,i3} bundle.
      for (std::size_t q = 0; q < n; ++q) {
        builder.AddEdge(g_of(c, i), f_of(c, q), 1.0);
      }
      // f_i and o_i feed the i-th group of N/n d-nodes.
      for (std::size_t q = 0; q < d_per_group; ++q) {
        builder.AddEdge(f_of(c, i), d_of(c, i * d_per_group + q), 1.0);
        builder.AddEdge(o_of(c, i), d_of(c, i * d_per_group + q), 1.0);
      }
    }
  }
  out.graph = std::move(builder).Build();

  // Fixed allocation: a -> i2, b -> i3, j -> i4 (shared nodes, so they act
  // in every copy).
  Allocation sp(4);
  for (std::size_t i = 0; i < n; ++i) {
    sp.Add(static_cast<NodeId>(a0 + i), 1);
    sp.Add(static_cast<NodeId>(b0 + i), 2);
    sp.Add(static_cast<NodeId>(j0 + i), 3);
  }
  out.fixed_sp = std::move(sp);

  out.s_nodes.resize(r);
  for (std::size_t t = 0; t < r; ++t) {
    out.s_nodes[t] = static_cast<NodeId>(s0 + t);
  }
  out.g_nodes.reserve(num_copies * n);
  out.d_nodes.reserve(out.num_d_nodes);
  for (std::size_t c = 0; c < num_copies; ++c) {
    for (std::size_t i = 0; i < n; ++i) out.g_nodes.push_back(g_of(c, i));
    for (std::size_t idx = 0; idx < num_copies; ++idx) {
      out.d_nodes.push_back(d_of(c, idx));
    }
  }
  return out;
}

}  // namespace cwm
