// The Theorem 2 gap-introducing reduction from SET COVER (Fig. 2, Table 1).
//
// Builds the CWelMax instance J: N copies of the gadget J' sharing the
// s/a/b/j nodes, with the Table 1 utility configuration and the fixed
// allocation {a -> i2, b -> i3, j -> i4}. For a YES instance of SET COVER
// (k sets covering all elements), seeding i1 on those k s-nodes makes all
// N^2 d-nodes adopt {i1, i4} (utility 105.1 each); for a NO instance every
// choice of k i1-seeds leaves welfare below c * N^2 * U({i1,i4}) with
// c = 0.4. Used by integration tests and the hardness_gadget example to
// validate the reduction's Claims 1-3 empirically.
#ifndef CWM_EXP_REDUCTION_H_
#define CWM_EXP_REDUCTION_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "model/allocation.h"
#include "model/utility.h"

namespace cwm {

/// A SET COVER instance (F, X, k): `sets[t]` lists the element ids (in
/// [0, num_elements)) of subset S_t; the question is whether k subsets
/// cover X.
struct SetCoverInstance {
  int num_elements = 0;
  std::vector<std::vector<int>> sets;
  int k = 0;
};

/// The constructed CWelMax instance.
struct Theorem2Gadget {
  Graph graph;
  UtilityConfig utility;      ///< Table 1 configuration (c = 0.4).
  Allocation fixed_sp;        ///< a -> i2, b -> i3, j -> i4 (shared nodes).
  BudgetVector budgets;       ///< {k, n, n, n}.
  std::vector<NodeId> s_nodes;  ///< shared set-nodes: i1 seed candidates.
  /// g_nodes[c * n + i] = node g_i of copy c.
  std::vector<NodeId> g_nodes;
  std::size_t num_copies = 0;   ///< N.
  std::size_t num_d_nodes = 0;  ///< N * N in total.
  std::vector<NodeId> d_nodes;  ///< all d nodes, copy-major.
};

/// Builds the instance with N copies. `num_copies` must be a positive
/// multiple of instance.num_elements (the d-nodes split into n groups of
/// N/n per copy). All edge probabilities are 1 (deterministic diffusion).
Theorem2Gadget BuildTheorem2Gadget(const SetCoverInstance& instance,
                                   std::size_t num_copies);

}  // namespace cwm

#endif  // CWM_EXP_REDUCTION_H_
