#include "delta/overlay.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "graph/graph_builder.h"
#include "store/graph_store.h"
#include "store/mapped_file.h"
#include "support/rng.h"

namespace cwm {

namespace {

/// Domain tag folded into every delta chain recipe hash.
constexpr uint64_t kDeltaChainTag = 0xD317Aull;

/// Final per-(u, v) intent after folding a log's edits in order.
enum class Intent : uint8_t {
  kAbsent,    ///< delete: drop the edge if the base has it
  kPresent,   ///< insert: the edge exists with `prob`, base or not
  kReweight,  ///< reweight: set `prob` iff the base has the edge
};

struct FoldedEdit {
  Intent intent;
  float prob;
};

uint64_t EdgeKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

StatusOr<AppliedDelta> ApplyDeltaToGraph(const Graph& base,
                                         const DeltaLog& log,
                                         uint64_t base_hash) {
  if (log.num_nodes != base.num_nodes()) {
    return Status::InvalidArgument(
        "delta log node universe (" + std::to_string(log.num_nodes) +
        ") differs from the base graph's (" +
        std::to_string(base.num_nodes()) + ")");
  }
  if (base_hash == 0) base_hash = GraphContentHash(base);
  if (log.base_hash != 0 && log.base_hash != base_hash) {
    return Status::InvalidArgument(
        "delta log targets base " + HashToHex(log.base_hash) +
        ", not this graph (" + HashToHex(base_hash) + ")");
  }

  // Fold the edits in log order so later edits win, producing one final
  // intent per touched (u, v).
  std::unordered_map<uint64_t, FoldedEdit> folded;
  folded.reserve(log.edits.size());
  for (std::size_t i = 0; i < log.edits.size(); ++i) {
    const DeltaEdit& edit = log.edits[i];
    if (edit.from >= log.num_nodes || edit.to >= log.num_nodes ||
        edit.from == edit.to ||
        edit.op > static_cast<uint32_t>(DeltaOp::kReweight) ||
        (edit.op != static_cast<uint32_t>(DeltaOp::kDelete) &&
         !(edit.prob >= 0.0f && edit.prob <= 1.0f))) {
      return Status::InvalidArgument("malformed delta edit at " +
                                     std::to_string(i));
    }
    const uint64_t key = EdgeKey(edit.from, edit.to);
    auto [it, inserted] =
        folded.try_emplace(key, FoldedEdit{Intent::kReweight, edit.prob});
    FoldedEdit& slot = it->second;
    switch (static_cast<DeltaOp>(edit.op)) {
      case DeltaOp::kInsert:
        slot = FoldedEdit{Intent::kPresent, edit.prob};
        break;
      case DeltaOp::kDelete:
        slot = FoldedEdit{Intent::kAbsent, 0.0f};
        break;
      case DeltaOp::kReweight:
        // A reweight after a delete stays deleted (the edge it would
        // retune no longer exists); after insert/reweight it just moves
        // the probability.
        if (inserted || slot.intent != Intent::kAbsent) slot.prob = edit.prob;
        break;
    }
  }

  // Splice the edited graph out of the base instead of re-running the
  // sort/dedup builder: only nodes named by an edit have their adjacency
  // rebuilt (a sorted merge of the old list against the folded edits);
  // everything else is copied through, with forward EdgeIds in the
  // reverse arrays re-pointed across the insert/delete shifts. The output
  // is bit-identical to a GraphBuilder rebuild of the same composition
  // (tests/delta_test.cc holds a reference implementation as the oracle),
  // so recipe and content hashes are unaffected by which path built it.
  const std::size_t n = base.num_nodes();
  const std::span<const uint64_t> offsets = base.RawOutOffsets();
  const std::span<const OutEdge> old_out = base.RawOutEdges();
  AppliedDelta result;
  result.base_hash = base_hash;
  result.log_hash = DeltaLogHash(log);
  result.first_dirty_edge = static_cast<EdgeId>(base.num_edges());
  // Dirtiness is a property of the composition, not of the log text:
  // deleting an absent edge or reweighting to the identical probability
  // leaves both watermarks untouched.
  auto mark_dirty = [&](NodeId u, NodeId v) {
    result.dirty_nodes.push_back(v);
    result.first_dirty_edge = std::min(
        result.first_dirty_edge, static_cast<EdgeId>(offsets[u]));
  };

  // Edits ordered by (u, v) so each touched source rebuilds in one merge.
  std::vector<std::pair<uint64_t, const FoldedEdit*>> items;
  items.reserve(folded.size());
  for (const auto& [key, edit] : folded) items.emplace_back(key, &edit);
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // An in-list entry that changes content; `erase` distinguishes a
  // deleted edge from an inserted/reweighted one.
  struct InEdit {
    NodeId v;
    NodeId u;
    float prob;
    bool erase;
  };
  std::vector<InEdit> in_edits;

  struct TouchedSource {
    NodeId u;
    std::size_t rebuilt_begin;  ///< into `rebuilt`
    std::size_t rebuilt_count;
  };
  std::vector<TouchedSource> touched;
  std::vector<OutEdge> rebuilt;  // concatenated new out-lists
  std::vector<bool> touched_src(n, false);

  for (std::size_t i = 0; i < items.size();) {
    const NodeId u = static_cast<NodeId>(items[i].first >> 32);
    std::size_t end = i;
    while (end < items.size() &&
           static_cast<NodeId>(items[end].first >> 32) == u) {
      ++end;
    }
    touched_src[u] = true;
    const std::size_t begin = rebuilt.size();
    const std::span<const OutEdge> old_list = base.OutEdges(u);
    std::size_t a = 0;
    std::size_t j = i;
    while (a < old_list.size() || j < end) {
      const NodeId edit_v = j < end
                                ? static_cast<NodeId>(items[j].first &
                                                      0xFFFFFFFFull)
                                : 0;
      if (j >= end || (a < old_list.size() && old_list[a].to < edit_v)) {
        rebuilt.push_back(old_list[a++]);
        continue;
      }
      const FoldedEdit& edit = *items[j].second;
      if (a >= old_list.size() || edit_v < old_list[a].to) {
        // No matching base edge: unmatched deletes and reweights are
        // no-ops; unmatched inserts are the genuinely new edges.
        if (edit.intent == Intent::kPresent) {
          rebuilt.push_back({edit_v, edit.prob});
          mark_dirty(u, edit_v);
          in_edits.push_back({edit_v, u, edit.prob, false});
        }
        ++j;
        continue;
      }
      if (edit.intent == Intent::kAbsent) {
        mark_dirty(u, old_list[a].to);
        in_edits.push_back({old_list[a].to, u, 0.0f, true});
      } else {
        rebuilt.push_back({old_list[a].to, edit.prob});
        if (edit.prob != old_list[a].prob) {
          mark_dirty(u, old_list[a].to);
          in_edits.push_back({old_list[a].to, u, edit.prob, false});
        }
      }
      ++a;
      ++j;
    }
    touched.push_back({u, begin, rebuilt.size() - begin});
    i = end;
  }
  std::sort(result.dirty_nodes.begin(), result.dirty_nodes.end());
  result.dirty_nodes.erase(
      std::unique(result.dirty_nodes.begin(), result.dirty_nodes.end()),
      result.dirty_nodes.end());

  // Forward CSR: new offsets, then per-node copy (untouched lists are
  // content-identical; only their base position shifts).
  std::vector<uint64_t> new_out_offsets(n + 1, 0);
  {
    std::size_t t = 0;
    for (NodeId u = 0; u < n; ++u) {
      const std::size_t degree =
          (t < touched.size() && touched[t].u == u)
              ? touched[t++].rebuilt_count
              : static_cast<std::size_t>(offsets[u + 1] - offsets[u]);
      new_out_offsets[u + 1] = new_out_offsets[u] + degree;
    }
  }
  std::vector<OutEdge> new_out(new_out_offsets[n]);
  {
    std::size_t t = 0;
    for (NodeId u = 0; u < n; ++u) {
      OutEdge* dst = new_out.data() + new_out_offsets[u];
      if (t < touched.size() && touched[t].u == u) {
        std::copy_n(rebuilt.data() + touched[t].rebuilt_begin,
                    touched[t].rebuilt_count, dst);
        ++t;
      } else {
        std::copy_n(old_out.data() + offsets[u], offsets[u + 1] - offsets[u],
                    dst);
      }
    }
  }

  // Forward-id remap for the reverse arrays. Edges of untouched sources
  // keep their list position, so their id moves by the cumulative
  // insert/delete shift of touched sources before them (a step function
  // over old ids); edges of touched sources are looked up in their
  // rebuilt list directly.
  struct Shift {
    uint64_t old_end;  ///< base EdgeId one past the touched source's list
    int64_t shift;     ///< applies to old ids at or beyond old_end
  };
  std::vector<Shift> shifts;
  shifts.reserve(touched.size());
  std::unordered_map<uint64_t, EdgeId> spliced_id;
  {
    int64_t cum = 0;
    for (const TouchedSource& src : touched) {
      cum += static_cast<int64_t>(src.rebuilt_count) -
             static_cast<int64_t>(offsets[src.u + 1] - offsets[src.u]);
      shifts.push_back({offsets[src.u + 1], cum});
      for (std::size_t k = 0; k < src.rebuilt_count; ++k) {
        spliced_id[EdgeKey(src.u, rebuilt[src.rebuilt_begin + k].to)] =
            static_cast<EdgeId>(new_out_offsets[src.u] + k);
      }
    }
  }
  auto remap_id = [&](NodeId from, NodeId to, EdgeId id) -> EdgeId {
    if (touched_src[from]) return spliced_id.at(EdgeKey(from, to));
    const auto it = std::upper_bound(
        shifts.begin(), shifts.end(), static_cast<uint64_t>(id),
        [](uint64_t value, const Shift& s) { return value < s.old_end; });
    if (it == shifts.begin()) return id;
    return static_cast<EdgeId>(static_cast<int64_t>(id) +
                               std::prev(it)->shift);
  };

  // Reverse CSR: only the dirty targets' lists change content (their
  // edits, grouped below, splice in by `from` order — which is how the
  // builder's forward-id scatter orders them); every other entry copies
  // through with its id re-pointed.
  std::sort(in_edits.begin(), in_edits.end(),
            [](const InEdit& a, const InEdit& b) {
              return a.v != b.v ? a.v < b.v : a.u < b.u;
            });
  const std::span<const uint64_t> old_in_offsets = base.RawInOffsets();
  const std::span<const InEdge> old_in = base.RawInEdges();
  std::vector<uint64_t> new_in_offsets(n + 1, 0);
  std::vector<InEdge> new_in;
  new_in.reserve(new_out.size());
  {
    std::size_t e = 0;  // cursor into in_edits
    for (NodeId v = 0; v < n; ++v) {
      const std::span<const InEdge> old_list{
          old_in.data() + old_in_offsets[v],
          old_in.data() + old_in_offsets[v + 1]};
      std::size_t end = e;
      while (end < in_edits.size() && in_edits[end].v == v) ++end;
      if (end == e) {
        for (const InEdge& entry : old_list) {
          new_in.push_back(
              {entry.from, entry.prob, remap_id(entry.from, v, entry.id)});
        }
      } else {
        std::size_t a = 0;
        std::size_t j = e;
        while (a < old_list.size() || j < end) {
          if (j >= end ||
              (a < old_list.size() && old_list[a].from < in_edits[j].u)) {
            const InEdge& entry = old_list[a++];
            new_in.push_back(
                {entry.from, entry.prob, remap_id(entry.from, v, entry.id)});
            continue;
          }
          const InEdit& edit = in_edits[j];
          if (a >= old_list.size() || edit.u < old_list[a].from) {
            // Inserted edge: new in-entry.
            new_in.push_back(
                {edit.u, edit.prob, spliced_id.at(EdgeKey(edit.u, v))});
            ++j;
            continue;
          }
          if (!edit.erase) {
            new_in.push_back(
                {edit.u, edit.prob, spliced_id.at(EdgeKey(edit.u, v))});
          }
          ++a;
          ++j;
        }
        e = end;
      }
      new_in_offsets[v + 1] = new_in.size();
    }
  }

  result.graph = GraphBuilder::AdoptCsr(
      std::move(new_out_offsets), std::move(new_out),
      std::move(new_in_offsets), std::move(new_in));
  result.result_hash = GraphContentHash(result.graph);
  if (log.result_hash != 0 && log.result_hash != result.result_hash) {
    return Status::Corruption(
        "delta application produced " + HashToHex(result.result_hash) +
        " but the log records result " + HashToHex(log.result_hash));
  }
  return result;
}

uint64_t DeltaChainRecipeHash(uint64_t base_hash,
                              std::span<const DeltaChainLink> chain) {
  uint64_t h = MixHash(kDeltaChainTag, base_hash);
  for (const DeltaChainLink& link : chain) h = MixHash(h, link.log_hash);
  return MixHash(h, kFormatVersion);
}

DeltaOverlay::DeltaOverlay(Graph base, uint64_t base_hash)
    : graph_(std::move(base)),
      base_hash_(base_hash != 0 ? base_hash : GraphContentHash(graph_)),
      content_hash_(base_hash_),
      last_first_dirty_edge_(static_cast<EdgeId>(graph_.num_edges())) {}

Status DeltaOverlay::Apply(const DeltaLog& log) {
  StatusOr<AppliedDelta> applied =
      ApplyDeltaToGraph(graph_, log, content_hash_);
  if (!applied.ok()) return applied.status();
  AppliedDelta& a = applied.value();
  chain_.push_back(DeltaChainLink{a.log_hash, log.edits.size(),
                                  a.dirty_nodes.size(), a.result_hash});
  total_edits_ += log.edits.size();
  graph_ = std::move(a.graph);
  content_hash_ = a.result_hash;
  last_dirty_ = std::move(a.dirty_nodes);
  last_first_dirty_edge_ = a.first_dirty_edge;
  return Status::OK();
}

Status DeltaOverlay::Compact(const std::string& out_path) const {
  return WriteGraphFile(graph_, out_path, recipe_hash(), content_hash_);
}

Status WriteChainSidecar(const std::string& graph_path,
                         const DeltaChainFile& chain) {
  std::ostringstream os;
  os << "base=" << HashToHex(chain.base_hash) << "\n";
  for (const DeltaChainLink& link : chain.links) {
    os << "delta=" << HashToHex(link.log_hash) << " edits=" << link.num_edits
       << " dirty=" << link.dirty_count
       << " result=" << HashToHex(link.result_hash) << "\n";
  }
  const std::string text = std::move(os).str();
  const ByteSection section{text.data(), text.size()};
  return WriteFileAtomic(graph_path + ".chain", {&section, 1});
}

StatusOr<DeltaChainFile> ReadChainSidecar(const std::string& graph_path) {
  const std::string path = graph_path + ".chain";
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(path + ": no delta chain sidecar");
  }
  DeltaChainFile chain;
  std::string line;
  if (!std::getline(in, line) ||
      std::sscanf(line.c_str(), "base=%16" SCNx64, &chain.base_hash) != 1) {
    return Status::Corruption(path + ": malformed base line");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    DeltaChainLink link;
    unsigned long long edits = 0, dirty = 0;
    if (std::sscanf(line.c_str(),
                    "delta=%16" SCNx64 " edits=%llu dirty=%llu"
                    " result=%16" SCNx64,
                    &link.log_hash, &edits, &dirty, &link.result_hash) != 4) {
      return Status::Corruption(path + ": malformed chain line");
    }
    link.num_edits = edits;
    link.dirty_count = dirty;
    chain.links.push_back(link);
  }
  return chain;
}

}  // namespace cwm
