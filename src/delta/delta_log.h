// Binary edge-delta persistence (.cwd): the dynamic-graph change unit.
//
// A delta log is an ordered list of edge edits (insert / delete /
// reweight) against one specific base graph, identified by its
// GraphContentHash. The file shares the store skeleton of format.h — a
// fixed 64-byte header (magic, version, endian tag, counts, FNV-1a
// payload checksum, provenance) followed by a flat array of 16-byte
// trivially copyable edit records — so the same write-atomically /
// validate-on-open discipline applies.
//
// Semantics, applied in log order (later edits win over earlier ones):
//   insert    upsert: add the edge, or overwrite its probability
//   delete    remove the edge if present (no-op otherwise)
//   reweight  set the probability if the edge is present (no-op otherwise)
//
// A log pins num_nodes to the base graph's node count: deltas never grow
// or shrink the node universe. That pin is what makes per-set RR-era
// invalidation exact (delta/rr_patch.h) — the sampler's root draw is
// NextBounded(num_nodes), so an unchanged universe means an unchanged
// root stream.
//
// Unlike graph opens, delta opens always verify the full payload
// checksum and every record: logs are small (edits, not edges), so the
// O(num_edits) pass costs nothing and a torn or bit-rotted log can never
// silently corrupt a composed graph.
#ifndef CWM_DELTA_DELTA_LOG_H_
#define CWM_DELTA_DELTA_LOG_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "graph/graph.h"
#include "store/format.h"
#include "support/status.h"

namespace cwm {

/// 'CWMD' little-endian magic of a .cwd delta-log file.
inline constexpr uint32_t kDeltaMagic = 0x444D5743u;

/// Edit kinds; stored as the uint32 `op` of DeltaEdit.
enum class DeltaOp : uint32_t {
  kInsert = 0,
  kDelete = 1,
  kReweight = 2,
};

/// One edge edit. The payload section is a raw memory image of this
/// struct; any change to it is a format change.
struct DeltaEdit {
  uint32_t op = 0;  ///< DeltaOp
  NodeId from = 0;
  NodeId to = 0;
  float prob = 0.0f;  ///< insert/reweight probability; 0 for delete
};
static_assert(sizeof(DeltaEdit) == 16 &&
              std::is_trivially_copyable_v<DeltaEdit>);

/// Fixed header of a .cwd delta-log file (64 bytes).
struct DeltaFileHeader {
  uint32_t magic = kDeltaMagic;
  uint16_t version = kFormatVersion;
  uint16_t endian = kEndianTag;
  uint64_t num_edits = 0;
  uint64_t num_nodes = 0;      ///< node universe; must equal the base's
  uint64_t payload_bytes = 0;  ///< everything after this header
  uint64_t checksum = 0;       ///< FNV-1a64 of the payload bytes
  uint64_t base_hash = 0;      ///< GraphContentHash the log applies to
  /// GraphContentHash after application (0 = not yet applied/recorded);
  /// when non-zero, appliers cross-check the composed graph against it.
  uint64_t result_hash = 0;
  uint64_t reserved = 0;
};
static_assert(sizeof(DeltaFileHeader) == 64);
static_assert(std::is_trivially_copyable_v<DeltaFileHeader>);

/// An in-memory delta log: the header provenance plus the edit records.
struct DeltaLog {
  uint64_t num_nodes = 0;
  uint64_t base_hash = 0;
  uint64_t result_hash = 0;  ///< 0 until recorded by an applier/writer
  std::vector<DeltaEdit> edits;
};

/// Content identity of a log: num_nodes, base hash, and the edit bytes
/// (result_hash excluded — it is derived). This is the per-link value the
/// delta chain recipe hash folds (delta/overlay.h) and the hash printed
/// as the log's identity by `cwm_data info`.
uint64_t DeltaLogHash(const DeltaLog& log);

/// Writes `log` to `path` atomically (temp file + rename). Fails with
/// InvalidArgument on malformed edits (bad op, endpoint out of range,
/// self-loop, probability outside [0, 1] on insert/reweight) — the same
/// checks OpenDeltaFile enforces, so a written log always reopens.
Status WriteDeltaFile(const DeltaLog& log, const std::string& path);

/// Opens and fully validates a .cwd file: header structure, payload
/// checksum, and every edit record. Corruption/IOError on any problem.
StatusOr<DeltaLog> OpenDeltaFile(const std::string& path);

/// Header fields of a .cwd file without validating the payload.
StatusOr<DeltaFileHeader> ReadDeltaHeader(const std::string& path);

/// Full integrity check; for .cwd this is the same pass Open performs.
Status VerifyDeltaFile(const std::string& path);

///// Deterministic churn generator: `num_edits` pseudo-random edits against
/// `base` derived purely from `seed` (inserts of fresh edges, deletes and
/// reweights of existing ones, roughly balanced). Drives the churn-replay
/// scenario and `cwm_data gen-delta`; the same (base, seed, num_edits)
/// always yields byte-identical logs.
DeltaLog GenerateChurnDelta(const Graph& base, uint64_t seed,
                            std::size_t num_edits);

}  // namespace cwm

#endif  // CWM_DELTA_DELTA_LOG_H_
