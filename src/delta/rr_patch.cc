#include "delta/rr_patch.h"

#include <vector>

#include "obs/metrics.h"
#include "rrset/imm.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_pipeline.h"
#include "rrset/rr_sampler.h"
#include "store/rr_store.h"
#include "support/rng.h"

namespace cwm {

RrPatchStats PatchCachedRrEras(ArtifactCache& cache, const Graph& new_graph,
                               uint64_t old_hash, uint64_t new_hash,
                               std::span<const NodeId> dirty_nodes) {
  static Counter& eras_patched =
      MetricsRegistry::Global().GetCounter("delta.eras_patched");
  static Counter& sets_reused =
      MetricsRegistry::Global().GetCounter("delta.sets_reused");
  static Counter& sets_resampled =
      MetricsRegistry::Global().GetCounter("delta.sets_resampled");

  RrPatchStats stats;
  if (old_hash == new_hash) return stats;
  const std::size_t n = new_graph.num_nodes();
  std::vector<bool> dirty(n, false);
  for (NodeId v : dirty_nodes) {
    if (v < n) dirty[v] = true;
  }

  RrSampler sampler(new_graph);
  std::vector<NodeId> scratch;
  for (const CacheEntry& entry : cache.List()) {
    if (entry.is_graph) continue;
    StatusOr<RrFileHeader> header = ReadRrHeader(entry.path);
    if (!header.ok()) continue;  // pipeline will quarantine + resample
    if (header.value().graph_hash != old_hash ||
        header.value().source_id != kStandardRrSourceId ||
        header.value().num_nodes != n) {
      continue;
    }
    ++stats.eras_scanned;
    RrProvenance expect;
    expect.graph_hash = old_hash;
    expect.sample_seed = header.value().sample_seed;
    expect.source_id = header.value().source_id;
    expect.era_start = header.value().era_start;
    StatusOr<RrEraData> era = OpenRrFile(entry.path, &expect, n);
    if (!era.ok()) continue;
    const RrEraData& data = era.value();

    RrCollection patched(n);
    for (std::size_t k = 0; k < data.num_sets(); ++k) {
      const std::span<const NodeId> members = data.members.subspan(
          data.offsets[k], data.offsets[k + 1] - data.offsets[k]);
      bool touched = false;
      for (NodeId v : members) {
        if (dirty[v]) {
          touched = true;
          break;
        }
      }
      if (!touched) {
        // Clean of every dirty vertex: resampling on the new graph would
        // walk byte-identical in-edge lists from the same root stream, so
        // serve the cached members verbatim.
        patched.Add(members, data.weights[k]);
        ++stats.sets_reused;
        continue;
      }
      Rng rng(MixHash(expect.sample_seed,
                      kRrSampleTag ^ (expect.era_start + k)));
      sampler.SampleStandard(rng, &scratch);
      patched.Add(scratch, 1.0);
      ++stats.sets_resampled;
    }

    RrProvenance fresh = expect;
    fresh.graph_hash = new_hash;
    const uint64_t recipe = RrRecipeHash(new_hash, fresh.source_id,
                                         fresh.sample_seed, fresh.era_start);
    if (cache.StoreRrEra(recipe, fresh, patched).ok()) {
      ++stats.eras_patched;
    }
  }

  eras_patched.Add(stats.eras_patched);
  sets_reused.Add(stats.sets_reused);
  sets_resampled.Add(stats.sets_resampled);
  return stats;
}

}  // namespace cwm
