// Delta application: composing a base graph with edit logs.
//
// ApplyDeltaToGraph folds one DeltaLog over a base Graph and returns the
// composed graph together with the *dirty region* the edits induce:
//
//   dirty_nodes       the `to` endpoints whose in-edge lists actually
//                     changed. RR-set sampling is a reverse BFS that only
//                     ever reads in-edge (from, prob) sequences, so a
//                     cached RR set touching no dirty node resamples
//                     bit-identically on the new graph — the exact
//                     invalidation rule delta/rr_patch.h applies.
//   first_dirty_edge  the smallest forward EdgeId whose (endpoint, prob,
//                     position) triple may differ from the base. Every
//                     edge below it keeps its position, endpoints, and
//                     probability, so possible-world coins — keyed by
//                     positional EdgeId (simulate/world.h) — are
//                     unchanged below the watermark and world snapshots
//                     can be patched by prefix copy (simulate/world_pool.h).
//
// No-op edits (deleting an absent edge, reweighting to the same value)
// contribute nothing to either: dirtiness is a property of the composed
// graph, not of the log text.
//
// DeltaOverlay carries a base graph through a *chain* of logs: it owns
// the current composed graph, records one DeltaChainLink per applied log,
// folds the chain into a recipe hash (provenance for compacted .cwg
// files and cache keys), and Compact() materializes the composition as a
// standalone graph artifact. The base .cwg on disk is never rewritten —
// the overlay composes in memory and only Compact() persists.
#ifndef CWM_DELTA_OVERLAY_H_
#define CWM_DELTA_OVERLAY_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "delta/delta_log.h"
#include "graph/graph.h"
#include "support/status.h"

namespace cwm {

/// One log applied to a base: the composed graph plus its dirty region.
struct AppliedDelta {
  Graph graph;
  /// Sorted, unique `to` endpoints whose in-edge lists changed.
  std::vector<NodeId> dirty_nodes;
  /// Forward EdgeIds below this are position-, endpoint-, and
  /// probability-identical between base and composed graph
  /// (== base.num_edges() when the log was a no-op).
  EdgeId first_dirty_edge = 0;
  uint64_t base_hash = 0;    ///< GraphContentHash of the base
  uint64_t result_hash = 0;  ///< GraphContentHash of the composition
  uint64_t log_hash = 0;     ///< DeltaLogHash of the applied log
};

/// Applies `log` to `base`. `base_hash` skips the O(edges) content-hash
/// pass when the caller already knows it (0 = compute here). Fails with
/// InvalidArgument when the log's node universe differs from the base's
/// or its base_hash names a different graph, and Corruption when the
/// log's recorded result_hash does not match the composition.
StatusOr<AppliedDelta> ApplyDeltaToGraph(const Graph& base,
                                         const DeltaLog& log,
                                         uint64_t base_hash = 0);

/// Provenance of one applied log in a delta chain.
struct DeltaChainLink {
  uint64_t log_hash = 0;     ///< DeltaLogHash of the applied log
  uint64_t num_edits = 0;    ///< edit records in the log
  uint64_t dirty_count = 0;  ///< dirty vertices the application produced
  uint64_t result_hash = 0;  ///< GraphContentHash after this link
};

/// Recipe hash of a delta chain: the base content hash with every link's
/// log hash folded in order (plus the format version, like every store
/// recipe). Two compaction paths that applied the same logs in the same
/// order to the same base produce the same recipe hash — regardless of
/// whether they compacted once at the end or re-compacted at every step.
uint64_t DeltaChainRecipeHash(uint64_t base_hash,
                              std::span<const DeltaChainLink> chain);

/// A base graph composed with an ordered chain of delta logs; see file
/// comment. Move-only (owns the composed graph).
class DeltaOverlay {
 public:
  /// Takes ownership of `base`. `base_hash` = 0 computes the content
  /// hash here.
  explicit DeltaOverlay(Graph base, uint64_t base_hash = 0);

  DeltaOverlay(DeltaOverlay&&) = default;
  DeltaOverlay& operator=(DeltaOverlay&&) = default;

  /// Applies one more log to the current composition and appends its
  /// chain link. On failure the overlay is unchanged.
  Status Apply(const DeltaLog& log);

  /// The current composed graph (the base when the chain is empty).
  const Graph& graph() const { return graph_; }

  uint64_t base_hash() const { return base_hash_; }
  /// GraphContentHash of the current composition.
  uint64_t content_hash() const { return content_hash_; }
  /// DeltaChainRecipeHash of base + applied chain.
  uint64_t recipe_hash() const {
    return DeltaChainRecipeHash(base_hash_, chain_);
  }
  const std::vector<DeltaChainLink>& chain() const { return chain_; }

  /// Dirty region of the most recent Apply (empty/num_edges before any).
  std::span<const NodeId> last_dirty_nodes() const { return last_dirty_; }
  EdgeId last_first_dirty_edge() const { return last_first_dirty_edge_; }

  /// Total edit records across the chain (the compaction pressure gauge).
  std::size_t total_edits() const { return total_edits_; }
  /// True once the chain carries more edit records than `max_chain_edits`
  /// — the caller should Compact() and restart the chain from the result.
  bool ShouldCompact(std::size_t max_chain_edits) const {
    return total_edits_ > max_chain_edits;
  }

  /// Materializes the composition as a standalone .cwg at `out_path`,
  /// with recipe_hash() as provenance. The written bytes depend only on
  /// (base, chain), never on how many intermediate compositions existed.
  Status Compact(const std::string& out_path) const;

 private:
  Graph graph_;
  uint64_t base_hash_ = 0;
  uint64_t content_hash_ = 0;
  std::vector<DeltaChainLink> chain_;
  std::vector<NodeId> last_dirty_;
  EdgeId last_first_dirty_edge_ = 0;
  std::size_t total_edits_ = 0;
};

/// The `.chain` sidecar of a patched/compacted .cwg: base hash plus one
/// line per applied log, so `cwm_data info` can print the full delta
/// ancestry of a graph artifact. Stored next to the graph file at
/// `<graph_path>.chain` in a line-oriented text format.
struct DeltaChainFile {
  uint64_t base_hash = 0;
  std::vector<DeltaChainLink> links;
};

Status WriteChainSidecar(const std::string& graph_path,
                         const DeltaChainFile& chain);
/// NotFound when the graph has no sidecar (not delta-derived).
StatusOr<DeltaChainFile> ReadChainSidecar(const std::string& graph_path);

}  // namespace cwm

#endif  // CWM_DELTA_OVERLAY_H_
