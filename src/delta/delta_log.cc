#include "delta/delta_log.h"

#include <cmath>
#include <cstring>
#include <string>
#include <utility>

#include "store/mapped_file.h"
#include "support/failpoint.h"
#include "support/rng.h"

namespace cwm {

namespace {

/// One edit's structural validity; shared by write and open so a log the
/// store accepted always reopens.
Status CheckEdit(const DeltaEdit& edit, uint64_t num_nodes,
                 const std::string& context, std::size_t index) {
  if (edit.op > static_cast<uint32_t>(DeltaOp::kReweight)) {
    return Status::Corruption(context + ": unknown edit op at " +
                              std::to_string(index));
  }
  if (edit.from >= num_nodes || edit.to >= num_nodes) {
    return Status::Corruption(context + ": edit endpoint out of range at " +
                              std::to_string(index));
  }
  if (edit.from == edit.to) {
    return Status::Corruption(context + ": self-loop edit at " +
                              std::to_string(index));
  }
  if (edit.op != static_cast<uint32_t>(DeltaOp::kDelete) &&
      !(edit.prob >= 0.0f && edit.prob <= 1.0f)) {
    // Negated comparison so NaN fails.
    return Status::Corruption(context + ": edit probability out of range at " +
                              std::to_string(index));
  }
  return Status::OK();
}

Status CheckLog(const DeltaLog& log, const std::string& context) {
  if (log.num_nodes > (1ull << 32)) {
    return Status::Corruption(context + ": implausible node count");
  }
  for (std::size_t i = 0; i < log.edits.size(); ++i) {
    if (Status s = CheckEdit(log.edits[i], log.num_nodes, context, i);
        !s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

}  // namespace

uint64_t DeltaLogHash(const DeltaLog& log) {
  uint64_t h = Fnv1a64(&log.num_nodes, sizeof(log.num_nodes));
  h = Fnv1a64(&log.base_hash, sizeof(log.base_hash), h);
  const uint64_t num_edits = log.edits.size();
  h = Fnv1a64(&num_edits, sizeof(num_edits), h);
  return Fnv1a64(log.edits.data(), log.edits.size() * sizeof(DeltaEdit), h);
}

Status WriteDeltaFile(const DeltaLog& log, const std::string& path) {
  if (Status s = CheckLog(log, "delta log"); !s.ok()) {
    return Status::InvalidArgument(s.message());
  }
  DeltaFileHeader header;
  header.num_edits = log.edits.size();
  header.num_nodes = log.num_nodes;
  header.base_hash = log.base_hash;
  header.result_hash = log.result_hash;
  header.payload_bytes = log.edits.size() * sizeof(DeltaEdit);
  header.checksum =
      Fnv1a64(log.edits.data(), header.payload_bytes, kFnv1aBasis);

  const ByteSection sections[] = {
      {&header, sizeof(header)},
      {log.edits.data(), static_cast<std::size_t>(header.payload_bytes)},
  };
  return WriteFileAtomic(path, sections);
}

StatusOr<DeltaLog> OpenDeltaFile(const std::string& path) {
  CWM_FAILPOINT("store.delta.validate");
  StatusOr<MappedFile> mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  const MappedFile& file = mapped.value();

  if (file.size() < sizeof(DeltaFileHeader)) {
    return Status::Corruption(path + ": truncated header (" +
                              std::to_string(file.size()) + " bytes)");
  }
  DeltaFileHeader header;
  std::memcpy(&header, file.data(), sizeof(header));
  if (header.magic != kDeltaMagic) {
    return Status::Corruption(path + ": not a cwm delta file (bad magic)");
  }
  if (header.endian != kEndianTag) {
    return Status::Corruption(path + ": wrong byte order");
  }
  if (header.version != kFormatVersion) {
    return Status::Corruption(
        path + ": format version " + std::to_string(header.version) +
        " (this build reads " + std::to_string(kFormatVersion) + ")");
  }
  // Edits are bounded the same way nodes/edges are in .cwg validation:
  // rejecting implausible counts keeps the size product far from 64-bit
  // overflow.
  if (header.num_edits > (1ull << 32) || header.num_nodes > (1ull << 32)) {
    return Status::Corruption(path + ": implausible edit/node count");
  }
  if (header.payload_bytes != header.num_edits * sizeof(DeltaEdit) ||
      file.size() != sizeof(DeltaFileHeader) + header.payload_bytes) {
    return Status::Corruption(path + ": truncated or oversized payload");
  }
  const std::byte* payload = file.data() + sizeof(DeltaFileHeader);
  // Logs are tiny relative to graphs: always verify the checksum on open
  // so a corrupt log can never silently poison a composed graph.
  if (Fnv1a64(payload, header.payload_bytes) != header.checksum) {
    return Status::Corruption(path + ": payload checksum mismatch");
  }

  DeltaLog log;
  log.num_nodes = header.num_nodes;
  log.base_hash = header.base_hash;
  log.result_hash = header.result_hash;
  log.edits.resize(header.num_edits);
  std::memcpy(log.edits.data(), payload, header.payload_bytes);
  if (Status s = CheckLog(log, path); !s.ok()) return s;
  return log;
}

StatusOr<DeltaFileHeader> ReadDeltaHeader(const std::string& path) {
  StatusOr<MappedFile> mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  if (mapped.value().size() < sizeof(DeltaFileHeader)) {
    return Status::Corruption(path + ": truncated header");
  }
  DeltaFileHeader header;
  std::memcpy(&header, mapped.value().data(), sizeof(header));
  if (header.magic != kDeltaMagic) {
    return Status::Corruption(path + ": not a cwm delta file (bad magic)");
  }
  return header;
}

Status VerifyDeltaFile(const std::string& path) {
  return OpenDeltaFile(path).status();
}

DeltaLog GenerateChurnDelta(const Graph& base, uint64_t seed,
                            std::size_t num_edits) {
  DeltaLog log;
  log.num_nodes = base.num_nodes();
  log.base_hash = GraphContentHash(base);
  const uint64_t n = base.num_nodes();
  if (n < 2) return log;
  Rng rng(MixHash(seed, 0xC4B2Dull));  // churn stream tag
  log.edits.reserve(num_edits);
  for (std::size_t i = 0; i < num_edits; ++i) {
    DeltaEdit edit;
    const uint64_t kind = rng.NextBounded(3);
    if (kind != 0 && base.num_edges() > 0) {
      // Delete or reweight an existing edge: pick a uniformly random
      // forward EdgeId and resolve its endpoints (deterministic and O(1)
      // amortized via the out-CSR).
      const EdgeId id =
          static_cast<EdgeId>(rng.NextBounded(base.num_edges()));
      NodeId u = 0;
      {
        // Binary search the out-offset array for the owning node.
        std::size_t lo = 0, hi = n;
        const auto offsets = base.RawOutOffsets();
        while (lo + 1 < hi) {
          const std::size_t mid = (lo + hi) / 2;
          if (offsets[mid] <= id) {
            lo = mid;
          } else {
            hi = mid;
          }
        }
        u = static_cast<NodeId>(lo);
      }
      const OutEdge out =
          base.RawOutEdges()[static_cast<std::size_t>(id)];
      edit.from = u;
      edit.to = out.to;
      if (kind == 1) {
        edit.op = static_cast<uint32_t>(DeltaOp::kDelete);
      } else {
        edit.op = static_cast<uint32_t>(DeltaOp::kReweight);
        edit.prob = static_cast<float>(0.01 + 0.49 * rng.NextDouble());
      }
    } else {
      edit.op = static_cast<uint32_t>(DeltaOp::kInsert);
      edit.from = static_cast<NodeId>(rng.NextBounded(n));
      do {
        edit.to = static_cast<NodeId>(rng.NextBounded(n));
      } while (edit.to == edit.from);
      edit.prob = static_cast<float>(0.01 + 0.49 * rng.NextDouble());
    }
    log.edits.push_back(edit);
  }
  return log;
}

}  // namespace cwm
