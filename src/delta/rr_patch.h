// RR-era invalidation and repair after a graph delta.
//
// A cached RR era is a list of reverse-reachable sets sampled on the old
// graph. Sampling (rrset/rr_sampler.h) is a reverse BFS that reads only
// in-edge (from, prob) sequences, and a delta pins num_nodes, so:
//
//   - a set touching no *dirty* vertex (delta/overlay.h: a `to` endpoint
//     whose in-edge list changed) traverses in-edge lists that are
//     byte-identical between old and new graph. Its root stream
//     (Rng(MixHash(seed, kRrSampleTag ^ k))) is also unchanged, so
//     resampling it on the new graph would reproduce the cached members
//     bit for bit — the cached set is *reused* verbatim.
//   - a set touching any dirty vertex may differ and is *resampled* from
//     its pinned per-sample stream on the new graph.
//
// The repaired era is stored under the new graph's recipe hash, so the
// next pipeline run over the new graph finds a warm era and reports a
// cache hit; the old-keyed entry becomes a Gc orphan. Only standard-IMM
// eras (kStandardRrSourceId) are patched — marginal-source eras embed
// allocation state and are simply left to age out.
//
// Counters: delta.eras_patched, delta.sets_reused, delta.sets_resampled
// (the acceptance "invalidation counter": nonzero resamples alongside
// nonzero downstream `rr hits=` proves selective invalidation worked).
#ifndef CWM_DELTA_RR_PATCH_H_
#define CWM_DELTA_RR_PATCH_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "graph/graph.h"
#include "store/artifact_cache.h"

namespace cwm {

/// Outcome of one PatchCachedRrEras pass.
struct RrPatchStats {
  std::size_t eras_scanned = 0;    ///< old-graph standard eras found
  std::size_t eras_patched = 0;    ///< re-keyed to the new graph
  std::size_t sets_reused = 0;     ///< served verbatim from the old era
  std::size_t sets_resampled = 0;  ///< touched a dirty vertex; resampled
};

/// Re-keys every cached standard RR era of the graph `old_hash` onto
/// `new_graph` (content hash `new_hash`), reusing sets clean of
/// `dirty_nodes` (sorted, unique) and resampling the rest from their
/// pinned per-sample streams. No-op when old_hash == new_hash. Best
/// effort: an era that fails to open is skipped (the pipeline will
/// resample it cold), and store failures follow the cache's degraded-mode
/// contract.
RrPatchStats PatchCachedRrEras(ArtifactCache& cache, const Graph& new_graph,
                               uint64_t old_hash, uint64_t new_hash,
                               std::span<const NodeId> dirty_nodes);

}  // namespace cwm

#endif  // CWM_DELTA_RR_PATCH_H_
