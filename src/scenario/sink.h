// Result sinks: serialize sweep results as JSON-Lines, CSV, or aligned
// stdout tables (the bench drivers' look).
//
// Reproducibility: the JSONL/CSV writers format every float with
// round-trip precision ('%.17g') and emit rows in grid order. Wall-clock
// timing is machine noise, so file sinks omit it unless
// SinkOptions::include_timing is set; without it, two sweeps of the same
// spec + seed produce byte-identical files regardless of thread count.
// A JSONL file starts with one header record ({"type":"spec", ...} — the
// full scenario spec) followed by one {"type":"result", ...} record per
// grid row; skipped rows are recorded too, so row counts match the grid.
#ifndef CWM_SCENARIO_SINK_H_
#define CWM_SCENARIO_SINK_H_

#include <cstdio>
#include <iosfwd>
#include <mutex>
#include <string>

#include "scenario/sweep.h"

namespace cwm {

/// Serialization knobs shared by the file sinks.
struct SinkOptions {
  /// Include per-task wall-clock timing (seconds plus the sample_s /
  /// select_s / estimate_s phase breakdown). Off by default so result
  /// files are bit-identical across runs and thread counts.
  bool include_timing = false;
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& s);

/// Round-trip decimal rendering of a double ('%.17g').
std::string JsonDouble(double value);

/// The {"type":"spec",...} header record (one line, no trailing newline).
std::string SpecToJson(const ScenarioSpec& spec);

/// One {"type":"result",...} record (one line, no trailing newline).
std::string TaskResultToJson(const TaskResult& row,
                             const SinkOptions& options = {});

/// Writes header + all rows to `out`, one JSON object per line.
void WriteJsonLines(const SweepResult& result, std::ostream& out,
                    const SinkOptions& options = {});

/// The CSV header line matching TaskResultToCsv's columns.
std::string CsvHeader();

/// One CSV row (budgets and adopters joined with ';'; the timing columns
/// — seconds, sample_s, select_s, estimate_s — are left empty unless
/// options.include_timing).
std::string TaskResultToCsv(const TaskResult& row,
                            const SinkOptions& options = {});

/// Writes CsvHeader + all rows to `out`.
void WriteCsv(const SweepResult& result, std::ostream& out,
              const SinkOptions& options = {});

/// Aligned human-readable table (the historical bench row format), with a
/// thread-safe Print for use from SweepOptions::on_result. Always shows
/// wall time — it is a progress display, not an artifact.
class TablePrinter {
 public:
  explicit TablePrinter(std::FILE* out = stdout);

  /// Prints one row; safe to call concurrently.
  void Print(const TaskResult& row);

  /// Prints every row of a finished sweep, in grid order.
  void PrintAll(const SweepResult& result);

 private:
  std::FILE* out_;
  std::mutex mutex_;
};

}  // namespace cwm

#endif  // CWM_SCENARIO_SINK_H_
