#include "scenario/sweep.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "api/engine.h"
#include "exp/env.h"
#include "exp/reduction.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rrset/imm.h"
#include "store/format.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace cwm {

namespace {

// Seed-derivation tags: every random stream a task consumes is
// MixHash(cell or algo seed, tag), so streams never collide and never
// depend on scheduling.
constexpr uint64_t kEvalTag = 0xE7A1;
constexpr uint64_t kRankTag = 0x7A2C;
constexpr uint64_t kImmTag = 0x1221;
constexpr uint64_t kEstTag = 0xE521;
constexpr uint64_t kFixedTag = 0xF12ED;

/// Broadcasts a budget grid point to one entry per global ItemId.
BudgetVector ResolveBudgets(const BudgetVector& point, int num_items) {
  if (point.size() == static_cast<std::size_t>(num_items)) return point;
  return BudgetVector(num_items, point[0]);
}

/// The items a task's algorithm allocates (everything S_P does not fix).
std::vector<ItemId> AllocatedItems(const ScenarioSpec& spec, int num_items) {
  std::vector<ItemId> items;
  for (ItemId i = 0; i < num_items; ++i) {
    if (spec.fixed.kind == FixedSeedSpec::Kind::kTopSpread &&
        i == spec.fixed.item) {
      continue;
    }
    if (spec.fixed.kind == FixedSeedSpec::Kind::kTheorem2 && i != 0) {
      continue;  // the gadget fixes i2..i4; only i1 is allocated
    }
    items.push_back(i);
  }
  return items;
}

/// Everything shared by the tasks of one (network, config) pair: the
/// long-lived Engine (graph + config + cache binding + keyed snapshot
/// pool, shared by every task of the cell pair) and the fixed S_P.
struct CellInputs {
  std::unique_ptr<Engine> engine;
  Allocation sp;  ///< fixed allocation S_P (possibly empty)
};

/// Inner RR-sampling threads for a spec's tasks: the spec's own pin wins,
/// then the sweep-level knob. Never affects results (rr_pipeline.h).
unsigned ResolveRrThreads(const ScenarioSpec& spec,
                          const SweepOptions& options) {
  if (spec.rr_threads > 0) return spec.rr_threads;
  return options.rr_threads > 0 ? options.rr_threads : 1;
}

/// Runs one non-gated task through the cell's Engine; fills the outcome
/// fields of `row`. The per-algorithm wiring (estimators, rankings,
/// preconditions) lives behind the cwm::api registry — this function only
/// derives the task's seeds and translates the result into a row.
void RunTask(const ScenarioSpec& spec, const ScenarioTask& task,
             const CellInputs& cell, const SweepOptions& options,
             uint64_t cell_seed, TaskResult* row) {
  const int m = cell.engine->config().num_items();
  const BudgetVector budgets =
      ResolveBudgets(spec.budget_points[task.budget_index], m);
  row->budgets = budgets;

  const uint64_t algo_seed =
      MixHash(cell_seed, static_cast<uint64_t>(task.algo) + 0x100);
  const int sims = spec.sims > 0 ? spec.sims : options.default_sims;
  const int eval_sims =
      spec.eval_sims > 0 ? spec.eval_sims : options.default_eval_sims;
  const unsigned rr_threads = ResolveRrThreads(spec, options);

  AllocateRequest request;
  request.algo = task.algo;
  request.items = AllocatedItems(spec, m);
  request.budgets = budgets;
  request.fixed = &cell.sp;
  request.params.imm = {.epsilon = spec.epsilon,
                        .ell = spec.ell,
                        .seed = MixHash(algo_seed, kImmTag),
                        .num_threads = rr_threads};
  request.params.estimator = {
      .num_worlds = sims,
      .seed = MixHash(algo_seed, kEstTag),
      .num_threads = options.inner_threads,
      .snapshot_budget_bytes = options.snapshot_budget_bytes,
      .packed_kernel = options.packed_kernel};
  // Positional allocators share one cell-keyed ranking, so RR / Snake /
  // BlockUtil differ only in the item-to-position assignment (§6.4.3).
  request.ranking = {.epsilon = spec.epsilon,
                     .ell = spec.ell,
                     .seed = MixHash(cell_seed, kRankTag),
                     .num_threads = rr_threads};
  // All algorithms of one cell share the evaluation worlds (cell-keyed
  // seed): they are compared on the same sampled universes — and, through
  // the engine's keyed pool store, on the same materialized snapshots.
  request.eval = {.num_worlds = eval_sims,
                  .seed = MixHash(cell_seed, kEvalTag),
                  .num_threads = options.inner_threads,
                  .packed_kernel = options.packed_kernel};

  AllocateResult result;
  const Status status = cell.engine->Allocate(std::move(request), &result);
  if (!status.ok()) {
    row->skipped = true;
    row->skip_reason = status.ToString();
    return;
  }
  if (result.skipped) {
    row->skipped = true;
    row->skip_reason = result.skip_reason;
    return;
  }
  row->seconds = result.allocate_seconds;
  row->sample_s = result.phases.sample_s();
  row->select_s = result.phases.select_s();
  row->estimate_s = result.phases.estimate_s();
  row->seeds_allocated = result.allocation.TotalPairs();
  row->note = result.note;
  row->welfare = result.stats.welfare;
  row->adopting_nodes = result.stats.adopting_nodes;
  row->adopters_per_item = result.stats.adopters_per_item;
}

}  // namespace

SweepOptions EnvSweepOptions() {
  SweepOptions options;
  options.default_sims = EnvInt("CWM_SIMS", 200, /*min_value=*/1);
  options.default_eval_sims = EnvInt("CWM_EVAL_SIMS", 500, /*min_value=*/1);
  options.scale = EnvDouble("CWM_BENCH_SCALE", 1.0, /*min_value=*/1e-6);
  options.run_slow_everywhere = EnvInt("CWM_GREEDY", 0) == 1;
  options.num_threads =
      static_cast<unsigned>(EnvInt("CWM_THREADS", 0, /*min_value=*/0));
  options.inner_threads =
      static_cast<unsigned>(EnvInt("CWM_INNER_THREADS", 1, /*min_value=*/1));
  options.rr_threads =
      static_cast<unsigned>(EnvInt("CWM_RR_THREADS", 1, /*min_value=*/1));
  options.snapshot_budget_bytes =
      static_cast<std::size_t>(
          EnvInt("CWM_SNAPSHOT_BUDGET_MB", 256, /*min_value=*/0))
      << 20;
  options.packed_kernel = EnvInt("CWM_PACKED", 1) != 0;
  if (const char* dir = std::getenv("CWM_CACHE_DIR");
      dir != nullptr && *dir != '\0') {
    options.cache_dir = dir;
  }
  return options;
}

StatusOr<SweepResult> RunSweep(const ScenarioSpec& spec,
                               const SweepOptions& options) {
  const Status valid = spec.Validate();
  if (!valid.ok()) return valid;
  if (options.shard_count < 1 ||
      options.shard_index >= options.shard_count) {
    return Status::InvalidArgument("shard index out of range");
  }

  Timer total_timer;

  // Artifact cache: the spec's own pin wins, then the sweep-level knob
  // (CWM_CACHE_DIR). An unopenable cache dir degrades to an uncached
  // sweep — results are bit-identical either way (the cache only trades
  // time), so a broken disk must not fail hours of compute. The loud
  // stderr note keeps the performance expectation honest.
  const std::string& cache_dir =
      !spec.cache_dir.empty() ? spec.cache_dir : options.cache_dir;
  std::unique_ptr<ArtifactCache> cache_holder;
  ArtifactCache* cache = nullptr;
  if (!cache_dir.empty()) {
    StatusOr<std::unique_ptr<ArtifactCache>> opened =
        ArtifactCache::Open(cache_dir);
    if (opened.ok()) {
      cache_holder = std::move(opened).value();
      cache = cache_holder.get();
    } else {
      NoteDegradedEvent("store.degraded.cache_disabled");
      std::fprintf(stderr,
                   "cwm: cache disabled for this sweep: %s (continuing "
                   "uncached; results are unaffected)\n",
                   opened.status().ToString().c_str());
    }
  }

  // Phase 1 (serial, deterministic): materialize networks and configs once.
  // Content hashes are provenance for result rows and the key half of
  // every cached RR era; warm cache opens serve them from the .cwg header
  // (O(1), no edge page-in), everything else pays one O(edges) pass.
  CWM_TRACE_SPAN("scenario.sweep", {{"networks", spec.networks.size()},
                                    {"configs", spec.configs.size()},
                                    {"seeds", spec.seeds.size()}});
  std::vector<Graph> graphs;
  graphs.reserve(spec.networks.size());
  std::vector<uint64_t> graph_hashes;
  graph_hashes.reserve(spec.networks.size());
  {
    CWM_TRACE_SPAN("scenario.build_networks",
                   {{"networks", spec.networks.size()}});
    for (const NetworkSpec& net : spec.networks) {
      uint64_t stored_hash = 0;
      StatusOr<Graph> graph = net.Build(options.scale, cache, &stored_hash);
      if (!graph.ok()) return graph.status();
      graphs.push_back(std::move(graph).value());
      graph_hashes.push_back(stored_hash != 0
                                 ? stored_hash
                                 : GraphContentHash(graphs.back()));
    }
  }
  std::vector<UtilityConfig> configs;
  configs.reserve(spec.configs.size());
  for (const ConfigSpec& config_spec : spec.configs) {
    StatusOr<UtilityConfig> config = config_spec.Build();
    if (!config.ok()) return config.status();
    configs.push_back(std::move(config).value());
  }

  // Fixed S_P inputs. Top-spread seeds are per network and shared by all
  // configs (the §6.2.3 protocol: the inferior item's seeds do not move).
  std::vector<std::vector<NodeId>> fixed_nodes(spec.networks.size());
  if (spec.fixed.kind == FixedSeedSpec::Kind::kTopSpread) {
    CWM_TRACE_SPAN("scenario.fixed_seeds", {{"count", spec.fixed.count}});
    for (std::size_t n = 0; n < graphs.size(); ++n) {
      // Serial phase: the whole machine is free, so the fixed-seed IMM
      // uses outer x inner threads.
      const unsigned fixed_threads = std::max(
          1u, (options.num_threads == 0 ? DefaultThreads()
                                        : options.num_threads) *
                  ResolveRrThreads(spec, options));
      fixed_nodes[n] = Imm(graphs[n], spec.fixed.count,
                           {.epsilon = spec.epsilon,
                            .ell = spec.ell,
                            .seed = MixHash(kFixedTag, n),
                            .num_threads = fixed_threads,
                            .cache = cache,
                            .graph_hash = graph_hashes[n]})
                           .seeds;
    }
  }

  // Per-(network, config) cell inputs: one long-lived Engine per pair,
  // so every task of the pair shares the cache binding and the keyed
  // snapshot-pool store (the cell evaluator materializes once, not once
  // per task). Sharing never changes results — only wall time.
  std::vector<CellInputs> cells(spec.networks.size() * spec.configs.size());
  for (std::size_t n = 0; n < spec.networks.size(); ++n) {
    for (std::size_t c = 0; c < spec.configs.size(); ++c) {
      CellInputs& cell = cells[n * spec.configs.size() + c];
      cell.engine = std::make_unique<Engine>(
          graphs[n], configs[c],
          EngineOptions{
              .cache = cache,
              .graph_hash = graph_hashes[n],
              .snapshot_budget_bytes = options.snapshot_budget_bytes});
      const int m = configs[c].num_items();
      cell.sp = Allocation(m);
      switch (spec.fixed.kind) {
        case FixedSeedSpec::Kind::kNone:
          break;
        case FixedSeedSpec::Kind::kTopSpread:
          cell.sp.AddAll(fixed_nodes[n], spec.fixed.item);
          break;
        case FixedSeedSpec::Kind::kTheorem2: {
          // The gadget's graph is already cells' graph; rebuilding it for
          // the fixed allocation is cheap and deterministic.
          const Theorem2Gadget gadget = BuildTheorem2Gadget(
              DefaultSetCoverInstance(),
              spec.networks[n].num_nodes == 0 ? 8
                                              : spec.networks[n].num_nodes);
          cell.sp = gadget.fixed_sp;
          break;
        }
      }
    }
  }

  std::vector<ScenarioTask> grid =
      ExpandGrid(spec, options.run_slow_everywhere);
  // Shard partition: keep only this process's slice of the grid. Each
  // task is self-contained (streams keyed by its grid coordinates, cell
  // seeds by cell id — both survive the filtering below), so the rows a
  // shard emits are bit-identical to the same rows of an unsharded run.
  if (options.shard_count > 1) {
    std::erase_if(grid, [&](const ScenarioTask& task) {
      return task.index % options.shard_count != options.shard_index;
    });
  }

  SweepResult result;
  result.spec = spec;
  result.rows.assign(grid.size(), TaskResult{});

  // Task wall times, bucketed for `--metrics` (seconds; the top bucket
  // catches the slow gated baselines when they run).
  static constexpr double kTaskSecondsBounds[] = {0.01, 0.1, 1.0, 10.0,
                                                  100.0};
  static Histogram& task_seconds_histogram =
      MetricsRegistry::Global().GetHistogram("scenario.task_seconds",
                                             kTaskSecondsBounds);

  ParallelFor(
      grid.size(),
      [&](std::size_t t) {
        const ScenarioTask& task = grid[t];
        TaskResult& row = result.rows[t];
        CWM_TRACE_SPAN("scenario.task",
                       {{"task", task.index},
                        {"algo", AlgoName(task.algo)},
                        {"gated", task.gated}});

        row.task_index = task.index;
        row.scenario = spec.name;
        row.network = spec.networks[task.network_index].Label();
        row.config = spec.configs[task.config_index].Label();
        row.algorithm = AlgoName(task.algo);
        row.seed = spec.seeds[task.seed_index];

        const CellInputs& cell =
            cells[task.network_index * spec.configs.size() +
                  task.config_index];
        row.graph_nodes = cell.engine->graph().num_nodes();
        row.graph_edges = cell.engine->graph().num_edges();
        row.graph_hash = HashToHex(cell.engine->graph_hash());
        row.budgets =
            ResolveBudgets(spec.budget_points[task.budget_index],
                           cell.engine->config().num_items());

        if (task.gated) {
          row.skipped = true;
          row.skip_reason =
              std::string("slow baseline gated to ") +
              SlowGateDescription(spec.slow_gate) +
              " (CWM_GREEDY=1 or --slow runs it everywhere)";
        } else {
          // The cell id deliberately excludes the algorithm, so all
          // algorithms of a cell share evaluation worlds and rankings.
          const std::size_t cell_id =
              ((task.network_index * spec.configs.size() +
                task.config_index) *
                   spec.budget_points.size() +
               task.budget_index) *
                  spec.seeds.size() +
              task.seed_index;
          const uint64_t cell_seed =
              MixHash(spec.seeds[task.seed_index], cell_id + 1);
          RunTask(spec, task, cell, options, cell_seed, &row);
          if (!row.skipped) task_seconds_histogram.Observe(row.seconds);
        }
        if (options.on_result) options.on_result(row);
      },
      options.num_threads);

  result.total_seconds = total_timer.Seconds();
  result.cache_enabled = cache != nullptr;
  if (cache != nullptr) result.cache_stats = cache->stats();
  for (const CellInputs& cell : cells) {
    const WorldPoolStoreStats stats = cell.engine->pool_stats();
    result.pool_stats.pools_built += stats.pools_built;
    result.pool_stats.pool_reuses += stats.pool_reuses;
    result.pool_stats.pools_evicted += stats.pools_evicted;
    result.pool_stats.resident_bytes += stats.resident_bytes;
    result.pool_stats.resident_pools += stats.resident_pools;
  }
  return result;
}

}  // namespace cwm
