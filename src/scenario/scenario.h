// Declarative experiment scenarios.
//
// A ScenarioSpec is a value type that fully describes one experiment
// family: which networks to build (generator family + scale, or an
// edge-list path), which utility configurations to run, which algorithms
// to compare, and the budget/seed sweep axes. Specs expand into a flat,
// deterministically indexed task grid
//
//   networks x configs x budget points x seeds x algorithms
//
// which the sweep runtime (scenario/sweep.h) executes in parallel and the
// sinks (scenario/sink.h) serialize. The named catalog of paper figures
// and beyond-paper workloads lives in scenario/registry.h.
//
// Determinism contract: everything a task does is derived from the spec
// and the task's grid coordinates (never from thread ids or wall clock),
// so a sweep produces bit-identical results at any thread count.
#ifndef CWM_SCENARIO_SCENARIO_H_
#define CWM_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/algo_kind.h"
#include "graph/graph.h"
#include "model/allocation.h"
#include "model/utility.h"
#include "support/status.h"

namespace cwm {

class ArtifactCache;

/// Edge influence-probability model applied after topology generation.
enum class ProbModel {
  kWeightedCascade,  ///< p(u,v) = 1/din(v) (the paper's default, §6.1.3)
  kConstant,         ///< p(u,v) = prob_value (Fig 6(d) uses 0.01)
  kTrivalency,       ///< p(u,v) in {0.1, 0.01, 0.001} uniformly at random
  kAsIs,             ///< keep the probabilities the source provides
                     ///< (edge lists with a probability column; gadgets)
};

/// One network choice: a generator family with its scale knobs, an
/// edge-list path, or a theory gadget. `num_nodes`/`degree`/`seed` of 0
/// mean "family default".
struct NetworkSpec {
  /// One of: "nethept-like", "douban-book-like", "douban-movie-like",
  /// "orkut-like", "twitter-like" (Table 2 stand-ins); "erdos-renyi",
  /// "barabasi-albert", "directed-pa", "watts-strogatz" (raw generator
  /// families); "edge-list" (SNAP file at `path`); "theorem2-gadget"
  /// (the Theorem 2 hardness instance, exp/reduction.h).
  std::string family = "nethept-like";
  std::size_t num_nodes = 0;  ///< generator size; 0 = family default
  std::size_t degree = 0;     ///< avg-degree knob; 0 = family default
  double aux = 0.0;           ///< Watts-Strogatz beta / directed-pa random_frac
  uint64_t seed = 0;          ///< generator seed; 0 = family default
  std::string path;           ///< edge-list path (family "edge-list")
  ProbModel prob = ProbModel::kWeightedCascade;
  double prob_value = 0.01;   ///< constant-model probability
  double bfs_fraction = 1.0;  ///< induced-BFS subsample (Fig 6(d)); 1 = all
  /// Dynamic-graph churn replay: > 0 applies this many deterministic
  /// churn deltas (delta/delta_log.h, `churn_edits` edits each, streams
  /// derived from `churn_seed`) on top of the generated base before the
  /// sweep sees the graph. The composed graph is part of the spec's
  /// recipe, so caching and determinism behave exactly as for any other
  /// family knob.
  std::size_t churn_steps = 0;
  std::size_t churn_edits = 10;
  uint64_t churn_seed = 1;
  std::string label;          ///< display name; empty = derived from family

  /// Display name, e.g. "orkut-like" or "orkut-like-50pct-const".
  std::string Label() const;

  /// Builds topology + probabilities. `scale` multiplies the effective
  /// node count of the scalable families (CWM_BENCH_SCALE semantics).
  /// With a non-null `cache` the finished graph (probabilities applied)
  /// is served from / stored into the artifact store under this spec's
  /// full recipe — a hit mmap-opens the binary image zero-copy and is
  /// bit-identical to a rebuild. If `content_hash` is non-null it
  /// receives GraphContentHash of the returned graph when the cached
  /// path can provide it cheaply (from the .cwg header on warm opens —
  /// no edge page-in), or 0 when the caller must compute it itself
  /// (uncached families, post-load transforms).
  StatusOr<Graph> Build(double scale = 1.0, ArtifactCache* cache = nullptr,
                        uint64_t* content_hash = nullptr) const;

  /// The canonical recipe string keying this spec (+ scale) in the
  /// artifact cache; exposed for cwm_data and tests.
  std::string CacheRecipe(double scale) const;
};

/// True if `family` names a known NetworkSpec family.
bool IsKnownNetworkFamily(std::string_view family);

/// One utility-configuration choice, by factory name.
struct ConfigSpec {
  /// One of: "C1", "C2", "C3", "C5", "C6" (Table 3 / §6.2.3), "table4"
  /// (three-item blocking config), "lastfm" (Table 5), "uniform"
  /// (num_items unit items in pure competition, Fig 6(a,b)), "theorem1",
  /// "theorem2" (theory configs), "mixed" (§7 competition +
  /// complementarity).
  std::string name = "C1";
  int num_items = 2;  ///< only read by "uniform"

  /// Display name: the factory name, plus "-m" for "uniform".
  std::string Label() const;

  StatusOr<UtilityConfig> Build() const;
};

// AlgoKind, AlgoName, ParseAlgo, IsSlowAlgo and AllAlgoKinds moved to the
// stable API layer (api/algo_kind.h, included above): the algorithm
// identity is part of the allocator interface, not the sweep engine. The
// capability metadata the enum comments used to carry lives on the
// registered allocators (api/registry.h; `cwm_run --describe algos`).

/// Which cells run the slow Monte-Carlo baselines (greedyWM, Balance-C)
/// by default. The paper gates them differently per figure — Fig 3 runs
/// them on the smallest network at every budget, Fig 4 at the smallest
/// budget for every configuration, Fig 6(a,b) for the smallest item
/// counts — so the gate window is part of the spec.
/// SweepOptions::run_slow_everywhere overrides any gating.
enum class SlowGate {
  kNone,          ///< never gate: slow algorithms run on every cell
  kFirstCell,     ///< first network + config + budget only (default)
  kFirstNetwork,  ///< every cell of the first network (Fig 3)
  kFirstBudget,   ///< every cell at the first budget point (Fig 4)
  kFirstConfig,   ///< every cell of the first configuration (Fig 6(a,b))
};

/// Human-readable description of a gate window, for skip reasons.
const char* SlowGateDescription(SlowGate gate);

/// How the fixed allocation S_P is formed before each task's algorithm
/// allocates the remaining items.
struct FixedSeedSpec {
  enum class Kind {
    kNone,      ///< S_P = empty; allocate every item
    kTopSpread, ///< fix `count` top-IMM nodes on `item` (§6.2.3, C5/C6)
    kTheorem2,  ///< the Theorem 2 gadget's fixed allocation (items 1..3)
  };
  Kind kind = Kind::kNone;
  ItemId item = 1;  ///< the fixed item (kTopSpread)
  int count = 0;    ///< seeds fixed on `item` (kTopSpread)
};

/// A declarative experiment: every field is data, so specs can be
/// registered, printed, serialized into result files, and expanded into a
/// deterministic task grid.
struct ScenarioSpec {
  std::string name;       ///< registry key, e.g. "fig4-welfare"
  std::string title;      ///< one-line description for --list
  std::string paper_ref;  ///< figure/table reference ("" = beyond paper)

  std::vector<NetworkSpec> networks;
  std::vector<ConfigSpec> configs;
  std::vector<AlgoKind> algorithms;
  /// Budget grid points. A point of size 1 broadcasts its value to every
  /// allocated item; otherwise the point is indexed by global ItemId and
  /// must have one entry per item of the configuration.
  std::vector<BudgetVector> budget_points;
  /// One full sweep repetition per seed (distinct RNG universes).
  std::vector<uint64_t> seeds = {1};

  FixedSeedSpec fixed;

  double epsilon = 0.5;  ///< RR-set accuracy (paper default)
  double ell = 1.0;
  int sims = 0;       ///< estimator worlds; 0 = SweepOptions default
  int eval_sims = 0;  ///< evaluation worlds; 0 = SweepOptions default
  /// Worker threads for RR-set sampling inside each task (the inner level
  /// of the two-level threading model; 0 = SweepOptions::rr_threads).
  /// Deterministic: results never depend on this value.
  unsigned rr_threads = 0;
  /// Artifact-cache directory pinned by this spec ("" = use
  /// SweepOptions::cache_dir / CWM_CACHE_DIR). Caching never changes
  /// results — hits are bit-identical to rebuilds.
  std::string cache_dir;

  /// Default gate window for the slow baselines (see SlowGate).
  SlowGate slow_gate = SlowGate::kFirstCell;

  /// Structural validation: known families/configs, consistent item
  /// counts, non-empty axes, budget points broadcastable.
  Status Validate() const;
};

/// One cell of the expanded grid. `index` is the row id: stable across
/// thread counts and equal to the position in ExpandGrid()'s result.
struct ScenarioTask {
  std::size_t index = 0;
  std::size_t network_index = 0;
  std::size_t config_index = 0;
  std::size_t budget_index = 0;
  std::size_t seed_index = 0;
  AlgoKind algo = AlgoKind::kSeqGrdNm;
  bool gated = false;  ///< slow algorithm suppressed by the gating rule
};

/// Expands the grid in network-major order:
///   for network / for config / for budget / for seed / for algorithm.
/// Gated slow-algorithm cells are included (marked `gated`) so row counts
/// and indices do not depend on gating.
std::vector<ScenarioTask> ExpandGrid(const ScenarioSpec& spec,
                                     bool run_slow_everywhere);

/// The canned SET COVER instance behind the "theorem2-gadget" network
/// family: 4 elements, 5 subsets, k = 2 (a YES instance).
struct SetCoverInstance;
const SetCoverInstance& DefaultSetCoverInstance();

}  // namespace cwm

#endif  // CWM_SCENARIO_SCENARIO_H_
