#include "scenario/registry.h"

#include <algorithm>
#include <utility>

#include "support/check.h"

namespace cwm {

Status ScenarioRegistry::Register(ScenarioSpec spec) {
  const Status valid = spec.Validate();
  if (!valid.ok()) return valid;
  for (const ScenarioSpec& existing : specs_) {
    if (existing.name == spec.name) {
      return Status::InvalidArgument("duplicate scenario name: " + spec.name);
    }
  }
  specs_.push_back(std::move(spec));
  return Status::OK();
}

std::vector<std::string> ScenarioRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(specs_.size());
  for (const ScenarioSpec& spec : specs_) names.push_back(spec.name);
  return names;
}

StatusOr<ScenarioSpec> ScenarioRegistry::Find(std::string_view name) const {
  for (const ScenarioSpec& spec : specs_) {
    if (spec.name == name) return spec;
  }
  std::string message = "unknown scenario '" + std::string(name) + "'";
  std::string close;
  for (const ScenarioSpec& spec : specs_) {
    if (spec.name.find(name) != std::string::npos) {
      close += close.empty() ? "" : ", ";
      close += spec.name;
    }
  }
  if (!close.empty()) message += "; did you mean: " + close;
  return Status::NotFound(std::move(message));
}

namespace {

// Shared algorithm line-ups.
const std::vector<AlgoKind> kAllMain = {
    AlgoKind::kGreedyWm, AlgoKind::kBalanceC, AlgoKind::kTcim,
    AlgoKind::kMaxGrd,   AlgoKind::kSeqGrd,   AlgoKind::kSeqGrdNm,
};
const std::vector<AlgoKind> kFastFour = {
    AlgoKind::kTcim, AlgoKind::kMaxGrd, AlgoKind::kSeqGrd,
    AlgoKind::kSeqGrdNm,
};

NetworkSpec Net(std::string family) {
  NetworkSpec net;
  net.family = std::move(family);
  return net;
}

ScenarioRegistry BuildGlobalRegistry() {
  ScenarioRegistry registry;
  auto add = [&registry](ScenarioSpec spec) {
    const Status status = registry.Register(std::move(spec));
    CWM_CHECK_MSG(status.ok(), status.ToString().c_str());
  };

  // ------------------------------------------------------------------
  // Paper experiments.
  // ------------------------------------------------------------------
  {
    ScenarioSpec s;
    s.name = "fig3-runtime";
    s.title = "Running time of all algorithms under C1 on four networks";
    s.paper_ref = "Fig 3(a-d)";
    s.networks = {Net("nethept-like"), Net("douban-book-like"),
                  Net("douban-movie-like"), Net("orkut-like")};
    s.configs = {{.name = "C1"}};
    s.algorithms = kAllMain;
    s.budget_points = {{10}, {30}, {50}};
    s.slow_gate = SlowGate::kFirstNetwork;  // Fig 3: all budgets on NetHEPT
    add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "fig4-welfare";
    s.title = "Expected welfare under C1/C2/C3 on Douban-Movie";
    s.paper_ref = "Fig 4(a-c), Table 3";
    s.networks = {Net("douban-movie-like")};
    s.configs = {{.name = "C1"}, {.name = "C2"}, {.name = "C3"}};
    s.algorithms = kAllMain;
    s.budget_points = {{10}, {30}, {50}};
    s.slow_gate = SlowGate::kFirstBudget;  // Fig 4: budget 10, every config
    add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "fig4d-budget-skew";
    s.title = "C4: C3 utilities with non-uniform budgets (b_i fixed at 50)";
    s.paper_ref = "Fig 4(d)";
    s.networks = {Net("douban-movie-like")};
    s.configs = {{.name = "C3"}};
    s.algorithms = kAllMain;
    s.budget_points = {{50, 30}, {50, 70}, {50, 110}};
    s.slow_gate = SlowGate::kFirstBudget;  // Fig 4(d): b_j = 30 only
    add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "fig5-supgrd";
    s.title = "SupGRD vs SeqGRD-NM with the inferior item fixed on top "
              "IMM seeds (C5/C6)";
    s.paper_ref = "Fig 5(a-d), §6.2.3";
    s.networks = {Net("orkut-like"), Net("twitter-like")};
    s.configs = {{.name = "C5"}, {.name = "C6"}};
    s.algorithms = {AlgoKind::kSupGrd, AlgoKind::kSeqGrdNm};
    s.budget_points = {{10}, {30}, {50}};
    s.fixed = {.kind = FixedSeedSpec::Kind::kTopSpread, .item = 1,
               .count = 50};
    add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "fig6ab-num-items";
    s.title = "Runtime and welfare vs number of unit-utility items (1..5)";
    s.paper_ref = "Fig 6(a,b)";
    s.networks = {Net("nethept-like")};
    for (int m = 1; m <= 5; ++m) {
      s.configs.push_back({.name = "uniform", .num_items = m});
    }
    s.algorithms = {AlgoKind::kGreedyWm, AlgoKind::kTcim, AlgoKind::kMaxGrd,
                    AlgoKind::kSeqGrd, AlgoKind::kSeqGrdNm};
    s.budget_points = {{50}};
    s.slow_gate = SlowGate::kFirstConfig;  // Fig 6(a,b): smallest item count
    add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "fig6c-blocking";
    s.title = "Marginal-check ablation under the Table 4 three-item "
              "configuration (b_i = 100, b_j = b_k swept)";
    s.paper_ref = "Fig 6(c), §6.3.2";
    s.networks = {Net("nethept-like")};
    s.configs = {{.name = "table4"}};
    s.algorithms = {AlgoKind::kSeqGrd, AlgoKind::kSeqGrdNm};
    s.budget_points = {{100, 20, 20}, {100, 60, 60}, {100, 100, 100}};
    add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "fig6d-scaling";
    s.title = "SeqGRD-NM scalability on Orkut-like BFS subgraphs under "
              "weighted-cascade and constant probabilities";
    s.paper_ref = "Fig 6(d), §6.3.3";
    for (const double frac : {0.5, 0.75, 1.0}) {
      for (const bool wc : {true, false}) {
        NetworkSpec net = Net("orkut-like");
        net.bfs_fraction = frac;
        if (!wc) {
          net.prob = ProbModel::kConstant;
          net.prob_value = 0.01;
        }
        net.label = "orkut-" + std::to_string(static_cast<int>(frac * 100)) +
                    "pct-" + (wc ? "wc" : "p01");
        s.networks.push_back(std::move(net));
      }
    }
    s.configs = {{.name = "uniform", .num_items = 3}};
    s.algorithms = {AlgoKind::kSeqGrdNm};
    s.budget_points = {{50}};
    add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "fig7-real-utility";
    s.title = "Real (Last.fm, Table 5) utility configuration on NetHEPT "
              "and Orkut";
    s.paper_ref = "Fig 7(a-d), Table 5, §6.4";
    s.networks = {Net("nethept-like"), Net("orkut-like")};
    s.configs = {{.name = "lastfm"}};
    s.algorithms = kFastFour;
    s.budget_points = {{10}, {20}, {30}, {40}};
    add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "table6-adoption";
    s.title = "Adoption count vs welfare: RR / Snake / utility-ordered "
              "blocks over one PRIMA+ ranking";
    s.paper_ref = "Table 6, §6.4.3";
    s.networks = {Net("nethept-like"), Net("orkut-like")};
    s.configs = {{.name = "lastfm"}, {.name = "table4"}};
    s.algorithms = {AlgoKind::kRoundRobin, AlgoKind::kSnake,
                    AlgoKind::kBlockUtility};
    s.budget_points = {{10}, {40}};
    add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "theory-theorem1";
    s.title = "Theorem 1 configuration: no uniform submodularity — "
              "ordering effects on a small-world graph";
    s.paper_ref = "Fig 1(a), Theorem 1";
    NetworkSpec net = Net("watts-strogatz");
    net.num_nodes = 2000;
    s.networks = {std::move(net)};
    s.configs = {{.name = "theorem1"}};
    s.algorithms = {AlgoKind::kSeqGrd, AlgoKind::kMaxGrd, AlgoKind::kBestOf};
    s.budget_points = {{5}, {10}};
    s.sims = 100;
    s.eval_sims = 200;
    add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "theory-theorem2";
    s.title = "Theorem 2 hardness gadget: allocate i1 on the SET COVER "
              "reduction instance";
    s.paper_ref = "Theorem 2, Table 1, Fig 2";
    NetworkSpec net = Net("theorem2-gadget");
    net.num_nodes = 8;  // gadget copies N (multiple of the 4 elements)
    net.prob = ProbModel::kAsIs;  // gadget edges are deterministic (p = 1)
    s.networks = {std::move(net)};
    s.configs = {{.name = "theorem2"}};
    s.algorithms = {AlgoKind::kSeqGrdNm, AlgoKind::kMaxGrd, AlgoKind::kTcim};
    s.budget_points = {{2}};  // k of the canned SET COVER instance
    s.fixed = {.kind = FixedSeedSpec::Kind::kTheorem2};
    s.sims = 100;
    s.eval_sims = 200;
    add(std::move(s));
  }

  // ------------------------------------------------------------------
  // Beyond-paper workloads.
  // ------------------------------------------------------------------
  {
    ScenarioSpec s;
    s.name = "family-sweep";
    s.title = "C1 across synthetic graph families (ER / BA / directed-PA "
              "/ small-world) at equal node counts";
    s.networks = {Net("erdos-renyi"), Net("barabasi-albert"),
                  Net("directed-pa"), Net("watts-strogatz")};
    s.configs = {{.name = "C1"}};
    s.algorithms = kFastFour;
    s.budget_points = {{10}, {30}};
    add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "many-items-scaling";
    s.title = "Pure-competition scaling to 8 concurrent items";
    s.networks = {Net("nethept-like")};
    for (const int m : {2, 4, 6, 8}) {
      s.configs.push_back({.name = "uniform", .num_items = m});
    }
    s.algorithms = {AlgoKind::kTcim, AlgoKind::kMaxGrd, AlgoKind::kSeqGrdNm};
    s.budget_points = {{20}};
    add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "budget-skew";
    s.title = "Welfare under skewed budget splits (b_i + b_j = 100, C1)";
    s.networks = {Net("douban-book-like")};
    s.configs = {{.name = "C1"}};
    s.algorithms = kFastFour;
    s.budget_points = {{10, 90}, {30, 70}, {50, 50}, {70, 30}, {90, 10}};
    add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "mixed-complement";
    s.title = "Mixed competition + complementarity (two phones, one case; "
              "§7 future work)";
    s.networks = {Net("nethept-like")};
    s.configs = {{.name = "mixed"}};
    s.algorithms = kFastFour;
    s.budget_points = {{10}, {30}};
    add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "trivalency-robustness";
    s.title = "C1 under trivalency edge probabilities (vs the paper's "
              "weighted cascade)";
    NetworkSpec net = Net("nethept-like");
    net.prob = ProbModel::kTrivalency;
    s.networks = {std::move(net)};
    s.configs = {{.name = "C1"}};
    s.algorithms = {AlgoKind::kTcim, AlgoKind::kMaxGrd, AlgoKind::kSeqGrdNm};
    s.budget_points = {{10}, {30}};
    add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "ranking-quality";
    s.title = "Seed-ranking quality: PRIMA+ blocks vs degree / "
              "degree-discount / reverse-PageRank rankings (Table 5 "
              "utilities)";
    s.networks = {Net("douban-movie-like")};
    s.configs = {{.name = "lastfm"}};
    s.algorithms = {AlgoKind::kBlockUtility, AlgoKind::kHighDegreeRank,
                    AlgoKind::kDegreeDiscountRank, AlgoKind::kPageRankRank};
    s.budget_points = {{10}};
    add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "smoke-tiny";
    s.title = "Tiny ER smoke sweep (fast; used by tests and CI)";
    NetworkSpec net = Net("erdos-renyi");
    net.num_nodes = 300;
    net.degree = 4;
    s.networks = {std::move(net)};
    s.configs = {{.name = "C1"}};
    s.algorithms = {AlgoKind::kSeqGrd, AlgoKind::kSeqGrdNm,
                    AlgoKind::kMaxGrd, AlgoKind::kTcim,
                    AlgoKind::kRoundRobin, AlgoKind::kSnake};
    s.budget_points = {{5}, {10}};
    s.seeds = {1, 2};
    s.sims = 40;
    s.eval_sims = 60;
    add(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "smoke-supgrd";
    s.title = "Tiny SupGRD smoke sweep over weighted RR sets (fast; the "
              "CI inner-parallel determinism check)";
    NetworkSpec net = Net("erdos-renyi");
    net.num_nodes = 400;
    net.degree = 4;
    s.networks = {std::move(net)};
    s.configs = {{.name = "C6"}};
    s.algorithms = {AlgoKind::kSupGrd, AlgoKind::kSeqGrdNm};
    s.budget_points = {{5}, {8}};
    s.fixed = {.kind = FixedSeedSpec::Kind::kTopSpread, .item = 1,
               .count = 5};
    s.seeds = {1, 2};
    s.sims = 40;
    s.eval_sims = 60;
    add(std::move(s));
  }
  {
    // Dynamic-graph replay: the same tiny ER base after a chain of
    // deterministic churn deltas (delta/delta_log.h). The smoke gate
    // (scripts/check_churn_replay.sh) rebuilds the chain step by step
    // through `cwm_data gen-delta`/`patch` and asserts the incremental
    // artifacts are byte-identical to this from-scratch composition.
    ScenarioSpec s;
    s.name = "churn-replay";
    s.title = "Tiny ER sweep after deterministic churn deltas (dynamic "
              "graphs; exercised by the delta smoke gate)";
    NetworkSpec net = Net("erdos-renyi");
    net.num_nodes = 300;
    net.degree = 4;
    net.churn_steps = 3;
    net.churn_edits = 10;
    net.churn_seed = 7;
    s.networks = {std::move(net)};
    s.configs = {{.name = "C1"}};
    s.algorithms = {AlgoKind::kSeqGrdNm, AlgoKind::kMaxGrd,
                    AlgoKind::kRoundRobin};
    s.budget_points = {{5}};
    s.seeds = {1};
    s.sims = 40;
    s.eval_sims = 60;
    add(std::move(s));
  }

  return registry;
}

}  // namespace

const ScenarioRegistry& GlobalScenarioRegistry() {
  static const ScenarioRegistry registry = BuildGlobalRegistry();
  return registry;
}

}  // namespace cwm
