#include "scenario/sink.h"

#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace cwm {

namespace {

const char* ProbModelName(ProbModel model) {
  switch (model) {
    case ProbModel::kWeightedCascade: return "weighted-cascade";
    case ProbModel::kConstant: return "constant";
    case ProbModel::kTrivalency: return "trivalency";
    case ProbModel::kAsIs: return "as-is";
  }
  return "?";
}

const char* SlowGateName(SlowGate gate) {
  switch (gate) {
    case SlowGate::kNone: return "none";
    case SlowGate::kFirstCell: return "first-cell";
    case SlowGate::kFirstNetwork: return "first-network";
    case SlowGate::kFirstBudget: return "first-budget";
    case SlowGate::kFirstConfig: return "first-config";
  }
  return "?";
}

const char* FixedKindName(FixedSeedSpec::Kind kind) {
  switch (kind) {
    case FixedSeedSpec::Kind::kNone: return "none";
    case FixedSeedSpec::Kind::kTopSpread: return "top-spread";
    case FixedSeedSpec::Kind::kTheorem2: return "theorem2";
  }
  return "?";
}

template <typename T, typename Fn>
std::string JoinJson(const std::vector<T>& values, Fn render) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += render(values[i]);
  }
  out += "]";
  return out;
}

std::string NetworkToJson(const NetworkSpec& net) {
  std::ostringstream os;
  os << "{\"family\":\"" << JsonEscape(net.family) << "\""
     << ",\"num_nodes\":" << net.num_nodes << ",\"degree\":" << net.degree
     << ",\"aux\":" << JsonDouble(net.aux) << ",\"seed\":" << net.seed;
  if (!net.path.empty()) os << ",\"path\":\"" << JsonEscape(net.path) << "\"";
  os << ",\"prob\":\"" << ProbModelName(net.prob) << "\"";
  if (net.prob == ProbModel::kConstant) {
    os << ",\"prob_value\":" << JsonDouble(net.prob_value);
  }
  if (net.bfs_fraction < 1.0) {
    os << ",\"bfs_fraction\":" << JsonDouble(net.bfs_fraction);
  }
  if (net.churn_steps > 0) {
    os << ",\"churn_steps\":" << net.churn_steps
       << ",\"churn_edits\":" << net.churn_edits
       << ",\"churn_seed\":" << net.churn_seed;
  }
  os << ",\"label\":\"" << JsonEscape(net.Label()) << "\"}";
  return os.str();
}

std::string ConfigToJson(const ConfigSpec& config) {
  std::ostringstream os;
  os << "{\"name\":\"" << JsonEscape(config.name) << "\"";
  if (config.name == "uniform") os << ",\"num_items\":" << config.num_items;
  os << "}";
  return os.str();
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string SpecToJson(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "{\"type\":\"spec\",\"name\":\"" << JsonEscape(spec.name) << "\""
     << ",\"title\":\"" << JsonEscape(spec.title) << "\""
     << ",\"paper_ref\":\"" << JsonEscape(spec.paper_ref) << "\""
     << ",\"networks\":" << JoinJson(spec.networks, NetworkToJson)
     << ",\"configs\":" << JoinJson(spec.configs, ConfigToJson)
     << ",\"algorithms\":"
     << JoinJson(spec.algorithms,
                 [](AlgoKind kind) {
                   return "\"" + std::string(AlgoName(kind)) + "\"";
                 })
     << ",\"budget_points\":"
     << JoinJson(spec.budget_points,
                 [](const BudgetVector& point) {
                   return JoinJson(point, [](int b) {
                     return std::to_string(b);
                   });
                 })
     << ",\"seeds\":"
     << JoinJson(spec.seeds,
                 [](uint64_t s) { return std::to_string(s); })
     << ",\"fixed\":{\"kind\":\"" << FixedKindName(spec.fixed.kind) << "\"";
  if (spec.fixed.kind == FixedSeedSpec::Kind::kTopSpread) {
    os << ",\"item\":" << spec.fixed.item << ",\"count\":" << spec.fixed.count;
  }
  os << "},\"epsilon\":" << JsonDouble(spec.epsilon)
     << ",\"ell\":" << JsonDouble(spec.ell) << ",\"sims\":" << spec.sims
     << ",\"eval_sims\":" << spec.eval_sims
     << ",\"rr_threads\":" << spec.rr_threads;
  if (!spec.cache_dir.empty()) {
    os << ",\"cache_dir\":\"" << JsonEscape(spec.cache_dir) << "\"";
  }
  os << ",\"slow_gate\":\"" << SlowGateName(spec.slow_gate) << "\"}";
  return os.str();
}

std::string TaskResultToJson(const TaskResult& row,
                             const SinkOptions& options) {
  std::ostringstream os;
  os << "{\"type\":\"result\",\"scenario\":\"" << JsonEscape(row.scenario)
     << "\",\"task\":" << row.task_index << ",\"network\":\""
     << JsonEscape(row.network) << "\",\"config\":\""
     << JsonEscape(row.config) << "\",\"algorithm\":\""
     << JsonEscape(row.algorithm) << "\",\"budgets\":"
     << JoinJson(row.budgets, [](int b) { return std::to_string(b); })
     << ",\"seed\":" << row.seed << ",\"graph_nodes\":" << row.graph_nodes
     << ",\"graph_edges\":" << row.graph_edges;
  // Provenance: ties the row to its graph artifact (store/format.h).
  // Content-derived, so cold and warm cache runs emit identical bytes.
  if (!row.graph_hash.empty()) {
    os << ",\"graph_hash\":\"" << JsonEscape(row.graph_hash) << "\"";
  }
  if (row.skipped) {
    os << ",\"skipped\":true,\"skip_reason\":\""
       << JsonEscape(row.skip_reason) << "\"";
  } else {
    os << ",\"welfare\":" << JsonDouble(row.welfare)
       << ",\"adopting_nodes\":" << JsonDouble(row.adopting_nodes)
       << ",\"adopters_per_item\":"
       << JoinJson(row.adopters_per_item, JsonDouble)
       << ",\"seeds_allocated\":" << row.seeds_allocated;
    if (options.include_timing) {
      os << ",\"seconds\":" << JsonDouble(row.seconds)
         << ",\"sample_s\":" << JsonDouble(row.sample_s)
         << ",\"select_s\":" << JsonDouble(row.select_s)
         << ",\"estimate_s\":" << JsonDouble(row.estimate_s);
    }
    if (!row.note.empty()) {
      os << ",\"note\":\"" << JsonEscape(row.note) << "\"";
    }
  }
  os << "}";
  return os.str();
}

void WriteJsonLines(const SweepResult& result, std::ostream& out,
                    const SinkOptions& options) {
  out << SpecToJson(result.spec) << "\n";
  for (const TaskResult& row : result.rows) {
    out << TaskResultToJson(row, options) << "\n";
  }
}

std::string CsvHeader() {
  return "scenario,task,network,config,algorithm,budgets,seed,graph_nodes,"
         "graph_edges,graph_hash,skipped,welfare,adopting_nodes,"
         "adopters_per_item,seeds_allocated,seconds,sample_s,select_s,"
         "estimate_s,note";
}

std::string TaskResultToCsv(const TaskResult& row,
                            const SinkOptions& options) {
  auto join_ints = [](const std::vector<int>& v) {
    std::string out;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i > 0) out += ";";
      out += std::to_string(v[i]);
    }
    return out;
  };
  // RFC-4180 quoting for free-text fields (notes, skip reasons).
  auto quoted = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"') out += "\"\"";
      else out += c;
    }
    out += "\"";
    return out;
  };
  std::ostringstream os;
  os << row.scenario << "," << row.task_index << "," << row.network << ","
     << row.config << "," << row.algorithm << "," << join_ints(row.budgets)
     << "," << row.seed << "," << row.graph_nodes << "," << row.graph_edges
     << "," << row.graph_hash << "," << (row.skipped ? "1" : "0") << ",";
  if (!row.skipped) {
    os << JsonDouble(row.welfare) << ","
       << JsonDouble(row.adopting_nodes) << ",";
    for (std::size_t i = 0; i < row.adopters_per_item.size(); ++i) {
      if (i > 0) os << ";";
      os << JsonDouble(row.adopters_per_item[i]);
    }
    os << "," << row.seeds_allocated << ",";
    if (options.include_timing) {
      os << JsonDouble(row.seconds) << "," << JsonDouble(row.sample_s)
         << "," << JsonDouble(row.select_s) << ","
         << JsonDouble(row.estimate_s);
    } else {
      os << ",,,";  // seconds,sample_s,select_s,estimate_s stay empty
    }
    os << "," << quoted(row.note);
  } else {
    os << ",,,,,,,," << quoted(row.skip_reason);
  }
  return os.str();
}

void WriteCsv(const SweepResult& result, std::ostream& out,
              const SinkOptions& options) {
  out << CsvHeader() << "\n";
  for (const TaskResult& row : result.rows) {
    out << TaskResultToCsv(row, options) << "\n";
  }
}

TablePrinter::TablePrinter(std::FILE* out) : out_(out) {}

void TablePrinter::Print(const TaskResult& row) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string budgets;
  for (std::size_t i = 0; i < row.budgets.size(); ++i) {
    if (i > 0) budgets += "/";
    budgets += std::to_string(row.budgets[i]);
  }
  if (row.skipped) {
    std::fprintf(out_, "%-20s %-10s budget=%-8s %-12s skipped (%s)\n",
                 row.network.c_str(), row.config.c_str(), budgets.c_str(),
                 row.algorithm.c_str(), row.skip_reason.c_str());
  } else {
    std::fprintf(out_,
                 "%-20s %-10s budget=%-8s %-12s time=%9.3fs "
                 "welfare=%12.2f",
                 row.network.c_str(), row.config.c_str(), budgets.c_str(),
                 row.algorithm.c_str(), row.seconds, row.welfare);
    if (row.adopters_per_item.size() > 1) {
      std::fprintf(out_, "  adopters=[");
      for (std::size_t i = 0; i < row.adopters_per_item.size(); ++i) {
        std::fprintf(out_, "%s%.1f", i > 0 ? " " : "",
                     row.adopters_per_item[i]);
      }
      std::fprintf(out_, "]");
    }
    if (!row.note.empty()) std::fprintf(out_, "  (%s)", row.note.c_str());
    std::fprintf(out_, "\n");
  }
  std::fflush(out_);
}

void TablePrinter::PrintAll(const SweepResult& result) {
  for (const TaskResult& row : result.rows) Print(row);
}

}  // namespace cwm
