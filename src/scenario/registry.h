// Named catalog of experiment scenarios.
//
// Every paper figure/table reproduction and every beyond-paper workload is
// registered here as a declarative ScenarioSpec, so one engine serves the
// bench drivers, the cwm_run CLI, tests, and future serving layers. The
// global registry is built once (thread-safe) and immutable afterwards;
// additional registries can be constructed for tests.
#ifndef CWM_SCENARIO_REGISTRY_H_
#define CWM_SCENARIO_REGISTRY_H_

#include <string>
#include <string_view>
#include <vector>

#include "scenario/scenario.h"
#include "support/status.h"

namespace cwm {

/// An ordered, name-keyed collection of scenario specs.
class ScenarioRegistry {
 public:
  /// Adds a spec; fails on duplicate names or invalid specs.
  Status Register(ScenarioSpec spec);

  /// Registered names, in registration order.
  std::vector<std::string> Names() const;

  /// Looks a scenario up by name; NotFound lists near-misses.
  StatusOr<ScenarioSpec> Find(std::string_view name) const;

  const std::vector<ScenarioSpec>& All() const { return specs_; }

 private:
  std::vector<ScenarioSpec> specs_;
};

/// The built-in catalog: all paper experiments (Fig 3–7, Tables 4–6,
/// C1–C6, theory gadgets) plus beyond-paper workloads (graph-family
/// sweeps, m-item scaling, budget skew, trivalency robustness, mixed
/// competition/complementarity, ranking quality, smoke tests).
const ScenarioRegistry& GlobalScenarioRegistry();

}  // namespace cwm

#endif  // CWM_SCENARIO_REGISTRY_H_
