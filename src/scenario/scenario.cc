#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "delta/delta_log.h"
#include "delta/overlay.h"
#include "exp/configs.h"
#include "exp/networks.h"
#include "exp/reduction.h"
#include "graph/edge_prob.h"
#include "graph/generators.h"
#include "graph/loader.h"
#include "store/artifact_cache.h"

namespace cwm {

namespace {

std::size_t OrDefault(std::size_t value, std::size_t fallback) {
  return value == 0 ? fallback : value;
}
uint64_t OrDefault64(uint64_t value, uint64_t fallback) {
  return value == 0 ? fallback : value;
}
double OrDefaultD(double value, double fallback) {
  return value == 0.0 ? fallback : value;
}

std::size_t Scaled(std::size_t nodes, double scale) {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(nodes) * scale));
}

}  // namespace

const SetCoverInstance& DefaultSetCoverInstance() {
  // A YES instance: {0,1} and {2,3} cover the 4 elements with k = 2.
  static const SetCoverInstance instance{
      .num_elements = 4,
      .sets = {{0, 1}, {2, 3}, {0, 2}, {1, 3}, {3}},
      .k = 2,
  };
  return instance;
}

bool IsKnownNetworkFamily(std::string_view family) {
  return family == "nethept-like" || family == "douban-book-like" ||
         family == "douban-movie-like" || family == "orkut-like" ||
         family == "twitter-like" || family == "erdos-renyi" ||
         family == "barabasi-albert" || family == "directed-pa" ||
         family == "watts-strogatz" || family == "edge-list" ||
         family == "theorem2-gadget";
}

std::string NetworkSpec::Label() const {
  if (!label.empty()) return label;
  if (churn_steps == 0) return family;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "-churn%zux%zu", churn_steps, churn_edits);
  return family + buf;
}

std::string NetworkSpec::CacheRecipe(double scale) const {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "network;family=%s;n=%zu;deg=%zu;aux=%.17g;seed=%llu;"
                "prob=%d;pv=%.17g;bfs=%.17g;scale=%.17g;path=%s;"
                "churn=%zux%zu@%llu;v=%u",
                family.c_str(), num_nodes, degree, aux,
                static_cast<unsigned long long>(seed),
                static_cast<int>(prob), prob_value, bfs_fraction, scale,
                path.c_str(), churn_steps, churn_edits,
                static_cast<unsigned long long>(churn_seed), kFormatVersion);
  return buf;
}

StatusOr<Graph> NetworkSpec::Build(double scale, ArtifactCache* cache,
                                   uint64_t* content_hash) const {
  if (content_hash != nullptr) *content_hash = 0;
  // Generator families cache the *finished* graph (probabilities and BFS
  // subsampling applied) under the full recipe. Edge lists are instead
  // content-keyed at the load level (ReadEdgeListCached below), so an
  // edited file can never serve stale bytes; the gadget is trivially
  // cheap and stays uncached. The header's content hash is propagated
  // wherever the cached artifact is returned untransformed: this branch
  // always, and the edge-list path when neither a probability model nor
  // BFS subsampling rewrites the loaded graph.
  if (cache != nullptr && family != "edge-list" &&
      family != "theorem2-gadget") {
    return cache->GetOrBuildGraph(CacheRecipe(scale),
                                  [&]() { return Build(scale, nullptr); },
                                  content_hash);
  }

  Graph topology;
  if (family == "nethept-like") {
    topology = NetHeptLike(OrDefault64(seed, 11));
  } else if (family == "douban-book-like") {
    topology = DoubanBookLike(OrDefault64(seed, 12));
  } else if (family == "douban-movie-like") {
    topology = DoubanMovieLike(OrDefault64(seed, 13));
  } else if (family == "orkut-like") {
    topology = OrkutLike(Scaled(OrDefault(num_nodes, 20000), scale),
                         OrDefault64(seed, 14));
  } else if (family == "twitter-like") {
    topology = TwitterLike(Scaled(OrDefault(num_nodes, 30000), scale),
                           OrDefault64(seed, 15));
  } else if (family == "erdos-renyi") {
    const std::size_t n = Scaled(OrDefault(num_nodes, 10000), scale);
    topology = ErdosRenyi(n, n * OrDefault(degree, 8), OrDefault64(seed, 21));
  } else if (family == "barabasi-albert") {
    topology = BarabasiAlbert(Scaled(OrDefault(num_nodes, 10000), scale),
                              OrDefault(degree, 4), OrDefault64(seed, 22));
  } else if (family == "directed-pa") {
    topology = DirectedPreferentialAttachment(
        Scaled(OrDefault(num_nodes, 10000), scale), OrDefault(degree, 6),
        OrDefaultD(aux, 0.1), OrDefault64(seed, 23));
  } else if (family == "watts-strogatz") {
    topology = WattsStrogatz(Scaled(OrDefault(num_nodes, 10000), scale),
                             OrDefault(degree, 6), OrDefaultD(aux, 0.1),
                             OrDefault64(seed, 24));
  } else if (family == "edge-list") {
    if (path.empty()) {
      return Status::InvalidArgument("edge-list network requires a path");
    }
    // With kAsIs the file's probabilities are the model, so a missing
    // probability column must fail loudly (LoadOptions sentinel). Every
    // other model overwrites probabilities, so 0.0 is an explicit,
    // harmless fill-in.
    LoadOptions load_options;
    if (prob != ProbModel::kAsIs) load_options.default_prob = 0.0;
    // A real SNAP dataset used as-is (no probability rewrite, no BFS
    // cut) is returned straight from the store: its header hash is the
    // finished graph's hash, so warm sweeps skip the O(edges) page-in.
    const bool untransformed =
        prob == ProbModel::kAsIs && bfs_fraction >= 1.0;
    StatusOr<Graph> loaded =
        ReadEdgeListCached(path, load_options, cache,
                           untransformed ? content_hash : nullptr);
    if (!loaded.ok()) return loaded.status();
    topology = std::move(loaded).value();
  } else if (family == "theorem2-gadget") {
    topology = BuildTheorem2Gadget(DefaultSetCoverInstance(),
                                   OrDefault(num_nodes, 8))
                   .graph;
  } else {
    return Status::InvalidArgument("unknown network family: " + family);
  }

  // Probabilities are assigned on the *full* graph before any BFS
  // subsampling (the §6.3.3 / Fig 6(d) methodology): subgraph edges keep
  // the probabilities they had in the full network, e.g. p = 1/din(v)
  // of the original degree, not of the truncated one.
  switch (prob) {
    case ProbModel::kWeightedCascade:
      topology = WithWeightedCascade(topology);
      break;
    case ProbModel::kConstant:
      topology = WithConstantProb(topology, prob_value);
      break;
    case ProbModel::kTrivalency:
      topology = WithTrivalency(topology, OrDefault64(seed, 31));
      break;
    case ProbModel::kAsIs:
      break;
  }

  if (bfs_fraction < 1.0) {
    topology =
        InducedBfsSubgraph(topology, bfs_fraction, OrDefault64(seed, 99));
  }

  // Churn replay: fold `churn_steps` deterministic delta logs into the
  // finished base. Each step's stream is keyed by (churn_seed, step), so
  // any prefix of the chain is reproducible independently — the smoke
  // gate replays the same steps through `cwm_data gen-delta`/`patch` and
  // asserts byte-equality against this composition.
  for (std::size_t step = 0; step < churn_steps; ++step) {
    const DeltaLog log = GenerateChurnDelta(
        topology, MixHash(churn_seed, step), churn_edits);
    StatusOr<AppliedDelta> applied = ApplyDeltaToGraph(topology, log);
    if (!applied.ok()) return applied.status();
    topology = std::move(applied.value().graph);
  }
  return topology;
}

std::string ConfigSpec::Label() const {
  if (name == "uniform") return "uniform-" + std::to_string(num_items);
  return name;
}

/// Item count per factory; -1 for unknown names.
static int ConfigNumItems(const ConfigSpec& spec) {
  if (spec.name == "C1" || spec.name == "C2" || spec.name == "C3" ||
      spec.name == "C5" || spec.name == "C6") {
    return 2;
  }
  if (spec.name == "table4" || spec.name == "theorem1" ||
      spec.name == "mixed") {
    return 3;
  }
  if (spec.name == "lastfm" || spec.name == "theorem2") return 4;
  if (spec.name == "uniform") return spec.num_items;
  return -1;
}

StatusOr<UtilityConfig> ConfigSpec::Build() const {
  if (name == "C1") return MakeConfigC1();
  if (name == "C2") return MakeConfigC2();
  if (name == "C3") return MakeConfigC3();
  if (name == "C5") return MakeConfigC5();
  if (name == "C6") return MakeConfigC6();
  if (name == "table4") return MakeThreeItemConfig();
  if (name == "lastfm") return MakeLastFmConfig();
  if (name == "theorem1") return MakeTheorem1Config();
  if (name == "theorem2") return MakeTheorem2Config();
  if (name == "mixed") return MakeMixedComplementConfig();
  if (name == "uniform") {
    if (num_items < 1 || num_items > kMaxItems) {
      return Status::InvalidArgument("uniform config: bad num_items");
    }
    return MakeUniformPureCompetition(num_items);
  }
  return Status::InvalidArgument("unknown utility config: " + name);
}

const char* SlowGateDescription(SlowGate gate) {
  switch (gate) {
    case SlowGate::kNone: return "every cell";
    case SlowGate::kFirstCell: return "the first network/config/budget cell";
    case SlowGate::kFirstNetwork: return "the first network";
    case SlowGate::kFirstBudget: return "the first budget point";
    case SlowGate::kFirstConfig: return "the first configuration";
  }
  return "?";
}

namespace {

/// True when cell (n, c, b) lies inside the spec's slow-baseline window.
bool InGateWindow(SlowGate gate, std::size_t n, std::size_t c,
                  std::size_t b) {
  switch (gate) {
    case SlowGate::kNone: return true;
    case SlowGate::kFirstCell: return n == 0 && c == 0 && b == 0;
    case SlowGate::kFirstNetwork: return n == 0;
    case SlowGate::kFirstBudget: return b == 0;
    case SlowGate::kFirstConfig: return c == 0;
  }
  return true;
}

}  // namespace

Status ScenarioSpec::Validate() const {
  if (name.empty()) return Status::InvalidArgument("scenario has no name");
  if (networks.empty()) {
    return Status::InvalidArgument(name + ": no networks");
  }
  if (configs.empty()) return Status::InvalidArgument(name + ": no configs");
  if (algorithms.empty()) {
    return Status::InvalidArgument(name + ": no algorithms");
  }
  if (budget_points.empty()) {
    return Status::InvalidArgument(name + ": no budget points");
  }
  if (seeds.empty()) return Status::InvalidArgument(name + ": no seeds");
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    return Status::InvalidArgument(name + ": epsilon out of (0, 1)");
  }

  for (const NetworkSpec& net : networks) {
    if (!IsKnownNetworkFamily(net.family)) {
      return Status::InvalidArgument(name + ": unknown network family '" +
                                     net.family + "'");
    }
    if (net.family == "edge-list" && net.path.empty()) {
      return Status::InvalidArgument(name + ": edge-list without a path");
    }
    if (net.bfs_fraction <= 0.0 || net.bfs_fraction > 1.0) {
      return Status::InvalidArgument(name + ": bfs_fraction out of (0, 1]");
    }
    if (net.churn_steps > 0 && net.churn_edits == 0) {
      return Status::InvalidArgument(name + ": churn_steps without edits");
    }
  }

  for (const ConfigSpec& config : configs) {
    const int m = ConfigNumItems(config);
    if (m < 1 || m > kMaxItems) {
      return Status::InvalidArgument(name + ": unknown utility config '" +
                                     config.name + "'");
    }
    for (const BudgetVector& point : budget_points) {
      if (point.empty()) {
        return Status::InvalidArgument(name + ": empty budget point");
      }
      if (point.size() != 1 && point.size() != static_cast<std::size_t>(m)) {
        return Status::InvalidArgument(
            name + ": budget point size does not match config '" +
            config.Label() + "'");
      }
      for (int b : point) {
        if (b < 0) {
          return Status::InvalidArgument(name + ": negative budget");
        }
      }
    }
    if (fixed.kind == FixedSeedSpec::Kind::kTopSpread &&
        (fixed.item < 0 || fixed.item >= m)) {
      return Status::InvalidArgument(name + ": fixed item out of range");
    }
    for (AlgoKind algo : algorithms) {
      if (algo == AlgoKind::kBalanceC && m != 2) {
        return Status::InvalidArgument(
            name + ": Balance-C requires exactly two items");
      }
    }
  }

  if (fixed.kind == FixedSeedSpec::Kind::kTopSpread && fixed.count <= 0) {
    return Status::InvalidArgument(name + ": fixed seed count must be > 0");
  }
  for (AlgoKind algo : algorithms) {
    if (algo == AlgoKind::kSupGrd &&
        fixed.kind == FixedSeedSpec::Kind::kNone) {
      return Status::InvalidArgument(
          name + ": SupGRD requires a fixed allocation (FixedSeedSpec)");
    }
  }
  if (sims < 0 || eval_sims < 0) {
    return Status::InvalidArgument(name + ": negative simulation count");
  }
  return Status::OK();
}

std::vector<ScenarioTask> ExpandGrid(const ScenarioSpec& spec,
                                     bool run_slow_everywhere) {
  std::vector<ScenarioTask> grid;
  grid.reserve(spec.networks.size() * spec.configs.size() *
               spec.budget_points.size() * spec.seeds.size() *
               spec.algorithms.size());
  std::size_t index = 0;
  for (std::size_t n = 0; n < spec.networks.size(); ++n) {
    for (std::size_t c = 0; c < spec.configs.size(); ++c) {
      for (std::size_t b = 0; b < spec.budget_points.size(); ++b) {
        for (std::size_t s = 0; s < spec.seeds.size(); ++s) {
          for (AlgoKind algo : spec.algorithms) {
            ScenarioTask task;
            task.index = index++;
            task.network_index = n;
            task.config_index = c;
            task.budget_index = b;
            task.seed_index = s;
            task.algo = algo;
            task.gated = IsSlowAlgo(algo) && !run_slow_everywhere &&
                         !InGateWindow(spec.slow_gate, n, c, b);
            grid.push_back(task);
          }
        }
      }
    }
  }
  return grid;
}

}  // namespace cwm
