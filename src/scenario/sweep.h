// Parallel sweep runtime for declarative scenarios.
//
// RunSweep expands a ScenarioSpec into its task grid and executes it over
// ParallelFor. Determinism: every task derives its RNG streams from
// (sweep seed, cell coordinates) via MixHash — never from thread identity
// — and results land in a pre-sized vector indexed by grid position, so a
// sweep's output is bit-identical at 1 thread and at DefaultThreads().
// Algorithms within one experiment cell (network, config, budget, seed)
// share one evaluation-world seed, so they are compared on the same
// possible worlds (the paper's protocol, §6.1.3).
//
// Monte-Carlo estimators are run with a *fixed* inner thread count
// (default 1) because the estimator's world-to-chunk assignment depends
// on its chunk count: raising SweepOptions::inner_threads is allowed but
// produces estimates comparable only to runs with the same setting.
//
// RR-set sampling inside each task is different: the pipeline derives one
// RNG stream per sample index (rrset/rr_pipeline.h), so
// SweepOptions::rr_threads scales the IMM-family algorithms without
// changing any result. Two-level budget: num_threads x rr_threads worker
// threads can be live at once — keep the product within the machine's
// core count (the engine does not clamp, so oversubscription is explicit).
#ifndef CWM_SCENARIO_SWEEP_H_
#define CWM_SCENARIO_SWEEP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "simulate/world_pool.h"
#include "store/artifact_cache.h"
#include "support/status.h"

namespace cwm {

/// Execution knobs; env defaults via EnvSweepOptions().
struct SweepOptions {
  /// Threads across tasks (0 = DefaultThreads()). Does not affect results.
  unsigned num_threads = 0;
  /// Threads inside each Monte-Carlo estimate. Values > 1 change estimator
  /// chunking and therefore the sampled worlds; keep at 1 for
  /// reproducibility across machines and runs.
  unsigned inner_threads = 1;
  /// Threads inside each task's RR-set sampling (specs may pin their own
  /// via ScenarioSpec::rr_threads). Unlike inner_threads this never
  /// changes results — the pipeline is deterministic at any value.
  unsigned rr_threads = 1;
  /// Byte budget per estimator for materialized world snapshots backing
  /// the batched welfare evaluations (CWM_SNAPSHOT_BUDGET_MB, cwm_run
  /// --snapshot-budget-mb; 0 disables materialization). Never changes
  /// results — snapshot evaluation is bit-identical to streaming.
  std::size_t snapshot_budget_bytes = 256ull << 20;
  /// Estimator worlds when the spec leaves ScenarioSpec::sims == 0.
  int default_sims = 200;
  /// Evaluation worlds when the spec leaves eval_sims == 0.
  int default_eval_sims = 500;
  /// Multiplier on the node counts of the scalable network families
  /// (CWM_BENCH_SCALE semantics).
  double scale = 1.0;
  /// Artifact-cache directory ("" = disabled; CWM_CACHE_DIR). Graphs and
  /// cacheable RR collections are served from / stored into it. Never
  /// changes results: a hit is bit-identical to a rebuild, so artifacts
  /// from cold and warm runs compare equal.
  std::string cache_dir;
  /// Run greedyWM / Balance-C on every cell (CWM_GREEDY=1 semantics).
  bool run_slow_everywhere = false;
  /// Deterministic grid partition for multi-process sweeps (cwm_run
  /// --shard i/n): this process runs only the grid cells with
  /// task.index % shard_count == shard_index and emits only those rows,
  /// each bit-identical to the same row of an unsharded run (every task
  /// derives its streams from its grid coordinates, never from which
  /// process runs it). scripts/merge_artifacts.py interleaves shard
  /// artifacts by the rows' task field back into the exact byte sequence
  /// of the single-process output.
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  /// Evaluate welfare batches with the word-parallel kernel
  /// (EstimatorOptions::packed_kernel; CWM_PACKED=0 / cwm_run --no-packed
  /// to disable). Never changes results — bit-identical to the scalar
  /// path — only wall time.
  bool packed_kernel = true;
  /// Progress callback, invoked in completion order from worker threads
  /// (serialize externally if needed). May be empty.
  std::function<void(const struct TaskResult&)> on_result;
};

/// SweepOptions populated from the CWM_SIMS / CWM_EVAL_SIMS /
/// CWM_BENCH_SCALE / CWM_GREEDY / CWM_THREADS / CWM_INNER_THREADS /
/// CWM_RR_THREADS / CWM_SNAPSHOT_BUDGET_MB / CWM_PACKED / CWM_CACHE_DIR
/// environment knobs.
SweepOptions EnvSweepOptions();

/// One executed (or skipped) grid cell.
struct TaskResult {
  std::size_t task_index = 0;  ///< position in the grid / output ordering

  // Cell identity.
  std::string scenario;
  std::string network;
  std::string config;
  std::string algorithm;
  std::vector<int> budgets;  ///< resolved per-item budgets
  uint64_t seed = 0;         ///< the sweep seed of this repetition

  // Graph shape (after scaling / subsampling).
  std::size_t graph_nodes = 0;
  std::size_t graph_edges = 0;
  /// Content hash of the task's graph (16 hex digits): provenance linking
  /// result rows to store artifacts. Identical however the graph was
  /// obtained (generated, loaded, or cache hit).
  std::string graph_hash;

  // Outcome.
  bool skipped = false;
  std::string skip_reason;     ///< why (gating, unmet preconditions)
  double seconds = 0.0;        ///< seed-selection wall time
  /// Per-phase wall-time breakdown of the task (obs/phase.h): RR-set
  /// sampling, greedy node selection, Monte-Carlo welfare estimation.
  /// Machine noise like `seconds` — the file sinks emit these only under
  /// SinkOptions::include_timing, keeping artifacts bit-reproducible.
  double sample_s = 0.0;
  double select_s = 0.0;
  double estimate_s = 0.0;
  double welfare = 0.0;        ///< rho(alloc ∪ S_P), common evaluator
  double adopting_nodes = 0.0;
  std::vector<double> adopters_per_item;
  std::size_t seeds_allocated = 0;  ///< (node, item) pairs chosen
  std::string note;                 ///< e.g. BestOf's chosen arm
};

/// A finished sweep: one row per grid cell, in grid order.
struct SweepResult {
  ScenarioSpec spec;
  std::vector<TaskResult> rows;
  double total_seconds = 0.0;
  /// Artifact-cache counters for this sweep (all zero when disabled).
  /// Execution telemetry like `total_seconds` — not part of the artifact.
  bool cache_enabled = false;
  CacheStats cache_stats;
  /// Keyed snapshot-pool counters, summed over the per-cell engines.
  /// pool_reuses > 0 means estimators shared materialized worlds (every
  /// task of a cell resolves the cell's evaluation pool by key).
  /// Execution telemetry — not part of the artifact.
  WorldPoolStoreStats pool_stats;
};

/// Validates, expands and runs `spec`. Fails fast on validation or
/// network-construction errors; per-task algorithm precondition failures
/// (e.g. SupGRD without a superior item) become skipped rows instead.
StatusOr<SweepResult> RunSweep(const ScenarioSpec& spec,
                               const SweepOptions& options = {});

}  // namespace cwm

#endif  // CWM_SCENARIO_SWEEP_H_
