#include "simulate/estimator.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/trace.h"
#include "simulate/packed_world.h"
#include "support/thread_pool.h"

namespace cwm {

namespace {

// World w derives its edge seed and noise stream deterministically from the
// estimator seed (simulate/world.h), so every estimate (and both sides of a
// marginal) sees the same sequence of possible worlds.
uint64_t EdgeSeedOf(uint64_t base, int world) {
  return WorldEdgeSeedOf(base, world);
}

Rng NoiseRngOf(uint64_t base, int world) {
  return WorldNoiseRngOf(base, world);
}

// Runs `fn(blocks, group, first_block_index)` over the blocks of one
// chunk, grouping kPackedGroup consecutive blocks per pass when the wide
// arm is enabled. Grouping depends only on the option and the block
// count — never on the CPU — so per-candidate accumulation order (blocks
// ascending, lanes ascending inside each block) is identical on every
// machine.
template <typename Fn>
void ForEachBlockGroup(std::span<const PackedWorldSet::Block> blocks,
                       bool wide, const Fn& fn) {
  const PackedWorldSet::Block* ptrs[kPackedGroup];
  for (std::size_t b = 0; b < blocks.size();) {
    const int group =
        wide && b + kPackedGroup <= blocks.size() ? kPackedGroup : 1;
    for (int g = 0; g < group; ++g) ptrs[g] = &blocks[b + g];
    fn(ptrs, group);
    b += static_cast<std::size_t>(group);
  }
}

}  // namespace

WelfareEstimator::WelfareEstimator(const Graph& graph,
                                   const UtilityConfig& config,
                                   EstimatorOptions options)
    : graph_(graph), config_(config), options_(options) {
  CWM_CHECK(options_.num_worlds > 0);
}

std::size_t WelfareEstimator::NumChunks() const {
  const unsigned threads =
      options_.num_threads == 0 ? DefaultThreads() : options_.num_threads;
  return std::max<std::size_t>(
      1, std::min<std::size_t>(threads, options_.num_worlds));
}

const WorldPool& WelfareEstimator::EnsurePool() const {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  if (pool_ == nullptr) {
    const unsigned threads =
        options_.num_threads == 0 ? DefaultThreads() : options_.num_threads;
    if (options_.pool_store != nullptr) {
      pool_ = options_.pool_store->GetOrBuild(graph_, config_, options_.seed,
                                              options_.num_worlds, threads);
    } else {
      pool_ = std::make_shared<const WorldPool>(
          graph_, config_, options_.seed, options_.num_worlds,
          options_.snapshot_budget_bytes, threads);
    }
    // Worlds past the snapshot budget stream lazily (bit-identical,
    // just slower); count them so a silently under-budgeted run shows
    // up in `--metrics` instead of only in wall time.
    const int snapshotted = pool_->stats().snapshotted;
    if (snapshotted < options_.num_worlds) {
      static Counter& fallback =
          MetricsRegistry::Global().GetCounter("simulate.stream_fallback_worlds");
      fallback.Add(static_cast<uint64_t>(options_.num_worlds - snapshotted));
    }
  }
  return *pool_;
}

const PackedWorldSet* WelfareEstimator::EnsurePacked() const {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  if (packed_resolved_) return packed_.get();
  packed_resolved_ = true;
  if (!options_.packed_kernel) return nullptr;
  if (options_.num_worlds < options_.packed_min_worlds) return nullptr;
  const int m = config_.num_items();
  if (m < 1 || m > kMaxPackedItems) return nullptr;
  // Regime gate: on weak-tie graphs the 64 lanes of a word rarely agree,
  // so the union-frontier BFS does near-scalar work per world and the
  // per-world snapshot path is faster. Mean edge probability is a cheap,
  // deterministic proxy for that lane overlap.
  if (options_.packed_min_mean_prob > 0.0) {
    const auto edges = graph_.RawOutEdges();
    double sum = 0.0;
    for (const OutEdge& e : edges) sum += static_cast<double>(e.prob);
    if (edges.empty() ||
        sum < options_.packed_min_mean_prob * static_cast<double>(edges.size())) {
      return nullptr;
    }
  }

  static Counter& fallback =
      MetricsRegistry::Global().GetCounter("simulate.packed_fallback");
  const std::size_t chunks = NumChunks();
  // All-or-nothing budget gate: the packed layout (blocks + per-chunk
  // kernel scratch) cannot partially materialize, so over budget means
  // the scalar snapshot path, which can.
  const std::size_t budget = options_.pool_store != nullptr
                                 ? options_.pool_store->budget_bytes()
                                 : options_.snapshot_budget_bytes;
  if (PackedWorldSet::EstimateBytes(graph_, m, options_.num_worlds, chunks) >
      budget) {
    fallback.Add(1);
    return nullptr;
  }

  CWM_TRACE_SPAN("simulate.pack_worlds",
                 {{"worlds", options_.num_worlds}, {"chunks", chunks}});
  const unsigned threads =
      options_.num_threads == 0 ? DefaultThreads() : options_.num_threads;
  if (options_.pool_store != nullptr) {
    packed_ = options_.pool_store->GetOrBuildPacked(
        graph_, config_, options_.seed, options_.num_worlds, chunks, threads);
    if (packed_ == nullptr) fallback.Add(1);
  } else {
    packed_ = std::make_shared<const PackedWorldSet>(
        graph_, config_, options_.seed, options_.num_worlds, chunks, threads);
  }
  return packed_.get();
}

WorldPoolStats WelfareEstimator::snapshot_stats() const {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  return pool_ == nullptr ? WorldPoolStats{} : pool_->stats();
}

double WelfareEstimator::Welfare(const Allocation& allocation) const {
  return Stats(allocation).welfare;
}

WelfareStats WelfareEstimator::Stats(const Allocation& allocation) const {
  ScopedPhaseTimer phase(Phase::kEstimate);
  CWM_TRACE_SPAN("simulate.stats", {{"worlds", options_.num_worlds}});
  const std::size_t chunks = NumChunks();
  std::vector<WelfareStats> partial(chunks);
  ParallelFor(
      chunks,
      [&](std::size_t c) {
        UicSimulator sim(graph_, config_);
        WelfareStats acc;
        acc.adopters_per_item.assign(config_.num_items(), 0.0);
        for (int w = static_cast<int>(c); w < options_.num_worlds;
             w += static_cast<int>(chunks)) {
          const EdgeWorld edges{EdgeSeedOf(options_.seed, w)};
          Rng noise_rng = NoiseRngOf(options_.seed, w);
          const WorldUtilityTable table(config_, noise_rng);
          const WorldOutcome out = sim.RunWorld(allocation, edges, table);
          acc.welfare += out.welfare;
          acc.adopting_nodes += static_cast<double>(out.adopting_nodes);
          for (ItemId i = 0; i < config_.num_items(); ++i) {
            acc.adopters_per_item[i] +=
                static_cast<double>(out.adopters_per_item[i]);
          }
        }
        partial[c] = std::move(acc);
      },
      static_cast<unsigned>(chunks));

  WelfareStats total;
  total.adopters_per_item.assign(config_.num_items(), 0.0);
  for (const WelfareStats& p : partial) {
    total.welfare += p.welfare;
    total.adopting_nodes += p.adopting_nodes;
    for (ItemId i = 0; i < config_.num_items(); ++i) {
      total.adopters_per_item[i] += p.adopters_per_item[i];
    }
  }
  const double inv = 1.0 / options_.num_worlds;
  total.welfare *= inv;
  total.adopting_nodes *= inv;
  for (double& x : total.adopters_per_item) x *= inv;
  return total;
}

std::vector<WelfareStats> WelfareEstimator::StatsBatch(
    std::span<const Allocation> allocations) const {
  ScopedPhaseTimer phase(Phase::kEstimate);
  const std::size_t count = allocations.size();
  CWM_TRACE_SPAN("simulate.stats_batch",
                 {{"batch", count}, {"worlds", options_.num_worlds}});
  std::vector<WelfareStats> totals(count);
  for (WelfareStats& t : totals) {
    t.adopters_per_item.assign(config_.num_items(), 0.0);
  }
  if (count == 0) return totals;

  const std::size_t chunks = NumChunks();
  if (const PackedWorldSet* packed = EnsurePacked()) {
    static Counter& packed_worlds =
        MetricsRegistry::Global().GetCounter("simulate.packed_worlds");
    packed_worlds.Add(static_cast<uint64_t>(options_.num_worlds));
    std::vector<std::vector<WelfareStats>> partial(chunks);
    ParallelFor(
        chunks,
        [&](std::size_t c) {
          PackedDiffusion engine(graph_, config_);
          std::vector<WelfareStats>& acc = partial[c];
          acc.resize(count);
          for (WelfareStats& a : acc) {
            a.adopters_per_item.assign(config_.num_items(), 0.0);
          }
          PackedOutcome outs[kPackedGroup];
          // Draining a block's lanes 0..lane_count-1, blocks ascending,
          // visits the chunk's worlds in exactly the order the scalar
          // chunk loop does — per-candidate FP accumulation matches the
          // streaming path bit for bit.
          ForEachBlockGroup(
              packed->ChunkBlocks(c), options_.packed_wide,
              [&](const PackedWorldSet::Block* const* blocks, int group) {
                for (std::size_t j = 0; j < count; ++j) {
                  engine.Run(blocks, group, allocations[j], outs);
                  WelfareStats& a = acc[j];
                  for (int g = 0; g < group; ++g) {
                    for (int l = 0; l < blocks[g]->lane_count; ++l) {
                      a.welfare += outs[g].welfare[l];
                      a.adopting_nodes +=
                          static_cast<double>(outs[g].adopting_nodes[l]);
                      for (ItemId i = 0; i < config_.num_items(); ++i) {
                        a.adopters_per_item[i] += static_cast<double>(
                            outs[g].adopters[static_cast<std::size_t>(i) *
                                                 kPackedLanes +
                                             l]);
                      }
                    }
                  }
                }
              });
        },
        static_cast<unsigned>(chunks));
    const double inv = 1.0 / options_.num_worlds;
    for (std::size_t j = 0; j < count; ++j) {
      WelfareStats& total = totals[j];
      for (const std::vector<WelfareStats>& p : partial) {
        total.welfare += p[j].welfare;
        total.adopting_nodes += p[j].adopting_nodes;
        for (ItemId i = 0; i < config_.num_items(); ++i) {
          total.adopters_per_item[i] += p[j].adopters_per_item[i];
        }
      }
      total.welfare *= inv;
      total.adopting_nodes *= inv;
      for (double& x : total.adopters_per_item) x *= inv;
    }
    return totals;
  }

  const WorldPool& pool = EnsurePool();
  // partial[c][j]: chunk c's accumulator for candidate j. Worlds stride
  // over chunks exactly like Stats(), so per-candidate accumulation order
  // — and therefore the floating-point sum — matches the streaming path
  // bit for bit.
  std::vector<std::vector<WelfareStats>> partial(chunks);
  ParallelFor(
      chunks,
      [&](std::size_t c) {
        UicSimulator sim(graph_, config_);
        std::vector<WelfareStats>& acc = partial[c];
        acc.resize(count);
        for (WelfareStats& a : acc) {
          a.adopters_per_item.assign(config_.num_items(), 0.0);
        }
        auto accumulate = [&](WelfareStats& a, const WorldOutcome& out) {
          a.welfare += out.welfare;
          a.adopting_nodes += static_cast<double>(out.adopting_nodes);
          for (ItemId i = 0; i < config_.num_items(); ++i) {
            a.adopters_per_item[i] +=
                static_cast<double>(out.adopters_per_item[i]);
          }
        };
        for (int w = static_cast<int>(c); w < options_.num_worlds;
             w += static_cast<int>(chunks)) {
          if (const WorldSnapshot* snapshot = pool.Get(w)) {
            for (std::size_t j = 0; j < count; ++j) {
              accumulate(acc[j], sim.RunWorld(allocations[j], *snapshot));
            }
          } else {
            const EdgeWorld edges{EdgeSeedOf(options_.seed, w)};
            Rng noise_rng = NoiseRngOf(options_.seed, w);
            const WorldUtilityTable table(config_, noise_rng);
            for (std::size_t j = 0; j < count; ++j) {
              accumulate(acc[j],
                         sim.RunWorld(allocations[j], edges, table));
            }
          }
        }
      },
      static_cast<unsigned>(chunks));

  const double inv = 1.0 / options_.num_worlds;
  for (std::size_t j = 0; j < count; ++j) {
    WelfareStats& total = totals[j];
    for (const std::vector<WelfareStats>& p : partial) {
      total.welfare += p[j].welfare;
      total.adopting_nodes += p[j].adopting_nodes;
      for (ItemId i = 0; i < config_.num_items(); ++i) {
        total.adopters_per_item[i] += p[j].adopters_per_item[i];
      }
    }
    total.welfare *= inv;
    total.adopting_nodes *= inv;
    for (double& x : total.adopters_per_item) x *= inv;
  }
  return totals;
}

std::vector<double> WelfareEstimator::MarginalWelfareBatch(
    const Allocation& base, std::span<const Allocation> extras) const {
  ScopedPhaseTimer phase(Phase::kEstimate);
  const std::size_t count = extras.size();
  CWM_TRACE_SPAN("simulate.marginal_batch",
                 {{"batch", count}, {"worlds", options_.num_worlds}});
  if (count == 0) return {};
  std::vector<Allocation> merged;
  merged.reserve(count);
  for (const Allocation& extra : extras) {
    merged.push_back(Allocation::Union(base, extra));
  }

  const std::size_t chunks = NumChunks();
  if (const PackedWorldSet* packed = EnsurePacked()) {
    static Counter& packed_worlds =
        MetricsRegistry::Global().GetCounter("simulate.packed_worlds");
    packed_worlds.Add(static_cast<uint64_t>(options_.num_worlds));
    std::vector<std::vector<double>> partial(chunks);
    ParallelFor(
        chunks,
        [&](std::size_t c) {
          PackedDiffusion engine(graph_, config_);
          std::vector<double>& acc = partial[c];
          acc.assign(count, 0.0);
          PackedOutcome base_outs[kPackedGroup];
          PackedOutcome outs[kPackedGroup];
          // The base diffusion runs once per block group for the whole
          // batch; each lane's `without` is the exact double the scalar
          // path computes for that world.
          ForEachBlockGroup(
              packed->ChunkBlocks(c), options_.packed_wide,
              [&](const PackedWorldSet::Block* const* blocks, int group) {
                engine.Run(blocks, group, base, base_outs);
                for (std::size_t j = 0; j < count; ++j) {
                  engine.Run(blocks, group, merged[j], outs);
                  for (int g = 0; g < group; ++g) {
                    for (int l = 0; l < blocks[g]->lane_count; ++l) {
                      acc[j] +=
                          outs[g].welfare[l] - base_outs[g].welfare[l];
                    }
                  }
                }
              });
        },
        static_cast<unsigned>(chunks));
    std::vector<double> totals(count, 0.0);
    for (std::size_t j = 0; j < count; ++j) {
      for (const std::vector<double>& p : partial) totals[j] += p[j];
      totals[j] /= options_.num_worlds;
    }
    return totals;
  }

  const WorldPool& pool = EnsurePool();
  std::vector<std::vector<double>> partial(chunks);
  ParallelFor(
      chunks,
      [&](std::size_t c) {
        UicSimulator sim(graph_, config_);
        std::vector<double>& acc = partial[c];
        acc.assign(count, 0.0);
        for (int w = static_cast<int>(c); w < options_.num_worlds;
             w += static_cast<int>(chunks)) {
          // The base diffusion runs once per world for the whole batch;
          // RunWorld is a pure function of (allocation, world), so the
          // shared `without` is the exact double the streaming marginal
          // computes per candidate.
          if (const WorldSnapshot* snapshot = pool.Get(w)) {
            const double without = sim.RunWorld(base, *snapshot).welfare;
            for (std::size_t j = 0; j < count; ++j) {
              acc[j] += sim.RunWorld(merged[j], *snapshot).welfare - without;
            }
          } else {
            const EdgeWorld edges{EdgeSeedOf(options_.seed, w)};
            Rng noise_rng = NoiseRngOf(options_.seed, w);
            const WorldUtilityTable table(config_, noise_rng);
            const double without = sim.RunWorld(base, edges, table).welfare;
            for (std::size_t j = 0; j < count; ++j) {
              acc[j] +=
                  sim.RunWorld(merged[j], edges, table).welfare - without;
            }
          }
        }
      },
      static_cast<unsigned>(chunks));

  std::vector<double> totals(count, 0.0);
  for (std::size_t j = 0; j < count; ++j) {
    for (const std::vector<double>& p : partial) totals[j] += p[j];
    totals[j] /= options_.num_worlds;
  }
  return totals;
}

std::vector<double> WelfareEstimator::MarginalBalancedExposureBatch(
    const Allocation& base, std::span<const Allocation> extras) const {
  ScopedPhaseTimer phase(Phase::kEstimate);
  const std::size_t count = extras.size();
  CWM_TRACE_SPAN("simulate.exposure_batch",
                 {{"batch", count}, {"worlds", options_.num_worlds}});
  if (count == 0) return {};
  std::vector<Allocation> merged;
  merged.reserve(count);
  for (const Allocation& extra : extras) {
    merged.push_back(Allocation::Union(base, extra));
  }
  const bool base_empty = base.Empty();

  const std::size_t chunks = NumChunks();
  if (const PackedWorldSet* packed = EnsurePacked()) {
    static Counter& packed_worlds =
        MetricsRegistry::Global().GetCounter("simulate.packed_worlds");
    packed_worlds.Add(static_cast<uint64_t>(options_.num_worlds));
    std::vector<std::vector<double>> partial(chunks);
    ParallelFor(
        chunks,
        [&](std::size_t c) {
          PackedDiffusion engine(graph_, config_);
          std::vector<double>& acc = partial[c];
          acc.assign(count, 0.0);
          PackedOutcome base_outs[kPackedGroup];
          PackedOutcome outs[kPackedGroup];
          // balance = n - one_sided; the n terms cancel in the marginal,
          // and the empty allocation has one_sided == 0 (same arithmetic
          // as the scalar batch below).
          ForEachBlockGroup(
              packed->ChunkBlocks(c), options_.packed_wide,
              [&](const PackedWorldSet::Block* const* blocks, int group) {
                if (!base_empty) engine.Run(blocks, group, base, base_outs);
                for (std::size_t j = 0; j < count; ++j) {
                  engine.Run(blocks, group, merged[j], outs);
                  for (int g = 0; g < group; ++g) {
                    for (int l = 0; l < blocks[g]->lane_count; ++l) {
                      const double without =
                          base_empty ? 0.0
                                     : -static_cast<double>(
                                           base_outs[g].one_sided_01[l]);
                      const double with = -static_cast<double>(
                          outs[g].one_sided_01[l]);
                      acc[j] += with - without;
                    }
                  }
                }
              });
        },
        static_cast<unsigned>(chunks));
    std::vector<double> totals(count, 0.0);
    for (std::size_t j = 0; j < count; ++j) {
      for (const std::vector<double>& p : partial) totals[j] += p[j];
      totals[j] /= options_.num_worlds;
    }
    return totals;
  }

  const WorldPool& pool = EnsurePool();
  std::vector<std::vector<double>> partial(chunks);
  ParallelFor(
      chunks,
      [&](std::size_t c) {
        UicSimulator sim(graph_, config_);
        std::vector<double>& acc = partial[c];
        acc.assign(count, 0.0);
        for (int w = static_cast<int>(c); w < options_.num_worlds;
             w += static_cast<int>(chunks)) {
          // balance = n - one_sided; the n terms cancel in the marginal,
          // and the empty allocation has one_sided == 0 (same arithmetic
          // as MarginalBalancedExposure).
          if (const WorldSnapshot* snapshot = pool.Get(w)) {
            const double without =
                base_empty ? 0.0
                           : -static_cast<double>(
                                 sim.RunWorld(base, *snapshot)
                                     .one_sided_exposure_01);
            for (std::size_t j = 0; j < count; ++j) {
              const double with = -static_cast<double>(
                  sim.RunWorld(merged[j], *snapshot).one_sided_exposure_01);
              acc[j] += with - without;
            }
          } else {
            const EdgeWorld edges{EdgeSeedOf(options_.seed, w)};
            Rng noise_rng = NoiseRngOf(options_.seed, w);
            const WorldUtilityTable table(config_, noise_rng);
            const double without =
                base_empty ? 0.0
                           : -static_cast<double>(
                                 sim.RunWorld(base, edges, table)
                                     .one_sided_exposure_01);
            for (std::size_t j = 0; j < count; ++j) {
              const double with = -static_cast<double>(
                  sim.RunWorld(merged[j], edges, table)
                      .one_sided_exposure_01);
              acc[j] += with - without;
            }
          }
        }
      },
      static_cast<unsigned>(chunks));

  std::vector<double> totals(count, 0.0);
  for (std::size_t j = 0; j < count; ++j) {
    for (const std::vector<double>& p : partial) totals[j] += p[j];
    totals[j] /= options_.num_worlds;
  }
  return totals;
}

double WelfareEstimator::MarginalWelfare(const Allocation& base,
                                         const Allocation& extra) const {
  ScopedPhaseTimer phase(Phase::kEstimate);
  CWM_TRACE_SPAN("simulate.marginal", {{"worlds", options_.num_worlds}});
  const Allocation merged = Allocation::Union(base, extra);
  const unsigned threads =
      options_.num_threads == 0 ? DefaultThreads() : options_.num_threads;
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min<std::size_t>(threads, options_.num_worlds));
  std::vector<double> partial(chunks, 0.0);
  ParallelFor(
      chunks,
      [&](std::size_t c) {
        UicSimulator sim(graph_, config_);
        double acc = 0.0;
        for (int w = static_cast<int>(c); w < options_.num_worlds;
             w += static_cast<int>(chunks)) {
          const EdgeWorld edges{EdgeSeedOf(options_.seed, w)};
          Rng noise_rng = NoiseRngOf(options_.seed, w);
          const WorldUtilityTable table(config_, noise_rng);
          const double with = sim.RunWorld(merged, edges, table).welfare;
          const double without = sim.RunWorld(base, edges, table).welfare;
          acc += with - without;
        }
        partial[c] = acc;
      },
      static_cast<unsigned>(chunks));
  double total = 0.0;
  for (double p : partial) total += p;
  return total / options_.num_worlds;
}

double WelfareEstimator::BalancedExposure(const Allocation& allocation) const {
  return MarginalBalancedExposure(Allocation(config_.num_items()),
                                  allocation) +
         static_cast<double>(graph_.num_nodes());
}

double WelfareEstimator::MarginalBalancedExposure(
    const Allocation& base, const Allocation& extra) const {
  ScopedPhaseTimer phase(Phase::kEstimate);
  CWM_TRACE_SPAN("simulate.exposure", {{"worlds", options_.num_worlds}});
  const Allocation merged = Allocation::Union(base, extra);
  const unsigned threads =
      options_.num_threads == 0 ? DefaultThreads() : options_.num_threads;
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min<std::size_t>(threads, options_.num_worlds));
  std::vector<double> partial(chunks, 0.0);
  const bool base_empty = base.Empty();
  ParallelFor(
      chunks,
      [&](std::size_t c) {
        UicSimulator sim(graph_, config_);
        double acc = 0.0;
        for (int w = static_cast<int>(c); w < options_.num_worlds;
             w += static_cast<int>(chunks)) {
          const EdgeWorld edges{EdgeSeedOf(options_.seed, w)};
          Rng noise_rng = NoiseRngOf(options_.seed, w);
          const WorldUtilityTable table(config_, noise_rng);
          // balance = n - one_sided; the n terms cancel in the marginal,
          // and the empty allocation has one_sided == 0.
          const double with = -static_cast<double>(
              sim.RunWorld(merged, edges, table).one_sided_exposure_01);
          const double without =
              base_empty ? 0.0
                         : -static_cast<double>(
                               sim.RunWorld(base, edges, table)
                                   .one_sided_exposure_01);
          acc += with - without;
        }
        partial[c] = acc;
      },
      static_cast<unsigned>(chunks));
  double total = 0.0;
  for (double p : partial) total += p;
  return total / options_.num_worlds;
}

double WelfareEstimator::Spread(const std::vector<NodeId>& seeds) const {
  return MarginalSpread({}, seeds) /* base empty: sigma(S) */;
}

double WelfareEstimator::MarginalSpread(const std::vector<NodeId>& base,
                                        const std::vector<NodeId>& extra) const {
  ScopedPhaseTimer phase(Phase::kEstimate);
  CWM_TRACE_SPAN("simulate.spread", {{"worlds", options_.num_worlds}});
  std::vector<NodeId> merged = base;
  merged.insert(merged.end(), extra.begin(), extra.end());
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());

  const unsigned threads =
      options_.num_threads == 0 ? DefaultThreads() : options_.num_threads;
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min<std::size_t>(threads, options_.num_worlds));
  std::vector<double> partial(chunks, 0.0);
  ParallelFor(
      chunks,
      [&](std::size_t c) {
        UicSimulator sim(graph_, config_);
        double acc = 0.0;
        for (int w = static_cast<int>(c); w < options_.num_worlds;
             w += static_cast<int>(chunks)) {
          const EdgeWorld edges{EdgeSeedOf(options_.seed, w)};
          const double with =
              static_cast<double>(sim.ReachableCount(merged, edges));
          const double without =
              base.empty()
                  ? 0.0
                  : static_cast<double>(sim.ReachableCount(base, edges));
          acc += with - without;
        }
        partial[c] = acc;
      },
      static_cast<unsigned>(chunks));
  double total = 0.0;
  for (double p : partial) total += p;
  return total / options_.num_worlds;
}

}  // namespace cwm
