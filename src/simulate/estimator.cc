#include "simulate/estimator.h"

#include <algorithm>

#include "support/thread_pool.h"

namespace cwm {

namespace {

// World w derives its edge seed and noise stream deterministically from the
// estimator seed, so every estimate (and both sides of a marginal) sees the
// same sequence of possible worlds.
uint64_t EdgeSeedOf(uint64_t base, int world) {
  return MixHash(base, static_cast<uint64_t>(world) * 2 + 1);
}

Rng NoiseRngOf(uint64_t base, int world) {
  return Rng(MixHash(base ^ 0x9e3779b97f4a7c15ULL,
                     static_cast<uint64_t>(world) * 2));
}

}  // namespace

WelfareEstimator::WelfareEstimator(const Graph& graph,
                                   const UtilityConfig& config,
                                   EstimatorOptions options)
    : graph_(graph), config_(config), options_(options) {
  CWM_CHECK(options_.num_worlds > 0);
}

double WelfareEstimator::Welfare(const Allocation& allocation) const {
  return Stats(allocation).welfare;
}

WelfareStats WelfareEstimator::Stats(const Allocation& allocation) const {
  const unsigned threads =
      options_.num_threads == 0 ? DefaultThreads() : options_.num_threads;
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min<std::size_t>(threads, options_.num_worlds));
  std::vector<WelfareStats> partial(chunks);
  ParallelFor(
      chunks,
      [&](std::size_t c) {
        UicSimulator sim(graph_, config_);
        WelfareStats acc;
        acc.adopters_per_item.assign(config_.num_items(), 0.0);
        for (int w = static_cast<int>(c); w < options_.num_worlds;
             w += static_cast<int>(chunks)) {
          const EdgeWorld edges{EdgeSeedOf(options_.seed, w)};
          Rng noise_rng = NoiseRngOf(options_.seed, w);
          const WorldUtilityTable table(config_, noise_rng);
          const WorldOutcome out = sim.RunWorld(allocation, edges, table);
          acc.welfare += out.welfare;
          acc.adopting_nodes += static_cast<double>(out.adopting_nodes);
          for (ItemId i = 0; i < config_.num_items(); ++i) {
            acc.adopters_per_item[i] +=
                static_cast<double>(out.adopters_per_item[i]);
          }
        }
        partial[c] = std::move(acc);
      },
      static_cast<unsigned>(chunks));

  WelfareStats total;
  total.adopters_per_item.assign(config_.num_items(), 0.0);
  for (const WelfareStats& p : partial) {
    total.welfare += p.welfare;
    total.adopting_nodes += p.adopting_nodes;
    for (ItemId i = 0; i < config_.num_items(); ++i) {
      total.adopters_per_item[i] += p.adopters_per_item[i];
    }
  }
  const double inv = 1.0 / options_.num_worlds;
  total.welfare *= inv;
  total.adopting_nodes *= inv;
  for (double& x : total.adopters_per_item) x *= inv;
  return total;
}

double WelfareEstimator::MarginalWelfare(const Allocation& base,
                                         const Allocation& extra) const {
  const Allocation merged = Allocation::Union(base, extra);
  const unsigned threads =
      options_.num_threads == 0 ? DefaultThreads() : options_.num_threads;
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min<std::size_t>(threads, options_.num_worlds));
  std::vector<double> partial(chunks, 0.0);
  ParallelFor(
      chunks,
      [&](std::size_t c) {
        UicSimulator sim(graph_, config_);
        double acc = 0.0;
        for (int w = static_cast<int>(c); w < options_.num_worlds;
             w += static_cast<int>(chunks)) {
          const EdgeWorld edges{EdgeSeedOf(options_.seed, w)};
          Rng noise_rng = NoiseRngOf(options_.seed, w);
          const WorldUtilityTable table(config_, noise_rng);
          const double with = sim.RunWorld(merged, edges, table).welfare;
          const double without = sim.RunWorld(base, edges, table).welfare;
          acc += with - without;
        }
        partial[c] = acc;
      },
      static_cast<unsigned>(chunks));
  double total = 0.0;
  for (double p : partial) total += p;
  return total / options_.num_worlds;
}

double WelfareEstimator::BalancedExposure(const Allocation& allocation) const {
  return MarginalBalancedExposure(Allocation(config_.num_items()),
                                  allocation) +
         static_cast<double>(graph_.num_nodes());
}

double WelfareEstimator::MarginalBalancedExposure(
    const Allocation& base, const Allocation& extra) const {
  const Allocation merged = Allocation::Union(base, extra);
  const unsigned threads =
      options_.num_threads == 0 ? DefaultThreads() : options_.num_threads;
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min<std::size_t>(threads, options_.num_worlds));
  std::vector<double> partial(chunks, 0.0);
  const bool base_empty = base.Empty();
  ParallelFor(
      chunks,
      [&](std::size_t c) {
        UicSimulator sim(graph_, config_);
        double acc = 0.0;
        for (int w = static_cast<int>(c); w < options_.num_worlds;
             w += static_cast<int>(chunks)) {
          const EdgeWorld edges{EdgeSeedOf(options_.seed, w)};
          Rng noise_rng = NoiseRngOf(options_.seed, w);
          const WorldUtilityTable table(config_, noise_rng);
          // balance = n - one_sided; the n terms cancel in the marginal,
          // and the empty allocation has one_sided == 0.
          const double with = -static_cast<double>(
              sim.RunWorld(merged, edges, table).one_sided_exposure_01);
          const double without =
              base_empty ? 0.0
                         : -static_cast<double>(
                               sim.RunWorld(base, edges, table)
                                   .one_sided_exposure_01);
          acc += with - without;
        }
        partial[c] = acc;
      },
      static_cast<unsigned>(chunks));
  double total = 0.0;
  for (double p : partial) total += p;
  return total / options_.num_worlds;
}

double WelfareEstimator::Spread(const std::vector<NodeId>& seeds) const {
  return MarginalSpread({}, seeds) /* base empty: sigma(S) */;
}

double WelfareEstimator::MarginalSpread(const std::vector<NodeId>& base,
                                        const std::vector<NodeId>& extra) const {
  std::vector<NodeId> merged = base;
  merged.insert(merged.end(), extra.begin(), extra.end());
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());

  const unsigned threads =
      options_.num_threads == 0 ? DefaultThreads() : options_.num_threads;
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min<std::size_t>(threads, options_.num_worlds));
  std::vector<double> partial(chunks, 0.0);
  ParallelFor(
      chunks,
      [&](std::size_t c) {
        UicSimulator sim(graph_, config_);
        double acc = 0.0;
        for (int w = static_cast<int>(c); w < options_.num_worlds;
             w += static_cast<int>(chunks)) {
          const EdgeWorld edges{EdgeSeedOf(options_.seed, w)};
          const double with =
              static_cast<double>(sim.ReachableCount(merged, edges));
          const double without =
              base.empty()
                  ? 0.0
                  : static_cast<double>(sim.ReachableCount(base, edges));
          acc += with - without;
        }
        partial[c] = acc;
      },
      static_cast<unsigned>(chunks));
  double total = 0.0;
  for (double p : partial) total += p;
  return total / options_.num_worlds;
}

}  // namespace cwm
