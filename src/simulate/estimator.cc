#include "simulate/estimator.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/trace.h"
#include "support/thread_pool.h"

namespace cwm {

namespace {

// World w derives its edge seed and noise stream deterministically from the
// estimator seed (simulate/world.h), so every estimate (and both sides of a
// marginal) sees the same sequence of possible worlds.
uint64_t EdgeSeedOf(uint64_t base, int world) {
  return WorldEdgeSeedOf(base, world);
}

Rng NoiseRngOf(uint64_t base, int world) {
  return WorldNoiseRngOf(base, world);
}

}  // namespace

WelfareEstimator::WelfareEstimator(const Graph& graph,
                                   const UtilityConfig& config,
                                   EstimatorOptions options)
    : graph_(graph), config_(config), options_(options) {
  CWM_CHECK(options_.num_worlds > 0);
}

std::size_t WelfareEstimator::NumChunks() const {
  const unsigned threads =
      options_.num_threads == 0 ? DefaultThreads() : options_.num_threads;
  return std::max<std::size_t>(
      1, std::min<std::size_t>(threads, options_.num_worlds));
}

const WorldPool& WelfareEstimator::EnsurePool() const {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  if (pool_ == nullptr) {
    const unsigned threads =
        options_.num_threads == 0 ? DefaultThreads() : options_.num_threads;
    if (options_.pool_store != nullptr) {
      pool_ = options_.pool_store->GetOrBuild(graph_, config_, options_.seed,
                                              options_.num_worlds, threads);
    } else {
      pool_ = std::make_shared<const WorldPool>(
          graph_, config_, options_.seed, options_.num_worlds,
          options_.snapshot_budget_bytes, threads);
    }
    // Worlds past the snapshot budget stream lazily (bit-identical,
    // just slower); count them so a silently under-budgeted run shows
    // up in `--metrics` instead of only in wall time.
    const int snapshotted = pool_->stats().snapshotted;
    if (snapshotted < options_.num_worlds) {
      static Counter& fallback =
          MetricsRegistry::Global().GetCounter("simulate.stream_fallback_worlds");
      fallback.Add(static_cast<uint64_t>(options_.num_worlds - snapshotted));
    }
  }
  return *pool_;
}

WorldPoolStats WelfareEstimator::snapshot_stats() const {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  return pool_ == nullptr ? WorldPoolStats{} : pool_->stats();
}

double WelfareEstimator::Welfare(const Allocation& allocation) const {
  return Stats(allocation).welfare;
}

WelfareStats WelfareEstimator::Stats(const Allocation& allocation) const {
  ScopedPhaseTimer phase(Phase::kEstimate);
  CWM_TRACE_SPAN("simulate.stats", {{"worlds", options_.num_worlds}});
  const std::size_t chunks = NumChunks();
  std::vector<WelfareStats> partial(chunks);
  ParallelFor(
      chunks,
      [&](std::size_t c) {
        UicSimulator sim(graph_, config_);
        WelfareStats acc;
        acc.adopters_per_item.assign(config_.num_items(), 0.0);
        for (int w = static_cast<int>(c); w < options_.num_worlds;
             w += static_cast<int>(chunks)) {
          const EdgeWorld edges{EdgeSeedOf(options_.seed, w)};
          Rng noise_rng = NoiseRngOf(options_.seed, w);
          const WorldUtilityTable table(config_, noise_rng);
          const WorldOutcome out = sim.RunWorld(allocation, edges, table);
          acc.welfare += out.welfare;
          acc.adopting_nodes += static_cast<double>(out.adopting_nodes);
          for (ItemId i = 0; i < config_.num_items(); ++i) {
            acc.adopters_per_item[i] +=
                static_cast<double>(out.adopters_per_item[i]);
          }
        }
        partial[c] = std::move(acc);
      },
      static_cast<unsigned>(chunks));

  WelfareStats total;
  total.adopters_per_item.assign(config_.num_items(), 0.0);
  for (const WelfareStats& p : partial) {
    total.welfare += p.welfare;
    total.adopting_nodes += p.adopting_nodes;
    for (ItemId i = 0; i < config_.num_items(); ++i) {
      total.adopters_per_item[i] += p.adopters_per_item[i];
    }
  }
  const double inv = 1.0 / options_.num_worlds;
  total.welfare *= inv;
  total.adopting_nodes *= inv;
  for (double& x : total.adopters_per_item) x *= inv;
  return total;
}

std::vector<WelfareStats> WelfareEstimator::StatsBatch(
    std::span<const Allocation> allocations) const {
  ScopedPhaseTimer phase(Phase::kEstimate);
  const std::size_t count = allocations.size();
  CWM_TRACE_SPAN("simulate.stats_batch",
                 {{"batch", count}, {"worlds", options_.num_worlds}});
  std::vector<WelfareStats> totals(count);
  for (WelfareStats& t : totals) {
    t.adopters_per_item.assign(config_.num_items(), 0.0);
  }
  if (count == 0) return totals;

  const WorldPool& pool = EnsurePool();
  const std::size_t chunks = NumChunks();
  // partial[c][j]: chunk c's accumulator for candidate j. Worlds stride
  // over chunks exactly like Stats(), so per-candidate accumulation order
  // — and therefore the floating-point sum — matches the streaming path
  // bit for bit.
  std::vector<std::vector<WelfareStats>> partial(chunks);
  ParallelFor(
      chunks,
      [&](std::size_t c) {
        UicSimulator sim(graph_, config_);
        std::vector<WelfareStats>& acc = partial[c];
        acc.resize(count);
        for (WelfareStats& a : acc) {
          a.adopters_per_item.assign(config_.num_items(), 0.0);
        }
        auto accumulate = [&](WelfareStats& a, const WorldOutcome& out) {
          a.welfare += out.welfare;
          a.adopting_nodes += static_cast<double>(out.adopting_nodes);
          for (ItemId i = 0; i < config_.num_items(); ++i) {
            a.adopters_per_item[i] +=
                static_cast<double>(out.adopters_per_item[i]);
          }
        };
        for (int w = static_cast<int>(c); w < options_.num_worlds;
             w += static_cast<int>(chunks)) {
          if (const WorldSnapshot* snapshot = pool.Get(w)) {
            for (std::size_t j = 0; j < count; ++j) {
              accumulate(acc[j], sim.RunWorld(allocations[j], *snapshot));
            }
          } else {
            const EdgeWorld edges{EdgeSeedOf(options_.seed, w)};
            Rng noise_rng = NoiseRngOf(options_.seed, w);
            const WorldUtilityTable table(config_, noise_rng);
            for (std::size_t j = 0; j < count; ++j) {
              accumulate(acc[j],
                         sim.RunWorld(allocations[j], edges, table));
            }
          }
        }
      },
      static_cast<unsigned>(chunks));

  const double inv = 1.0 / options_.num_worlds;
  for (std::size_t j = 0; j < count; ++j) {
    WelfareStats& total = totals[j];
    for (const std::vector<WelfareStats>& p : partial) {
      total.welfare += p[j].welfare;
      total.adopting_nodes += p[j].adopting_nodes;
      for (ItemId i = 0; i < config_.num_items(); ++i) {
        total.adopters_per_item[i] += p[j].adopters_per_item[i];
      }
    }
    total.welfare *= inv;
    total.adopting_nodes *= inv;
    for (double& x : total.adopters_per_item) x *= inv;
  }
  return totals;
}

std::vector<double> WelfareEstimator::MarginalWelfareBatch(
    const Allocation& base, std::span<const Allocation> extras) const {
  ScopedPhaseTimer phase(Phase::kEstimate);
  const std::size_t count = extras.size();
  CWM_TRACE_SPAN("simulate.marginal_batch",
                 {{"batch", count}, {"worlds", options_.num_worlds}});
  if (count == 0) return {};
  std::vector<Allocation> merged;
  merged.reserve(count);
  for (const Allocation& extra : extras) {
    merged.push_back(Allocation::Union(base, extra));
  }

  const WorldPool& pool = EnsurePool();
  const std::size_t chunks = NumChunks();
  std::vector<std::vector<double>> partial(chunks);
  ParallelFor(
      chunks,
      [&](std::size_t c) {
        UicSimulator sim(graph_, config_);
        std::vector<double>& acc = partial[c];
        acc.assign(count, 0.0);
        for (int w = static_cast<int>(c); w < options_.num_worlds;
             w += static_cast<int>(chunks)) {
          // The base diffusion runs once per world for the whole batch;
          // RunWorld is a pure function of (allocation, world), so the
          // shared `without` is the exact double the streaming marginal
          // computes per candidate.
          if (const WorldSnapshot* snapshot = pool.Get(w)) {
            const double without = sim.RunWorld(base, *snapshot).welfare;
            for (std::size_t j = 0; j < count; ++j) {
              acc[j] += sim.RunWorld(merged[j], *snapshot).welfare - without;
            }
          } else {
            const EdgeWorld edges{EdgeSeedOf(options_.seed, w)};
            Rng noise_rng = NoiseRngOf(options_.seed, w);
            const WorldUtilityTable table(config_, noise_rng);
            const double without = sim.RunWorld(base, edges, table).welfare;
            for (std::size_t j = 0; j < count; ++j) {
              acc[j] +=
                  sim.RunWorld(merged[j], edges, table).welfare - without;
            }
          }
        }
      },
      static_cast<unsigned>(chunks));

  std::vector<double> totals(count, 0.0);
  for (std::size_t j = 0; j < count; ++j) {
    for (const std::vector<double>& p : partial) totals[j] += p[j];
    totals[j] /= options_.num_worlds;
  }
  return totals;
}

std::vector<double> WelfareEstimator::MarginalBalancedExposureBatch(
    const Allocation& base, std::span<const Allocation> extras) const {
  ScopedPhaseTimer phase(Phase::kEstimate);
  const std::size_t count = extras.size();
  CWM_TRACE_SPAN("simulate.exposure_batch",
                 {{"batch", count}, {"worlds", options_.num_worlds}});
  if (count == 0) return {};
  std::vector<Allocation> merged;
  merged.reserve(count);
  for (const Allocation& extra : extras) {
    merged.push_back(Allocation::Union(base, extra));
  }
  const bool base_empty = base.Empty();

  const WorldPool& pool = EnsurePool();
  const std::size_t chunks = NumChunks();
  std::vector<std::vector<double>> partial(chunks);
  ParallelFor(
      chunks,
      [&](std::size_t c) {
        UicSimulator sim(graph_, config_);
        std::vector<double>& acc = partial[c];
        acc.assign(count, 0.0);
        for (int w = static_cast<int>(c); w < options_.num_worlds;
             w += static_cast<int>(chunks)) {
          // balance = n - one_sided; the n terms cancel in the marginal,
          // and the empty allocation has one_sided == 0 (same arithmetic
          // as MarginalBalancedExposure).
          if (const WorldSnapshot* snapshot = pool.Get(w)) {
            const double without =
                base_empty ? 0.0
                           : -static_cast<double>(
                                 sim.RunWorld(base, *snapshot)
                                     .one_sided_exposure_01);
            for (std::size_t j = 0; j < count; ++j) {
              const double with = -static_cast<double>(
                  sim.RunWorld(merged[j], *snapshot).one_sided_exposure_01);
              acc[j] += with - without;
            }
          } else {
            const EdgeWorld edges{EdgeSeedOf(options_.seed, w)};
            Rng noise_rng = NoiseRngOf(options_.seed, w);
            const WorldUtilityTable table(config_, noise_rng);
            const double without =
                base_empty ? 0.0
                           : -static_cast<double>(
                                 sim.RunWorld(base, edges, table)
                                     .one_sided_exposure_01);
            for (std::size_t j = 0; j < count; ++j) {
              const double with = -static_cast<double>(
                  sim.RunWorld(merged[j], edges, table)
                      .one_sided_exposure_01);
              acc[j] += with - without;
            }
          }
        }
      },
      static_cast<unsigned>(chunks));

  std::vector<double> totals(count, 0.0);
  for (std::size_t j = 0; j < count; ++j) {
    for (const std::vector<double>& p : partial) totals[j] += p[j];
    totals[j] /= options_.num_worlds;
  }
  return totals;
}

double WelfareEstimator::MarginalWelfare(const Allocation& base,
                                         const Allocation& extra) const {
  ScopedPhaseTimer phase(Phase::kEstimate);
  CWM_TRACE_SPAN("simulate.marginal", {{"worlds", options_.num_worlds}});
  const Allocation merged = Allocation::Union(base, extra);
  const unsigned threads =
      options_.num_threads == 0 ? DefaultThreads() : options_.num_threads;
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min<std::size_t>(threads, options_.num_worlds));
  std::vector<double> partial(chunks, 0.0);
  ParallelFor(
      chunks,
      [&](std::size_t c) {
        UicSimulator sim(graph_, config_);
        double acc = 0.0;
        for (int w = static_cast<int>(c); w < options_.num_worlds;
             w += static_cast<int>(chunks)) {
          const EdgeWorld edges{EdgeSeedOf(options_.seed, w)};
          Rng noise_rng = NoiseRngOf(options_.seed, w);
          const WorldUtilityTable table(config_, noise_rng);
          const double with = sim.RunWorld(merged, edges, table).welfare;
          const double without = sim.RunWorld(base, edges, table).welfare;
          acc += with - without;
        }
        partial[c] = acc;
      },
      static_cast<unsigned>(chunks));
  double total = 0.0;
  for (double p : partial) total += p;
  return total / options_.num_worlds;
}

double WelfareEstimator::BalancedExposure(const Allocation& allocation) const {
  return MarginalBalancedExposure(Allocation(config_.num_items()),
                                  allocation) +
         static_cast<double>(graph_.num_nodes());
}

double WelfareEstimator::MarginalBalancedExposure(
    const Allocation& base, const Allocation& extra) const {
  ScopedPhaseTimer phase(Phase::kEstimate);
  CWM_TRACE_SPAN("simulate.exposure", {{"worlds", options_.num_worlds}});
  const Allocation merged = Allocation::Union(base, extra);
  const unsigned threads =
      options_.num_threads == 0 ? DefaultThreads() : options_.num_threads;
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min<std::size_t>(threads, options_.num_worlds));
  std::vector<double> partial(chunks, 0.0);
  const bool base_empty = base.Empty();
  ParallelFor(
      chunks,
      [&](std::size_t c) {
        UicSimulator sim(graph_, config_);
        double acc = 0.0;
        for (int w = static_cast<int>(c); w < options_.num_worlds;
             w += static_cast<int>(chunks)) {
          const EdgeWorld edges{EdgeSeedOf(options_.seed, w)};
          Rng noise_rng = NoiseRngOf(options_.seed, w);
          const WorldUtilityTable table(config_, noise_rng);
          // balance = n - one_sided; the n terms cancel in the marginal,
          // and the empty allocation has one_sided == 0.
          const double with = -static_cast<double>(
              sim.RunWorld(merged, edges, table).one_sided_exposure_01);
          const double without =
              base_empty ? 0.0
                         : -static_cast<double>(
                               sim.RunWorld(base, edges, table)
                                   .one_sided_exposure_01);
          acc += with - without;
        }
        partial[c] = acc;
      },
      static_cast<unsigned>(chunks));
  double total = 0.0;
  for (double p : partial) total += p;
  return total / options_.num_worlds;
}

double WelfareEstimator::Spread(const std::vector<NodeId>& seeds) const {
  return MarginalSpread({}, seeds) /* base empty: sigma(S) */;
}

double WelfareEstimator::MarginalSpread(const std::vector<NodeId>& base,
                                        const std::vector<NodeId>& extra) const {
  ScopedPhaseTimer phase(Phase::kEstimate);
  CWM_TRACE_SPAN("simulate.spread", {{"worlds", options_.num_worlds}});
  std::vector<NodeId> merged = base;
  merged.insert(merged.end(), extra.begin(), extra.end());
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());

  const unsigned threads =
      options_.num_threads == 0 ? DefaultThreads() : options_.num_threads;
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min<std::size_t>(threads, options_.num_worlds));
  std::vector<double> partial(chunks, 0.0);
  ParallelFor(
      chunks,
      [&](std::size_t c) {
        UicSimulator sim(graph_, config_);
        double acc = 0.0;
        for (int w = static_cast<int>(c); w < options_.num_worlds;
             w += static_cast<int>(chunks)) {
          const EdgeWorld edges{EdgeSeedOf(options_.seed, w)};
          const double with =
              static_cast<double>(sim.ReachableCount(merged, edges));
          const double without =
              base.empty()
                  ? 0.0
                  : static_cast<double>(sim.ReachableCount(base, edges));
          acc += with - without;
        }
        partial[c] = acc;
      },
      static_cast<unsigned>(chunks));
  double total = 0.0;
  for (double p : partial) total += p;
  return total / options_.num_worlds;
}

}  // namespace cwm
