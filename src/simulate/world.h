// Possible worlds (§3): w = (w1, w2).
//
// EdgeWorld realizes the edge world w1 lazily: whether edge e is live is a
// pure hash of (world seed, edge id), so the sampled subgraph is consistent
// across every query in the world — all items see the same live edges, as
// the model requires — without materializing anything.
//
// NoiseWorld is the noise world w2: one sampled noise value per item, fixed
// for the whole diffusion.
#ifndef CWM_SIMULATE_WORLD_H_
#define CWM_SIMULATE_WORLD_H_

#include <vector>

#include "graph/graph.h"
#include "model/utility.h"
#include "support/rng.h"

namespace cwm {

/// Lazy edge possible world keyed by a seed.
struct EdgeWorld {
  uint64_t seed;

  /// True iff edge `id` (with probability `p`) is live in this world.
  /// Deterministic: repeated queries agree.
  bool Live(EdgeId id, double p) const {
    if (p >= 1.0) return true;
    if (p <= 0.0) return false;
    return HashCoin::Flip(seed, id, p);
  }
};

/// Samples the per-item noise vector of a noise world w2.
inline std::vector<double> SampleNoiseWorld(const UtilityConfig& config,
                                            Rng& rng) {
  std::vector<double> noise(config.num_items());
  for (ItemId i = 0; i < config.num_items(); ++i) {
    noise[i] = config.Noise(i).Sample(rng);
  }
  return noise;
}

// World-stream derivation shared by the streaming estimator and the
// snapshot engine (simulate/world_pool.h): world w of an estimate seeded
// with `base` always uses these exact streams, so a materialized snapshot
// is bit-identical to the lazy on-the-fly world.

/// Edge-world seed of world `world` under estimator seed `base`.
inline uint64_t WorldEdgeSeedOf(uint64_t base, int world) {
  return MixHash(base, static_cast<uint64_t>(world) * 2 + 1);
}

/// Noise-world RNG of world `world` under estimator seed `base`.
inline Rng WorldNoiseRngOf(uint64_t base, int world) {
  return Rng(MixHash(base ^ 0x9e3779b97f4a7c15ULL,
                     static_cast<uint64_t>(world) * 2));
}

}  // namespace cwm

#endif  // CWM_SIMULATE_WORLD_H_
