// Monte-Carlo estimators for expected social welfare rho(S), influence
// spread sigma(S), per-item adoption counts, and marginal welfare.
//
// Marginals use common random numbers: the same world seeds evaluate both
// allocations, so the difference estimator has far lower variance than two
// independent estimates — essential for the marginal checks of SeqGRD and
// the greedyWM baseline. The paper runs 5000 simulations per estimate
// (§6.1.3); the default here is 500 for the single-core container and is
// raised via EstimatorOptions or the CWM_SIMS environment variable in the
// bench harness.
#ifndef CWM_SIMULATE_ESTIMATOR_H_
#define CWM_SIMULATE_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "model/allocation.h"
#include "model/utility.h"
#include "simulate/uic_simulator.h"

namespace cwm {

/// Options shared by all Monte-Carlo estimates.
struct EstimatorOptions {
  /// Number of possible worlds averaged per estimate.
  int num_worlds = 500;
  /// Base seed; world w uses seed MixHash(seed, w).
  uint64_t seed = 0x5eedu;
  /// Worker threads (0 = hardware concurrency).
  unsigned num_threads = 0;
};

/// Expected-value statistics of an allocation.
struct WelfareStats {
  /// Estimated rho(S): expected social welfare.
  double welfare = 0.0;
  /// Expected number of adopters of each item (Table 6 columns).
  std::vector<double> adopters_per_item;
  /// Expected number of nodes adopting at least one item.
  double adopting_nodes = 0.0;
};

/// Monte-Carlo welfare/spread estimator bound to one graph + utility config.
/// Thread-safe for concurrent const calls (each call builds its own
/// simulator scratch).
class WelfareEstimator {
 public:
  WelfareEstimator(const Graph& graph, const UtilityConfig& config,
                   EstimatorOptions options = {});

  /// rho(S): expected social welfare of `allocation`.
  double Welfare(const Allocation& allocation) const;

  /// Welfare plus per-item adopter counts (used by the adoption-vs-welfare
  /// experiment, Table 6).
  WelfareStats Stats(const Allocation& allocation) const;

  /// rho(base ∪ extra) - rho(base), with common random numbers.
  double MarginalWelfare(const Allocation& base,
                         const Allocation& extra) const;

  /// sigma(S): expected number of nodes reachable from `seeds` over live
  /// edges (classic IC spread; item-independent).
  double Spread(const std::vector<NodeId>& seeds) const;

  /// sigma(S | S_P) = sigma(S ∪ S_P) - sigma(S_P), common random numbers.
  double MarginalSpread(const std::vector<NodeId>& base,
                        const std::vector<NodeId>& extra) const;

  /// Balanced-exposure objective of Garimella et al. (Balance-C baseline):
  /// expected number of nodes whose desire set contains both of items
  /// {0, 1} or neither. Only meaningful for two-item configurations.
  double BalancedExposure(const Allocation& allocation) const;

  /// BalancedExposure(base ∪ extra) - BalancedExposure(base), common
  /// random numbers.
  double MarginalBalancedExposure(const Allocation& base,
                                  const Allocation& extra) const;

  const EstimatorOptions& options() const { return options_; }
  const Graph& graph() const { return graph_; }
  const UtilityConfig& config() const { return config_; }

 private:
  const Graph& graph_;
  const UtilityConfig& config_;
  EstimatorOptions options_;
};

}  // namespace cwm

#endif  // CWM_SIMULATE_ESTIMATOR_H_
