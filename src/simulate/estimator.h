// Monte-Carlo estimators for expected social welfare rho(S), influence
// spread sigma(S), per-item adoption counts, and marginal welfare.
//
// Marginals use common random numbers: the same world seeds evaluate both
// allocations, so the difference estimator has far lower variance than two
// independent estimates — essential for the marginal checks of SeqGRD and
// the greedyWM baseline. The paper runs 5000 simulations per estimate
// (§6.1.3); the default here is 500 for the single-core container and is
// raised via EstimatorOptions or the CWM_SIMS environment variable in the
// bench harness.
//
// Batched evaluation: StatsBatch / MarginalWelfareBatch /
// MarginalBalancedExposureBatch sweep every candidate allocation through
// each possible world in one pass, amortizing world materialization (a
// WorldPool of live-edge snapshots + per-world utility tables,
// simulate/world_pool.h) over the whole batch — and, for marginals, the
// base allocation's diffusion over all extras. The pool is built lazily
// on the first batch call and reused by every later batch on the same
// estimator, within EstimatorOptions::snapshot_budget_bytes; worlds past
// the budget stream lazily exactly like the non-batch path. Batched
// results are bit-identical to calling the corresponding streaming method
// per candidate, at any thread count.
//
// Word-parallel evaluation: when EstimatorOptions::packed_kernel is on
// (the default) and the batch qualifies, the batch methods evaluate 64
// worlds per machine word with the bit-packed kernel of
// simulate/packed_world.h instead of one diffusion per world — same
// world streams, same canonical aggregation order, bit-identical results;
// only wall time changes. See docs/kernel.md.
#ifndef CWM_SIMULATE_ESTIMATOR_H_
#define CWM_SIMULATE_ESTIMATOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "model/allocation.h"
#include "model/utility.h"
#include "simulate/uic_simulator.h"
#include "simulate/world_pool.h"

namespace cwm {

class PackedWorldSet;

/// Options shared by all Monte-Carlo estimates.
struct EstimatorOptions {
  /// Number of possible worlds averaged per estimate.
  int num_worlds = 500;
  /// Base seed; world w uses seed MixHash(seed, w).
  uint64_t seed = 0x5eedu;
  /// Worker threads (0 = hardware concurrency).
  unsigned num_threads = 0;
  /// Byte budget for the world-snapshot pool backing the batch API
  /// (CWM_SNAPSHOT_BUDGET_MB in the sweep engine). Worlds whose
  /// snapshots exceed the budget are streamed lazily instead; 0 disables
  /// materialization entirely. Never changes results — only wall time.
  std::size_t snapshot_budget_bytes = 256ull << 20;
  /// Optional shared pool store (simulate/world_pool.h). When set, the
  /// estimator resolves its snapshot pool through the store's
  /// (graph, config, seed, num_worlds) key instead of building a private
  /// one, so estimators with the same world-sequence identity share the
  /// materialization and the *store's* budget governs (this option's
  /// snapshot_budget_bytes is ignored). Not owned; must outlive the
  /// estimator. Never changes results — only wall time.
  WorldPoolStore* pool_store = nullptr;
  /// Evaluate batch calls with the word-parallel kernel
  /// (simulate/packed_world.h): 64 worlds per machine word instead of one
  /// diffusion per world. Falls back to the scalar snapshot path
  /// transparently when the batch has fewer than `packed_min_worlds`
  /// worlds, the graph's mean edge probability is below
  /// `packed_min_mean_prob`, the configuration has more than 6 items (the
  /// packed transition tables are 3^m), or the packed layout exceeds the
  /// snapshot/store byte budget. Never changes results — bit-identical to
  /// the scalar path at any thread count — only wall time.
  bool packed_kernel = true;
  /// Minimum worlds before packing pays for its set build.
  int packed_min_worlds = 32;
  /// Regime gate: the packed kernel wins when the 64 lanes of a word
  /// mostly agree (strong-tie / noise-dominated graphs — see
  /// docs/kernel.md), and loses to per-world snapshots on weak-tie graphs
  /// whose cascades barely overlap across worlds. Engage packing only
  /// when the graph's mean edge probability reaches this threshold;
  /// 0 packs unconditionally. Purely a speed decision — results are
  /// bit-identical on every path.
  double packed_min_mean_prob = 0.4;
  /// Let the packed kernel process 4 blocks (256 worlds) per pass, with
  /// AVX2 when the CPU has it. Identical results either way; exposed so
  /// tests can pin the narrow arm.
  bool packed_wide = true;
};

/// Expected-value statistics of an allocation.
struct WelfareStats {
  /// Estimated rho(S): expected social welfare.
  double welfare = 0.0;
  /// Expected number of adopters of each item (Table 6 columns).
  std::vector<double> adopters_per_item;
  /// Expected number of nodes adopting at least one item.
  double adopting_nodes = 0.0;
};

/// Monte-Carlo welfare/spread estimator bound to one graph + utility config.
/// Thread-safe for concurrent const calls (each call builds its own
/// simulator scratch).
class WelfareEstimator {
 public:
  WelfareEstimator(const Graph& graph, const UtilityConfig& config,
                   EstimatorOptions options = {});

  /// rho(S): expected social welfare of `allocation`.
  double Welfare(const Allocation& allocation) const;

  /// Welfare plus per-item adopter counts (used by the adoption-vs-welfare
  /// experiment, Table 6).
  WelfareStats Stats(const Allocation& allocation) const;

  /// Batched Stats: element j is bit-identical to Stats(allocations[j]),
  /// but every world is materialized once (snapshot + utility table) and
  /// shared by all candidates instead of being re-derived per candidate.
  std::vector<WelfareStats> StatsBatch(
      std::span<const Allocation> allocations) const;

  /// rho(base ∪ extra) - rho(base), with common random numbers.
  double MarginalWelfare(const Allocation& base,
                         const Allocation& extra) const;

  /// Batched MarginalWelfare against one shared base: element j is
  /// bit-identical to MarginalWelfare(base, extras[j]). On top of the
  /// shared world snapshots, the base allocation's diffusion runs once
  /// per world for the whole batch.
  std::vector<double> MarginalWelfareBatch(
      const Allocation& base, std::span<const Allocation> extras) const;

  /// sigma(S): expected number of nodes reachable from `seeds` over live
  /// edges (classic IC spread; item-independent).
  double Spread(const std::vector<NodeId>& seeds) const;

  /// sigma(S | S_P) = sigma(S ∪ S_P) - sigma(S_P), common random numbers.
  double MarginalSpread(const std::vector<NodeId>& base,
                        const std::vector<NodeId>& extra) const;

  /// Balanced-exposure objective of Garimella et al. (Balance-C baseline):
  /// expected number of nodes whose desire set contains both of items
  /// {0, 1} or neither. Only meaningful for two-item configurations.
  double BalancedExposure(const Allocation& allocation) const;

  /// BalancedExposure(base ∪ extra) - BalancedExposure(base), common
  /// random numbers.
  double MarginalBalancedExposure(const Allocation& base,
                                  const Allocation& extra) const;

  /// Batched MarginalBalancedExposure against one shared base; element j
  /// is bit-identical to MarginalBalancedExposure(base, extras[j]).
  std::vector<double> MarginalBalancedExposureBatch(
      const Allocation& base, std::span<const Allocation> extras) const;

  /// Snapshot-pool telemetry. All zeros until the first batch call
  /// builds the pool.
  WorldPoolStats snapshot_stats() const;

  const EstimatorOptions& options() const { return options_; }
  const Graph& graph() const { return graph_; }
  const UtilityConfig& config() const { return config_; }

 private:
  /// World-to-chunk striding shared by every estimate (streaming and
  /// batched): max(1, min(threads, num_worlds)).
  std::size_t NumChunks() const;

  /// The lazily built snapshot pool (one per estimator lifetime).
  const WorldPool& EnsurePool() const;

  /// The lazily built packed world set, or nullptr when the packed path
  /// is unavailable (knob off, too few worlds, too many items, or over
  /// budget) — callers take the scalar snapshot path then. Resolved once
  /// per estimator lifetime.
  const PackedWorldSet* EnsurePacked() const;

  const Graph& graph_;
  const UtilityConfig& config_;
  EstimatorOptions options_;

  mutable std::mutex pool_mutex_;
  mutable std::shared_ptr<const WorldPool> pool_;
  mutable std::shared_ptr<const PackedWorldSet> packed_;
  mutable bool packed_resolved_ = false;
};

}  // namespace cwm

#endif  // CWM_SIMULATE_ESTIMATOR_H_
