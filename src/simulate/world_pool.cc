#include "simulate/world_pool.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "simulate/packed_world.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace cwm {

WorldSnapshot::WorldSnapshot(const Graph& graph, const UtilityConfig& config,
                             uint64_t edge_seed, Rng noise_rng,
                             std::size_t expected_live)
    : table_(config, noise_rng) {
  const EdgeWorld world{edge_seed};
  const std::size_t n = graph.num_nodes();
  offsets_.resize(n + 1);
  offsets_[0] = 0;
  targets_.reserve(expected_live);
  for (NodeId u = 0; u < n; ++u) {
    const auto out = graph.OutEdges(u);
    for (std::size_t k = 0; k < out.size(); ++k) {
      if (world.Live(graph.OutEdgeId(u, k), out[k].prob)) {
        targets_.push_back(out[k].to);
      }
    }
    offsets_[u + 1] = static_cast<uint32_t>(targets_.size());
  }
  targets_.shrink_to_fit();
}

WorldSnapshot::WorldSnapshot(const Graph& graph, const WorldSnapshot& prior,
                             uint64_t edge_seed, EdgeId first_dirty_edge,
                             std::size_t expected_live)
    : table_(prior.table_) {
  const EdgeWorld world{edge_seed};
  const std::size_t n = graph.num_nodes();
  const std::span<const uint64_t> offsets = graph.RawOutOffsets();
  offsets_.resize(n + 1);
  offsets_[0] = 0;
  targets_.reserve(expected_live);
  // Nodes whose whole out-range sits below the dirty watermark have
  // identical (position, endpoint, probability) edges in both graphs, so
  // their coins — keyed by positional EdgeId — cannot differ: copy their
  // live targets from the prior world instead of re-flipping.
  NodeId resume = 0;
  while (resume < n && offsets[resume + 1] <= first_dirty_edge) ++resume;
  targets_.insert(targets_.end(), prior.targets_.begin(),
                  prior.targets_.begin() + prior.offsets_[resume]);
  std::copy(prior.offsets_.begin() + 1, prior.offsets_.begin() + resume + 1,
            offsets_.begin() + 1);
  for (NodeId u = resume; u < n; ++u) {
    const auto out = graph.OutEdges(u);
    for (std::size_t k = 0; k < out.size(); ++k) {
      if (world.Live(graph.OutEdgeId(u, k), out[k].prob)) {
        targets_.push_back(out[k].to);
      }
    }
    offsets_[u + 1] = static_cast<uint32_t>(targets_.size());
  }
  targets_.shrink_to_fit();
}

SnapshotFootprint EstimateSnapshotFootprint(const Graph& graph) {
  // Estimating instead of counting avoids a second full coin-flip pass;
  // the estimate is deterministic, so budget cutoffs derived from it
  // never depend on sampled worlds or threads.
  double expected_live = 0.0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (const OutEdge& e : graph.OutEdges(u)) {
      expected_live += std::min(1.0f, std::max(0.0f, e.prob));
    }
  }
  SnapshotFootprint footprint;
  footprint.live_hint = static_cast<std::size_t>(std::ceil(expected_live));
  footprint.bytes = (graph.num_nodes() + 1) * sizeof(uint32_t) +
                    footprint.live_hint * sizeof(NodeId);
  return footprint;
}

WorldPool::WorldPool(const Graph& graph, const UtilityConfig& config,
                     uint64_t seed, int num_worlds,
                     std::size_t budget_bytes, unsigned num_threads,
                     SnapshotFootprint footprint)
    : num_worlds_(num_worlds) {
  // Materialization disabled: skip even the footprint-estimate edge scan.
  if (budget_bytes == 0) return;
  CWM_TRACE_SPAN("simulate.materialize_pool",
                 {{"worlds", num_worlds},
                  {"budget_bytes", budget_bytes},
                  {"seed", seed}});
  if (footprint.bytes == 0) footprint = EstimateSnapshotFootprint(graph);
  const std::size_t live_hint = footprint.live_hint;
  const std::size_t per_world = footprint.bytes;
  const std::size_t limit =
      per_world == 0 ? static_cast<std::size_t>(num_worlds)
                     : budget_bytes / per_world;
  const std::size_t prefix =
      std::min<std::size_t>(static_cast<std::size_t>(num_worlds), limit);

  snapshots_.resize(prefix);
  if (prefix == 0) return;
  ParallelFor(
      prefix,
      [&](std::size_t w) {
        snapshots_[w] = std::make_unique<WorldSnapshot>(
            graph, config, WorldEdgeSeedOf(seed, static_cast<int>(w)),
            WorldNoiseRngOf(seed, static_cast<int>(w)), live_hint);
      },
      num_threads);
}

WorldPool::WorldPool(const Graph& graph, const UtilityConfig& config,
                     uint64_t seed, int num_worlds,
                     std::size_t budget_bytes, unsigned num_threads,
                     SnapshotFootprint footprint, const WorldPool& prior,
                     EdgeId first_dirty_edge)
    : num_worlds_(num_worlds) {
  if (budget_bytes == 0) return;
  CWM_TRACE_SPAN("simulate.patch_pool",
                 {{"worlds", num_worlds},
                  {"budget_bytes", budget_bytes},
                  {"first_dirty_edge", first_dirty_edge}});
  // The prefix cutoff is recomputed on the *new* graph exactly as the
  // cold constructor computes it, so patched and cold pools materialize
  // the same worlds; only the per-world construction differs.
  if (footprint.bytes == 0) footprint = EstimateSnapshotFootprint(graph);
  const std::size_t live_hint = footprint.live_hint;
  const std::size_t per_world = footprint.bytes;
  const std::size_t limit =
      per_world == 0 ? static_cast<std::size_t>(num_worlds)
                     : budget_bytes / per_world;
  const std::size_t prefix =
      std::min<std::size_t>(static_cast<std::size_t>(num_worlds), limit);

  snapshots_.resize(prefix);
  if (prefix == 0) return;
  ParallelFor(
      prefix,
      [&](std::size_t w) {
        const int world = static_cast<int>(w);
        const WorldSnapshot* prev = prior.Get(world);
        snapshots_[w] =
            prev != nullptr
                ? std::make_unique<WorldSnapshot>(
                      graph, *prev, WorldEdgeSeedOf(seed, world),
                      first_dirty_edge, live_hint)
                : std::make_unique<WorldSnapshot>(
                      graph, config, WorldEdgeSeedOf(seed, world),
                      WorldNoiseRngOf(seed, world), live_hint);
      },
      num_threads);
}

WorldPoolStats WorldPool::stats() const {
  WorldPoolStats stats;
  stats.num_worlds = num_worlds_;
  stats.snapshotted = static_cast<int>(snapshots_.size());
  for (const auto& snapshot : snapshots_) stats.bytes += snapshot->bytes();
  return stats;
}

namespace {

// Process-wide twins of the per-store counters (same increment sites),
// read by `--metrics` and the stderr formatter.
Counter& PoolBuildsCounter() {
  static Counter& counter = MetricsRegistry::Global().GetCounter("pool.builds");
  return counter;
}
Counter& PoolReusesCounter() {
  static Counter& counter = MetricsRegistry::Global().GetCounter("pool.reuses");
  return counter;
}
Counter& PoolEvictionsCounter() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("pool.evictions");
  return counter;
}
Counter& PoolPatchesCounter() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("pool.patches");
  return counter;
}

}  // namespace

SnapshotFootprint WorldPoolStore::FootprintOf(const Graph& graph) {
  auto [it, inserted] = footprints_.try_emplace(&graph);
  if (inserted) it->second = EstimateSnapshotFootprint(graph);
  return it->second;
}

void WorldPoolStore::NotifyDelta(const Graph& old_graph,
                                 const Graph& new_graph,
                                 EdgeId first_dirty_edge) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  // Address-reuse insurance: anything memoized under the new graph's
  // address describes a dead object, never this graph.
  footprints_.erase(&new_graph);
  for (auto it = pools_.begin(); it != pools_.end();) {
    if (it->first.graph == &new_graph &&
        it->second.ready.load(std::memory_order_relaxed)) {
      it = pools_.erase(it);
    } else {
      ++it;
    }
  }
  deltas_[&new_graph] = DeltaHint{&old_graph, first_dirty_edge};
}

const WorldPoolStore::Entry* WorldPoolStore::FindPatchSource(
    Key key, EdgeId* watermark) const {
  // Walk the delta ancestry toward the base until a resident same-identity
  // entry appears; edits below every hop's watermark left edge positions,
  // endpoints, and probabilities untouched, so the combined watermark is
  // the minimum along the walk.
  EdgeId combined = key.graph == nullptr ? 0 : ~EdgeId{0};
  const Graph* cursor = key.graph;
  while (true) {
    const auto hint = deltas_.find(cursor);
    if (hint == deltas_.end()) return nullptr;
    combined = std::min(combined, hint->second.first_dirty_edge);
    cursor = hint->second.base;
    key.graph = cursor;
    if (const auto it = pools_.find(key);
        it != pools_.end() &&
        it->second.ready.load(std::memory_order_acquire)) {
      *watermark = combined;
      return &it->second;
    }
  }
}

std::size_t WorldPoolStore::EvictFor(std::size_t desired) {
  std::size_t resident = 0;
  for (const auto& [k, entry] : pools_) resident += entry.bytes;
  // Make room LRU-first, but never drop a pool an estimator still holds
  // (evicting it would not free memory, only forfeit future reuse) and
  // never a building entry (its bytes are a reservation another thread
  // is actively filling, and waiters hold its future).
  while (resident + desired > budget_bytes_) {
    auto victim = pools_.end();
    for (auto it = pools_.begin(); it != pools_.end(); ++it) {
      if (!it->second.ready.load(std::memory_order_relaxed)) continue;
      if (it->second.use_count() > 1) continue;
      if (victim == pools_.end() ||
          it->second.last_use.load(std::memory_order_relaxed) <
              victim->second.last_use.load(std::memory_order_relaxed)) {
        victim = it;
      }
    }
    if (victim == pools_.end()) break;
    resident -= victim->second.bytes;
    pools_.erase(victim);
    PoolEvictionsCounter().Add(1);
    pools_evicted_.fetch_add(1, std::memory_order_relaxed);
  }
  return resident;
}

std::shared_ptr<const WorldPool> WorldPoolStore::GetOrBuild(
    const Graph& graph, const UtilityConfig& config, uint64_t seed,
    int num_worlds, unsigned num_threads) {
  const Key key{&graph, &config, seed, num_worlds, /*chunks=*/0};

  // Fast path: resident pools serve under a shared lock, so concurrent
  // requests (a serving worker pool evaluating many requests against one
  // engine) never contend once the pool exists.
  {
    const std::shared_lock<std::shared_mutex> lock(mutex_);
    if (auto it = pools_.find(key);
        it != pools_.end() && it->second.ready.load(std::memory_order_acquire)) {
      PoolReusesCounter().Add(1);
      pool_reuses_.fetch_add(1, std::memory_order_relaxed);
      it->second.last_use.store(
          tick_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      return it->second.pool;
    }
  }

  std::unique_lock<std::shared_mutex> lock(mutex_);
  for (;;) {
    auto it = pools_.find(key);
    if (it == pools_.end()) break;
    if (it->second.ready.load(std::memory_order_acquire)) {
      PoolReusesCounter().Add(1);
      pool_reuses_.fetch_add(1, std::memory_order_relaxed);
      it->second.last_use.store(
          tick_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      return it->second.pool;
    }
    // Another thread is building this key: wait on its build outside the
    // lock, then re-check (the finished entry could have been evicted in
    // the window, in which case we become the builder).
    std::shared_future<void> build = it->second.build;
    lock.unlock();
    build.wait();
    lock.lock();
  }

  // Miss: reserve the key and its budget estimate under the lock, build
  // outside it. One footprint estimate per graph feeds the reservation,
  // the eviction target, and the pool's own prefix cutoff.
  const SnapshotFootprint footprint = FootprintOf(graph);
  // A resident pre-delta pool with this identity turns the build into a
  // prefix-copy patch. Pin it before the eviction scan (the pin also
  // shields it from being evicted out from under the build).
  EdgeId watermark = 0;
  std::shared_ptr<const WorldPool> prior;
  if (const Entry* source = FindPatchSource(key, &watermark);
      source != nullptr) {
    prior = source->pool;
  }
  const std::size_t desired = std::min(
      budget_bytes_, footprint.bytes * static_cast<std::size_t>(num_worlds));
  const std::size_t resident = EvictFor(desired);
  const std::size_t remaining =
      budget_bytes_ > resident ? budget_bytes_ - resident : 0;
  std::promise<void> done;
  auto [it, inserted] = pools_.try_emplace(key);
  CWM_CHECK(inserted);
  Entry& entry = it->second;
  entry.bytes = std::min(desired, remaining);  // reservation until built
  entry.build = done.get_future().share();
  entry.last_use.store(tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
  lock.unlock();

  auto pool =
      prior != nullptr
          ? std::make_shared<const WorldPool>(graph, config, seed,
                                              num_worlds, remaining,
                                              num_threads, footprint, *prior,
                                              watermark)
          : std::make_shared<const WorldPool>(graph, config, seed,
                                              num_worlds, remaining,
                                              num_threads, footprint);

  lock.lock();
  entry.pool = pool;  // the entry cannot be evicted while !ready
  entry.bytes = pool->stats().bytes;
  entry.ready.store(true, std::memory_order_release);
  PoolBuildsCounter().Add(1);
  pools_built_.fetch_add(1, std::memory_order_relaxed);
  if (prior != nullptr) {
    PoolPatchesCounter().Add(1);
    pools_patched_.fetch_add(1, std::memory_order_relaxed);
  }
  lock.unlock();
  done.set_value();
  return pool;
}

std::shared_ptr<const PackedWorldSet> WorldPoolStore::GetOrBuildPacked(
    const Graph& graph, const UtilityConfig& config, uint64_t seed,
    int num_worlds, std::size_t chunks, unsigned num_threads) {
  // Same counters and build discipline as GetOrBuild: a packed set is the
  // same cached artifact (one key's materialized world sequence) in a
  // different layout, so the `--metrics` pool counters and the stderr
  // "pools:" line cover both.
  const Key key{&graph, &config, seed, num_worlds, chunks};

  {
    const std::shared_lock<std::shared_mutex> lock(mutex_);
    if (auto it = pools_.find(key);
        it != pools_.end() && it->second.ready.load(std::memory_order_acquire)) {
      PoolReusesCounter().Add(1);
      pool_reuses_.fetch_add(1, std::memory_order_relaxed);
      it->second.last_use.store(
          tick_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      return it->second.packed;
    }
  }

  std::unique_lock<std::shared_mutex> lock(mutex_);
  for (;;) {
    auto it = pools_.find(key);
    if (it == pools_.end()) break;
    if (it->second.ready.load(std::memory_order_acquire)) {
      PoolReusesCounter().Add(1);
      pool_reuses_.fetch_add(1, std::memory_order_relaxed);
      it->second.last_use.store(
          tick_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      return it->second.packed;
    }
    std::shared_future<void> build = it->second.build;
    lock.unlock();
    build.wait();
    lock.lock();
  }

  // All-or-nothing: a partially packed set has no transparent fallback
  // per world, so refuse (before reserving anything) rather than
  // overshoot the budget. A refusal inserts no entry — concurrent
  // same-key callers each re-evaluate, which only costs repeated
  // eviction scans, never repeated builds.
  const std::size_t desired = PackedWorldSet::EstimateBytes(
      graph, config.num_items(), num_worlds, chunks);
  if (desired > budget_bytes_) return nullptr;
  // Same patch opportunity as the snapshot path: a resident pre-delta
  // packed set with this identity is prefix-copied below the watermark.
  EdgeId watermark = 0;
  std::shared_ptr<const PackedWorldSet> prior;
  if (const Entry* source = FindPatchSource(key, &watermark);
      source != nullptr) {
    prior = source->packed;
  }
  const std::size_t resident = EvictFor(desired);
  if (resident + desired > budget_bytes_) return nullptr;

  std::promise<void> done;
  auto [it, inserted] = pools_.try_emplace(key);
  CWM_CHECK(inserted);
  Entry& entry = it->second;
  entry.bytes = desired;  // reservation until built
  entry.build = done.get_future().share();
  entry.last_use.store(tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
  lock.unlock();

  auto packed =
      prior != nullptr
          ? std::make_shared<const PackedWorldSet>(graph, *prior, seed,
                                                   watermark, num_threads)
          : std::make_shared<const PackedWorldSet>(
                graph, config, seed, num_worlds, chunks, num_threads);

  lock.lock();
  entry.packed = packed;
  entry.bytes = packed->bytes();
  entry.ready.store(true, std::memory_order_release);
  PoolBuildsCounter().Add(1);
  pools_built_.fetch_add(1, std::memory_order_relaxed);
  if (prior != nullptr) {
    PoolPatchesCounter().Add(1);
    pools_patched_.fetch_add(1, std::memory_order_relaxed);
  }
  lock.unlock();
  done.set_value();
  return packed;
}

WorldPoolStoreStats WorldPoolStore::stats() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  WorldPoolStoreStats stats;
  stats.pools_built = pools_built_.load(std::memory_order_relaxed);
  stats.pool_reuses = pool_reuses_.load(std::memory_order_relaxed);
  stats.pools_evicted = pools_evicted_.load(std::memory_order_relaxed);
  stats.pools_patched = pools_patched_.load(std::memory_order_relaxed);
  stats.resident_pools = pools_.size();
  for (const auto& [key, entry] : pools_) stats.resident_bytes += entry.bytes;
  return stats;
}

}  // namespace cwm
