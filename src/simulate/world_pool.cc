#include "simulate/world_pool.h"

#include <algorithm>
#include <cmath>

#include "support/thread_pool.h"

namespace cwm {

WorldSnapshot::WorldSnapshot(const Graph& graph, const UtilityConfig& config,
                             uint64_t edge_seed, Rng noise_rng,
                             std::size_t expected_live)
    : table_(config, noise_rng) {
  const EdgeWorld world{edge_seed};
  const std::size_t n = graph.num_nodes();
  offsets_.resize(n + 1);
  offsets_[0] = 0;
  targets_.reserve(expected_live);
  for (NodeId u = 0; u < n; ++u) {
    const auto out = graph.OutEdges(u);
    for (std::size_t k = 0; k < out.size(); ++k) {
      if (world.Live(graph.OutEdgeId(u, k), out[k].prob)) {
        targets_.push_back(out[k].to);
      }
    }
    offsets_[u + 1] = static_cast<uint32_t>(targets_.size());
  }
  targets_.shrink_to_fit();
}

WorldPool::WorldPool(const Graph& graph, const UtilityConfig& config,
                     uint64_t seed, int num_worlds,
                     std::size_t budget_bytes, unsigned num_threads)
    : num_worlds_(num_worlds) {
  // Materialization disabled: skip even the footprint-estimate edge scan.
  if (budget_bytes == 0) return;
  // Per-world footprint estimate: the offset array is exact, the live
  // edge count is taken at its expectation (sum of edge probabilities).
  // Estimating instead of counting avoids a second full coin-flip pass;
  // the budget is a soft cap and the estimate is deterministic, so the
  // materialized prefix never depends on sampled worlds or threads.
  double expected_live = 0.0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (const OutEdge& e : graph.OutEdges(u)) {
      expected_live += std::min(1.0f, std::max(0.0f, e.prob));
    }
  }
  const std::size_t live_hint =
      static_cast<std::size_t>(std::ceil(expected_live));
  const std::size_t per_world =
      (graph.num_nodes() + 1) * sizeof(uint32_t) +
      live_hint * sizeof(NodeId);
  const std::size_t limit =
      per_world == 0 ? static_cast<std::size_t>(num_worlds)
                     : budget_bytes / per_world;
  const std::size_t prefix =
      std::min<std::size_t>(static_cast<std::size_t>(num_worlds), limit);

  snapshots_.resize(prefix);
  if (prefix == 0) return;
  ParallelFor(
      prefix,
      [&](std::size_t w) {
        snapshots_[w] = std::make_unique<WorldSnapshot>(
            graph, config, WorldEdgeSeedOf(seed, static_cast<int>(w)),
            WorldNoiseRngOf(seed, static_cast<int>(w)), live_hint);
      },
      num_threads);
}

WorldPoolStats WorldPool::stats() const {
  WorldPoolStats stats;
  stats.num_worlds = num_worlds_;
  stats.snapshotted = static_cast<int>(snapshots_.size());
  for (const auto& snapshot : snapshots_) stats.bytes += snapshot->bytes();
  return stats;
}

}  // namespace cwm
