#include "simulate/world_pool.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "simulate/packed_world.h"
#include "support/thread_pool.h"

namespace cwm {

WorldSnapshot::WorldSnapshot(const Graph& graph, const UtilityConfig& config,
                             uint64_t edge_seed, Rng noise_rng,
                             std::size_t expected_live)
    : table_(config, noise_rng) {
  const EdgeWorld world{edge_seed};
  const std::size_t n = graph.num_nodes();
  offsets_.resize(n + 1);
  offsets_[0] = 0;
  targets_.reserve(expected_live);
  for (NodeId u = 0; u < n; ++u) {
    const auto out = graph.OutEdges(u);
    for (std::size_t k = 0; k < out.size(); ++k) {
      if (world.Live(graph.OutEdgeId(u, k), out[k].prob)) {
        targets_.push_back(out[k].to);
      }
    }
    offsets_[u + 1] = static_cast<uint32_t>(targets_.size());
  }
  targets_.shrink_to_fit();
}

SnapshotFootprint EstimateSnapshotFootprint(const Graph& graph) {
  // Estimating instead of counting avoids a second full coin-flip pass;
  // the estimate is deterministic, so budget cutoffs derived from it
  // never depend on sampled worlds or threads.
  double expected_live = 0.0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (const OutEdge& e : graph.OutEdges(u)) {
      expected_live += std::min(1.0f, std::max(0.0f, e.prob));
    }
  }
  SnapshotFootprint footprint;
  footprint.live_hint = static_cast<std::size_t>(std::ceil(expected_live));
  footprint.bytes = (graph.num_nodes() + 1) * sizeof(uint32_t) +
                    footprint.live_hint * sizeof(NodeId);
  return footprint;
}

WorldPool::WorldPool(const Graph& graph, const UtilityConfig& config,
                     uint64_t seed, int num_worlds,
                     std::size_t budget_bytes, unsigned num_threads,
                     SnapshotFootprint footprint)
    : num_worlds_(num_worlds) {
  // Materialization disabled: skip even the footprint-estimate edge scan.
  if (budget_bytes == 0) return;
  CWM_TRACE_SPAN("simulate.materialize_pool",
                 {{"worlds", num_worlds},
                  {"budget_bytes", budget_bytes},
                  {"seed", seed}});
  if (footprint.bytes == 0) footprint = EstimateSnapshotFootprint(graph);
  const std::size_t live_hint = footprint.live_hint;
  const std::size_t per_world = footprint.bytes;
  const std::size_t limit =
      per_world == 0 ? static_cast<std::size_t>(num_worlds)
                     : budget_bytes / per_world;
  const std::size_t prefix =
      std::min<std::size_t>(static_cast<std::size_t>(num_worlds), limit);

  snapshots_.resize(prefix);
  if (prefix == 0) return;
  ParallelFor(
      prefix,
      [&](std::size_t w) {
        snapshots_[w] = std::make_unique<WorldSnapshot>(
            graph, config, WorldEdgeSeedOf(seed, static_cast<int>(w)),
            WorldNoiseRngOf(seed, static_cast<int>(w)), live_hint);
      },
      num_threads);
}

WorldPoolStats WorldPool::stats() const {
  WorldPoolStats stats;
  stats.num_worlds = num_worlds_;
  stats.snapshotted = static_cast<int>(snapshots_.size());
  for (const auto& snapshot : snapshots_) stats.bytes += snapshot->bytes();
  return stats;
}

std::shared_ptr<const WorldPool> WorldPoolStore::GetOrBuild(
    const Graph& graph, const UtilityConfig& config, uint64_t seed,
    int num_worlds, unsigned num_threads) {
  // Building under the lock serializes misses but makes concurrent
  // requests for one key (every task of a sweep cell asking for the
  // cell's evaluation pool at once) build exactly once; the build itself
  // is still parallel over num_threads.
  // Process-wide twins of the per-store counters below (same increment
  // sites), read by `--metrics` and the stderr formatter.
  static Counter& built_counter =
      MetricsRegistry::Global().GetCounter("pool.builds");
  static Counter& reuse_counter =
      MetricsRegistry::Global().GetCounter("pool.reuses");
  static Counter& evict_counter =
      MetricsRegistry::Global().GetCounter("pool.evictions");

  const std::lock_guard<std::mutex> lock(mutex_);
  const Key key{&graph, &config, seed, num_worlds, /*chunks=*/0};
  if (auto it = pools_.find(key); it != pools_.end()) {
    reuse_counter.Add(1);
    ++pool_reuses_;
    it->second.last_use = ++tick_;
    return it->second.pool;
  }

  std::size_t resident = 0;
  for (const auto& [k, entry] : pools_) resident += entry.bytes;
  // One footprint scan per miss: the estimate feeds both the eviction
  // target and, passed through, the new pool's prefix cutoff.
  const SnapshotFootprint footprint = EstimateSnapshotFootprint(graph);
  const std::size_t desired = std::min(
      budget_bytes_,
      footprint.bytes * static_cast<std::size_t>(num_worlds));
  // Make room LRU-first, but never drop a pool an estimator still holds:
  // evicting it would not free memory, only forfeit future reuse.
  while (resident + desired > budget_bytes_) {
    auto victim = pools_.end();
    for (auto it = pools_.begin(); it != pools_.end(); ++it) {
      if (it->second.use_count() > 1) continue;
      if (victim == pools_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == pools_.end()) break;
    resident -= victim->second.bytes;
    pools_.erase(victim);
    evict_counter.Add(1);
    ++pools_evicted_;
  }

  const std::size_t remaining =
      budget_bytes_ > resident ? budget_bytes_ - resident : 0;
  Entry entry;
  entry.pool = std::make_shared<const WorldPool>(
      graph, config, seed, num_worlds, remaining, num_threads, footprint);
  entry.bytes = entry.pool->stats().bytes;
  entry.last_use = ++tick_;
  built_counter.Add(1);
  ++pools_built_;
  auto [it, inserted] = pools_.emplace(key, std::move(entry));
  return it->second.pool;
}

std::shared_ptr<const PackedWorldSet> WorldPoolStore::GetOrBuildPacked(
    const Graph& graph, const UtilityConfig& config, uint64_t seed,
    int num_worlds, std::size_t chunks, unsigned num_threads) {
  // Same counters as GetOrBuild: a packed set is the same cached artifact
  // (one key's materialized world sequence) in a different layout, so the
  // `--metrics` pool counters and the stderr "pools:" line cover both.
  static Counter& built_counter =
      MetricsRegistry::Global().GetCounter("pool.builds");
  static Counter& reuse_counter =
      MetricsRegistry::Global().GetCounter("pool.reuses");
  static Counter& evict_counter =
      MetricsRegistry::Global().GetCounter("pool.evictions");

  const std::lock_guard<std::mutex> lock(mutex_);
  const Key key{&graph, &config, seed, num_worlds, chunks};
  if (auto it = pools_.find(key); it != pools_.end()) {
    reuse_counter.Add(1);
    ++pool_reuses_;
    it->second.last_use = ++tick_;
    return it->second.packed;
  }

  const std::size_t desired = PackedWorldSet::EstimateBytes(
      graph, config.num_items(), num_worlds, chunks);
  if (desired > budget_bytes_) return nullptr;
  std::size_t resident = 0;
  for (const auto& [k, entry] : pools_) resident += entry.bytes;
  while (resident + desired > budget_bytes_) {
    auto victim = pools_.end();
    for (auto it = pools_.begin(); it != pools_.end(); ++it) {
      if (it->second.use_count() > 1) continue;
      if (victim == pools_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == pools_.end()) break;
    resident -= victim->second.bytes;
    pools_.erase(victim);
    evict_counter.Add(1);
    ++pools_evicted_;
  }
  // All-or-nothing: a partially packed set has no transparent fallback
  // per world, so refuse rather than overshoot the budget.
  if (resident + desired > budget_bytes_) return nullptr;

  Entry entry;
  entry.packed = std::make_shared<const PackedWorldSet>(
      graph, config, seed, num_worlds, chunks, num_threads);
  entry.bytes = entry.packed->bytes();
  entry.last_use = ++tick_;
  built_counter.Add(1);
  ++pools_built_;
  auto [it, inserted] = pools_.emplace(key, std::move(entry));
  return it->second.packed;
}

WorldPoolStoreStats WorldPoolStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  WorldPoolStoreStats stats;
  stats.pools_built = pools_built_;
  stats.pool_reuses = pool_reuses_;
  stats.pools_evicted = pools_evicted_;
  stats.resident_pools = pools_.size();
  for (const auto& [key, entry] : pools_) stats.resident_bytes += entry.bytes;
  return stats;
}

}  // namespace cwm
