#include "simulate/uic_simulator.h"

#include <algorithm>

#include "simulate/world_pool.h"

namespace cwm {

UicSimulator::UicSimulator(const Graph& graph, const UtilityConfig& config)
    : graph_(graph),
      config_(config),
      stamp_(graph.num_nodes(), 0),
      desire_(graph.num_nodes(), 0),
      adopted_(graph.num_nodes(), 0),
      affected_stamp_(graph.num_nodes(), 0) {}

void UicSimulator::Touch(NodeId v) {
  if (stamp_[v] != epoch_) {
    stamp_[v] = epoch_;
    desire_[v] = kEmptyItemSet;
    adopted_[v] = kEmptyItemSet;
    touched_.push_back(v);
  }
}

WorldOutcome UicSimulator::RunWorld(const Allocation& allocation,
                                    const EdgeWorld& edges,
                                    const WorldUtilityTable& utilities) {
  return RunDiffusion(allocation, utilities,
                      [&](NodeId u, const auto& visit) {
                        const auto out = graph_.OutEdges(u);
                        for (std::size_t k = 0; k < out.size(); ++k) {
                          const OutEdge& e = out[k];
                          if (!edges.Live(graph_.OutEdgeId(u, k), e.prob)) {
                            continue;
                          }
                          visit(e.to);
                        }
                      });
}

WorldOutcome UicSimulator::RunWorld(const Allocation& allocation,
                                    const WorldSnapshot& snapshot) {
  return RunDiffusion(allocation, snapshot.utilities(),
                      [&](NodeId u, const auto& visit) {
                        for (NodeId to : snapshot.LiveOut(u)) visit(to);
                      });
}

template <typename LiveOutFn>
WorldOutcome UicSimulator::RunDiffusion(const Allocation& allocation,
                                        const WorldUtilityTable& utilities,
                                        const LiveOutFn& live_out) {
  ++epoch_;
  touched_.clear();
  frontier_.clear();
  next_frontier_.clear();

  // t = 1: seeds desire their allocated items and adopt the best bundle.
  for (const auto& [v, itemset] : allocation.SeededItemsets()) {
    Touch(v);
    desire_[v] = itemset;
    const ItemSet adopt = utilities.BestAdoption(itemset, kEmptyItemSet);
    if (adopt != kEmptyItemSet) {
      adopted_[v] = adopt;
      frontier_.push_back({v, adopt});
    }
  }

  // t >= 2: propagate newly adopted items along live edges.
  while (!frontier_.empty()) {
    ++affected_epoch_;
    affected_.clear();
    for (const FrontierEntry& entry : frontier_) {
      live_out(entry.node, [&](NodeId to) {
        Touch(to);
        const ItemSet before = desire_[to];
        const ItemSet after = static_cast<ItemSet>(before | entry.fresh);
        if (after == before) return;
        desire_[to] = after;
        if (affected_stamp_[to] != affected_epoch_) {
          affected_stamp_[to] = affected_epoch_;
          affected_.push_back(to);
        }
      });
    }
    next_frontier_.clear();
    for (NodeId v : affected_) {
      const ItemSet prev = adopted_[v];
      const ItemSet now = utilities.BestAdoption(desire_[v], prev);
      if (now != prev) {
        adopted_[v] = now;
        next_frontier_.push_back({v, static_cast<ItemSet>(now & ~prev)});
      }
    }
    frontier_.swap(next_frontier_);
  }

  // Aggregate the outcome over touched nodes in ascending node order.
  // Touch order is world-specific (it follows the frontier), but the
  // canonical ascending order is reproducible by any evaluation engine —
  // in particular the word-parallel kernel (simulate/packed_world.h),
  // which must land on bit-identical welfare sums.
  std::sort(touched_.begin(), touched_.end());
  WorldOutcome outcome;
  outcome.adopters_per_item.assign(config_.num_items(), 0);
  for (NodeId v : touched_) {
    const ItemSet both = static_cast<ItemSet>(desire_[v] & 0x3u);
    if (both == 0x1u || both == 0x2u) ++outcome.one_sided_exposure_01;
    const ItemSet a = adopted_[v];
    if (a == kEmptyItemSet) continue;
    ++outcome.adopting_nodes;
    outcome.welfare += utilities.Utility(a);
    ForEachItem(a, [&](ItemId i) { ++outcome.adopters_per_item[i]; });
  }
  return outcome;
}

uint64_t UicSimulator::ReachableCount(const std::vector<NodeId>& seeds,
                                      const EdgeWorld& edges) {
  ++epoch_;
  touched_.clear();
  // Reuse desire_ as a visited flag (non-zero == visited).
  std::vector<NodeId> queue;
  for (NodeId s : seeds) {
    Touch(s);
    if (desire_[s] == 0) {
      desire_[s] = 1;
      queue.push_back(s);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    const auto out = graph_.OutEdges(u);
    for (std::size_t k = 0; k < out.size(); ++k) {
      const OutEdge& e = out[k];
      if (!edges.Live(graph_.OutEdgeId(u, k), e.prob)) continue;
      Touch(e.to);
      if (desire_[e.to] == 0) {
        desire_[e.to] = 1;
        queue.push_back(e.to);
      }
    }
  }
  return queue.size();
}

}  // namespace cwm
