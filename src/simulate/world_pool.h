// Materialized possible worlds for batched welfare estimation.
//
// The streaming estimator realizes a possible world lazily: every edge
// coin is a MixHash of (world seed, edge id), re-flipped on every
// traversal, and the per-world noise/utility table is rebuilt per
// estimate. That is optimal when a world is visited once — but MaxGRD's
// argmax, SeqGRD's marginal checks, greedyWM's CELF loop and BestOf's
// final comparison all sweep *many* candidate allocations through the
// *same* sequence of worlds, paying O(candidates x worlds x edges) in
// hashing where O(worlds x edges) suffices.
//
// A WorldSnapshot materializes one world once: the live-edge subgraph as
// a flat CSR (targets in canonical EdgeId order, so diffusion visits
// nodes in exactly the order the lazy path does) plus the world's noise
// utility table. Both are derived from the same WorldEdgeSeedOf /
// WorldNoiseRngOf streams as the streaming path (simulate/world.h), so
// evaluating an allocation against a snapshot is bit-identical to
// evaluating it on the fly — snapshots only ever change wall time.
//
// A WorldPool owns the snapshots of one estimator's world sequence,
// capped by a byte budget: worlds [0, k) are materialized where k is the
// largest prefix whose estimated footprint fits, and Get() returns
// nullptr for the rest, which callers stream exactly as before
// (transparent fallback — results are identical either way). The cutoff
// depends only on the graph and the budget, never on thread count.
#ifndef CWM_SIMULATE_WORLD_POOL_H_
#define CWM_SIMULATE_WORLD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "model/utility.h"
#include "simulate/world.h"

namespace cwm {

/// One fully materialized possible world: live out-edges as a CSR over
/// the full node universe, plus the world's fixed-noise utility table.
class WorldSnapshot {
 public:
  /// Materializes world (`edge_seed`, `noise_rng`) of `graph` + `config`.
  /// `expected_live` pre-reserves the target array (0 = grow on demand);
  /// the pool passes its per-world estimate so concurrent builds do not
  /// transiently overshoot the byte budget through geometric growth.
  WorldSnapshot(const Graph& graph, const UtilityConfig& config,
                uint64_t edge_seed, Rng noise_rng,
                std::size_t expected_live = 0);

  /// Live out-neighbours of `u`, in canonical (EdgeId) order — the same
  /// order the lazy EdgeWorld path visits survivors in.
  std::span<const NodeId> LiveOut(NodeId u) const {
    return {targets_.data() + offsets_[u],
            targets_.data() + offsets_[u + 1]};
  }

  const WorldUtilityTable& utilities() const { return table_; }

  std::size_t live_edges() const { return targets_.size(); }

  /// Heap footprint of this snapshot (pool accounting).
  std::size_t bytes() const {
    return offsets_.capacity() * sizeof(uint32_t) +
           targets_.capacity() * sizeof(NodeId);
  }

 private:
  std::vector<uint32_t> offsets_;  // num_nodes + 1
  std::vector<NodeId> targets_;    // live edges, canonical order
  WorldUtilityTable table_;
};

/// Telemetry of one pool (exposed via WelfareEstimator::snapshot_stats).
struct WorldPoolStats {
  int num_worlds = 0;    ///< worlds in the estimator's sequence
  int snapshotted = 0;   ///< worlds materialized (prefix [0, snapshotted))
  std::size_t bytes = 0; ///< total snapshot footprint
};

/// The materialized prefix of one estimator's world sequence. Immutable
/// after construction; safe to share across threads.
class WorldPool {
 public:
  /// Builds snapshots for worlds [0, k) of the sequence derived from
  /// `seed`, where k is the longest prefix within `budget_bytes`
  /// (estimated as offsets + expected live edges per world — the cutoff
  /// is deterministic in the graph and budget alone). Building is
  /// parallelized over `num_threads` workers; snapshot content never
  /// depends on the thread count.
  WorldPool(const Graph& graph, const UtilityConfig& config, uint64_t seed,
            int num_worlds, std::size_t budget_bytes, unsigned num_threads);

  /// Snapshot of world `w`, or nullptr when `w` fell outside the budget
  /// (the caller streams that world lazily instead).
  const WorldSnapshot* Get(int w) const {
    return static_cast<std::size_t>(w) < snapshots_.size()
               ? snapshots_[w].get()
               : nullptr;
  }

  WorldPoolStats stats() const;

 private:
  int num_worlds_;
  std::vector<std::unique_ptr<WorldSnapshot>> snapshots_;
};

}  // namespace cwm

#endif  // CWM_SIMULATE_WORLD_POOL_H_
