// Materialized possible worlds for batched welfare estimation.
//
// The streaming estimator realizes a possible world lazily: every edge
// coin is a MixHash of (world seed, edge id), re-flipped on every
// traversal, and the per-world noise/utility table is rebuilt per
// estimate. That is optimal when a world is visited once — but MaxGRD's
// argmax, SeqGRD's marginal checks, greedyWM's CELF loop and BestOf's
// final comparison all sweep *many* candidate allocations through the
// *same* sequence of worlds, paying O(candidates x worlds x edges) in
// hashing where O(worlds x edges) suffices.
//
// A WorldSnapshot materializes one world once: the live-edge subgraph as
// a flat CSR (targets in canonical EdgeId order, so diffusion visits
// nodes in exactly the order the lazy path does) plus the world's noise
// utility table. Both are derived from the same WorldEdgeSeedOf /
// WorldNoiseRngOf streams as the streaming path (simulate/world.h), so
// evaluating an allocation against a snapshot is bit-identical to
// evaluating it on the fly — snapshots only ever change wall time.
//
// A WorldPool owns the snapshots of one estimator's world sequence,
// capped by a byte budget: worlds [0, k) are materialized where k is the
// largest prefix whose estimated footprint fits, and Get() returns
// nullptr for the rest, which callers stream exactly as before
// (transparent fallback — results are identical either way). The cutoff
// depends only on the graph and the budget, never on thread count.
// A WorldPoolStore (bottom of this header) extends the sharing across
// *estimators*: pools are keyed by (graph, config, seed, num_worlds), so
// every estimator of one task — and every task of one sweep cell, which
// all share the evaluation seed — resolves to the same materialized pool
// instead of building its own. The store is budget-capped as a whole and
// evicts unreferenced pools LRU-first; like the pools themselves it only
// ever changes wall time, never results.
#ifndef CWM_SIMULATE_WORLD_POOL_H_
#define CWM_SIMULATE_WORLD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "model/utility.h"
#include "simulate/world.h"

namespace cwm {

class PackedWorldSet;

/// One fully materialized possible world: live out-edges as a CSR over
/// the full node universe, plus the world's fixed-noise utility table.
class WorldSnapshot {
 public:
  /// Materializes world (`edge_seed`, `noise_rng`) of `graph` + `config`.
  /// `expected_live` pre-reserves the target array (0 = grow on demand);
  /// the pool passes its per-world estimate so concurrent builds do not
  /// transiently overshoot the byte budget through geometric growth.
  WorldSnapshot(const Graph& graph, const UtilityConfig& config,
                uint64_t edge_seed, Rng noise_rng,
                std::size_t expected_live = 0);

  /// Incremental rematerialization after a delta: `prior` is the same
  /// world of the graph this one was derived from (delta/overlay.h), and
  /// every forward edge below `first_dirty_edge` is position-, endpoint-
  /// and probability-identical between the two graphs. The clean node
  /// prefix's live targets are copied from `prior` (the coins are keyed
  /// by positional EdgeId, so they cannot differ) and only edges at or
  /// above the watermark re-flip; the noise table — graph-independent by
  /// construction — is copied verbatim. Bit-identical to the cold
  /// constructor on `graph` with the same seeds.
  WorldSnapshot(const Graph& graph, const WorldSnapshot& prior,
                uint64_t edge_seed, EdgeId first_dirty_edge,
                std::size_t expected_live = 0);

  /// Live out-neighbours of `u`, in canonical (EdgeId) order — the same
  /// order the lazy EdgeWorld path visits survivors in.
  std::span<const NodeId> LiveOut(NodeId u) const {
    return {targets_.data() + offsets_[u],
            targets_.data() + offsets_[u + 1]};
  }

  const WorldUtilityTable& utilities() const { return table_; }

  std::size_t live_edges() const { return targets_.size(); }

  /// Heap footprint of this snapshot (pool accounting).
  std::size_t bytes() const {
    return offsets_.capacity() * sizeof(uint32_t) +
           targets_.capacity() * sizeof(NodeId);
  }

 private:
  std::vector<uint32_t> offsets_;  // num_nodes + 1
  std::vector<NodeId> targets_;    // live edges, canonical order
  WorldUtilityTable table_;
};

/// Telemetry of one pool (exposed via WelfareEstimator::snapshot_stats).
struct WorldPoolStats {
  int num_worlds = 0;    ///< worlds in the estimator's sequence
  int snapshotted = 0;   ///< worlds materialized (prefix [0, snapshotted))
  std::size_t bytes = 0; ///< total snapshot footprint
};

/// Deterministic per-world snapshot footprint estimate: the offset array
/// is exact, the live edge count is taken at its expectation (sum of edge
/// probabilities). Shared by WorldPool's prefix cutoff and
/// WorldPoolStore's eviction policy so both agree on what a world costs.
struct SnapshotFootprint {
  std::size_t live_hint = 0;  ///< ceil(expected live edges per world)
  std::size_t bytes = 0;      ///< estimated heap bytes per snapshot
};
SnapshotFootprint EstimateSnapshotFootprint(const Graph& graph);

/// The materialized prefix of one estimator's world sequence. Immutable
/// after construction; safe to share across threads.
class WorldPool {
 public:
  /// Builds snapshots for worlds [0, k) of the sequence derived from
  /// `seed`, where k is the longest prefix within `budget_bytes`
  /// (estimated as offsets + expected live edges per world — the cutoff
  /// is deterministic in the graph and budget alone). Building is
  /// parallelized over `num_threads` workers; snapshot content never
  /// depends on the thread count. A caller that already computed the
  /// graph's footprint estimate passes it to skip the edge scan
  /// (bytes == 0 recomputes; the estimate is deterministic either way).
  WorldPool(const Graph& graph, const UtilityConfig& config, uint64_t seed,
            int num_worlds, std::size_t budget_bytes, unsigned num_threads,
            SnapshotFootprint footprint = {});

  /// Incremental rebuild after a delta: worlds materialized by `prior`
  /// (a pool of the pre-delta graph with the same identity) are patched
  /// via the prefix-copy snapshot constructor; worlds `prior` never
  /// materialized build cold. The prefix cutoff is recomputed on `graph`
  /// exactly as the cold constructor would, so the patched pool is
  /// bit-identical to a cold build — patching only changes wall time.
  WorldPool(const Graph& graph, const UtilityConfig& config, uint64_t seed,
            int num_worlds, std::size_t budget_bytes, unsigned num_threads,
            SnapshotFootprint footprint, const WorldPool& prior,
            EdgeId first_dirty_edge);

  /// Snapshot of world `w`, or nullptr when `w` fell outside the budget
  /// (the caller streams that world lazily instead).
  const WorldSnapshot* Get(int w) const {
    return static_cast<std::size_t>(w) < snapshots_.size()
               ? snapshots_[w].get()
               : nullptr;
  }

  WorldPoolStats stats() const;

 private:
  int num_worlds_;
  std::vector<std::unique_ptr<WorldSnapshot>> snapshots_;
};

/// Telemetry of one store (surfaced through Engine/AllocateResult and the
/// sweep's aggregate counters).
struct WorldPoolStoreStats {
  uint64_t pools_built = 0;    ///< keys materialized from scratch
  uint64_t pool_reuses = 0;    ///< GetOrBuild calls served by a resident pool
  uint64_t pools_evicted = 0;  ///< unreferenced pools dropped for budget
  uint64_t pools_patched = 0;  ///< builds served incrementally from a
                               ///< pre-delta pool (subset of pools_built)
  std::size_t resident_bytes = 0;  ///< snapshot bytes currently resident
  std::size_t resident_pools = 0;  ///< pools currently resident
};

/// A keyed, budget-capped cache of WorldPools shared by the estimators of
/// one engine/task. The key is (graph, config, seed, num_worlds) — the
/// full identity of an estimator's world sequence — so two estimators
/// with the same identity (e.g. the per-cell evaluator rebuilt by every
/// task of a sweep cell, or the estimators BestOf's two arms construct
/// from one AlgoParams) share one materialized pool. The byte budget caps
/// the *store*: a new pool is built with whatever budget remains after
/// evicting unreferenced pools (LRU-first), and falls back to streaming
/// when nothing remains. Thread-safe; concurrent GetOrBuild calls for one
/// key build once and share. Never changes results — only wall time.
///
/// Concurrency: hits take a shared lock (concurrent serve requests for
/// resident pools never contend), and a miss builds its pool *outside*
/// the exclusive lock — the key is reserved first with its budget
/// estimate and a build future, so same-key callers wait on that one
/// build while distinct-key callers build in parallel, and the combined
/// reservations never overshoot the store budget.
class WorldPoolStore {
 public:
  explicit WorldPoolStore(std::size_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  WorldPoolStore(const WorldPoolStore&) = delete;
  WorldPoolStore& operator=(const WorldPoolStore&) = delete;

  /// The pool for (graph, config, seed, num_worlds): resident if already
  /// built, otherwise built under the store's remaining budget. The
  /// returned pointer keeps the pool alive independently of the store.
  std::shared_ptr<const WorldPool> GetOrBuild(const Graph& graph,
                                              const UtilityConfig& config,
                                              uint64_t seed, int num_worlds,
                                              unsigned num_threads);

  /// The packed world set (simulate/packed_world.h) for
  /// (graph, config, seed, num_worlds) laid out for a `chunks`-way
  /// evaluation — the extra key field, because lane packing bakes the
  /// chunk stride in. Unlike snapshot pools, a packed set is
  /// all-or-nothing: returns nullptr when it cannot fit the store budget
  /// even after LRU eviction, and the caller falls back to the scalar
  /// path. Packed entries share the store's budget, eviction policy, and
  /// built/reuse/evict counters with snapshot pools.
  std::shared_ptr<const PackedWorldSet> GetOrBuildPacked(
      const Graph& graph, const UtilityConfig& config, uint64_t seed,
      int num_worlds, std::size_t chunks, unsigned num_threads);

  /// Registers that `new_graph` is `old_graph` composed with a delta
  /// whose dirty watermark is `first_dirty_edge` (delta/overlay.h). A
  /// later miss for `new_graph` then *patches* the matching resident
  /// pool/packed set of `old_graph` (prefix copy below the watermark)
  /// instead of building cold — bit-identical, proportional to the dirty
  /// region. Hints chain: after several deltas a miss walks back to the
  /// nearest resident ancestor with the watermarks combined. Both graphs
  /// must outlive the store (Engine retains retired graph states).
  void NotifyDelta(const Graph& old_graph, const Graph& new_graph,
                   EdgeId first_dirty_edge);

  WorldPoolStoreStats stats() const;

  std::size_t budget_bytes() const { return budget_bytes_; }

 private:
  struct Key {
    const Graph* graph;
    const UtilityConfig* config;
    uint64_t seed;
    int num_worlds;
    std::size_t chunks;  // 0 = snapshot pool; > 0 = packed set layout
    bool operator<(const Key& o) const {
      if (graph != o.graph) return graph < o.graph;
      if (config != o.config) return config < o.config;
      if (seed != o.seed) return seed < o.seed;
      if (num_worlds != o.num_worlds) return num_worlds < o.num_worlds;
      return chunks < o.chunks;
    }
  };
  struct Entry {
    // Exactly one of the two is set, per Key::chunks. Written once, by
    // the building thread under the exclusive lock; `ready` (release)
    // publishes them to shared-lock readers (acquire).
    std::shared_ptr<const WorldPool> pool;
    std::shared_ptr<const PackedWorldSet> packed;
    /// Budget reservation while building; actual footprint once ready.
    std::size_t bytes = 0;
    /// LRU stamp; atomic because shared-lock hits refresh it.
    std::atomic<uint64_t> last_use{0};
    std::atomic<bool> ready{false};
    /// Valid while !ready: same-key callers wait on it outside the lock.
    std::shared_future<void> build;
    long use_count() const {
      return pool != nullptr ? pool.use_count() : packed.use_count();
    }
  };

  /// Evicts unreferenced ready entries LRU-first until `desired` more
  /// bytes fit (or nothing evictable remains); returns resident bytes
  /// after eviction. Caller holds the exclusive lock.
  std::size_t EvictFor(std::size_t desired);
  /// The graph's snapshot footprint estimate, computed once per graph
  /// (the O(edges) scan) and memoized. Caller holds the exclusive lock.
  SnapshotFootprint FootprintOf(const Graph& graph);

  /// Delta ancestry recorded by NotifyDelta.
  struct DeltaHint {
    const Graph* base = nullptr;
    EdgeId first_dirty_edge = 0;
  };
  /// The nearest resident ancestor entry patchable into `key`, walking
  /// the delta-hint chain; sets `*watermark` to the combined dirty
  /// watermark. Caller holds the exclusive lock.
  const Entry* FindPatchSource(Key key, EdgeId* watermark) const;

  const std::size_t budget_bytes_;
  mutable std::shared_mutex mutex_;
  std::atomic<uint64_t> tick_{0};
  std::map<Key, Entry> pools_;
  std::map<const Graph*, SnapshotFootprint> footprints_;
  std::map<const Graph*, DeltaHint> deltas_;
  std::atomic<uint64_t> pools_built_{0};
  std::atomic<uint64_t> pool_reuses_{0};
  std::atomic<uint64_t> pools_evicted_{0};
  std::atomic<uint64_t> pools_patched_{0};
};

}  // namespace cwm

#endif  // CWM_SIMULATE_WORLD_POOL_H_
