#include "simulate/packed_world.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "simulate/packed_kernel_inl.h"
#include "simulate/world.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace cwm {

namespace {

/// 3^m: the number of (desired, adopted ⊆ desired) transition pairs.
std::size_t NumPairs(int num_items) {
  std::size_t pairs = 1;
  for (int i = 0; i < num_items; ++i) pairs *= 3;
  return pairs;
}

std::size_t WorldsInChunk(int num_worlds, std::size_t chunks, std::size_t c) {
  if (c >= static_cast<std::size_t>(num_worlds)) return 0;
  return (static_cast<std::size_t>(num_worlds) - c + chunks - 1) / chunks;
}

}  // namespace

PackedWorldSet::PackedWorldSet(const Graph& graph, const UtilityConfig& config,
                               uint64_t seed, int num_worlds,
                               std::size_t chunks, unsigned num_threads)
    : num_worlds_(num_worlds) {
  CWM_CHECK(num_worlds >= 1);
  CWM_CHECK(chunks >= 1);
  const int m = config.num_items();
  CWM_CHECK(m >= 1 && m <= kMaxPackedItems);

  struct Job {
    std::size_t chunk;
    std::size_t block;
  };
  std::vector<Job> jobs;
  chunk_blocks_.resize(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t worlds = WorldsInChunk(num_worlds, chunks, c);
    const std::size_t blocks = (worlds + kPackedLanes - 1) / kPackedLanes;
    chunk_blocks_[c].resize(blocks);
    for (std::size_t b = 0; b < blocks; ++b) jobs.push_back({c, b});
  }

  const std::size_t pairs = NumPairs(m);
  const std::size_t table_size = std::size_t{1} << m;
  const auto edges = graph.RawOutEdges();
  ParallelFor(
      jobs.size(),
      [&](std::size_t j) {
        const auto [c, b] = jobs[j];
        Block& blk = chunk_blocks_[c][b];
        const std::size_t worlds = WorldsInChunk(num_worlds, chunks, c);
        blk.lane_count = static_cast<int>(
            std::min<std::size_t>(kPackedLanes, worlds - b * kPackedLanes));
        blk.lane_mask = blk.lane_count == kPackedLanes
                            ? ~uint64_t{0}
                            : (uint64_t{1} << blk.lane_count) - 1;
        blk.edge_mask.assign(graph.num_edges(), 0);
        blk.utility.assign(std::size_t{kPackedLanes} << m, 0.0);
        blk.adopt_plane.assign(pairs * m, 0);
        blk.adopt_changed.assign(pairs, 0);
        for (int l = 0; l < blk.lane_count; ++l) {
          const int world = static_cast<int>(
              c + (b * kPackedLanes + static_cast<std::size_t>(l)) * chunks);
          const uint64_t bit = uint64_t{1} << l;
          // Live-edge lane: the same WorldEdgeSeedOf stream and the same
          // float->double probability promotion as the lazy/snapshot paths.
          const EdgeWorld ew{WorldEdgeSeedOf(seed, world)};
          for (std::size_t e = 0; e < edges.size(); ++e) {
            if (ew.Live(static_cast<EdgeId>(e), edges[e].prob)) {
              blk.edge_mask[e] |= bit;
            }
          }
          Rng rng = WorldNoiseRngOf(seed, world);
          const WorldUtilityTable table(config, rng);
          for (std::size_t s = 0; s < table_size; ++s) {
            blk.utility[(static_cast<std::size_t>(l) << m) | s] =
                table.Utility(static_cast<ItemSet>(s));
          }
          std::size_t pair = 0;
          for (std::size_t d = 0; d < table_size; ++d) {
            ForEachSubset(static_cast<ItemSet>(d), [&](ItemSet a) {
              const ItemSet best =
                  table.BestAdoption(static_cast<ItemSet>(d), a);
              if (best != a) blk.adopt_changed[pair] |= bit;
              ForEachItem(best, [&](ItemId i) {
                blk.adopt_plane[pair * m + i] |= bit;
              });
              ++pair;
            });
          }
        }
      },
      num_threads);

  for (const auto& blocks : chunk_blocks_) {
    for (const Block& blk : blocks) bytes_ += blk.bytes();
  }
}

PackedWorldSet::PackedWorldSet(const Graph& graph, const PackedWorldSet& prior,
                               uint64_t seed, EdgeId first_dirty_edge,
                               unsigned num_threads)
    : num_worlds_(prior.num_worlds_) {
  const std::size_t chunks = prior.chunk_blocks_.size();
  struct Job {
    std::size_t chunk;
    std::size_t block;
  };
  std::vector<Job> jobs;
  chunk_blocks_.resize(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    chunk_blocks_[c].resize(prior.chunk_blocks_[c].size());
    for (std::size_t b = 0; b < chunk_blocks_[c].size(); ++b) {
      jobs.push_back({c, b});
    }
  }

  const auto edges = graph.RawOutEdges();
  const std::size_t clean =
      std::min<std::size_t>(first_dirty_edge, edges.size());
  ParallelFor(
      jobs.size(),
      [&](std::size_t j) {
        const auto [c, b] = jobs[j];
        Block& blk = chunk_blocks_[c][b];
        const Block& old = prior.chunk_blocks_[c][b];
        blk.lane_count = old.lane_count;
        blk.lane_mask = old.lane_mask;
        // The noise-derived planes never read the graph: copy verbatim.
        blk.utility = old.utility;
        blk.adopt_plane = old.adopt_plane;
        blk.adopt_changed = old.adopt_changed;
        // Edge coins are keyed by positional EdgeId, so every word below
        // the watermark is identical to the prior's; only the dirty
        // suffix re-flips.
        blk.edge_mask.assign(edges.size(), 0);
        std::copy(old.edge_mask.begin(),
                  old.edge_mask.begin() + static_cast<std::ptrdiff_t>(clean),
                  blk.edge_mask.begin());
        for (int l = 0; l < blk.lane_count; ++l) {
          const int world = static_cast<int>(
              c + (b * kPackedLanes + static_cast<std::size_t>(l)) * chunks);
          const uint64_t bit = uint64_t{1} << l;
          const EdgeWorld ew{WorldEdgeSeedOf(seed, world)};
          for (std::size_t e = clean; e < edges.size(); ++e) {
            if (ew.Live(static_cast<EdgeId>(e), edges[e].prob)) {
              blk.edge_mask[e] |= bit;
            }
          }
        }
      },
      num_threads);

  for (const auto& blocks : chunk_blocks_) {
    for (const Block& blk : blocks) bytes_ += blk.bytes();
  }
}

std::size_t PackedWorldSet::EstimateBytes(const Graph& graph, int num_items,
                                          int num_worlds, std::size_t chunks) {
  const std::size_t pairs = NumPairs(num_items);
  const std::size_t per_block =
      graph.num_edges() * sizeof(uint64_t) +
      (std::size_t{kPackedLanes} << num_items) * sizeof(double) +
      pairs * static_cast<std::size_t>(num_items) * sizeof(uint64_t) +
      pairs * sizeof(uint64_t);
  std::size_t blocks = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t worlds = WorldsInChunk(num_worlds, chunks, c);
    blocks += (worlds + kPackedLanes - 1) / kPackedLanes;
  }
  // One kernel engine lives per chunk; its node-state scratch (desire +
  // adopted words, grew masks, stamps) dominates on large graphs, so the
  // budget gate must see it.
  const std::size_t scratch_per_chunk =
      graph.num_nodes() * static_cast<std::size_t>(num_items) * kPackedGroup *
          sizeof(uint64_t) * 2 +
      graph.num_nodes() * (kPackedGroup * sizeof(uint64_t) +
                           2 * sizeof(uint32_t));
  const std::size_t live_chunks =
      std::min(chunks, static_cast<std::size_t>(num_worlds));
  return blocks * per_block + live_chunks * scratch_per_chunk;
}

void PackedOutcome::Reset(int num_items) {
  std::fill(std::begin(welfare), std::end(welfare), 0.0);
  std::fill(std::begin(adopting_nodes), std::end(adopting_nodes), 0u);
  std::fill(std::begin(one_sided_01), std::end(one_sided_01), 0u);
  adopters.assign(static_cast<std::size_t>(num_items) * kPackedLanes, 0u);
}

PackedDiffusion::PackedDiffusion(const Graph& graph,
                                 const UtilityConfig& config)
    : graph_(graph) {
  const int m = config.num_items();
  CWM_CHECK(m >= 1 && m <= kMaxPackedItems);
  const std::size_t n = graph.num_nodes();
  scratch_.num_items = m;
  scratch_.stamp.assign(n, 0);
  scratch_.desire.assign(n * static_cast<std::size_t>(m) * kPackedGroup, 0);
  scratch_.adopted.assign(n * static_cast<std::size_t>(m) * kPackedGroup, 0);
  scratch_.grew.assign(n * kPackedGroup, 0);
  scratch_.affected_stamp.assign(n, 0);
  scratch_.pair_base.assign(std::size_t{1} << m, 0);
  uint32_t acc = 0;
  for (std::size_t d = 0; d < (std::size_t{1} << m); ++d) {
    scratch_.pair_base[d] = acc;
    acc += uint32_t{1} << SetSize(static_cast<ItemSet>(d));
  }
}

void PackedDiffusion::Run(const PackedWorldSet::Block* const* blocks,
                          int count, const Allocation& allocation,
                          PackedOutcome* out) {
  CWM_CHECK(count == 1 || count == kPackedGroup);
  if (count == kPackedGroup) {
#if defined(CWM_HAVE_AVX2_TU) && (defined(__x86_64__) || defined(__i386__))
    if (__builtin_cpu_supports("avx2")) {
      internal::RunPackedKernelAvx2(scratch_, graph_, blocks, allocation, out);
      return;
    }
#endif
    internal::RunPackedKernel<kPackedGroup>(scratch_, graph_, blocks,
                                            allocation, out);
    return;
  }
  internal::RunPackedKernel<1>(scratch_, graph_, blocks, allocation, out);
}

bool PackedAvx2Active() {
#if defined(CWM_HAVE_AVX2_TU) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace cwm
