// The word-parallel UIC diffusion kernel, templated on the group width W
// (1 = one block / 64 worlds, kPackedGroup = the wide arm). Included by
// packed_world.cc for the portable instantiations and by
// packed_world_avx2.cc for the AVX2-compiled wide instantiation; the two
// wide builds run identical code, so dispatch never changes results.
//
// Semantics mirror UicSimulator::RunDiffusion lane-wise exactly: the
// diffusion state (desire/adoption sets per node) is set-valued and
// round-synchronous, so the packed OR/AND updates commute with the scalar
// per-world updates, and the only order-sensitive outcome — the welfare
// double — is aggregated over touched nodes in ascending node order, the
// canonical order the scalar path uses too. See docs/kernel.md.
#ifndef CWM_SIMULATE_PACKED_KERNEL_INL_H_
#define CWM_SIMULATE_PACKED_KERNEL_INL_H_

#include <algorithm>
#include <bit>
#include <cstdint>

#include "model/items.h"
#include "simulate/packed_world.h"

namespace cwm {
namespace internal {

/// Resets node `v`'s packed state on first touch of this run.
inline void PackedTouch(PackedScratch& s, NodeId v) {
  if (s.stamp[v] == s.epoch) return;
  s.stamp[v] = s.epoch;
  const std::size_t base =
      static_cast<std::size_t>(v) * s.num_items * kPackedGroup;
  const std::size_t words =
      static_cast<std::size_t>(s.num_items) * kPackedGroup;
  for (std::size_t k = 0; k < words; ++k) {
    s.desire[base + k] = 0;
    s.adopted[base + k] = 0;
  }
  s.touched.push_back(v);
}

template <int W>
void RunPackedKernel(PackedScratch& s, const Graph& graph,
                     const PackedWorldSet::Block* const* blocks,
                     const Allocation& allocation, PackedOutcome* out) {
  const int m = s.num_items;
  constexpr int kStride = kPackedGroup;
  const auto idx = [m](NodeId v) {
    return static_cast<std::size_t>(v) * m * kStride;
  };

  ++s.epoch;
  s.touched.clear();
  s.frontier_nodes.clear();
  s.frontier_fresh.clear();

  // t = 1: seeds desire their allocated items in every lane and adopt the
  // best bundle via the precomputed (itemset, empty) transition plane.
  for (const auto& [v, itemset] : allocation.SeededItemsets()) {
    PackedTouch(s, v);
    uint64_t* dv = &s.desire[idx(v)];
    ForEachItem(itemset, [&](ItemId i) {
      for (int g = 0; g < W; ++g) dv[i * kStride + g] = blocks[g]->lane_mask;
    });
    const std::size_t pair0 =
        s.pair_base[itemset] + (std::size_t{1} << SetSize(itemset)) - 1;
    uint64_t* av = &s.adopted[idx(v)];
    uint64_t fresh[kMaxPackedItems * W] = {};
    uint64_t any = 0;
    for (int i = 0; i < m; ++i) {
      for (int g = 0; g < W; ++g) {
        const uint64_t plane = blocks[g]->adopt_plane[pair0 * m + i];
        av[i * kStride + g] = plane;
        fresh[i * W + g] = plane;
        any |= plane;
      }
    }
    if (any != 0) {
      s.frontier_nodes.push_back(v);
      s.frontier_fresh.insert(s.frontier_fresh.end(), fresh,
                              fresh + static_cast<std::size_t>(m) * W);
    }
  }

  // t >= 2: offer freshly adopted items along live edges (per lane), then
  // re-solve the adoption argmax for every node whose desire grew.
  while (!s.frontier_nodes.empty()) {
    ++s.affected_epoch;
    s.affected.clear();
    for (std::size_t e = 0; e < s.frontier_nodes.size(); ++e) {
      const NodeId u = s.frontier_nodes[e];
      const uint64_t* fresh =
          &s.frontier_fresh[e * static_cast<std::size_t>(m) * W];
      const auto edges = graph.OutEdges(u);
      for (std::size_t k = 0; k < edges.size(); ++k) {
        const EdgeId eid = graph.OutEdgeId(u, k);
        uint64_t mask[W];
        uint64_t mask_any = 0;
        for (int g = 0; g < W; ++g) {
          mask[g] = blocks[g]->edge_mask[eid];
          mask_any |= mask[g];
        }
        if (mask_any == 0) continue;
        const NodeId to = edges[k].to;
        PackedTouch(s, to);
        uint64_t* dto = &s.desire[idx(to)];
        uint64_t total[W] = {};
        for (int i = 0; i < m; ++i) {
          for (int g = 0; g < W; ++g) {
            const uint64_t delta =
                fresh[i * W + g] & mask[g] & ~dto[i * kStride + g];
            dto[i * kStride + g] |= delta;
            total[g] |= delta;
          }
        }
        uint64_t total_any = 0;
        for (int g = 0; g < W; ++g) total_any |= total[g];
        if (total_any == 0) continue;
        uint64_t* gw = &s.grew[static_cast<std::size_t>(to) * kStride];
        if (s.affected_stamp[to] != s.affected_epoch) {
          s.affected_stamp[to] = s.affected_epoch;
          s.affected.push_back(to);
          for (int g = 0; g < W; ++g) gw[g] = total[g];
        } else {
          for (int g = 0; g < W; ++g) gw[g] |= total[g];
        }
      }
    }

    s.next_nodes.clear();
    s.next_fresh.clear();
    for (const NodeId v : s.affected) {
      const uint64_t* gw = &s.grew[static_cast<std::size_t>(v) * kStride];
      const uint64_t* dv = &s.desire[idx(v)];
      uint64_t* av = &s.adopted[idx(v)];
      uint64_t fresh_acc[kMaxPackedItems * W] = {};
      uint64_t changed_any = 0;
      // Every grown lane matches exactly one (desired, adopted) pair;
      // enumerate pairs in the canonical build order, keeping the running
      // pair index aligned even over skipped desire masks. Updating
      // `adopted` in place is safe: submask enumeration is descending, so
      // a lane's post-update set (a strict superset of its old one) was
      // enumerated before and can never re-match.
      std::size_t pair = 0;
      const ItemSet all = FullSet(m);
      for (ItemSet d = 0;; d = static_cast<ItemSet>(d + 1)) {
        uint64_t eq_d[W];
        for (int g = 0; g < W; ++g) eq_d[g] = gw[g];
        for (int i = 0; i < m; ++i) {
          const bool has = (d >> i) & 1u;
          for (int g = 0; g < W; ++g) {
            const uint64_t w = dv[i * kStride + g];
            eq_d[g] &= has ? w : ~w;
          }
        }
        uint64_t d_any = 0;
        for (int g = 0; g < W; ++g) d_any |= eq_d[g];
        if (d_any == 0) {
          pair += std::size_t{1} << SetSize(d);
        } else {
          ItemSet a = d;
          for (;;) {
            uint64_t eq[W];
            for (int g = 0; g < W; ++g) eq[g] = eq_d[g];
            for (int i = 0; i < m; ++i) {
              const bool has = (a >> i) & 1u;
              for (int g = 0; g < W; ++g) {
                const uint64_t w = av[i * kStride + g];
                eq[g] &= has ? w : ~w;
              }
            }
            uint64_t eq_any = 0;
            for (int g = 0; g < W; ++g) eq_any |= eq[g];
            if (eq_any != 0) {
              uint64_t changed[W];
              uint64_t c_any = 0;
              for (int g = 0; g < W; ++g) {
                changed[g] = eq[g] & blocks[g]->adopt_changed[pair];
                c_any |= changed[g];
              }
              if (c_any != 0) {
                changed_any |= c_any;
                for (int i = 0; i < m; ++i) {
                  if ((a >> i) & 1u) continue;  // progressive: i stays
                  for (int g = 0; g < W; ++g) {
                    const uint64_t add =
                        blocks[g]->adopt_plane[pair * m + i] & changed[g];
                    av[i * kStride + g] |= add;
                    fresh_acc[i * W + g] |= add;
                  }
                }
              }
            }
            ++pair;
            if (a == 0) break;
            a = static_cast<ItemSet>((a - 1) & d);
          }
        }
        if (d == all) break;
      }
      if (changed_any != 0) {
        s.next_nodes.push_back(v);
        s.next_fresh.insert(s.next_fresh.end(), fresh_acc,
                            fresh_acc + static_cast<std::size_t>(m) * W);
      }
    }
    s.frontier_nodes.swap(s.next_nodes);
    s.frontier_fresh.swap(s.next_fresh);
  }

  // Aggregate per-lane outcomes over touched nodes in ascending node
  // order — the canonical order the scalar path sums in.
  for (int g = 0; g < W; ++g) out[g].Reset(m);
  std::sort(s.touched.begin(), s.touched.end());
  for (const NodeId v : s.touched) {
    const uint64_t* dv = &s.desire[idx(v)];
    const uint64_t* av = &s.adopted[idx(v)];
    for (int g = 0; g < W; ++g) {
      uint64_t any_desire = 0;
      for (int i = 0; i < m; ++i) any_desire |= dv[i * kStride + g];
      if (any_desire == 0) continue;
      uint64_t os = dv[0 * kStride + g];
      if (m > 1) os ^= dv[1 * kStride + g];
      for (uint64_t rest = os; rest != 0; rest &= rest - 1) {
        ++out[g].one_sided_01[std::countr_zero(rest)];
      }
      uint64_t act = 0;
      for (int i = 0; i < m; ++i) act |= av[i * kStride + g];
      for (uint64_t rest = act; rest != 0; rest &= rest - 1) {
        const int l = std::countr_zero(rest);
        ItemSet set = 0;
        for (int i = 0; i < m; ++i) {
          set |= static_cast<ItemSet>(((av[i * kStride + g] >> l) & 1u) << i);
        }
        out[g].welfare[l] +=
            blocks[g]->utility[(static_cast<std::size_t>(l) << m) | set];
        ++out[g].adopting_nodes[l];
        ForEachItem(set, [&](ItemId i) {
          ++out[g].adopters[static_cast<std::size_t>(i) * kPackedLanes + l];
        });
      }
    }
  }
}

}  // namespace internal
}  // namespace cwm

#endif  // CWM_SIMULATE_PACKED_KERNEL_INL_H_
