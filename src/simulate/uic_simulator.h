// Deterministic UIC diffusion inside one possible world (§3).
//
// Semantics implemented exactly as the paper defines them:
//  * t = 1: seeds' desire sets are initialized from the allocation; each
//    seed adopts its utility-maximizing non-negative bundle.
//  * t >= 2: every item newly adopted by u' at t-1 is offered along each
//    *live* out-edge (u', u) (one shared edge world for all items); u adds
//    offered items to its desire set and re-solves
//    argmax { U(T) : A(u,t-1) ⊆ T ⊆ R(u,t), U(T) >= 0 }.
//  * Adoption is progressive; newly adopted items propagate exactly once.
//  * The process stops when no adoption changes.
//
// The simulator keeps n-sized scratch arrays with epoch stamps, so running
// thousands of Monte-Carlo worlds costs O(touched) per world, not O(n).
#ifndef CWM_SIMULATE_UIC_SIMULATOR_H_
#define CWM_SIMULATE_UIC_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "model/allocation.h"
#include "model/utility.h"
#include "simulate/world.h"

namespace cwm {

class WorldSnapshot;

/// Outcome of one deterministic possible-world diffusion.
struct WorldOutcome {
  /// rho_w(S): sum over nodes of the utility of their final adoption set.
  /// Summed in ascending node order — the canonical aggregation order
  /// every evaluation engine (lazy, snapshot, packed) reproduces exactly,
  /// so the double is bit-identical across all of them.
  double welfare = 0.0;
  /// Number of nodes whose final adoption set contains item i.
  std::vector<uint64_t> adopters_per_item;
  /// Number of nodes with a non-empty adoption set.
  uint64_t adopting_nodes = 0;
  /// Number of nodes whose *desire* set contains exactly one of items
  /// {0, 1}. The Balance-C baseline maximizes n minus this count (nodes
  /// exposed to both ideas or to neither); meaningless for m != 2.
  uint64_t one_sided_exposure_01 = 0;
};

/// Reusable single-thread UIC diffusion engine for one graph + utility
/// configuration. Not thread-safe; create one per worker.
class UicSimulator {
 public:
  UicSimulator(const Graph& graph, const UtilityConfig& config);

  /// Runs the diffusion of `allocation` in world (`edges`, `utilities`).
  WorldOutcome RunWorld(const Allocation& allocation, const EdgeWorld& edges,
                        const WorldUtilityTable& utilities);

  /// Runs the diffusion of `allocation` in a materialized world
  /// (simulate/world_pool.h). Bit-identical to the lazy overload for the
  /// same world: the snapshot's live edges are stored in canonical order,
  /// so the traversal touches nodes in exactly the same sequence.
  WorldOutcome RunWorld(const Allocation& allocation,
                        const WorldSnapshot& snapshot);

  /// Influence spread special case: number of nodes reachable from `seeds`
  /// via live edges (the sigma(S) of classic IC; used by Lemma 2 style
  /// bounds and tests).
  uint64_t ReachableCount(const std::vector<NodeId>& seeds,
                          const EdgeWorld& edges);

 private:
  /// Shared diffusion engine. `live_out(u, visit)` calls visit(NodeId to)
  /// for every live out-neighbour of `u` in canonical edge order; the two
  /// RunWorld overloads differ only in how they enumerate live edges.
  template <typename LiveOutFn>
  WorldOutcome RunDiffusion(const Allocation& allocation,
                            const WorldUtilityTable& utilities,
                            const LiveOutFn& live_out);

  /// Ensures node scratch entries are current for this run.
  void Touch(NodeId v);

  const Graph& graph_;
  const UtilityConfig& config_;

  uint32_t epoch_ = 0;
  std::vector<uint32_t> stamp_;    // last epoch touching the node
  std::vector<ItemSet> desire_;    // R(v, t)
  std::vector<ItemSet> adopted_;   // A(v, t)
  std::vector<NodeId> touched_;    // nodes touched this world

  // Frontier entries: (node, items newly adopted last round).
  struct FrontierEntry {
    NodeId node;
    ItemSet fresh;
  };
  std::vector<FrontierEntry> frontier_, next_frontier_;
  std::vector<NodeId> affected_;       // nodes whose desire grew this round
  std::vector<uint32_t> affected_stamp_;
  uint32_t affected_epoch_ = 0;
};

}  // namespace cwm

#endif  // CWM_SIMULATE_UIC_SIMULATOR_H_
