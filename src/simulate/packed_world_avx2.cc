// AVX2-compiled instantiation of the wide kernel arm. This translation
// unit is added to the build (with -mavx2 and CWM_HAVE_AVX2_TU defined on
// packed_world.cc) only when the toolchain targets x86 and accepts the
// flag; PackedDiffusion::Run dispatches here after a runtime
// __builtin_cpu_supports("avx2") check. The source is byte-for-byte the
// same template the portable wide arm runs — the compiler merely gets to
// fuse the kPackedGroup-wide bitwise lane updates into 256-bit ops — so
// results are identical with or without it.
#include "simulate/packed_kernel_inl.h"

namespace cwm {
namespace internal {

void RunPackedKernelAvx2(PackedScratch& s, const Graph& graph,
                         const PackedWorldSet::Block* const* blocks,
                         const Allocation& allocation, PackedOutcome* out) {
  RunPackedKernel<kPackedGroup>(s, graph, blocks, allocation, out);
}

}  // namespace internal
}  // namespace cwm
