// Word-parallel possible worlds: 64 diffusions per machine word.
//
// The batched estimator (simulate/estimator.h) made *candidates* cheap by
// materializing each world once; this layer makes *worlds* cheap. A
// PackedWorldSet re-lays-out the same live-edge outcomes the WorldSnapshot
// CSR stores — derived from the identical WorldEdgeSeedOf / WorldNoiseRngOf
// streams (simulate/world.h) — into an SoA of per-edge lane masks: one
// uint64_t per graph edge per block, bit l set iff the edge is live in the
// block's lane-l world. The UIC frontier BFS then runs as bitwise
// AND/OR/ANDN over all 64 worlds of a block simultaneously, with per-node
// desire/adoption state held as one word per item.
//
// Lane order is the estimator's chunk stride: lane l of block b of chunk c
// is world `c + (b*64 + l) * chunks`, i.e. the consecutive worlds of chunk
// c in the exact order the scalar chunk loop visits them. Draining a
// block's per-lane outcomes lane 0..lane_count-1, blocks in order,
// therefore reproduces the scalar path's floating-point accumulation order
// bit for bit (the scalar welfare sum itself is canonicalized to ascending
// node order inside UicSimulator::RunDiffusion for the same reason).
//
// Per-world noise vectorizes through precomputation: each block carries
// its 64 lanes' utility tables plus, for every (desired, adopted) pair
// with adopted ⊆ desired, per-item *transition bit-planes* — bit l of
// plane i says item i is in BestAdoption_l(desired, adopted). The kernel
// resolves the §3 adoption argmax for all 64 worlds of a node with a few
// mask intersections instead of 64 table searches. 3^m pairs are stored
// per block, which is why packing is gated at kMaxPackedItems items (the
// paper's configurations have m <= 5).
//
// The optional wide arm groups kPackedGroup consecutive blocks of one
// chunk and runs their (independent, purely bitwise) state updates
// jointly, compiled with AVX2 behind a runtime dispatch where available.
// Outcomes are still drained block by block in lane order, so the wide,
// portable, and scalar paths are all bit-identical — see docs/kernel.md
// for the full determinism argument.
#ifndef CWM_SIMULATE_PACKED_WORLD_H_
#define CWM_SIMULATE_PACKED_WORLD_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "model/allocation.h"
#include "model/utility.h"

namespace cwm {

/// Worlds per block: one lane per bit of a machine word.
inline constexpr int kPackedLanes = 64;

/// Blocks the wide kernel arm processes jointly (256 worlds per pass).
inline constexpr int kPackedGroup = 4;

/// Maximum item count the packed kernel supports: the per-block transition
/// tables enumerate 3^m (desired, adopted) pairs, so packing is gated well
/// below the ItemSet limit of 16. Estimators fall back to the scalar
/// snapshot path above this (transparently — results are identical).
inline constexpr int kMaxPackedItems = 6;

/// The packed re-layout of one estimator's world sequence. Immutable after
/// construction; safe to share across threads (and across estimators, via
/// WorldPoolStore::GetOrBuildPacked).
class PackedWorldSet {
 public:
  /// One block: 64 consecutive worlds of one chunk, packed lane-per-bit.
  struct Block {
    /// Worlds actually present (1..64; the chunk's tail block is partial).
    int lane_count = 0;
    /// Low `lane_count` bits set; every state/mask word is ⊆ lane_mask.
    uint64_t lane_mask = 0;
    /// SoA edge masks: edge_mask[e] bit l = edge e live in lane l's world.
    std::vector<uint64_t> edge_mask;
    /// Lane-major per-world utility tables: utility[(l << m) | s] = U_l(s).
    std::vector<double> utility;
    /// Transition bit-planes, indexed pair * m + i where `pair` counts
    /// (d, a ⊆ d) pairs in canonical order (d ascending; a in
    /// ForEachSubset order, d down to 0): bit l = item i in
    /// BestAdoption_l(d, a).
    std::vector<uint64_t> adopt_plane;
    /// adopt_changed[pair] bit l = BestAdoption_l(d, a) != a.
    std::vector<uint64_t> adopt_changed;

    std::size_t bytes() const {
      return edge_mask.capacity() * sizeof(uint64_t) +
             utility.capacity() * sizeof(double) +
             adopt_plane.capacity() * sizeof(uint64_t) +
             adopt_changed.capacity() * sizeof(uint64_t);
    }
  };

  /// Packs worlds [0, num_worlds) of the sequence derived from `seed`
  /// (simulate/world.h streams), laid out for a `chunks`-way chunk-strided
  /// evaluation. Building parallelizes over blocks with `num_threads`
  /// workers; block content never depends on the thread count.
  PackedWorldSet(const Graph& graph, const UtilityConfig& config,
                 uint64_t seed, int num_worlds, std::size_t chunks,
                 unsigned num_threads);

  /// Incremental repack after a delta: `prior` is the same identity
  /// (seed, num_worlds, chunks) packed against the graph `graph` was
  /// derived from, and every forward edge below `first_dirty_edge` is
  /// position-, endpoint- and probability-identical between the two
  /// graphs (delta/overlay.h). Edge-mask words below the watermark are
  /// copied — the lane coins are keyed by positional EdgeId, so they
  /// cannot differ — and only edges at or above it re-flip per lane. The
  /// noise-derived planes (utility, adoption transitions) are
  /// graph-independent and copy verbatim. Bit-identical to the cold
  /// constructor on `graph`.
  PackedWorldSet(const Graph& graph, const PackedWorldSet& prior,
                 uint64_t seed, EdgeId first_dirty_edge,
                 unsigned num_threads);

  /// The blocks of chunk `c`, in world order.
  std::span<const Block> ChunkBlocks(std::size_t c) const {
    return chunk_blocks_[c];
  }

  int num_worlds() const { return num_worlds_; }
  std::size_t chunks() const { return chunk_blocks_.size(); }
  std::size_t bytes() const { return bytes_; }

  /// Deterministic footprint estimate for the budget gate: the set's own
  /// blocks plus the per-chunk kernel scratch (desire/adoption words for
  /// every node). Estimators fall back to the scalar snapshot path when
  /// this exceeds the snapshot budget — all-or-nothing, unlike the
  /// snapshot pool's prefix cutoff, because lane packing cannot partially
  /// materialize a block.
  static std::size_t EstimateBytes(const Graph& graph, int num_items,
                                   int num_worlds, std::size_t chunks);

 private:
  int num_worlds_;
  std::vector<std::vector<Block>> chunk_blocks_;
  std::size_t bytes_ = 0;
};

/// Per-lane outcomes of one block's diffusion — the packed analogue of
/// WorldOutcome (simulate/uic_simulator.h), one entry per lane.
struct PackedOutcome {
  double welfare[kPackedLanes];
  uint32_t adopting_nodes[kPackedLanes];
  uint32_t one_sided_01[kPackedLanes];
  /// adopters[i * kPackedLanes + l]: nodes adopting item i in lane l.
  std::vector<uint32_t> adopters;

  void Reset(int num_items);
};

namespace internal {

/// Kernel scratch: epoch-stamped per-node state sized for the widest arm
/// (stride kPackedGroup regardless of the arm actually running, so the
/// wide kernel reads contiguous 4-word groups).
struct PackedScratch {
  int num_items = 0;
  uint32_t epoch = 0;
  std::vector<uint32_t> stamp;        // last epoch touching the node
  std::vector<uint64_t> desire;       // (v * m + i) * kPackedGroup + g
  std::vector<uint64_t> adopted;      // same layout
  std::vector<uint64_t> grew;         // v * kPackedGroup + g
  std::vector<NodeId> touched;
  std::vector<uint32_t> affected_stamp;
  uint32_t affected_epoch = 0;
  std::vector<NodeId> affected;
  std::vector<NodeId> frontier_nodes, next_nodes;
  std::vector<uint64_t> frontier_fresh, next_fresh;  // m * W words per entry
  std::vector<uint32_t> pair_base;  // pair index of (d, a = d), per d
};

/// The wide kernel arm compiled in the AVX2 translation unit
/// (packed_world_avx2.cc). Only linked — and only called — when the build
/// defines CWM_HAVE_AVX2_TU and the CPU reports AVX2 at runtime.
void RunPackedKernelAvx2(PackedScratch& s, const Graph& graph,
                         const PackedWorldSet::Block* const* blocks,
                         const Allocation& allocation, PackedOutcome* out);

}  // namespace internal

/// Reusable word-parallel diffusion engine for one graph + utility
/// configuration. Not thread-safe; create one per worker (the estimator
/// creates one per chunk).
class PackedDiffusion {
 public:
  PackedDiffusion(const Graph& graph, const UtilityConfig& config);

  /// Runs `allocation` through `count` consecutive blocks of one chunk
  /// (count == 1, or count == kPackedGroup for the wide arm — the wide
  /// call dispatches to the AVX2 kernel when the CPU has it) and fills
  /// out[0..count) with per-lane outcomes. All arms are bit-identical.
  void Run(const PackedWorldSet::Block* const* blocks, int count,
           const Allocation& allocation, PackedOutcome* out);

 private:
  const Graph& graph_;
  internal::PackedScratch scratch_;
};

/// True when the wide kernel arm dispatches to the AVX2-compiled
/// translation unit at runtime (x86 with AVX2, compiler support built
/// in). Informational: results never depend on it.
bool PackedAvx2Active();

}  // namespace cwm

#endif  // CWM_SIMULATE_PACKED_WORLD_H_
