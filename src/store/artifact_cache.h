// Content-addressed artifact cache for graphs and RR collections.
//
// Every artifact is keyed by a hash of its *full build recipe* — for a
// graph, the canonical string rendering of everything that determines its
// bytes (network family, scale knobs, seeds, edge-probability model,
// loader options, source-file content hash for edge lists, and the format
// version); for an RR collection, the tuple (graph content hash, sampler
// source id, pipeline seed, era start, format version). Identical recipes
// therefore always map to identical bytes, so a hit is bit-equivalent to
// a rebuild — the determinism contract of the scenario engine survives
// caching unchanged.
//
// Layout under the root (CWM_CACHE_DIR):
//
//   <root>/graphs/<hex16>.cwg       binary graph (store/graph_store.h)
//   <root>/graphs/<hex16>.recipe    the recipe string (collision guard +
//                                   human-readable `cwm_data list`)
//   <root>/rr/<hex16>.cwr           RR collection (store/rr_store.h)
//   <root>/quarantine/              entries that failed to open (torn
//                                   write, bit rot): moved aside — never
//                                   deleted in the serving path — so the
//                                   rebuild can proceed and `cwm_data
//                                   doctor` can examine the evidence
//
// Degraded-mode contract (docs/robustness.md): a read failure quarantines
// the entry and the caller rebuilds/resamples from the recipe — bytes
// identical to a healthy hit, because RNG streams never depend on the
// cache. A write failure (ENOSPC, EROFS, permissions) flips the cache to
// read-only for the rest of the process; every later store is skipped and
// allocations continue uncached. Both paths count store.degraded.* /
// cache.quarantined metrics.
//
// Writes are atomic (temp + rename), so concurrent sweep workers may race
// on a key safely: both compute identical bytes and the loser's rename
// simply replaces the file with identical content. Hits are validated
// (recipe string for graphs, header provenance for RR) so a hash
// collision degrades to a miss, never to wrong data.
#ifndef CWM_STORE_ARTIFACT_CACHE_H_
#define CWM_STORE_ARTIFACT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "store/rr_store.h"
#include "support/status.h"

namespace cwm {

/// Hit/miss counters; a snapshot is attached to SweepResult and printed
/// by cwm_run.
struct CacheStats {
  uint64_t graph_hits = 0;
  uint64_t graph_misses = 0;
  uint64_t rr_hits = 0;
  uint64_t rr_misses = 0;
  uint64_t bytes_written = 0;
  uint64_t quarantined = 0;     ///< unreadable entries moved aside
  bool writes_disabled = false; ///< a write failed; cache is read-only now
};

/// One cache entry as reported by List().
struct CacheEntry {
  std::string path;
  bool is_graph = false;  ///< false = RR collection
  uint64_t bytes = 0;
  int64_t mtime_seconds = 0;  ///< for GC ordering
  std::string recipe;         ///< graphs: recipe string; rr: provenance text
};

/// Outcome of a Gc() pass.
struct GcResult {
  uint64_t bytes_before = 0;
  uint64_t bytes_after = 0;
  std::size_t files_removed = 0;
};

/// A directory of content-addressed artifacts. Thread-safe: file
/// operations are per-key and atomic; stats are mutex-guarded.
class ArtifactCache {
 public:
  /// Opens (creating directories if needed) a cache rooted at `root`.
  static StatusOr<std::unique_ptr<ArtifactCache>> Open(std::string root);

  const std::string& root() const { return root_; }

  /// Returns the cached graph for `recipe` (zero-copy mmap open), or
  /// builds it with `build`, stores it, and returns the built graph.
  /// A structurally invalid or recipe-mismatched entry is rebuilt in
  /// place. Build failures are returned verbatim and nothing is stored.
  /// If `content_hash` is non-null it receives GraphContentHash of the
  /// returned graph — from the .cwg header on a hit (O(1), no edge
  /// page-in) and computed once on a miss.
  StatusOr<Graph> GetOrBuildGraph(
      const std::string& recipe,
      const std::function<StatusOr<Graph>()>& build,
      uint64_t* content_hash = nullptr);

  /// Path a graph with `recipe` would be stored at (for cwm_data).
  std::string GraphPathFor(const std::string& recipe) const;

  /// Loads the RR era stored under `recipe_hash` whose header matches
  /// (`expect`, num_nodes) exactly; nullopt on absence or mismatch.
  std::optional<RrEraData> LoadRrEra(uint64_t recipe_hash,
                                     const RrProvenance& expect,
                                     std::size_t num_nodes);

  /// Stores `rr` under `recipe_hash`, replacing any previous entry (eras
  /// only ever grow, so replacement is monotone).
  Status StoreRrEra(uint64_t recipe_hash, const RrProvenance& provenance,
                    const RrCollection& rr);

  /// All entries currently in the cache (unordered).
  std::vector<CacheEntry> List() const;

  /// Deletes oldest-first (by mtime) until total size <= max_bytes.
  /// Also reclaims stale `*.tmp.*` files (> 1 hour old) left behind by
  /// writers killed mid-publication, and quarantined entries older than
  /// the same threshold (doctor has had its chance to look).
  GcResult Gc(uint64_t max_bytes);

  /// Moves an unreadable entry (and a graph's .recipe sidecar) into
  /// <root>/quarantine/ so a rebuild can publish a fresh one and doctor
  /// can examine the bytes; deletes it if the move itself fails. Counts
  /// cache.quarantined. Public for `cwm_data doctor`.
  Status QuarantineEntry(const std::string& path);

  std::string QuarantineDir() const;

  /// False once a write failure flipped the cache to read-only.
  bool writes_enabled() const {
    return writes_enabled_.load(std::memory_order_relaxed);
  }

  CacheStats stats() const;

 private:
  explicit ArtifactCache(std::string root) : root_(std::move(root)) {}

  std::string RrPathFor(uint64_t recipe_hash) const;

  /// First write failure wins: logs once, flips writes_enabled_ off,
  /// counts store.degraded.cache_write_off.
  void DisableWrites(const Status& cause);

  std::string root_;
  std::atomic<bool> writes_enabled_{true};
  mutable std::mutex mutex_;
  CacheStats stats_;
};

/// Folds an RR sampling identity into the single cache key used by the
/// RR pipeline: graph content, sampler source, seed, era start, and the
/// on-disk format version.
uint64_t RrRecipeHash(uint64_t graph_hash, uint64_t source_id,
                      uint64_t sample_seed, uint64_t era_start);

}  // namespace cwm

#endif  // CWM_STORE_ARTIFACT_CACHE_H_
