// Binary RR-collection persistence (.cwr).
//
// An RrCollection's flat CSR (offsets, weights, members) is written
// verbatim after a header carrying the full sampling provenance: the
// content hash of the graph sampled from, the pipeline seed, the sampler
// source id, and the era start index (the global index of sample 0 in
// this collection — rrset/rr_pipeline.h). Because the pipeline derives
// sample k purely from (seed, era_start + k), this tuple pins the
// collection's bytes exactly, independent of thread count.
//
// Open is one mmap: the era's arrays are returned as spans aliasing the
// mapping (RrEraData pins it alive), so nothing is copied until samples
// are replayed into a collection. The inverted node->RR index is
// intentionally not persisted — RrCollection rebuilds it lazily in
// O(total members), and collections are usually extended after loading,
// which would invalidate it anyway.
#ifndef CWM_STORE_RR_STORE_H_
#define CWM_STORE_RR_STORE_H_

#include <memory>
#include <span>
#include <string>

#include "rrset/rr_collection.h"
#include "store/format.h"
#include "store/mapped_file.h"
#include "support/status.h"

namespace cwm {

/// The sampling identity of a stored RR collection; all fields must match
/// on open for the samples to be served (see RrFileHeader).
struct RrProvenance {
  uint64_t graph_hash = 0;
  uint64_t sample_seed = 0;
  uint64_t source_id = 0;
  uint64_t era_start = 0;

  bool operator==(const RrProvenance&) const = default;
};

/// A loaded .cwr file: flat array views plus provenance. `offsets` has
/// num_sets + 1 entries; set k spans members [offsets[k], offsets[k+1]).
/// The spans alias the read-only file mapping pinned by `mapping` —
/// nothing is copied out of the file, so serving a cached era costs one
/// mmap and the kernel pages members in as they are replayed.
struct RrEraData {
  std::size_t num_nodes = 0;
  RrProvenance provenance;
  /// Keep-alive for the mapping the spans below point into.
  std::shared_ptr<const MappedFile> mapping;
  std::span<const uint64_t> offsets;
  std::span<const double> weights;
  std::span<const NodeId> members;

  std::size_t num_sets() const { return weights.size(); }
};

/// Writes `rr` to `path` atomically with `provenance` in the header.
Status WriteRrFile(const RrCollection& rr, const RrProvenance& provenance,
                   const std::string& path);

/// Opens a .cwr file. If `expect` is non-null, the header's provenance
/// and num_nodes must match it exactly (NotFound on mismatch — the entry
/// exists but is not the requested artifact).
StatusOr<RrEraData> OpenRrFile(const std::string& path,
                               const RrProvenance* expect = nullptr,
                               std::size_t expect_num_nodes = 0);

/// Header fields of a .cwr file without loading the payload.
StatusOr<RrFileHeader> ReadRrHeader(const std::string& path);

/// Full integrity check: structural validation plus the payload checksum.
Status VerifyRrFile(const std::string& path);

}  // namespace cwm

#endif  // CWM_STORE_RR_STORE_H_
