#include "store/rr_store.h"

#include <cstring>
#include <utility>

#include "store/mapped_file.h"
#include "support/failpoint.h"

namespace cwm {

namespace {

struct RrLayout {
  std::size_t offsets_bytes;
  std::size_t weights_bytes;
  std::size_t members_bytes;
  std::size_t payload_bytes;
};

RrLayout LayoutFor(uint64_t num_sets, uint64_t num_members) {
  RrLayout layout;
  layout.offsets_bytes = (num_sets + 1) * sizeof(uint64_t);
  layout.weights_bytes = num_sets * sizeof(double);
  layout.members_bytes = num_members * sizeof(NodeId);
  layout.payload_bytes =
      layout.offsets_bytes + layout.weights_bytes + layout.members_bytes;
  return layout;
}

struct OpenedRr {
  MappedFile mapping;
  RrFileHeader header;
  const uint64_t* offsets = nullptr;
  const double* weights = nullptr;
  const NodeId* members = nullptr;
};

StatusOr<OpenedRr> MapAndValidate(const std::string& path) {
  CWM_FAILPOINT("store.rr.validate");
  StatusOr<MappedFile> mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  OpenedRr opened;
  opened.mapping = std::move(mapped).value();

  if (opened.mapping.size() < sizeof(RrFileHeader)) {
    return Status::Corruption(path + ": truncated header (" +
                              std::to_string(opened.mapping.size()) +
                              " bytes)");
  }
  std::memcpy(&opened.header, opened.mapping.data(), sizeof(RrFileHeader));
  const RrFileHeader& header = opened.header;
  if (header.magic != kRrMagic) {
    return Status::Corruption(path +
                              ": not a cwm RR-collection file (bad magic)");
  }
  if (header.endian != kEndianTag) {
    return Status::Corruption(path + ": wrong byte order");
  }
  if (header.version != kFormatVersion) {
    return Status::Corruption(
        path + ": format version " + std::to_string(header.version) +
        " (this build reads " + std::to_string(kFormatVersion) + ")");
  }
  // RR ids are 32-bit and members are 4-byte NodeIds; bounding the counts
  // keeps every LayoutFor product far from 64-bit overflow (a crafted
  // huge count could otherwise wrap payload_bytes to match a tiny file).
  if (header.num_sets > (1ull << 32) || header.num_members > (1ull << 40) ||
      header.num_nodes > (1ull << 32)) {
    return Status::Corruption(path + ": implausible set/member count");
  }
  const RrLayout layout = LayoutFor(header.num_sets, header.num_members);
  if (header.payload_bytes != layout.payload_bytes ||
      opened.mapping.size() != sizeof(RrFileHeader) + layout.payload_bytes) {
    return Status::Corruption(path + ": truncated or oversized payload");
  }

  const std::byte* p = opened.mapping.data() + sizeof(RrFileHeader);
  opened.offsets = reinterpret_cast<const uint64_t*>(p);
  p += layout.offsets_bytes;
  opened.weights = reinterpret_cast<const double*>(p);
  p += layout.weights_bytes;
  opened.members = reinterpret_cast<const NodeId*>(p);

  if (opened.offsets[0] != 0) {
    return Status::Corruption(path + ": rr_offsets does not start at 0");
  }
  for (uint64_t k = 0; k < header.num_sets; ++k) {
    if (opened.offsets[k + 1] < opened.offsets[k]) {
      return Status::Corruption(path + ": rr_offsets not monotone at " +
                                std::to_string(k));
    }
  }
  if (opened.offsets[header.num_sets] != header.num_members) {
    return Status::Corruption(path +
                              ": rr_offsets does not end at num_members");
  }
  for (uint64_t i = 0; i < header.num_members; ++i) {
    if (opened.members[i] >= header.num_nodes) {
      return Status::Corruption(path + ": member node id out of range at " +
                                std::to_string(i));
    }
  }
  // Weights feed straight into RrCollection::Add, whose CWM_CHECK would
  // abort the process; validating here turns a corrupt cache entry into
  // a miss instead. (NaN fails both comparisons.)
  for (uint64_t k = 0; k < header.num_sets; ++k) {
    if (!(opened.weights[k] >= 0.0 && opened.weights[k] <= 1.0 + 1e-9)) {
      return Status::Corruption(path + ": weight out of [0,1] at " +
                                std::to_string(k));
    }
  }
  return opened;
}

}  // namespace

Status WriteRrFile(const RrCollection& rr, const RrProvenance& provenance,
                   const std::string& path) {
  RrFileHeader header;
  header.num_nodes = rr.num_nodes();
  header.num_sets = rr.size();
  header.num_members = rr.TotalMembers();
  header.graph_hash = provenance.graph_hash;
  header.sample_seed = provenance.sample_seed;
  header.source_id = provenance.source_id;
  header.era_start = provenance.era_start;

  const auto offsets = rr.RawOffsets();
  const auto weights = rr.RawWeights();
  const auto members = rr.RawMembers();
  const ByteSection payload[] = {
      {offsets.data(), offsets.size_bytes()},
      {weights.data(), weights.size_bytes()},
      {members.data(), members.size_bytes()},
  };
  uint64_t checksum = kFnv1aBasis;
  header.payload_bytes = 0;
  for (const ByteSection& section : payload) {
    checksum = Fnv1a64(section.data, section.size, checksum);
    header.payload_bytes += section.size;
  }
  header.checksum = checksum;

  const ByteSection sections[] = {
      {&header, sizeof(header)}, payload[0], payload[1], payload[2],
  };
  return WriteFileAtomic(path, sections);
}

StatusOr<RrEraData> OpenRrFile(const std::string& path,
                               const RrProvenance* expect,
                               std::size_t expect_num_nodes) {
  StatusOr<OpenedRr> opened = MapAndValidate(path);
  if (!opened.ok()) return opened.status();
  OpenedRr& o = opened.value();

  RrEraData data;
  data.num_nodes = o.header.num_nodes;
  data.provenance = {.graph_hash = o.header.graph_hash,
                     .sample_seed = o.header.sample_seed,
                     .source_id = o.header.source_id,
                     .era_start = o.header.era_start};
  if (expect != nullptr &&
      (data.provenance != *expect || data.num_nodes != expect_num_nodes)) {
    return Status::NotFound(path + ": provenance mismatch (recipe-hash "
                            "collision or stale artifact)");
  }
  // Zero-copy: the spans alias the mapping, which RrEraData keeps alive.
  // (The section pointers survive moving the MappedFile — the mapped
  // region itself never moves.)
  data.offsets = {o.offsets,
                  static_cast<std::size_t>(o.header.num_sets) + 1};
  data.weights = {o.weights, static_cast<std::size_t>(o.header.num_sets)};
  data.members = {o.members,
                  static_cast<std::size_t>(o.header.num_members)};
  data.mapping = std::make_shared<const MappedFile>(std::move(o.mapping));
  return data;
}

StatusOr<RrFileHeader> ReadRrHeader(const std::string& path) {
  StatusOr<MappedFile> mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  if (mapped.value().size() < sizeof(RrFileHeader)) {
    return Status::Corruption(path + ": truncated header");
  }
  RrFileHeader header;
  std::memcpy(&header, mapped.value().data(), sizeof(header));
  if (header.magic != kRrMagic) {
    return Status::Corruption(path +
                              ": not a cwm RR-collection file (bad magic)");
  }
  return header;
}

Status VerifyRrFile(const std::string& path) {
  StatusOr<OpenedRr> opened = MapAndValidate(path);
  if (!opened.ok()) return opened.status();
  const OpenedRr& o = opened.value();
  const std::byte* payload = o.mapping.data() + sizeof(RrFileHeader);
  const uint64_t checksum = Fnv1a64(payload, o.header.payload_bytes);
  if (checksum != o.header.checksum) {
    return Status::Corruption(path + ": payload checksum mismatch");
  }
  return Status::OK();
}

}  // namespace cwm
