// Binary artifact formats: shared constants and hashing primitives.
//
// Two file kinds share the same skeleton — a fixed 64/96-byte header
// (magic, version, endian tag, element counts, FNV-1a payload checksum,
// provenance) followed by 8-byte-aligned flat sections that mirror the
// in-memory CSR arrays exactly:
//
//   .cwg  Graph          out_offsets | out_edges | in_offsets | in_edges
//   .cwr  RrCollection   rr_offsets  | rr_weights | rr_members
//
// Because the payload *is* the in-memory representation, a graph opens
// zero-copy: the arrays are pointed at the mapping (store/graph_store.h)
// and a multi-GB network is usable in milliseconds. Opens validate the
// header and the structural invariants (offset monotonicity, bounds);
// the full payload checksum is verified only by the Verify* entry points
// and `cwm_data verify`, so hot-path opens stay O(num_nodes).
//
// Bump kFormatVersion on any layout change: the version is folded into
// every cache recipe hash (store/artifact_cache.h), so stale artifacts
// are never misread — they simply stop being cache hits — and CI keys its
// persisted cache directory on this header's hash.
#ifndef CWM_STORE_FORMAT_H_
#define CWM_STORE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

#include "graph/graph.h"

namespace cwm {

/// Bump on any on-disk layout change (headers or section packing).
inline constexpr uint16_t kFormatVersion = 1;

/// 'CWMG' / 'CWMR' little-endian magics.
inline constexpr uint32_t kGraphMagic = 0x474D5743u;
inline constexpr uint32_t kRrMagic = 0x524D5743u;

/// Written as 0xFEFF by the producing machine; a consumer reading 0xFFFE
/// has the opposite byte order (we do not byte-swap — reject instead).
inline constexpr uint16_t kEndianTag = 0xFEFFu;

// The payload sections are raw memory images of these types; any change
// to them is a format change.
static_assert(sizeof(OutEdge) == 8 && std::is_trivially_copyable_v<OutEdge>);
static_assert(sizeof(InEdge) == 12 && std::is_trivially_copyable_v<InEdge>);
static_assert(sizeof(NodeId) == 4 && sizeof(uint64_t) == 8);

/// Fixed header of a .cwg graph file (64 bytes).
struct GraphFileHeader {
  uint32_t magic = kGraphMagic;
  uint16_t version = kFormatVersion;
  uint16_t endian = kEndianTag;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint64_t payload_bytes = 0;  ///< everything after this header
  uint64_t checksum = 0;       ///< FNV-1a64 of the payload bytes
  uint64_t recipe_hash = 0;    ///< build-recipe hash (0 = unknown/imported)
  /// GraphContentHash of the stored graph, persisted so warm cache opens
  /// can report provenance without paging in the edge sections (O(1)
  /// instead of O(edges)). Occupies a formerly reserved (always-zero)
  /// slot, so no version bump: 0 means "written by an older build —
  /// recompute from the payload".
  uint64_t content_hash = 0;
  uint64_t reserved = 0;
};
static_assert(sizeof(GraphFileHeader) == 64);
static_assert(std::is_trivially_copyable_v<GraphFileHeader>);

/// Fixed header of a .cwr RR-collection file (96 bytes). The provenance
/// block records the full sampling identity: the content hash of the
/// graph sampled from, the pipeline seed, the sampler source id, and the
/// global index of this era's first sample (rrset/rr_pipeline.h). All
/// four must match on open — a recipe-hash collision can therefore never
/// serve foreign samples.
struct RrFileHeader {
  uint32_t magic = kRrMagic;
  uint16_t version = kFormatVersion;
  uint16_t endian = kEndianTag;
  uint64_t num_nodes = 0;
  uint64_t num_sets = 0;     ///< RR sets, including empty ones
  uint64_t num_members = 0;  ///< total member entries
  uint64_t payload_bytes = 0;
  uint64_t checksum = 0;
  // Provenance (thread-count invariant by construction: the pipeline
  // derives sample k purely from (seed, k)).
  uint64_t graph_hash = 0;
  uint64_t sample_seed = 0;
  uint64_t source_id = 0;
  uint64_t era_start = 0;
  uint64_t reserved[2] = {0, 0};
};
static_assert(sizeof(RrFileHeader) == 96);
static_assert(std::is_trivially_copyable_v<RrFileHeader>);

/// FNV-1a 64-bit offset basis: the initial `state` for a fresh hash and
/// for every chained multi-section checksum in the store.
inline constexpr uint64_t kFnv1aBasis = 0xcbf29ce484222325ull;

/// FNV-1a 64-bit over a byte range; chainable via `state`.
inline uint64_t Fnv1a64(const void* data, std::size_t size,
                        uint64_t state = kFnv1aBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state ^= p[i];
    state *= 0x100000001b3ull;
  }
  return state;
}

/// FNV-1a 64-bit of a string (recipe keys).
inline uint64_t Fnv1a64(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

/// Content hash of a graph: num_nodes plus the forward CSR arrays (the
/// reverse arrays are derived, so they are excluded). Identical for a
/// generated, loaded, or mmap-opened graph with the same edges — this is
/// the `graph_hash` that keys RR provenance and result-row provenance.
uint64_t GraphContentHash(const Graph& g);

/// `hash` rendered as 16 lowercase hex digits (cache file stems).
std::string HashToHex(uint64_t hash);

}  // namespace cwm

#endif  // CWM_STORE_FORMAT_H_
