// Binary graph persistence (.cwg): write once, mmap forever.
//
// WriteGraphFile lays the graph's four CSR arrays down verbatim after a
// fixed header (store/format.h), so OpenGraphFile can hand back a Graph
// whose spans point straight into the mapping — no parsing, no allocation
// proportional to the graph, no copies. Opening a multi-GB Orkut/Twitter
// image costs one mmap plus an O(num_nodes) structural validation; the
// kernel pages edges in lazily as algorithms touch them.
//
// Open-time validation (always): magic/version/endianness, section sizes
// vs. file size, and offset monotonicity/bounds for both CSR halves —
// everything checkable without paging in the edge sections. Edge
// *payloads* (endpoints, reverse edge ids, probabilities) are NOT
// validated on open: that is O(num_edges) and would fault in the whole
// file, defeating the lazy mmap. Trust boundary: files the ArtifactCache
// wrote itself are well-formed by construction; run VerifyGraphFile (or
// `cwm_data verify`) on anything imported or hand-delivered — it adds
// the full payload checksum plus per-edge endpoint/id range checks.
#ifndef CWM_STORE_GRAPH_STORE_H_
#define CWM_STORE_GRAPH_STORE_H_

#include <string>

#include "graph/graph.h"
#include "store/format.h"
#include "support/status.h"

namespace cwm {

/// Writes `g` to `path` atomically (temp file + rename). `recipe_hash`
/// is recorded as provenance (0 = unknown, e.g. ad-hoc imports).
/// `content_hash` is persisted in the header for O(1) provenance on warm
/// opens; pass 0 to have it computed here (one extra O(edges) pass the
/// caller may already have paid — see GraphContentHash).
Status WriteGraphFile(const Graph& g, const std::string& path,
                      uint64_t recipe_hash = 0, uint64_t content_hash = 0);

/// Opens a .cwg file zero-copy: the returned Graph aliases the mapping
/// (Graph::is_external()) and keeps it alive. Corruption/IOError on any
/// structural problem. If `content_hash` is non-null it receives the
/// header's stored GraphContentHash — without touching the edge payload —
/// or 0 for files written before the hash was persisted.
StatusOr<Graph> OpenGraphFile(const std::string& path,
                              uint64_t* content_hash = nullptr);

/// Header fields of a .cwg file without mapping the payload.
StatusOr<GraphFileHeader> ReadGraphHeader(const std::string& path);

/// Full integrity check: structural validation plus the payload checksum.
Status VerifyGraphFile(const std::string& path);

}  // namespace cwm

#endif  // CWM_STORE_GRAPH_STORE_H_
