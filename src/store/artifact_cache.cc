#include "store/artifact_cache.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <system_error>
#include <unordered_set>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/graph_store.h"
#include "store/mapped_file.h"
#include "support/failpoint.h"
#include "support/rng.h"

namespace cwm {

namespace fs = std::filesystem;

namespace {

// The per-instance CacheStats keep their per-sweep semantics (attached to
// SweepResult); these registry counters are the process-wide view the
// `--metrics` dump and stderr formatter read. Both are bumped at the same
// sites, so they can never disagree on what happened.
Counter& GraphHitsCounter() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("cache.graph_hits");
  return counter;
}
Counter& GraphMissesCounter() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("cache.graph_misses");
  return counter;
}
Counter& RrHitsCounter() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("cache.rr_hits");
  return counter;
}
Counter& RrMissesCounter() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("cache.rr_misses");
  return counter;
}
Counter& BytesWrittenCounter() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("cache.bytes_written");
  return counter;
}

std::optional<std::string> ReadSmallFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  return std::move(os).str();
}

int64_t MtimeSeconds(const fs::path& path, std::error_code& ec) {
  const auto t = fs::last_write_time(path, ec);
  if (ec) return 0;
  return std::chrono::duration_cast<std::chrono::seconds>(
             t.time_since_epoch())
      .count();
}

}  // namespace

uint64_t RrRecipeHash(uint64_t graph_hash, uint64_t source_id,
                      uint64_t sample_seed, uint64_t era_start) {
  uint64_t h = MixHash(graph_hash, source_id);
  h = MixHash(h, sample_seed);
  h = MixHash(h, era_start);
  return MixHash(h, kFormatVersion);
}

StatusOr<std::unique_ptr<ArtifactCache>> ArtifactCache::Open(
    std::string root) {
  if (root.empty()) {
    return Status::InvalidArgument("artifact cache root is empty");
  }
  CWM_FAILPOINT("cache.open");
  std::error_code ec;
  fs::create_directories(fs::path(root) / "graphs", ec);
  if (!ec) fs::create_directories(fs::path(root) / "rr", ec);
  if (ec) {
    return Status::IOError("cannot create cache directories under " + root +
                           ": " + ec.message());
  }
  // Touch every cache.* and degraded-mode counter so a `--metrics` dump
  // always carries the full family once a cache is open — a zero is data
  // ("no degradations"), an absent name is not.
  GraphHitsCounter();
  GraphMissesCounter();
  RrHitsCounter();
  RrMissesCounter();
  BytesWrittenCounter();
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("cache.quarantined");
  registry.GetCounter("store.degraded.events");
  registry.GetCounter("store.degraded.heap_loads");
  registry.GetCounter("store.degraded.graph_rebuilds");
  registry.GetCounter("store.degraded.rr_resamples");
  registry.GetCounter("store.degraded.cache_write_off");
  registry.GetCounter("store.degraded.cache_disabled");
  return std::unique_ptr<ArtifactCache>(new ArtifactCache(std::move(root)));
}

std::string ArtifactCache::GraphPathFor(const std::string& recipe) const {
  return (fs::path(root_) / "graphs" / (HashToHex(Fnv1a64(recipe)) + ".cwg"))
      .string();
}

std::string ArtifactCache::RrPathFor(uint64_t recipe_hash) const {
  return (fs::path(root_) / "rr" / (HashToHex(recipe_hash) + ".cwr"))
      .string();
}

StatusOr<Graph> ArtifactCache::GetOrBuildGraph(
    const std::string& recipe,
    const std::function<StatusOr<Graph>()>& build,
    uint64_t* content_hash) {
  const std::string path = GraphPathFor(recipe);
  const std::string recipe_path = path.substr(0, path.size() - 4) + ".recipe";

  std::error_code ec;
  if (fs::exists(path, ec)) {
    // The sidecar guards against recipe-hash collisions: a different
    // recipe under the same hash is treated as a miss and overwritten.
    const std::optional<std::string> stored = ReadSmallFile(recipe_path);
    if (stored.has_value() && *stored == recipe) {
      CWM_TRACE_SPAN("store.open_graph");
      uint64_t stored_hash = 0;
      StatusOr<Graph> opened = [&]() -> StatusOr<Graph> {
        if (Status s = CWM_FAILPOINT_STATUS("cache.graph.load"); !s.ok()) {
          return s;
        }
        return OpenGraphFile(path, &stored_hash);
      }();
      if (opened.ok()) {
        if (content_hash != nullptr) {
          // Old entries (pre-content-hash header) report 0: compute the
          // hash once here — the legacy O(edges) page-in — so callers
          // always get a usable value.
          *content_hash = stored_hash != 0
                              ? stored_hash
                              : GraphContentHash(opened.value());
        }
        GraphHitsCounter().Add(1);
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.graph_hits;
        return opened;
      }
      // Corrupt entry (torn disk, bit rot): move it aside and rebuild
      // from the recipe below — the rebuild is bit-identical by the
      // content-addressing contract.
      (void)QuarantineEntry(path);
      NoteDegradedEvent("store.degraded.graph_rebuilds");
    } else if (!stored.has_value()) {
      // The entry exists but its recipe sidecar is missing or unreadable:
      // without it a hit can never be validated, so the entry is dead
      // weight — quarantine and rebuild.
      (void)QuarantineEntry(path);
      NoteDegradedEvent("store.degraded.graph_rebuilds");
    }
  }

  CWM_TRACE_SPAN("store.build_graph");
  StatusOr<Graph> built = build();
  if (!built.ok()) return built.status();
  const uint64_t recipe_hash = Fnv1a64(recipe);
  const uint64_t built_hash = GraphContentHash(built.value());
  if (content_hash != nullptr) *content_hash = built_hash;
  Status write = writes_enabled()
                     ? CWM_FAILPOINT_STATUS("cache.graph.store")
                     : Status::FailedPrecondition("cache writes disabled");
  if (write.ok()) {
    write = WriteGraphFile(built.value(), path, recipe_hash, built_hash);
  }
  if (write.ok()) {
    const ByteSection section{recipe.data(), recipe.size()};
    const Status sidecar = WriteFileAtomic(recipe_path, {&section, 1});
    if (!sidecar.ok()) DisableWrites(sidecar);
  } else if (writes_enabled()) {
    DisableWrites(write);
  }
  // A failed store is not a failed build: return the graph regardless and
  // continue uncached.
  GraphMissesCounter().Add(1);
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.graph_misses;
  if (write.ok()) {
    std::error_code size_ec;
    const uint64_t bytes = fs::file_size(path, size_ec);
    if (!size_ec) {
      stats_.bytes_written += bytes;
      BytesWrittenCounter().Add(bytes);
    }
  }
  return built;
}

std::optional<RrEraData> ArtifactCache::LoadRrEra(uint64_t recipe_hash,
                                                  const RrProvenance& expect,
                                                  std::size_t num_nodes) {
  CWM_TRACE_SPAN("store.load_rr");
  const std::string path = RrPathFor(recipe_hash);
  std::error_code ec;
  if (fs::exists(path, ec)) {
    StatusOr<RrEraData> opened = [&]() -> StatusOr<RrEraData> {
      if (Status s = CWM_FAILPOINT_STATUS("cache.rr.load"); !s.ok()) {
        return s;
      }
      return OpenRrFile(path, &expect, num_nodes);
    }();
    if (opened.ok()) {
      RrHitsCounter().Add(1);
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.rr_hits;
      return std::move(opened).value();
    }
    // NotFound = provenance mismatch (hash collision or stale key): a
    // plain miss; the entry is wrong-for-us, not broken. Anything else
    // means the file existed but could not be used — quarantine it and
    // let the pipeline resample the era (bit-identical: the sampler's
    // RNG streams never depend on the cache).
    if (opened.status().code() != Status::Code::kNotFound) {
      (void)QuarantineEntry(path);
      NoteDegradedEvent("store.degraded.rr_resamples");
    }
  }
  RrMissesCounter().Add(1);
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.rr_misses;
  return std::nullopt;
}

Status ArtifactCache::StoreRrEra(uint64_t recipe_hash,
                                 const RrProvenance& provenance,
                                 const RrCollection& rr) {
  CWM_TRACE_SPAN("store.store_rr", {{"rr_sets", rr.size()}});
  const std::string path = RrPathFor(recipe_hash);
  // Eras only ever grow; never replace a larger entry with a smaller one
  // (two processes with different targets can race on the same key — the
  // bytes of any shared prefix are identical, so keeping the longer
  // collection serves both). A TOCTOU window remains, but losing it only
  // costs resampling, never correctness.
  if (StatusOr<RrFileHeader> existing = ReadRrHeader(path);
      existing.ok() && existing.value().num_sets >= rr.size() &&
      existing.value().graph_hash == provenance.graph_hash &&
      existing.value().sample_seed == provenance.sample_seed &&
      existing.value().source_id == provenance.source_id &&
      existing.value().era_start == provenance.era_start) {
    return Status::OK();
  }
  if (!writes_enabled()) {
    return Status::FailedPrecondition("cache writes disabled");
  }
  Status status = CWM_FAILPOINT_STATUS("cache.rr.store");
  if (status.ok()) status = WriteRrFile(rr, provenance, path);
  if (!status.ok()) DisableWrites(status);
  if (status.ok()) {
    std::error_code ec;
    const uint64_t bytes = fs::file_size(path, ec);
    if (!ec) BytesWrittenCounter().Add(bytes);
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!ec) stats_.bytes_written += bytes;
  }
  return status;
}

std::vector<CacheEntry> ArtifactCache::List() const {
  std::vector<CacheEntry> entries;
  std::error_code ec;
  for (const char* sub : {"graphs", "rr"}) {
    const fs::path dir = fs::path(root_) / sub;
    fs::directory_iterator it(dir, ec);
    if (ec) continue;
    for (const fs::directory_entry& file : it) {
      const std::string ext = file.path().extension().string();
      if (ext != ".cwg" && ext != ".cwr") continue;
      CacheEntry entry;
      entry.path = file.path().string();
      entry.is_graph = ext == ".cwg";
      std::error_code size_ec;
      entry.bytes = file.file_size(size_ec);
      entry.mtime_seconds = MtimeSeconds(file.path(), size_ec);
      if (entry.is_graph) {
        const std::string recipe_path =
            entry.path.substr(0, entry.path.size() - 4) + ".recipe";
        entry.recipe = ReadSmallFile(recipe_path).value_or("");
        // The sidecar is part of the entry's footprint: Gc evicts the
        // pair together, so budgets and reports must count both.
        std::error_code recipe_ec;
        const uint64_t recipe_bytes = fs::file_size(recipe_path, recipe_ec);
        if (!recipe_ec) entry.bytes += recipe_bytes;
      } else {
        StatusOr<RrFileHeader> header = ReadRrHeader(entry.path);
        if (header.ok()) {
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "graph=%s seed=%llu source=%s era=%llu sets=%llu",
                        HashToHex(header.value().graph_hash).c_str(),
                        static_cast<unsigned long long>(
                            header.value().sample_seed),
                        HashToHex(header.value().source_id).c_str(),
                        static_cast<unsigned long long>(
                            header.value().era_start),
                        static_cast<unsigned long long>(
                            header.value().num_sets));
          entry.recipe = buf;
        }
      }
      entries.push_back(std::move(entry));
    }
  }
  return entries;
}

GcResult ArtifactCache::Gc(uint64_t max_bytes) {
  CWM_TRACE_SPAN("store.gc", {{"max_bytes", max_bytes}});
  GcResult result;

  // Writers killed mid-WriteFileAtomic leave *.tmp.* files that List()
  // (and therefore the byte accounting) never sees; reclaim them here.
  // The age threshold protects a concurrent writer's live temp file.
  constexpr auto kStaleTmpAge = std::chrono::hours(1);
  const auto now = fs::file_time_type::clock::now();
  std::error_code ec;
  for (const char* sub : {"graphs", "rr", "edge-hashes", "quarantine"}) {
    fs::directory_iterator it(fs::path(root_) / sub, ec);
    if (ec) continue;
    for (const fs::directory_entry& file : it) {
      const std::string name = file.path().filename().string();
      // Quarantined entries are evidence, not cache state: keep them
      // long enough for doctor to look, then reclaim like stale temps.
      bool reclaimable = name.find(".tmp.") != std::string::npos ||
                         std::string_view(sub) == "quarantine";
      if (!reclaimable && file.path().extension() == ".recipe") {
        // A sidecar whose .cwg is gone (interrupted eviction, manual
        // delete) is invisible to List(); reclaim it once stale.
        std::error_code exists_ec;
        const fs::path graph_path =
            fs::path(file.path()).replace_extension(".cwg");
        reclaimable = !fs::exists(graph_path, exists_ec);
      }
      if (!reclaimable && std::string_view(sub) == "edge-hashes" &&
          file.path().extension() == ".txt") {
        // Edge-list hash sidecars (graph/loader.cc) record their source
        // path on the second line; once the dataset is gone the entry
        // can never match again — reclaim it when stale.
        std::ifstream in(file.path());
        std::string identity_line, source_path;
        if (std::getline(in, identity_line) &&
            std::getline(in, source_path)) {
          std::error_code exists_ec;
          reclaimable = !fs::exists(source_path, exists_ec);
        } else {
          reclaimable = true;  // malformed sidecar: useless, reclaim
        }
      }
      if (!reclaimable) continue;
      std::error_code file_ec;
      const auto mtime = fs::last_write_time(file.path(), file_ec);
      if (file_ec || now - mtime < kStaleTmpAge) continue;
      if (fs::remove(file.path(), file_ec) && !file_ec) {
        ++result.files_removed;
      }
    }
  }

  std::vector<CacheEntry> entries = List();

  // Delta re-keying (delta/rr_patch.h) stores every surviving era under
  // the *new* graph hash; eras keyed to a graph no cached .cwg carries
  // are almost certainly its abandoned pre-delta ancestors. Evict those
  // first when over budget: an orphaned era is dead weight at any
  // recency, while an old-but-live entry is one warm open away from
  // paying for itself. (Eras for uncached graph families — gadgets,
  // transformed edge lists — also match this test; eviction order is a
  // heuristic, never correctness, so mis-ranking them only costs a
  // resample under memory pressure.)
  std::unordered_set<uint64_t> live_graph_hashes;
  for (const CacheEntry& entry : entries) {
    if (!entry.is_graph) continue;
    if (StatusOr<GraphFileHeader> header = ReadGraphHeader(entry.path);
        header.ok() && header.value().content_hash != 0) {
      live_graph_hashes.insert(header.value().content_hash);
    }
  }
  auto is_orphaned_era = [&](const CacheEntry& entry) {
    if (entry.is_graph) return false;
    const StatusOr<RrFileHeader> header = ReadRrHeader(entry.path);
    // Unreadable headers are LoadRrEra's (quarantine) problem, not Gc's.
    return header.ok() &&
           !live_graph_hashes.contains(header.value().graph_hash);
  };
  std::vector<bool> orphaned(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    orphaned[i] = is_orphaned_era(entries[i]);
  }
  std::vector<std::size_t> order(entries.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (orphaned[a] != orphaned[b]) return static_cast<bool>(orphaned[a]);
    return entries[a].mtime_seconds != entries[b].mtime_seconds
               ? entries[a].mtime_seconds < entries[b].mtime_seconds
               : entries[a].path < entries[b].path;
  });
  {
    std::vector<CacheEntry> sorted;
    sorted.reserve(entries.size());
    for (const std::size_t i : order) sorted.push_back(std::move(entries[i]));
    entries = std::move(sorted);
  }
  for (const CacheEntry& entry : entries) result.bytes_before += entry.bytes;
  result.bytes_after = result.bytes_before;
  for (const CacheEntry& entry : entries) {
    if (result.bytes_after <= max_bytes) break;
    std::error_code remove_ec;
    if (!fs::remove(entry.path, remove_ec) || remove_ec) continue;
    if (entry.is_graph) {
      fs::remove(entry.path.substr(0, entry.path.size() - 4) + ".recipe",
                 remove_ec);
    }
    result.bytes_after -= entry.bytes;
    ++result.files_removed;
  }
  return result;
}

std::string ArtifactCache::QuarantineDir() const {
  return (fs::path(root_) / "quarantine").string();
}

Status ArtifactCache::QuarantineEntry(const std::string& path) {
  const fs::path source(path);
  const fs::path dir(QuarantineDir());
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (!ec) fs::rename(source, dir / source.filename(), ec);
  if (ec) {
    // Cannot move it aside (read-only filesystem?): removing unblocks
    // the rebuild at the cost of the evidence.
    std::error_code remove_ec;
    fs::remove(source, remove_ec);
    if (remove_ec) {
      return Status::IOError("cannot quarantine " + path + ": " +
                             ec.message());
    }
  }
  if (source.extension() == ".cwg") {
    // The sidecar travels with its entry; a leftover .recipe would pair
    // with the rebuilt .cwg anyway (same recipe), but moving both keeps
    // quarantine/ self-describing for doctor.
    const fs::path recipe = fs::path(source).replace_extension(".recipe");
    std::error_code side_ec;
    if (fs::exists(recipe, side_ec)) {
      fs::rename(recipe, dir / recipe.filename(), side_ec);
      if (side_ec) fs::remove(recipe, side_ec);
    }
  }
  NoteDegradedEvent("cache.quarantined");
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.quarantined;
  return Status::OK();
}

void ArtifactCache::DisableWrites(const Status& cause) {
  bool expected = true;
  if (!writes_enabled_.compare_exchange_strong(expected, false,
                                               std::memory_order_relaxed)) {
    return;  // already disabled; first failure already reported
  }
  NoteDegradedEvent("store.degraded.cache_write_off");
  std::fprintf(stderr,
               "cwm: artifact cache now read-only after write failure: "
               "%s (continuing uncached; results are unaffected)\n",
               cause.ToString().c_str());
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_.writes_disabled = true;
}

CacheStats ArtifactCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace cwm
