#include "store/mapped_file.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "obs/metrics.h"
#include "support/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#define CWM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace cwm {

namespace {

std::string ErrnoString() { return std::strerror(errno); }

}  // namespace

MappedFile::~MappedFile() {
#if CWM_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(data_, size_);
    return;
  }
#endif
  if (!mapped_) delete[] data_;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  std::swap(data_, other.data_);
  std::swap(size_, other.size_);
  std::swap(mapped_, other.mapped_);
  std::swap(path_, other.path_);
  return *this;
}

#if CWM_HAVE_MMAP
namespace {

/// Degraded fallback when mmap is refused (vm.max_map_count pressure,
/// injected fault): read the whole file through the fd instead. Slower
/// (no page sharing, eager I/O) but byte-identical.
Status ReadIntoHeap(int fd, const std::string& path, std::byte* buffer,
                    std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, buffer + got, size - got);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      delete[] buffer;
      return Status::IOError("short read of " + path + ": " + ErrnoString());
    }
    got += static_cast<std::size_t>(n);
  }
  NoteDegradedEvent("store.degraded.heap_loads");
  return Status::OK();
}

}  // namespace
#endif

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  MappedFile file;
  file.path_ = path;
  CWM_FAILPOINT("store.mapped_file.open");
#if CWM_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " + ErrnoString());
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const Status status =
        Status::IOError("cannot stat " + path + ": " + ErrnoString());
    ::close(fd);
    return status;
  }
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ > 0) {
    void* addr = MAP_FAILED;
    if (CWM_FAILPOINT_STATUS("store.mapped_file.mmap").ok()) {
      addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    }
    if (addr != MAP_FAILED) {
      file.data_ = static_cast<std::byte*>(addr);
      file.mapped_ = true;
    } else {
      std::byte* buffer = new std::byte[file.size_];
      const Status read = ReadIntoHeap(fd, path, buffer, file.size_);
      if (!read.ok()) {
        ::close(fd);
        return read;
      }
      file.data_ = buffer;
      file.mapped_ = false;
    }
  }
  ::close(fd);
  return file;
#else
  // ftell returns long (32-bit on LLP64 Windows), which cannot size the
  // multi-GB artifacts this store exists for; filesystem::file_size is
  // 64-bit everywhere.
  std::error_code size_ec;
  const std::uintmax_t size =
      std::filesystem::file_size(std::filesystem::path(path), size_ec);
  if (size_ec) {
    return Status::IOError("cannot size " + path + ": " +
                           size_ec.message());
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  file.size_ = static_cast<std::size_t>(size);
  if (file.size_ > 0) {
    file.data_ = new std::byte[file.size_];
    if (std::fread(file.data_, 1, file.size_, f) != file.size_) {
      std::fclose(f);
      return Status::IOError("short read of " + path);
    }
  }
  std::fclose(f);
  return file;
#endif
}

Status WriteFileAtomic(const std::string& path,
                       std::span<const ByteSection> sections) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path target(path);
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);
    if (ec) {
      return Status::IOError("cannot create directories for " + path + ": " +
                             ec.message());
    }
  }
  // Unique per writer: racing writers of the same key each publish their
  // own temp file; the final rename is atomic either way. The counter
  // disambiguates threads within a process, the pid (or, on platforms
  // without one, the ASLR-randomized counter address) across processes.
  static std::atomic<uint64_t> tmp_counter{0};
#if CWM_HAVE_MMAP
  const uint64_t writer_id = static_cast<uint64_t>(::getpid());
#else
  const uint64_t writer_id =
      reinterpret_cast<uintptr_t>(&tmp_counter) >> 4;
#endif
  const std::string tmp = path + ".tmp." + std::to_string(writer_id) + "." +
                          std::to_string(tmp_counter.fetch_add(1));
  CWM_FAILPOINT("store.write.open");
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + tmp + " for writing: " +
                           ErrnoString());
  }
  if (Status s = CWM_FAILPOINT_STATUS("store.write.write"); !s.ok()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return s;
  }
  for (const ByteSection& section : sections) {
    if (section.size == 0) continue;
    if (std::fwrite(section.data, 1, section.size, f) != section.size) {
      std::fclose(f);
      std::remove(tmp.c_str());
      return Status::IOError("short write to " + tmp);
    }
  }
  if (std::fflush(f) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IOError("cannot flush " + tmp);
  }
  if (Status s = CWM_FAILPOINT_STATUS("store.write.fsync"); !s.ok()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return s;
  }
#if CWM_HAVE_MMAP
  // Data must be durable before the rename publishes it; otherwise a
  // crash could leave a complete-looking but empty file at `path`.
  if (::fsync(::fileno(f)) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IOError("cannot fsync " + tmp + ": " + ErrnoString());
  }
#endif
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot close " + tmp);
  }
  if (Status s = CWM_FAILPOINT_STATUS("store.write.rename"); !s.ok()) {
    std::remove(tmp.c_str());
    return s;
  }
  // std::filesystem::rename replaces an existing destination on every
  // platform (plain std::rename does not on Windows), which the
  // grow-and-overwrite RR era entries rely on.
  fs::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

}  // namespace cwm
