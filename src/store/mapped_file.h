// Read-only file mapping and atomic file publication.
//
// MappedFile wraps mmap(2) (with a plain buffered-read fallback on
// platforms without it) so artifact opens are zero-copy: the kernel pages
// data in on demand and shares clean pages across processes. WriteFileAtomic
// publishes artifacts crash-safely: bytes land in a same-directory temp
// file which is fsync'd and then rename(2)'d over the destination, so
// concurrent readers — including other sweep workers racing on the same
// cache key — only ever observe absent or complete files.
#ifndef CWM_STORE_MAPPED_FILE_H_
#define CWM_STORE_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "support/status.h"

namespace cwm {

/// An open read-only mapping of a whole file. Move-only; the mapping is
/// released on destruction. Zero-length files map to an empty span.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;

  /// Maps `path` read-only. IOError if the file cannot be opened/mapped.
  static StatusOr<MappedFile> Open(const std::string& path);

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::span<const std::byte> bytes() const { return {data_, size_}; }
  const std::string& path() const { return path_; }

 private:
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;  ///< true: munmap on close; false: heap fallback
  std::string path_;
};

/// One contiguous section of an artifact file to be written.
struct ByteSection {
  const void* data = nullptr;
  std::size_t size = 0;
};

/// Writes the concatenation of `sections` to `path` atomically: a unique
/// temp file in the same directory is written, fsync'd, and renamed over
/// `path`. Parent directories are created. On error the temp file is
/// removed and `path` is untouched.
Status WriteFileAtomic(const std::string& path,
                       std::span<const ByteSection> sections);

}  // namespace cwm

#endif  // CWM_STORE_MAPPED_FILE_H_
