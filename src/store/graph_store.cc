#include "store/graph_store.h"

#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "store/mapped_file.h"
#include "support/failpoint.h"

namespace cwm {

namespace {

/// Section sizes of a graph payload, in file order.
struct GraphLayout {
  std::size_t offsets_bytes;  // (n+1) uint64, both halves
  std::size_t out_edges_bytes;
  std::size_t in_edges_bytes;
  std::size_t payload_bytes;
};

GraphLayout LayoutFor(uint64_t num_nodes, uint64_t num_edges) {
  GraphLayout layout;
  layout.offsets_bytes = (num_nodes + 1) * sizeof(uint64_t);
  layout.out_edges_bytes = num_edges * sizeof(OutEdge);
  layout.in_edges_bytes = num_edges * sizeof(InEdge);
  layout.payload_bytes = 2 * layout.offsets_bytes + layout.out_edges_bytes +
                         layout.in_edges_bytes;
  return layout;
}

Status CheckOffsets(const char* what, const std::string& path,
                    std::span<const uint64_t> offsets, uint64_t num_edges) {
  if (offsets.empty() || offsets.front() != 0) {
    return Status::Corruption(path + ": " + what + " does not start at 0");
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::Corruption(path + ": " + what + " not monotone at " +
                                std::to_string(i));
    }
  }
  if (offsets.back() != num_edges) {
    return Status::Corruption(path + ": " + what +
                              " does not end at num_edges");
  }
  return Status::OK();
}

struct OpenedGraph {
  std::shared_ptr<const MappedFile> mapping;
  GraphFileHeader header;
  std::span<const uint64_t> out_offsets;
  std::span<const OutEdge> out_edges;
  std::span<const uint64_t> in_offsets;
  std::span<const InEdge> in_edges;
};

/// Maps `path` and validates structure; shared by Open and Verify.
StatusOr<OpenedGraph> MapAndValidate(const std::string& path) {
  CWM_FAILPOINT("store.graph.validate");
  StatusOr<MappedFile> mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  auto mapping =
      std::make_shared<const MappedFile>(std::move(mapped).value());

  if (mapping->size() < sizeof(GraphFileHeader)) {
    return Status::Corruption(path + ": truncated header (" +
                              std::to_string(mapping->size()) + " bytes)");
  }
  GraphFileHeader header;
  std::memcpy(&header, mapping->data(), sizeof(header));
  if (header.magic != kGraphMagic) {
    return Status::Corruption(path + ": not a cwm graph file (bad magic)");
  }
  if (header.endian != kEndianTag) {
    return Status::Corruption(path + ": wrong byte order");
  }
  if (header.version != kFormatVersion) {
    return Status::Corruption(
        path + ": format version " + std::to_string(header.version) +
        " (this build reads " + std::to_string(kFormatVersion) + ")");
  }
  // NodeId/EdgeId are 32-bit, so legitimate counts fit well under 2^32;
  // rejecting larger values here keeps every LayoutFor product far from
  // 64-bit overflow (a crafted huge count could otherwise wrap
  // payload_bytes to a value matching a tiny file).
  if (header.num_nodes > (1ull << 32) || header.num_edges > (1ull << 32)) {
    return Status::Corruption(path + ": implausible node/edge count");
  }
  const GraphLayout layout = LayoutFor(header.num_nodes, header.num_edges);
  if (header.payload_bytes != layout.payload_bytes ||
      mapping->size() != sizeof(GraphFileHeader) + layout.payload_bytes) {
    return Status::Corruption(path + ": truncated or oversized payload");
  }

  OpenedGraph opened;
  opened.header = header;
  const std::byte* p = mapping->data() + sizeof(GraphFileHeader);
  const std::size_t n1 = header.num_nodes + 1;
  opened.out_offsets = {reinterpret_cast<const uint64_t*>(p), n1};
  p += layout.offsets_bytes;
  opened.out_edges = {reinterpret_cast<const OutEdge*>(p),
                      static_cast<std::size_t>(header.num_edges)};
  p += layout.out_edges_bytes;
  opened.in_offsets = {reinterpret_cast<const uint64_t*>(p), n1};
  p += layout.offsets_bytes;
  opened.in_edges = {reinterpret_cast<const InEdge*>(p),
                     static_cast<std::size_t>(header.num_edges)};

  Status status = CheckOffsets("out_offsets", path, opened.out_offsets,
                               header.num_edges);
  if (!status.ok()) return status;
  status = CheckOffsets("in_offsets", path, opened.in_offsets,
                        header.num_edges);
  if (!status.ok()) return status;
  opened.mapping = std::move(mapping);
  return opened;
}

}  // namespace

uint64_t GraphContentHash(const Graph& g) {
  const uint64_t n = g.num_nodes();
  uint64_t h = Fnv1a64(&n, sizeof(n));
  // Canonicalize the one representational difference between a
  // default-constructed empty graph (no arrays) and its store image
  // (offset array {0}), so the hash is truly storage-invariant.
  static constexpr uint64_t kZeroOffset = 0;
  std::span<const uint64_t> offsets = g.RawOutOffsets();
  if (offsets.empty()) offsets = {&kZeroOffset, 1};
  h = Fnv1a64(offsets.data(), offsets.size_bytes(), h);
  const auto edges = g.RawOutEdges();
  return Fnv1a64(edges.data(), edges.size_bytes(), h);
}

std::string HashToHex(uint64_t hash) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

Status WriteGraphFile(const Graph& g, const std::string& path,
                      uint64_t recipe_hash, uint64_t content_hash) {
  GraphFileHeader header;
  header.num_nodes = g.num_nodes();
  header.num_edges = g.num_edges();
  header.recipe_hash = recipe_hash;
  header.content_hash =
      content_hash != 0 ? content_hash : GraphContentHash(g);

  // A default-constructed Graph has empty arrays; persist it as the
  // canonical zero-node graph (offset arrays of size 1) so every file
  // round-trips to a usable CSR.
  static constexpr uint64_t kZeroOffset = 0;
  std::span<const uint64_t> out_offsets = g.RawOutOffsets();
  std::span<const uint64_t> in_offsets = g.RawInOffsets();
  if (out_offsets.empty()) out_offsets = {&kZeroOffset, 1};
  if (in_offsets.empty()) in_offsets = {&kZeroOffset, 1};

  const ByteSection payload[] = {
      {out_offsets.data(), out_offsets.size_bytes()},
      {g.RawOutEdges().data(), g.RawOutEdges().size_bytes()},
      {in_offsets.data(), in_offsets.size_bytes()},
      {g.RawInEdges().data(), g.RawInEdges().size_bytes()},
  };
  uint64_t checksum = kFnv1aBasis;
  header.payload_bytes = 0;
  for (const ByteSection& section : payload) {
    checksum = Fnv1a64(section.data, section.size, checksum);
    header.payload_bytes += section.size;
  }
  header.checksum = checksum;

  const ByteSection sections[] = {
      {&header, sizeof(header)}, payload[0], payload[1], payload[2],
      payload[3],
  };
  return WriteFileAtomic(path, sections);
}

StatusOr<Graph> OpenGraphFile(const std::string& path,
                              uint64_t* content_hash) {
  StatusOr<OpenedGraph> opened = MapAndValidate(path);
  if (!opened.ok()) return opened.status();
  OpenedGraph& o = opened.value();
  if (content_hash != nullptr) *content_hash = o.header.content_hash;
  return Graph::FromExternal(std::move(o.mapping), o.out_offsets,
                             o.out_edges, o.in_offsets, o.in_edges);
}

StatusOr<GraphFileHeader> ReadGraphHeader(const std::string& path) {
  StatusOr<MappedFile> mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  if (mapped.value().size() < sizeof(GraphFileHeader)) {
    return Status::Corruption(path + ": truncated header");
  }
  GraphFileHeader header;
  std::memcpy(&header, mapped.value().data(), sizeof(header));
  if (header.magic != kGraphMagic) {
    return Status::Corruption(path + ": not a cwm graph file (bad magic)");
  }
  return header;
}

Status VerifyGraphFile(const std::string& path) {
  StatusOr<OpenedGraph> opened = MapAndValidate(path);
  if (!opened.ok()) return opened.status();
  const OpenedGraph& o = opened.value();
  const std::byte* payload = o.mapping->data() + sizeof(GraphFileHeader);
  const uint64_t checksum = Fnv1a64(payload, o.header.payload_bytes);
  if (checksum != o.header.checksum) {
    return Status::Corruption(path + ": payload checksum mismatch");
  }
  // Edge payloads: every endpoint must be a valid node, every reverse
  // edge id a valid forward id, and every probability in [0, 1]
  // (negated comparison so NaN fails) — the O(num_edges) half of
  // validation that the hot open path skips (it would page in the whole
  // file).
  for (std::size_t i = 0; i < o.out_edges.size(); ++i) {
    if (o.out_edges[i].to >= o.header.num_nodes ||
        !(o.out_edges[i].prob >= 0.0f && o.out_edges[i].prob <= 1.0f)) {
      return Status::Corruption(path + ": out-edge payload out of range at " +
                                std::to_string(i));
    }
  }
  for (std::size_t i = 0; i < o.in_edges.size(); ++i) {
    if (o.in_edges[i].from >= o.header.num_nodes ||
        o.in_edges[i].id >= o.header.num_edges ||
        !(o.in_edges[i].prob >= 0.0f && o.in_edges[i].prob <= 1.0f)) {
      return Status::Corruption(path + ": in-edge payload out of range at " +
                                std::to_string(i));
    }
  }
  // The persisted content hash short-circuits provenance on warm opens;
  // verify serves it honest. 0 = pre-content-hash file, nothing to check.
  if (o.header.content_hash != 0) {
    const Graph g = Graph::FromExternal(o.mapping, o.out_offsets,
                                        o.out_edges, o.in_offsets,
                                        o.in_edges);
    if (GraphContentHash(g) != o.header.content_hash) {
      return Status::Corruption(path + ": stored content hash mismatch");
    }
  }
  return Status::OK();
}

}  // namespace cwm
