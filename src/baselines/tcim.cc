#include "baselines/tcim.h"

#include <algorithm>
#include <memory>

#include "api/registry.h"
#include "rrset/imm.h"

namespace cwm {

Allocation Tcim(const Graph& graph, const UtilityConfig& config,
                const Allocation& sp, const std::vector<ItemId>& items,
                const BudgetVector& budgets, const AlgoParams& params) {
  CWM_CHECK(!items.empty());
  (void)sp;  // fixed competitors stay where they are; see header comment
  int max_b = 0;
  for (ItemId i : items) {
    CWM_CHECK(budgets[i] >= 1);
    max_b = std::max(max_b, budgets[i]);
  }
  // One spread-maximizing ranking; every item contests its prefix.
  const ImmResult imm = Imm(graph, max_b, params.imm);
  Allocation result(config.num_items());
  for (ItemId i : items) {
    for (int k = 0; k < budgets[i]; ++k) {
      result.Add(imm.seeds[static_cast<std::size_t>(k)], i);
    }
  }
  return result;
}

namespace {

class TcimAllocator final : public Allocator {
 public:
  AlgoKind Kind() const override { return AlgoKind::kTcim; }
  AllocatorCapabilities Capabilities() const override { return {}; }

  Status Allocate(const AllocateRequest& request,
                  AllocateResult* result) const override {
    if (Status cancelled = CheckCancelled(request); !cancelled.ok()) {
      return cancelled;
    }
    result->allocation =
        Tcim(*request.graph, *request.config, FixedOf(request),
             request.items, request.budgets, request.params);
    return Status::OK();
  }
};

}  // namespace

void RegisterTcimAllocator(AllocatorRegistry& registry) {
  registry.Register(std::make_unique<TcimAllocator>());
}

}  // namespace cwm
