// Classic influence-maximization seed heuristics, used as cheap
// comparison rankings (§2 cites Chen et al. [18], where DegreeDiscount
// was introduced). They produce *rankings*, which combine with the
// positional allocators (baselines/simple_alloc.h) exactly like the
// PRIMA+ greedy order, and serve as sanity baselines in the ablation
// bench: the RR-set algorithms must dominate them.
#ifndef CWM_BASELINES_HEURISTICS_H_
#define CWM_BASELINES_HEURISTICS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace cwm {

/// Top-k nodes by out-degree (ties toward smaller id). The oldest IM
/// heuristic; ignores overlap entirely.
std::vector<NodeId> HighDegreeRank(const Graph& graph, std::size_t k);

/// DegreeDiscountIC (Chen-Wang-Yang, KDD'09/'10): degree ranking where a
/// selected node discounts its neighbours' effective degrees by the
/// expected overlap 2*t + (d - t)*t*p, with t = #selected in-neighbours.
/// `p` is the nominal propagation probability the discount assumes
/// (classically 0.01; pass the graph's constant probability if uniform).
std::vector<NodeId> DegreeDiscountRank(const Graph& graph, std::size_t k,
                                       double p = 0.01);

/// PageRank on the *reverse* graph (a node is influential when many
/// influenceable nodes point at it through reversed edges), computed by
/// power iteration with damping `alpha`; returns the top-k nodes.
/// Standard IM practice ranks by PageRank of the transpose so that score
/// flows against influence direction.
std::vector<NodeId> PageRankRank(const Graph& graph, std::size_t k,
                                 double alpha = 0.85, int iterations = 40);

/// Full PageRank vector of the reverse graph (sums to 1); exposed for
/// tests and custom rankings.
std::vector<double> ReversePageRank(const Graph& graph, double alpha = 0.85,
                                    int iterations = 40);

class AllocatorRegistry;
/// Registers the HighDegree / DegDiscount / PageRank adapters
/// (api/registry.h): each ranking feeds utility-ordered blocks.
void RegisterHeuristicRankAllocators(AllocatorRegistry& registry);

}  // namespace cwm

#endif  // CWM_BASELINES_HEURISTICS_H_
