#include "baselines/heuristics.h"

#include <algorithm>
#include <memory>
#include <queue>

#include "api/registry.h"
#include "baselines/simple_alloc.h"
#include "support/check.h"

namespace cwm {

namespace {

std::vector<NodeId> TopKByScore(const std::vector<double>& score,
                                std::size_t k) {
  std::vector<NodeId> nodes(score.size());
  for (NodeId v = 0; v < score.size(); ++v) nodes[v] = v;
  k = std::min(k, nodes.size());
  std::partial_sort(nodes.begin(), nodes.begin() + k, nodes.end(),
                    [&](NodeId a, NodeId b) {
                      return score[a] != score[b] ? score[a] > score[b]
                                                  : a < b;
                    });
  nodes.resize(k);
  return nodes;
}

}  // namespace

std::vector<NodeId> HighDegreeRank(const Graph& graph, std::size_t k) {
  std::vector<double> score(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    score[v] = static_cast<double>(graph.OutDegree(v));
  }
  return TopKByScore(score, k);
}

std::vector<NodeId> DegreeDiscountRank(const Graph& graph, std::size_t k,
                                       double p) {
  CWM_CHECK(p >= 0.0 && p <= 1.0);
  const std::size_t n = graph.num_nodes();
  k = std::min(k, n);
  std::vector<double> dd(n);
  std::vector<int> picked_neighbours(n, 0);
  std::vector<char> selected(n, 0);
  using Entry = std::pair<double, NodeId>;
  auto cmp = [](const Entry& a, const Entry& b) {
    return a.first != b.first ? a.first < b.first : a.second > b.second;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (NodeId v = 0; v < n; ++v) {
    dd[v] = static_cast<double>(graph.OutDegree(v));
    heap.push({dd[v], v});
  }
  std::vector<NodeId> out;
  out.reserve(k);
  while (out.size() < k && !heap.empty()) {
    const auto [score, v] = heap.top();
    heap.pop();
    if (selected[v]) continue;
    if (score > dd[v] + 1e-12) continue;  // stale entry
    selected[v] = 1;
    out.push_back(v);
    // Discount the out-neighbours: dd_u = d_u - 2 t_u - (d_u - t_u) t_u p.
    for (const OutEdge& e : graph.OutEdges(v)) {
      const NodeId u = e.to;
      if (selected[u]) continue;
      const int t = ++picked_neighbours[u];
      const double d = static_cast<double>(graph.OutDegree(u));
      dd[u] = d - 2.0 * t - (d - t) * t * p;
      heap.push({dd[u], u});
    }
  }
  // Deterministic fill if the heap ran dry (k close to n).
  for (NodeId v = 0; out.size() < k && v < n; ++v) {
    if (!selected[v]) {
      selected[v] = 1;
      out.push_back(v);
    }
  }
  return out;
}

std::vector<double> ReversePageRank(const Graph& graph, double alpha,
                                    int iterations) {
  CWM_CHECK(alpha > 0.0 && alpha < 1.0);
  CWM_CHECK(iterations >= 1);
  const std::size_t n = graph.num_nodes();
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (int it = 0; it < iterations; ++it) {
    double dangling = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    // Reverse-graph random walk: mass at v splits over v's in-neighbours
    // (i.e. it walks *against* influence edges).
    for (NodeId v = 0; v < n; ++v) {
      const auto in = graph.InEdges(v);
      if (in.empty()) {
        dangling += rank[v];
        continue;
      }
      const double share = rank[v] / static_cast<double>(in.size());
      for (const InEdge& e : in) next[e.from] += share;
    }
    const double teleport =
        (1.0 - alpha) / static_cast<double>(n) +
        alpha * dangling / static_cast<double>(n);
    for (NodeId v = 0; v < n; ++v) {
      next[v] = alpha * next[v] + teleport;
    }
    rank.swap(next);
  }
  return rank;
}

std::vector<NodeId> PageRankRank(const Graph& graph, std::size_t k,
                                 double alpha, int iterations) {
  return TopKByScore(ReversePageRank(graph, alpha, iterations), k);
}

namespace {

/// Classic-IM rankings feeding utility-ordered blocks: sanity baselines
/// the RR-set algorithms must dominate (bench_ablation).
class HeuristicRankAllocator final : public Allocator {
 public:
  explicit HeuristicRankAllocator(AlgoKind kind) : kind_(kind) {}

  AlgoKind Kind() const override { return kind_; }
  AllocatorCapabilities Capabilities() const override { return {}; }

  Status Allocate(const AllocateRequest& request,
                  AllocateResult* result) const override {
    if (Status cancelled = CheckCancelled(request); !cancelled.ok()) {
      return cancelled;
    }
    std::size_t total_budget = 0;
    for (ItemId i : request.items) {
      total_budget += static_cast<std::size_t>(request.budgets[i]);
    }
    const Graph& graph = *request.graph;
    std::vector<NodeId> ranking;
    switch (kind_) {
      case AlgoKind::kHighDegreeRank:
        ranking = HighDegreeRank(graph, total_budget);
        break;
      case AlgoKind::kDegreeDiscountRank:
        ranking = DegreeDiscountRank(graph, total_budget);
        break;
      default:
        ranking = PageRankRank(graph, total_budget);
        break;
    }
    // Items in decreasing expected-truncated-utility order, like
    // BlockUtil (§6.4.3): the rankings compete on placement quality only.
    result->allocation =
        BlockAllocate(request.config->num_items(), ranking,
                      ItemsByUtilityOf(request), request.budgets);
    return Status::OK();
  }

 private:
  AlgoKind kind_;
};

}  // namespace

void RegisterHeuristicRankAllocators(AllocatorRegistry& registry) {
  registry.Register(
      std::make_unique<HeuristicRankAllocator>(AlgoKind::kHighDegreeRank));
  registry.Register(std::make_unique<HeuristicRankAllocator>(
      AlgoKind::kDegreeDiscountRank));
  registry.Register(
      std::make_unique<HeuristicRankAllocator>(AlgoKind::kPageRankRank));
}

}  // namespace cwm
