// Balance-C baseline (§6.1.2), after Garimella et al. [23].
//
// For exactly two items, greedily selects (node, item) pairs maximizing
// the *balanced exposure* objective: the expected number of nodes that are
// exposed (desire set) to both items or to neither at the end of the
// propagation. It ignores utilities entirely — the paper uses it to show
// what welfare a balance-driven host forgoes. Like greedyWM it relies on
// Monte-Carlo marginals and is deliberately slow; the same candidate-pool
// restriction keeps it runnable.
#ifndef CWM_BASELINES_BALANCE_C_H_
#define CWM_BASELINES_BALANCE_C_H_

#include <vector>

#include "algo/params.h"
#include "graph/graph.h"
#include "model/allocation.h"
#include "model/utility.h"

namespace cwm {

/// Options for BalanceC.
struct BalanceCOptions {
  /// Candidate pool (top spread-maximizing nodes); 0 = all nodes.
  std::size_t candidate_pool = 200;
};

/// Runs Balance-C. `items` must contain exactly the two items {0, 1}.
Allocation BalanceC(const Graph& graph, const UtilityConfig& config,
                    const Allocation& sp, const std::vector<ItemId>& items,
                    const BudgetVector& budgets, const AlgoParams& params,
                    const BalanceCOptions& options = {});

class AllocatorRegistry;
/// Registers the Balance-C adapter (api/registry.h); capabilities mark it
/// slow and two-items-only.
void RegisterBalanceCAllocator(AllocatorRegistry& registry);

}  // namespace cwm

#endif  // CWM_BASELINES_BALANCE_C_H_
