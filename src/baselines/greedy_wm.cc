#include "baselines/greedy_wm.h"

#include <algorithm>
#include <memory>
#include <queue>

#include "api/registry.h"
#include "rrset/prima_plus.h"
#include "simulate/estimator.h"

namespace cwm {

std::vector<NodeId> TopOutDegreeNodes(const Graph& graph, std::size_t pool) {
  std::vector<NodeId> nodes(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) nodes[v] = v;
  if (pool == 0 || pool >= graph.num_nodes()) return nodes;
  std::partial_sort(nodes.begin(), nodes.begin() + pool, nodes.end(),
                    [&](NodeId a, NodeId b) {
                      const auto da = graph.OutDegree(a);
                      const auto db = graph.OutDegree(b);
                      return da != db ? da > db : a < b;
                    });
  nodes.resize(pool);
  return nodes;
}

std::vector<NodeId> TopSpreadNodes(const Graph& graph, std::size_t pool,
                                   const ImmParams& params) {
  if (pool == 0 || pool >= graph.num_nodes()) {
    return TopOutDegreeNodes(graph, 0);
  }
  return PrimaPlus(graph, {}, {static_cast<int>(pool)},
                   static_cast<int>(pool), params)
      .seeds;
}

std::vector<Allocation> CandidatePairGrid(int num_items,
                                          const std::vector<NodeId>& pool,
                                          const std::vector<ItemId>& items) {
  std::vector<Allocation> grid;
  grid.reserve(pool.size() * items.size());
  for (NodeId v : pool) {
    for (ItemId i : items) {
      Allocation extra(num_items);
      extra.Add(v, i);
      grid.push_back(std::move(extra));
    }
  }
  return grid;
}

Allocation GreedyWm(const Graph& graph, const UtilityConfig& config,
                    const Allocation& sp, const std::vector<ItemId>& items,
                    const BudgetVector& budgets, const AlgoParams& params,
                    const GreedyWmOptions& options) {
  CWM_CHECK(!items.empty());
  const Allocation sp_or_empty =
      sp.num_items() == 0 ? Allocation(config.num_items()) : sp;
  WelfareEstimator estimator(graph, config, params.estimator);
  const std::vector<NodeId> pool =
      TopSpreadNodes(graph, options.candidate_pool, params.imm);

  std::vector<int> remaining(config.num_items(), 0);
  int total_remaining = 0;
  int max_budget = 0;
  for (ItemId i : items) {
    remaining[i] = budgets[i];
    total_remaining += budgets[i];
    max_budget = std::max(max_budget, budgets[i]);
  }
  // Every item draws its seeds from the pool, so the pool must cover the
  // largest single budget.
  CWM_CHECK(pool.size() >= static_cast<std::size_t>(max_budget));

  // CELF entries: (gain, evaluation round, node, item). An entry is fresh
  // if it was evaluated in the current round (== picks made so far).
  struct Entry {
    double gain;
    int round;
    NodeId node;
    ItemId item;
  };
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    if (a.node != b.node) return a.node > b.node;
    return a.item > b.item;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);

  Allocation result(config.num_items());
  // Batch-of-one refresh: lazy CELF re-evaluations are sequential (each
  // base depends on the picks so far), but the batch API lets them reuse
  // the estimator's world-snapshot pool instead of re-deriving every
  // world per call.
  auto marginal = [&](NodeId v, ItemId i) {
    Allocation extra(config.num_items());
    extra.Add(v, i);
    return estimator
        .MarginalWelfareBatch(Allocation::Union(result, sp_or_empty),
                              {&extra, 1})[0];
  };

  // Initial heap population: the full (node, item) candidate grid shares
  // one base (nothing picked yet), so all pool x items marginals go
  // through a single batched sweep — one snapshot build and one base
  // diffusion per world for the entire grid.
  {
    const std::vector<double> gains = estimator.MarginalWelfareBatch(
        Allocation::Union(result, sp_or_empty),
        CandidatePairGrid(config.num_items(), pool, items));
    std::size_t j = 0;
    for (NodeId v : pool) {
      for (ItemId i : items) {
        heap.push({gains[j++], 0, v, i});
      }
    }
  }

  int round = 0;
  while (total_remaining > 0 && !heap.empty()) {
    // Each lazy refresh is a full Monte-Carlo marginal, so poll the
    // cooperative-cancellation flag per CELF pop; a cancelled run breaks
    // with a partial allocation the caller discards.
    if (CancelRequested(params.imm.cancel)) break;
    Entry top = heap.top();
    heap.pop();
    if (remaining[top.item] == 0) continue;  // budget exhausted
    if (top.round != round) {
      top.gain = marginal(top.node, top.item);
      top.round = round;
      heap.push(top);
      continue;
    }
    result.Add(top.node, top.item);
    --remaining[top.item];
    --total_remaining;
    ++round;
  }
  return result;
}

namespace {

class GreedyWmAllocator final : public Allocator {
 public:
  AlgoKind Kind() const override { return AlgoKind::kGreedyWm; }
  AllocatorCapabilities Capabilities() const override {
    return {.slow = true};
  }

  Status Allocate(const AllocateRequest& request,
                  AllocateResult* result) const override {
    if (Status cancelled = CheckCancelled(request); !cancelled.ok()) {
      return cancelled;
    }
    result->allocation =
        GreedyWm(*request.graph, *request.config, FixedOf(request),
                 request.items, request.budgets, request.params,
                 {.candidate_pool = request.candidate_pool});
    return Status::OK();
  }
};

}  // namespace

void RegisterGreedyWmAllocator(AllocatorRegistry& registry) {
  registry.Register(std::make_unique<GreedyWmAllocator>());
}

}  // namespace cwm
