#include "baselines/simple_alloc.h"

#include <algorithm>
#include <memory>

#include "api/registry.h"
#include "rrset/prima_plus.h"
#include "support/check.h"

namespace cwm {

namespace {

int TotalBudget(const std::vector<ItemId>& items,
                const BudgetVector& budgets) {
  int total = 0;
  for (ItemId i : items) {
    CWM_CHECK(budgets[i] >= 0);
    total += budgets[i];
  }
  return total;
}

}  // namespace

Allocation BlockAllocate(int num_items,
                         const std::vector<NodeId>& ordered_seeds,
                         const std::vector<ItemId>& items,
                         const BudgetVector& budgets) {
  const int total = TotalBudget(items, budgets);
  CWM_CHECK(ordered_seeds.size() >= static_cast<std::size_t>(total));
  Allocation out(num_items);
  std::size_t cursor = 0;
  for (ItemId i : items) {
    for (int k = 0; k < budgets[i]; ++k) out.Add(ordered_seeds[cursor++], i);
  }
  return out;
}

Allocation RoundRobinAllocate(int num_items,
                              const std::vector<NodeId>& ordered_seeds,
                              const std::vector<ItemId>& items,
                              const BudgetVector& budgets) {
  const int total = TotalBudget(items, budgets);
  CWM_CHECK(ordered_seeds.size() >= static_cast<std::size_t>(total));
  Allocation out(num_items);
  std::vector<int> remaining(num_items, 0);
  for (ItemId i : items) remaining[i] = budgets[i];
  std::size_t cursor = 0;
  int assigned = 0;
  while (assigned < total) {
    for (ItemId i : items) {
      if (remaining[i] == 0) continue;
      out.Add(ordered_seeds[cursor++], i);
      --remaining[i];
      ++assigned;
    }
  }
  return out;
}

Allocation SnakeAllocate(int num_items,
                         const std::vector<NodeId>& ordered_seeds,
                         const std::vector<ItemId>& items,
                         const BudgetVector& budgets) {
  const int total = TotalBudget(items, budgets);
  CWM_CHECK(ordered_seeds.size() >= static_cast<std::size_t>(total));
  Allocation out(num_items);
  std::vector<int> remaining(num_items, 0);
  for (ItemId i : items) remaining[i] = budgets[i];
  std::size_t cursor = 0;
  int assigned = 0;
  bool forward = true;
  std::vector<ItemId> pass(items);
  while (assigned < total) {
    pass = items;
    if (!forward) std::reverse(pass.begin(), pass.end());
    for (ItemId i : pass) {
      if (remaining[i] == 0) continue;
      out.Add(ordered_seeds[cursor++], i);
      --remaining[i];
      ++assigned;
    }
    forward = !forward;
  }
  return out;
}

namespace {

/// Shared wiring of the PRIMA+-ranked positional allocators: one
/// cell-keyed ranking (AllocateRequest::ranking) feeds RR / Snake /
/// BlockUtil, which differ only in the item-to-position assignment.
class PositionalAllocator final : public Allocator {
 public:
  explicit PositionalAllocator(AlgoKind kind) : kind_(kind) {}

  AlgoKind Kind() const override { return kind_; }
  AllocatorCapabilities Capabilities() const override {
    return {.uses_shared_ranking = true};
  }

  Status Allocate(const AllocateRequest& request,
                  AllocateResult* result) const override {
    if (Status cancelled = CheckCancelled(request); !cancelled.ok()) {
      return cancelled;
    }
    BudgetVector level_budgets;
    int total_budget = 0;
    for (ItemId i : request.items) {
      level_budgets.push_back(request.budgets[i]);
      total_budget += request.budgets[i];
    }
    ReportProgress(request, "PRIMA+ ranking");
    const ImmResult prima =
        PrimaPlus(*request.graph, FixedOf(request).SeedNodes(),
                  level_budgets, total_budget, request.ranking);
    result->diagnostics.rr_count = prima.rr_count;
    result->diagnostics.internal_estimate = prima.coverage_estimate;
    const int m = request.config->num_items();
    switch (kind_) {
      case AlgoKind::kRoundRobin:
        result->allocation = RoundRobinAllocate(m, prima.seeds,
                                                request.items,
                                                request.budgets);
        break;
      case AlgoKind::kSnake:
        result->allocation =
            SnakeAllocate(m, prima.seeds, request.items, request.budgets);
        break;
      default:
        result->allocation = BlockAllocate(m, prima.seeds,
                                           ItemsByUtilityOf(request),
                                           request.budgets);
        break;
    }
    return Status::OK();
  }

 private:
  AlgoKind kind_;
};

}  // namespace

void RegisterPositionalAllocators(AllocatorRegistry& registry) {
  registry.Register(std::make_unique<PositionalAllocator>(AlgoKind::kRoundRobin));
  registry.Register(std::make_unique<PositionalAllocator>(AlgoKind::kSnake));
  registry.Register(
      std::make_unique<PositionalAllocator>(AlgoKind::kBlockUtility));
}

}  // namespace cwm
