#include "baselines/simple_alloc.h"

#include <algorithm>

#include "support/check.h"

namespace cwm {

namespace {

int TotalBudget(const std::vector<ItemId>& items,
                const BudgetVector& budgets) {
  int total = 0;
  for (ItemId i : items) {
    CWM_CHECK(budgets[i] >= 0);
    total += budgets[i];
  }
  return total;
}

}  // namespace

Allocation BlockAllocate(int num_items,
                         const std::vector<NodeId>& ordered_seeds,
                         const std::vector<ItemId>& items,
                         const BudgetVector& budgets) {
  const int total = TotalBudget(items, budgets);
  CWM_CHECK(ordered_seeds.size() >= static_cast<std::size_t>(total));
  Allocation out(num_items);
  std::size_t cursor = 0;
  for (ItemId i : items) {
    for (int k = 0; k < budgets[i]; ++k) out.Add(ordered_seeds[cursor++], i);
  }
  return out;
}

Allocation RoundRobinAllocate(int num_items,
                              const std::vector<NodeId>& ordered_seeds,
                              const std::vector<ItemId>& items,
                              const BudgetVector& budgets) {
  const int total = TotalBudget(items, budgets);
  CWM_CHECK(ordered_seeds.size() >= static_cast<std::size_t>(total));
  Allocation out(num_items);
  std::vector<int> remaining(num_items, 0);
  for (ItemId i : items) remaining[i] = budgets[i];
  std::size_t cursor = 0;
  int assigned = 0;
  while (assigned < total) {
    for (ItemId i : items) {
      if (remaining[i] == 0) continue;
      out.Add(ordered_seeds[cursor++], i);
      --remaining[i];
      ++assigned;
    }
  }
  return out;
}

Allocation SnakeAllocate(int num_items,
                         const std::vector<NodeId>& ordered_seeds,
                         const std::vector<ItemId>& items,
                         const BudgetVector& budgets) {
  const int total = TotalBudget(items, budgets);
  CWM_CHECK(ordered_seeds.size() >= static_cast<std::size_t>(total));
  Allocation out(num_items);
  std::vector<int> remaining(num_items, 0);
  for (ItemId i : items) remaining[i] = budgets[i];
  std::size_t cursor = 0;
  int assigned = 0;
  bool forward = true;
  std::vector<ItemId> pass(items);
  while (assigned < total) {
    pass = items;
    if (!forward) std::reverse(pass.begin(), pass.end());
    for (ItemId i : pass) {
      if (remaining[i] == 0) continue;
      out.Add(ordered_seeds[cursor++], i);
      --remaining[i];
      ++assigned;
    }
    forward = !forward;
  }
  return out;
}

}  // namespace cwm
