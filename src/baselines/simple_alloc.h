// Positional allocation baselines for the adoption-vs-welfare study
// (Table 6): given one ranked seed list (e.g. the PRIMA+ greedy order),
// assign items to positions by simple patterns.
//
//  * Block       — contiguous blocks per item in the given item order;
//                  this is exactly how SeqGRD-NM assigns its pooled seeds.
//  * Round-robin — s1:i, s2:j, s3:i, s4:j, ...
//  * Snake       — s1:i, s2:j, s3:j, s4:i, ... (order flips every pass).
#ifndef CWM_BASELINES_SIMPLE_ALLOC_H_
#define CWM_BASELINES_SIMPLE_ALLOC_H_

#include <vector>

#include "graph/graph.h"
#include "model/allocation.h"
#include "model/utility.h"

namespace cwm {

/// Contiguous blocks: the first b_{items[0]} seeds get items[0], etc.
Allocation BlockAllocate(int num_items,
                         const std::vector<NodeId>& ordered_seeds,
                         const std::vector<ItemId>& items,
                         const BudgetVector& budgets);

/// Cyclic assignment; items with exhausted budgets are skipped.
Allocation RoundRobinAllocate(int num_items,
                              const std::vector<NodeId>& ordered_seeds,
                              const std::vector<ItemId>& items,
                              const BudgetVector& budgets);

/// Like round-robin but the item order reverses on every pass.
Allocation SnakeAllocate(int num_items,
                         const std::vector<NodeId>& ordered_seeds,
                         const std::vector<ItemId>& items,
                         const BudgetVector& budgets);

class AllocatorRegistry;
/// Registers the RR / Snake / BlockUtil adapters (api/registry.h): each
/// consumes the request's shared PRIMA+ ranking and differs only in the
/// item-to-position assignment.
void RegisterPositionalAllocators(AllocatorRegistry& registry);

}  // namespace cwm

#endif  // CWM_BASELINES_SIMPLE_ALLOC_H_
