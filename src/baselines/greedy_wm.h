// greedyWM baseline (§6.1.2): lazy (CELF) greedy over (node, item) pairs
// on Monte-Carlo marginal welfare.
//
// This is the only baseline that optimizes social welfare directly; the
// paper reports that its quality is consistently good but its running time
// is "exorbitantly high" (it never finished on Orkut within 6 hours). The
// exact algorithm evaluates every (node, item) pair each round; to keep it
// runnable we restrict candidates to the top-`candidate_pool` nodes by
// out-degree (0 = all nodes, the paper-exact variant) and use CELF lazy
// re-evaluation, which is exact for submodular objectives and a standard
// heuristic otherwise.
#ifndef CWM_BASELINES_GREEDY_WM_H_
#define CWM_BASELINES_GREEDY_WM_H_

#include <vector>

#include "algo/params.h"
#include "graph/graph.h"
#include "model/allocation.h"
#include "model/utility.h"

namespace cwm {

/// Options for GreedyWm.
struct GreedyWmOptions {
  /// Number of candidate seed nodes considered; 0 considers every node
  /// (paper-exact, very slow). Candidates are the top spread-maximizing
  /// nodes (one PRIMA+ ranking), which dominates degree heuristics on
  /// graphs whose degree and influence are uncorrelated.
  std::size_t candidate_pool = 200;
};

/// Runs greedyWM; same calling convention as SeqGrd.
Allocation GreedyWm(const Graph& graph, const UtilityConfig& config,
                    const Allocation& sp, const std::vector<ItemId>& items,
                    const BudgetVector& budgets, const AlgoParams& params,
                    const GreedyWmOptions& options = {});

/// Shared helper: the `pool` highest-out-degree nodes (all nodes if pool
/// is 0 or >= n), ties toward smaller id.
std::vector<NodeId> TopOutDegreeNodes(const Graph& graph, std::size_t pool);

/// Shared helper: candidate pool of the `pool` best spread-maximizing
/// nodes (greedy PRIMA+ order); all nodes when pool is 0 or >= n.
std::vector<NodeId> TopSpreadNodes(const Graph& graph, std::size_t pool,
                                   const ImmParams& params);

/// Shared helper: the pool x items candidate grid as single-pair
/// allocations, pool-major with items innermost — the enumeration order
/// both CELF baselines use to populate their heaps from one batched
/// marginal sweep.
std::vector<Allocation> CandidatePairGrid(int num_items,
                                          const std::vector<NodeId>& pool,
                                          const std::vector<ItemId>& items);

class AllocatorRegistry;
/// Registers the greedyWM adapter (api/registry.h); capabilities mark it
/// slow so the sweep's gating applies.
void RegisterGreedyWmAllocator(AllocatorRegistry& registry);

}  // namespace cwm

#endif  // CWM_BASELINES_GREEDY_WM_H_
