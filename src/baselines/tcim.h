// TCIM baseline (§6.1.2), after Lin & Lui [34].
//
// TCIM maximizes one item's *adoption count* under competition, given the
// other items' seeds fixed; the paper runs it item by item and keeps the
// allocation with the best welfare. Under Lin & Lui's proportional-
// adoption GCIC model, contesting the highest-spread nodes is optimal for
// an item's own count even when competitors already sit there (a shared
// top node yields a share of a huge region, which beats owning a small
// region outright on heavy-tailed graphs). The paper observes exactly
// that: "TCIM ... ends up allocating both the items in same seed nodes"
// (§6.2.2), which is what costs it welfare under UIC's utility-driven
// tie-breaking.
//
// We therefore reproduce TCIM's *observable* seed placement: every item
// greedily takes the top spread-maximizing nodes of one IMM ranking
// (items with larger budgets extend the same prefix), i.e. all items
// contest the same top seeds. Welfare is evaluated under UIC by the
// caller, as in the paper.
#ifndef CWM_BASELINES_TCIM_H_
#define CWM_BASELINES_TCIM_H_

#include <vector>

#include "algo/params.h"
#include "graph/graph.h"
#include "model/allocation.h"
#include "model/utility.h"

namespace cwm {

/// Runs the TCIM baseline; same calling convention as SeqGrd. Existing
/// seeds in `sp` are honoured as fixed competitors (they do not move),
/// and every item in `items` stacks onto the shared top-spread prefix.
Allocation Tcim(const Graph& graph, const UtilityConfig& config,
                const Allocation& sp, const std::vector<ItemId>& items,
                const BudgetVector& budgets, const AlgoParams& params);

class AllocatorRegistry;
/// Registers the TCIM adapter (api/registry.h).
void RegisterTcimAllocator(AllocatorRegistry& registry);

}  // namespace cwm

#endif  // CWM_BASELINES_TCIM_H_
