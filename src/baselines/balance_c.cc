#include "baselines/balance_c.h"

#include <algorithm>
#include <memory>
#include <queue>

#include "api/registry.h"
#include "baselines/greedy_wm.h"
#include "simulate/estimator.h"

namespace cwm {

Allocation BalanceC(const Graph& graph, const UtilityConfig& config,
                    const Allocation& sp, const std::vector<ItemId>& items,
                    const BudgetVector& budgets, const AlgoParams& params,
                    const BalanceCOptions& options) {
  CWM_CHECK_MSG(items.size() == 2 && items[0] == 0 && items[1] == 1,
                "Balance-C handles exactly the two items {0, 1}");
  const Allocation sp_or_empty =
      sp.num_items() == 0 ? Allocation(config.num_items()) : sp;
  WelfareEstimator estimator(graph, config, params.estimator);
  const std::vector<NodeId> pool =
      TopSpreadNodes(graph, options.candidate_pool, params.imm);

  std::vector<int> remaining(config.num_items(), 0);
  int total_remaining = 0;
  for (ItemId i : items) {
    remaining[i] = budgets[i];
    total_remaining += budgets[i];
    CWM_CHECK(pool.size() >= static_cast<std::size_t>(budgets[i]));
  }

  struct Entry {
    double gain;
    int round;
    NodeId node;
    ItemId item;
  };
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    if (a.node != b.node) return a.node > b.node;
    return a.item > b.item;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);

  Allocation result(config.num_items());
  // Lazy CELF refreshes go through the batch API (batch of one) so every
  // re-evaluation reuses the estimator's world-snapshot pool.
  auto marginal = [&](NodeId v, ItemId i) {
    Allocation extra(config.num_items());
    extra.Add(v, i);
    return estimator.MarginalBalancedExposureBatch(
        Allocation::Union(result, sp_or_empty), {&extra, 1})[0];
  };

  // The initial candidate grid shares one base; sweep it in one batch.
  {
    const std::vector<double> gains =
        estimator.MarginalBalancedExposureBatch(
            Allocation::Union(result, sp_or_empty),
            CandidatePairGrid(config.num_items(), pool, items));
    std::size_t j = 0;
    for (NodeId v : pool) {
      for (ItemId i : items) heap.push({gains[j++], 0, v, i});
    }
  }

  int round = 0;
  while (total_remaining > 0 && !heap.empty()) {
    // Same per-pop cancellation poll as GreedyWm (see greedy_wm.cc).
    if (CancelRequested(params.imm.cancel)) break;
    Entry top = heap.top();
    heap.pop();
    if (remaining[top.item] == 0) continue;
    if (top.round != round) {
      top.gain = marginal(top.node, top.item);
      top.round = round;
      heap.push(top);
      continue;
    }
    result.Add(top.node, top.item);
    --remaining[top.item];
    --total_remaining;
    ++round;
  }
  return result;
}

namespace {

class BalanceCAllocator final : public Allocator {
 public:
  AlgoKind Kind() const override { return AlgoKind::kBalanceC; }
  AllocatorCapabilities Capabilities() const override {
    return {.slow = true, .two_items_only = true};
  }

  Status Allocate(const AllocateRequest& request,
                  AllocateResult* result) const override {
    if (Status cancelled = CheckCancelled(request); !cancelled.ok()) {
      return cancelled;
    }
    // Mirror BalanceC()'s own contract (items exactly {0, 1}) so near-miss
    // requests skip instead of hitting its CWM_CHECK abort.
    if (request.config->num_items() != 2 || request.items.size() != 2 ||
        request.items[0] != 0 || request.items[1] != 1) {
      return Status::FailedPrecondition(
          "Balance-C requires exactly the two items {0, 1}");
    }
    result->allocation =
        BalanceC(*request.graph, *request.config, FixedOf(request),
                 request.items, request.budgets, request.params,
                 {.candidate_pool = request.candidate_pool});
    return Status::OK();
  }
};

}  // namespace

void RegisterBalanceCAllocator(AllocatorRegistry& registry) {
  registry.Register(std::make_unique<BalanceCAllocator>());
}

}  // namespace cwm
