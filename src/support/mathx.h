// Numerical kernel used by the sampling-theory bounds (IMM Eqs. 6-8) and by
// expected-truncated-utility computation (normal CDF/PDF closed forms,
// Gauss-Legendre quadrature for general noise laws).
#ifndef CWM_SUPPORT_MATHX_H_
#define CWM_SUPPORT_MATHX_H_

#include <cstdint>
#include <functional>

namespace cwm {

/// Natural log of the binomial coefficient C(n, k) via lgamma.
/// Exact enough for the IMM sample-size bounds where it appears inside logs.
double LogBinomial(uint64_t n, uint64_t k);

/// Standard normal probability density.
double NormalPdf(double x);

/// Standard normal cumulative distribution (via erfc; ~1e-15 accuracy).
double NormalCdf(double x);

/// E[max(0, mu + sigma * Z)] for Z ~ N(0,1): the expected truncated utility
/// of an item with deterministic utility `mu` under normal noise.
/// Closed form: mu * Phi(mu/sigma) + sigma * phi(mu/sigma).
double ExpectedPositivePartNormal(double mu, double sigma);

/// E[max(0, mu + U)] for U ~ Uniform(-a, a).
double ExpectedPositivePartUniform(double mu, double a);

/// Adaptive-free 64-point Gauss-Legendre quadrature of `f` over [lo, hi].
/// Used for noise laws without a closed-form truncated mean (e.g. the
/// clamped normal used for the superior-item configurations C5/C6).
double GaussLegendre64(const std::function<double(double)>& f, double lo,
                       double hi);

}  // namespace cwm

#endif  // CWM_SUPPORT_MATHX_H_
