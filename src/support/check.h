// Invariant-checking macros for the cwm library.
//
// CWM_CHECK is always on (benchmark-safe: the checked conditions are O(1)
// and outside inner loops). Violations indicate programmer error and abort
// with a source location, following the style of RocksDB's assert usage for
// unrecoverable states.
#ifndef CWM_SUPPORT_CHECK_H_
#define CWM_SUPPORT_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define CWM_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CWM_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define CWM_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CWM_CHECK failed: %s (%s) at %s:%d\n", #cond,   \
                   (msg), __FILE__, __LINE__);                              \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // CWM_SUPPORT_CHECK_H_
