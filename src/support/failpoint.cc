#include "support/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace cwm {

namespace {

// The canonical inventory of injection sites. Every CWM_FAILPOINT(_STATUS)
// call in src/ must name an entry here, docs/robustness.md tables the same
// set, and scripts/check_docs.sh diffs all three. Keep one name per line
// between the BEGIN/END markers — the gate parses this block textually.
// BEGIN_FAILPOINT_INVENTORY
const char* const kFailpointInventory[] = {
    "cache.graph.load",
    "cache.graph.store",
    "cache.open",
    "cache.rr.load",
    "cache.rr.store",
    "serve.accept",
    "serve.queue_push",
    "serve.recv",
    "serve.send",
    "store.delta.validate",
    "store.graph.validate",
    "store.mapped_file.mmap",
    "store.mapped_file.open",
    "store.rr.validate",
    "store.write.fsync",
    "store.write.open",
    "store.write.rename",
    "store.write.write",
};
// END_FAILPOINT_INVENTORY

Status SpecError(const std::string& spec, const char* what) {
  return Status::InvalidArgument("failpoint spec '" + spec + "': " + what);
}

Status InjectedStatus(Status::Code code, const char* name) {
  std::string msg =
      std::string("injected failure at failpoint '") + name + "'";
  switch (code) {
    case Status::Code::kCorruption: return Status::Corruption(std::move(msg));
    case Status::Code::kNotFound: return Status::NotFound(std::move(msg));
    case Status::Code::kCancelled: return Status::Cancelled(std::move(msg));
    default: return Status::IOError(std::move(msg));
  }
}

}  // namespace

namespace failpoint_internal {

std::atomic<int> g_armed{0};

Status Fire(const char* name) { return FailpointRegistry::Global().Fire(name); }

}  // namespace failpoint_internal

FailpointRegistry::FailpointRegistry() {
  for (const char* name : kFailpointInventory) points_.emplace(name, State{});
  if (const char* env = std::getenv("CWM_FAILPOINTS");
      env != nullptr && *env != '\0') {
    if (!kFailpointsCompiledIn) {
      std::fprintf(stderr,
                   "cwm: CWM_FAILPOINTS set but failpoints are compiled "
                   "out (-DCWM_FAILPOINTS=OFF); ignoring\n");
      return;
    }
    if (const Status installed = InstallFromSpec(env); !installed.ok()) {
      // Report and continue: an injection typo must not take down the
      // process it was meant to harden.
      std::fprintf(stderr, "cwm: CWM_FAILPOINTS: %s\n",
                   installed.ToString().c_str());
    }
  }
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

// Constructing the registry at static-init time (not first Fire) makes
// the env var authoritative even for processes whose first armed check
// happens on a hot path that skips Global() while g_armed is zero.
namespace {
const bool g_env_installed = (FailpointRegistry::Global(), true);
}  // namespace

Status FailpointRegistry::Set(const std::string& name,
                              const std::string& spec) {
  // Grammar: [COUNT*]KIND[(ARG)]
  std::string body = spec;
  int64_t count = -1;
  if (const std::size_t star = body.find('*'); star != std::string::npos) {
    char* end = nullptr;
    count = std::strtol(body.c_str(), &end, 10);
    if (end != body.c_str() + star || count < 1) {
      return SpecError(spec, "count must be a positive integer before '*'");
    }
    body = body.substr(star + 1);
  }
  std::string arg;
  if (const std::size_t paren = body.find('('); paren != std::string::npos) {
    if (body.back() != ')') return SpecError(spec, "unterminated '('");
    arg = body.substr(paren + 1, body.size() - paren - 2);
    body = body.substr(0, paren);
  }

  State state;
  state.remaining = count;
  if (body == "off") {
    state.kind = State::Kind::kOff;
  } else if (body == "error") {
    state.kind = State::Kind::kError;
    if (arg.empty() || arg == "io") {
      state.error_code = Status::Code::kIOError;
    } else if (arg == "corruption") {
      state.error_code = Status::Code::kCorruption;
    } else if (arg == "notfound") {
      state.error_code = Status::Code::kNotFound;
    } else if (arg == "cancelled") {
      state.error_code = Status::Code::kCancelled;
    } else {
      return SpecError(spec,
                       "error kind must be io, corruption, notfound, or "
                       "cancelled");
    }
  } else if (body == "delay") {
    state.kind = State::Kind::kDelay;
    char* end = nullptr;
    state.delay_ms = static_cast<int>(std::strtol(arg.c_str(), &end, 10));
    if (arg.empty() || *end != '\0' || state.delay_ms < 0) {
      return SpecError(spec, "delay requires milliseconds, e.g. delay(10)");
    }
  } else {
    return SpecError(spec, "kind must be error, delay, or off");
  }
  state.spec = spec;

  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(name);
  if (it == points_.end()) {
    std::string known;
    for (const char* n : kFailpointInventory) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return Status::InvalidArgument("unknown failpoint '" + name +
                                   "'; registered: " + known);
  }
  const bool was_armed = it->second.kind != State::Kind::kOff;
  state.hits = it->second.hits;
  const bool now_armed = state.kind != State::Kind::kOff;
  it->second = std::move(state);
  if (was_armed != now_armed) {
    failpoint_internal::g_armed.fetch_add(now_armed ? 1 : -1,
                                          std::memory_order_relaxed);
  }
  return Status::OK();
}

void FailpointRegistry::Clear(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(name);
  if (it == points_.end()) return;
  if (it->second.kind != State::Kind::kOff) {
    failpoint_internal::g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
  it->second.kind = State::Kind::kOff;
  it->second.spec.clear();
}

void FailpointRegistry::ClearAll() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, state] : points_) {
    if (state.kind != State::Kind::kOff) {
      failpoint_internal::g_armed.fetch_sub(1, std::memory_order_relaxed);
    }
    state = State{};
  }
}

uint64_t FailpointRegistry::HitCount(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

std::vector<FailpointInfo> FailpointRegistry::List() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FailpointInfo> out;
  out.reserve(points_.size());
  for (const auto& [name, state] : points_) {
    out.push_back({name, state.spec, state.hits});
  }
  return out;  // map iteration order = name-sorted
}

Status FailpointRegistry::InstallFromSpec(const std::string& specs) {
  std::size_t start = 0;
  while (start < specs.size()) {
    std::size_t end = specs.find_first_of(";,", start);
    if (end == std::string::npos) end = specs.size();
    const std::string entry = specs.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return SpecError(entry, "expected NAME=POLICY");
    }
    if (const Status set = Set(entry.substr(0, eq), entry.substr(eq + 1));
        !set.ok()) {
      return set;
    }
  }
  return Status::OK();
}

Status FailpointRegistry::Fire(const char* name) {
  int delay_ms = -1;
  Status injected = Status::OK();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = points_.find(std::string_view(name));
    if (it == points_.end() || it->second.kind == State::Kind::kOff) {
      return Status::OK();
    }
    State& state = it->second;
    ++state.hits;
    if (state.remaining > 0 && --state.remaining == 0) {
      // Trigger count exhausted: this firing still applies, then disarm.
      state.kind = State::Kind::kOff;
      failpoint_internal::g_armed.fetch_sub(1, std::memory_order_relaxed);
    }
    if (state.kind == State::Kind::kDelay ||
        (state.kind == State::Kind::kOff && state.delay_ms > 0)) {
      delay_ms = state.delay_ms;
    } else {
      injected = InjectedStatus(state.error_code, name);
    }
  }
  if (delay_ms >= 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    return Status::OK();
  }
  return injected;
}

}  // namespace cwm
