#include "support/thread_pool.h"

#include <atomic>
#include <thread>
#include <vector>

namespace cwm {

unsigned DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelFor(std::size_t num_chunks,
                 const std::function<void(std::size_t)>& fn,
                 unsigned num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  if (num_threads <= 1 || num_chunks <= 1) {
    for (std::size_t i = 0; i < num_chunks; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_chunks) return;
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  const unsigned spawned =
      static_cast<unsigned>(std::min<std::size_t>(num_threads, num_chunks));
  threads.reserve(spawned);
  for (unsigned t = 1; t < spawned; ++t) threads.emplace_back(worker);
  worker();
  for (auto& th : threads) th.join();
}

}  // namespace cwm
