#include "support/thread_pool.h"

#include <atomic>
#include <thread>
#include <vector>

namespace cwm {

unsigned DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelFor(std::size_t num_chunks,
                 const std::function<void(std::size_t)>& fn,
                 unsigned num_threads) {
  ParallelForWorkers(
      num_chunks,
      [&fn](std::size_t /*worker*/, std::size_t chunk) { fn(chunk); },
      num_threads);
}

void ParallelForWorkers(
    std::size_t num_chunks,
    const std::function<void(std::size_t worker_index,
                             std::size_t chunk_index)>& fn,
    unsigned num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  if (num_threads <= 1 || num_chunks <= 1) {
    for (std::size_t i = 0; i < num_chunks; ++i) fn(0, i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&](std::size_t worker_index) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_chunks) return;
      fn(worker_index, i);
    }
  };
  std::vector<std::thread> threads;
  const unsigned spawned =
      static_cast<unsigned>(std::min<std::size_t>(num_threads, num_chunks));
  threads.reserve(spawned);
  for (unsigned t = 1; t < spawned; ++t) threads.emplace_back(worker, t);
  worker(0);
  for (auto& th : threads) th.join();
}

}  // namespace cwm
