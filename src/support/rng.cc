#include "support/rng.h"

// Header-only; this translation unit exists so the build exposes a stable
// object for the module and to host any future out-of-line additions.
namespace cwm {}  // namespace cwm
