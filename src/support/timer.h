// Wall-clock timer used by the experiment harness to report running times
// in the same units as the paper's figures (seconds).
#ifndef CWM_SUPPORT_TIMER_H_
#define CWM_SUPPORT_TIMER_H_

#include <chrono>
#include <cstdint>

namespace cwm {

/// Monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

  /// Nanoseconds on the process-wide steady clock (epoch-relative). All
  /// threads share this clock, so trace-event timestamps taken on
  /// different threads order and nest correctly (obs/trace.h).
  static uint64_t NowNanos() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cwm

#endif  // CWM_SUPPORT_TIMER_H_
