// Deterministic pseudo-random number generation for cwm.
//
// Two generators are provided:
//  * Rng           — xoshiro256++ stream generator; fast general-purpose
//                    uniform/normal sampling. Every randomized component in
//                    the library takes an explicit seed, so whole experiment
//                    runs are reproducible bit-for-bit.
//  * HashCoin      — stateless hash-based Bernoulli coin. Used to realize
//                    "possible worlds" lazily: live(edge e in world s) is a
//                    pure function of (s, e), so all diffusion queries in one
//                    world observe a consistent sampled subgraph without ever
//                    materializing it (see simulate/world.h).
#ifndef CWM_SUPPORT_RNG_H_
#define CWM_SUPPORT_RNG_H_

#include <cmath>
#include <cstdint>

namespace cwm {

/// SplitMix64 step; used for seeding and as the mixing function of HashCoin.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes two 64-bit words into one; avalanche-quality (SplitMix64 finalizer).
inline uint64_t MixHash(uint64_t a, uint64_t b) {
  uint64_t state = a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2));
  state ^= b * 0xff51afd7ed558ccdULL;
  return SplitMix64(state);
}

/// xoshiro256++ generator. Not cryptographic; excellent statistical quality
/// and ~1ns/draw, which matters in Monte-Carlo welfare estimation.
class Rng {
 public:
  /// Seeds the four state words from `seed` via SplitMix64, per the
  /// xoshiro authors' recommendation.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  /// Next raw 64-bit draw.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// multiply-shift rejection-free mapping (bias < 2^-32 for bound < 2^32,
  /// negligible for our graph sizes).
  uint64_t NextBounded(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  /// Bernoulli draw with success probability `p`.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Standard normal draw (Box–Muller; caches the second variate).
  double NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-300);
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Derives an independent child generator; used to hand one stream to each
  /// worker thread / Monte-Carlo replicate.
  Rng Split() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

/// Stateless Bernoulli coin keyed by (world_seed, object_id).
/// HashCoin::Flip(s, id, p) is deterministic, so repeated queries for the
/// same object in the same world always agree — the backbone of the lazy
/// possible-world representation.
struct HashCoin {
  static bool Flip(uint64_t world_seed, uint64_t object_id, double p) {
    // Compare against p * 2^64 in integer space to avoid the double divide.
    const uint64_t h = MixHash(world_seed, object_id);
    return h < static_cast<uint64_t>(p * 18446744073709551616.0);
  }

  /// Uniform double in [0,1) keyed by (world_seed, object_id).
  static double Uniform(uint64_t world_seed, uint64_t object_id) {
    return (MixHash(world_seed, object_id) >> 11) * 0x1.0p-53;
  }
};

}  // namespace cwm

#endif  // CWM_SUPPORT_RNG_H_
