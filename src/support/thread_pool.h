// Minimal fixed-size thread pool for embarrassingly parallel Monte-Carlo
// estimation. The pool hands each worker a disjoint chunk index; callers
// derive per-chunk RNG streams so results are deterministic regardless of
// scheduling.
#ifndef CWM_SUPPORT_THREAD_POOL_H_
#define CWM_SUPPORT_THREAD_POOL_H_

#include <cstddef>
#include <functional>

namespace cwm {

/// Runs `fn(chunk_index)` for chunk_index in [0, num_chunks), spreading
/// chunks over up to `num_threads` std::threads. With num_threads <= 1 the
/// work runs inline on the caller's thread (the default on single-core
/// machines). Blocks until all chunks complete.
void ParallelFor(std::size_t num_chunks,
                 const std::function<void(std::size_t)>& fn,
                 unsigned num_threads = 0);

/// Like ParallelFor, but also hands `fn` the stable index of the worker
/// running the chunk (0 <= worker_index < min(num_threads, num_chunks)),
/// so callers can reuse per-worker scratch state (e.g. one RrSampler per
/// worker) without locking. Which worker runs which chunk is scheduling-
/// dependent; deterministic callers must key results by chunk index only.
void ParallelForWorkers(
    std::size_t num_chunks,
    const std::function<void(std::size_t worker_index,
                             std::size_t chunk_index)>& fn,
    unsigned num_threads = 0);

/// Number of threads ParallelFor uses when num_threads == 0:
/// std::thread::hardware_concurrency(), at least 1.
unsigned DefaultThreads();

}  // namespace cwm

#endif  // CWM_SUPPORT_THREAD_POOL_H_
