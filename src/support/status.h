// Status / StatusOr: exception-free error propagation for fallible
// operations (file I/O, configuration validation). Modeled on the
// RocksDB/Abseil idiom recommended by the database C++ guides.
#ifndef CWM_SUPPORT_STATUS_H_
#define CWM_SUPPORT_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "support/check.h"

namespace cwm {

/// Result of a fallible operation. Library code never throws; operations
/// that can fail return Status (or StatusOr<T> when they produce a value).
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kCorruption,
    kOutOfRange,
    kFailedPrecondition,
    kCancelled,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  /// A precondition of the operation does not hold (e.g. an allocator's
  /// requirements on the utility configuration). Unlike InvalidArgument
  /// this is a property of the inputs' *content*, so callers typically
  /// skip rather than abort (the sweep turns it into a skipped row).
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  /// The operation observed a cooperative cancellation request.
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: negative budget".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Value-or-error container. `value()` aborts if the status is not OK;
/// callers must test `ok()` first on fallible paths.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    CWM_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CWM_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    CWM_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    CWM_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace cwm

#endif  // CWM_SUPPORT_STATUS_H_
