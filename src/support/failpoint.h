// Failpoint fault injection: named sites at every fallible I/O boundary
// (store opens, mmaps, writes, fsyncs, renames; serve accept/recv/send)
// that tests and CI can arm with an error or delay policy, so degraded
// paths are exercised deterministically instead of waiting for a real
// torn disk or ENOSPC.
//
// A site is a macro call naming an entry of the static inventory in
// failpoint.cc (the registry rejects unknown names, so a typo'd site
// cannot silently never fire):
//
//   Status DoWrite(...) {
//     CWM_FAILPOINT("store.write.fsync");   // early-returns the injected
//     ...                                    // Status when armed
//   }
//
//   // Expression form, for sites with custom fallback handling:
//   if (Status s = CWM_FAILPOINT_STATUS("store.mapped_file.mmap"); !s.ok())
//     ... fall back to a heap read ...
//
// Policies follow the grammar `NAME=[COUNT*]KIND[(ARG)]`, joined by ';':
//
//   CWM_FAILPOINTS="store.write.fsync=error;cache.rr.load=2*error(corruption);serve.send=1*error;store.mapped_file.mmap=delay(10)"
//
//   error[(io|corruption|notfound|cancelled)]   return that Status code
//   delay(MS)                                   sleep, then succeed
//   off                                         disarm
//   COUNT*                                      fire COUNT times, then off
//
// The env var is parsed once at process start; tests use the Set/Clear
// API directly. Unarmed sites cost one relaxed atomic load of a global
// armed-site count; when CWM_FAILPOINTS_ENABLED is not defined (CMake
// -DCWM_FAILPOINTS=OFF) both macros compile to nothing at all.
#ifndef CWM_SUPPORT_FAILPOINT_H_
#define CWM_SUPPORT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/status.h"

namespace cwm {

#if defined(CWM_FAILPOINTS_ENABLED)
inline constexpr bool kFailpointsCompiledIn = true;
#else
inline constexpr bool kFailpointsCompiledIn = false;
#endif

namespace failpoint_internal {
/// Number of currently armed sites; the macros' fast path.
extern std::atomic<int> g_armed;

/// Slow path behind the macros: looks up `name` and applies its policy.
Status Fire(const char* name);
}  // namespace failpoint_internal

/// True when at least one failpoint has an active policy.
inline bool FailpointsArmed() {
  if constexpr (!kFailpointsCompiledIn) return false;
  return failpoint_internal::g_armed.load(std::memory_order_relaxed) != 0;
}

#if defined(CWM_FAILPOINTS_ENABLED)
/// Evaluates to the injected Status (OK when unarmed). Expression form
/// for sites that degrade rather than propagate.
#define CWM_FAILPOINT_STATUS(name)                         \
  (::cwm::FailpointsArmed() ? ::cwm::failpoint_internal::Fire(name) \
                            : ::cwm::Status::OK())
/// Early-returns the injected Status from the enclosing function.
#define CWM_FAILPOINT(name)                                      \
  do {                                                           \
    if (::cwm::FailpointsArmed()) {                              \
      ::cwm::Status cwm_fp_status = ::cwm::failpoint_internal::Fire(name); \
      if (!cwm_fp_status.ok()) return cwm_fp_status;             \
    }                                                            \
  } while (false)
#else
#define CWM_FAILPOINT_STATUS(name) (::cwm::Status::OK())
#define CWM_FAILPOINT(name) \
  do {                      \
  } while (false)
#endif

/// One row of List(): a registered site, its active policy spec (empty
/// when disarmed), and how many times it has fired.
struct FailpointInfo {
  std::string name;
  std::string policy;
  uint64_t hits = 0;
};

/// The process-wide failpoint table. Every site name is pre-registered
/// from the static inventory; Set() on an unknown name is an error.
class FailpointRegistry {
 public:
  /// The singleton. First access installs policies from CWM_FAILPOINTS
  /// (malformed entries are reported on stderr and skipped — a typo'd
  /// injection must not take down the process it was meant to harden).
  static FailpointRegistry& Global();

  /// Arms `name` with `spec` ("[COUNT*]KIND[(ARG)]"; see header comment).
  /// InvalidArgument on unknown name or malformed spec.
  Status Set(const std::string& name, const std::string& spec);

  /// Disarms `name` (keeps its hit count). Unknown names are ignored.
  void Clear(const std::string& name);

  /// Disarms every site and zeroes hit counts (test isolation).
  void ClearAll();

  /// Times `name` has fired (applied its policy) since process start.
  uint64_t HitCount(const std::string& name) const;

  /// Every registered site, name-sorted (`cwm_run --list-failpoints`).
  std::vector<FailpointInfo> List() const;

  /// Parses "name=spec;name=spec" (';' or ',' separated) and arms each.
  /// Stops at the first bad entry and returns its error.
  Status InstallFromSpec(const std::string& specs);

 private:
  friend Status failpoint_internal::Fire(const char* name);

  struct State {
    enum class Kind { kOff, kError, kDelay };
    Kind kind = Kind::kOff;
    Status::Code error_code = Status::Code::kIOError;
    int delay_ms = 0;
    int64_t remaining = -1;  ///< fires left; -1 = unlimited
    uint64_t hits = 0;
    std::string spec;  ///< original text, for List()
  };

  FailpointRegistry();

  Status Fire(const char* name);

  mutable std::mutex mutex_;
  std::map<std::string, State, std::less<>> points_;
};

}  // namespace cwm

#endif  // CWM_SUPPORT_FAILPOINT_H_
