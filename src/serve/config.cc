#include "serve/config.h"

#include <cmath>
#include <set>

#include "serve/json.h"

namespace cwm {

namespace {

Status FieldError(std::string_view key, std::string_view what) {
  return Status::InvalidArgument("serve config field '" + std::string(key) +
                                 "': " + std::string(what));
}

StatusOr<int64_t> AsInteger(const JsonValue& value, std::string_view key) {
  if (!value.IsNumber() || value.number != std::floor(value.number) ||
      std::fabs(value.number) > 9.0e15) {
    return FieldError(key, "expected an integer");
  }
  return static_cast<int64_t>(value.number);
}

StatusOr<ServeGraphSpec> ParseGraphSpec(const JsonValue& value) {
  if (!value.IsObject()) {
    return Status::InvalidArgument("graphs entries must be objects");
  }
  ServeGraphSpec spec;
  for (const auto& [key, member] : value.object) {
    if (key == "name") {
      if (!member.IsString()) return FieldError(key, "expected a string");
      spec.name = member.string;
    } else if (key == "scenario") {
      if (!member.IsString()) return FieldError(key, "expected a string");
      spec.scenario = member.string;
    } else if (key == "network") {
      StatusOr<int64_t> n = AsInteger(member, key);
      if (!n.ok()) return n.status();
      if (n.value() < 0) return FieldError(key, "must be >= 0");
      spec.network_index = static_cast<std::size_t>(n.value());
    } else if (key == "config") {
      StatusOr<int64_t> n = AsInteger(member, key);
      if (!n.ok()) return n.status();
      if (n.value() < 0) return FieldError(key, "must be >= 0");
      spec.config_index = static_cast<std::size_t>(n.value());
    } else if (key == "scale") {
      if (!member.IsNumber() || member.number <= 0.0) {
        return FieldError(key, "expected a positive number");
      }
      spec.scale = member.number;
    } else {
      return Status::InvalidArgument("unknown graphs field '" + key + "'");
    }
  }
  if (spec.name.empty()) {
    return Status::InvalidArgument("graphs entry missing 'name'");
  }
  if (spec.scenario.empty()) {
    return Status::InvalidArgument("graphs entry missing 'scenario'");
  }
  return spec;
}

}  // namespace

Status ServeConfig::Validate() const {
  if (graphs.empty()) {
    return Status::InvalidArgument("serve config needs at least one graph");
  }
  std::set<std::string> names;
  for (const ServeGraphSpec& graph : graphs) {
    if (!names.insert(graph.name).second) {
      return Status::InvalidArgument("duplicate graph name '" + graph.name +
                                     "'");
    }
  }
  if (queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port must be in [0, 65535]");
  }
  return Status::OK();
}

StatusOr<ServeConfig> ParseServeConfig(std::string_view text) {
  StatusOr<JsonValue> parsed = ParseJson(text);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = parsed.value();
  if (!root.IsObject()) {
    return Status::InvalidArgument("serve config must be a JSON object");
  }

  ServeConfig config;
  for (const auto& [key, value] : root.object) {
    if (key == "port") {
      StatusOr<int64_t> n = AsInteger(value, key);
      if (!n.ok()) return n.status();
      config.port = static_cast<int>(n.value());
    } else if (key == "workers") {
      StatusOr<int64_t> n = AsInteger(value, key);
      if (!n.ok()) return n.status();
      if (n.value() < 0) return FieldError(key, "must be >= 0");
      config.workers = static_cast<unsigned>(n.value());
    } else if (key == "queue_capacity") {
      StatusOr<int64_t> n = AsInteger(value, key);
      if (!n.ok()) return n.status();
      if (n.value() < 1) return FieldError(key, "must be >= 1");
      config.queue_capacity = static_cast<std::size_t>(n.value());
    } else if (key == "snapshot_budget_mb") {
      StatusOr<int64_t> n = AsInteger(value, key);
      if (!n.ok()) return n.status();
      if (n.value() < 0) return FieldError(key, "must be >= 0");
      config.snapshot_budget_bytes =
          static_cast<std::size_t>(n.value()) << 20;
    } else if (key == "cache_dir") {
      if (!value.IsString()) return FieldError(key, "expected a string");
      config.cache_dir = value.string;
    } else if (key == "graphs") {
      if (!value.IsArray()) return FieldError(key, "expected an array");
      for (const JsonValue& entry : value.array) {
        StatusOr<ServeGraphSpec> spec = ParseGraphSpec(entry);
        if (!spec.ok()) return spec.status();
        config.graphs.push_back(std::move(spec).value());
      }
    } else {
      return Status::InvalidArgument("unknown serve config field '" + key +
                                     "'");
    }
  }

  if (Status valid = config.Validate(); !valid.ok()) return valid;
  return config;
}

}  // namespace cwm
