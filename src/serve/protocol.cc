#include "serve/protocol.h"

#include <algorithm>
#include <cmath>

#include "support/rng.h"

namespace cwm {

namespace {

// Serve-side seed stream tags. Deliberately distinct values from the
// sweep's cell tags (scenario/sweep.cc): a served request and a sweep
// cell with the same user seed are different universes by design — the
// serve contract is "same request, same response", not "same as some
// sweep row".
constexpr uint64_t kServeImmTag = 0x53131;
constexpr uint64_t kServeEstTag = 0x53E57;
constexpr uint64_t kServeRankTag = 0x537A2;
constexpr uint64_t kServeEvalTag = 0x53E7A;

Status FieldError(std::string_view key, std::string_view what) {
  return Status::InvalidArgument("request field '" + std::string(key) +
                                 "': " + std::string(what));
}

StatusOr<int64_t> AsInteger(const JsonValue& value, std::string_view key) {
  if (!value.IsNumber() || value.number != std::floor(value.number) ||
      std::fabs(value.number) > 9.0e15) {
    return FieldError(key, "expected an integer");
  }
  return static_cast<int64_t>(value.number);
}

}  // namespace

const char* ServeErrorCodeName(ServeErrorCode code) {
  switch (code) {
    case ServeErrorCode::kInvalidArgument: return "invalid_argument";
    case ServeErrorCode::kNotFound: return "not_found";
    case ServeErrorCode::kOverloaded: return "overloaded";
    case ServeErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ServeErrorCode::kCancelled: return "cancelled";
    case ServeErrorCode::kInternal: return "internal";
  }
  return "internal";
}

ServeErrorCode ServeErrorCodeOf(const Status& status, bool deadline_fired) {
  switch (status.code()) {
    case Status::Code::kInvalidArgument:
      return ServeErrorCode::kInvalidArgument;
    case Status::Code::kNotFound:
      return ServeErrorCode::kNotFound;
    case Status::Code::kCancelled:
      return deadline_fired ? ServeErrorCode::kDeadlineExceeded
                            : ServeErrorCode::kCancelled;
    default:
      return ServeErrorCode::kInternal;
  }
}

StatusOr<ServeRequest> ParseServeRequest(std::string_view line) {
  StatusOr<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = parsed.value();
  if (!root.IsObject()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  ServeRequest request;
  bool have_graph = false, have_algo = false, have_budgets = false;
  for (const auto& [key, value] : root.object) {
    if (key == "id") {
      if (!value.IsString()) return FieldError(key, "expected a string");
      request.id = value.string;
    } else if (key == "graph") {
      if (!value.IsString()) return FieldError(key, "expected a string");
      request.graph = value.string;
      have_graph = true;
    } else if (key == "algo") {
      if (!value.IsString()) return FieldError(key, "expected a string");
      const std::optional<AlgoKind> algo = ParseAlgo(value.string);
      if (!algo.has_value()) {
        return Status::NotFound("unknown algorithm '" + value.string + "'");
      }
      request.algo = *algo;
      have_algo = true;
    } else if (key == "budgets") {
      if (!value.IsArray() || value.array.empty()) {
        return FieldError(key, "expected a non-empty array");
      }
      if (value.array.front().IsArray()) {
        // Batch form: [[...], [...], ...]
        for (const JsonValue& point : value.array) {
          if (!point.IsArray() || point.array.empty()) {
            return FieldError(key, "each budget point must be a non-empty "
                                   "array of integers");
          }
          std::vector<int> budgets;
          for (const JsonValue& b : point.array) {
            StatusOr<int64_t> n = AsInteger(b, key);
            if (!n.ok()) return n.status();
            budgets.push_back(static_cast<int>(n.value()));
          }
          request.budget_points.push_back(std::move(budgets));
        }
      } else {
        std::vector<int> budgets;
        for (const JsonValue& b : value.array) {
          StatusOr<int64_t> n = AsInteger(b, key);
          if (!n.ok()) return n.status();
          budgets.push_back(static_cast<int>(n.value()));
        }
        request.budget_points.push_back(std::move(budgets));
      }
      have_budgets = true;
    } else if (key == "items") {
      if (!value.IsArray()) return FieldError(key, "expected an array");
      for (const JsonValue& item : value.array) {
        StatusOr<int64_t> n = AsInteger(item, key);
        if (!n.ok()) return n.status();
        request.items.push_back(static_cast<ItemId>(n.value()));
      }
    } else if (key == "seed") {
      StatusOr<int64_t> n = AsInteger(value, key);
      if (!n.ok()) return n.status();
      if (n.value() < 0) return FieldError(key, "must be >= 0");
      request.seed = static_cast<uint64_t>(n.value());
    } else if (key == "deadline_ms") {
      StatusOr<int64_t> n = AsInteger(value, key);
      if (!n.ok()) return n.status();
      if (n.value() < 0) return FieldError(key, "must be >= 0");
      request.deadline_ms = n.value();
    } else if (key == "sims") {
      StatusOr<int64_t> n = AsInteger(value, key);
      if (!n.ok()) return n.status();
      if (n.value() < 0) return FieldError(key, "must be >= 0");
      request.sims = static_cast<int>(n.value());
    } else if (key == "eval_sims") {
      StatusOr<int64_t> n = AsInteger(value, key);
      if (!n.ok()) return n.status();
      if (n.value() < 0) return FieldError(key, "must be >= 0");
      request.eval_sims = static_cast<int>(n.value());
    } else if (key == "epsilon") {
      if (!value.IsNumber() || value.number <= 0.0 || value.number >= 1.0) {
        return FieldError(key, "expected a number in (0, 1)");
      }
      request.epsilon = value.number;
    } else if (key == "ell") {
      if (!value.IsNumber() || value.number <= 0.0) {
        return FieldError(key, "expected a positive number");
      }
      request.ell = value.number;
    } else if (key == "evaluate") {
      if (!value.IsBool()) return FieldError(key, "expected a boolean");
      request.evaluate = value.bool_value;
    } else {
      // Reject unknown keys: a typo'd "dedaline_ms" must fail loudly,
      // not silently run without a deadline.
      return Status::InvalidArgument("unknown request field '" + key + "'");
    }
  }

  if (!have_graph) return Status::InvalidArgument("missing field 'graph'");
  if (!have_algo) return Status::InvalidArgument("missing field 'algo'");
  if (!have_budgets) {
    return Status::InvalidArgument("missing field 'budgets'");
  }
  return request;
}

StatusOr<std::vector<BudgetVector>> ResolveServeBudgets(
    const ServeRequest& request, int num_items) {
  std::vector<BudgetVector> points;
  points.reserve(request.budget_points.size());
  for (const std::vector<int>& raw : request.budget_points) {
    BudgetVector budgets;
    if (raw.size() == 1) {
      budgets.assign(static_cast<std::size_t>(num_items), raw.front());
    } else if (raw.size() == static_cast<std::size_t>(num_items)) {
      budgets.assign(raw.begin(), raw.end());
    } else {
      return Status::InvalidArgument(
          "budget point must have one entry (broadcast) or one per "
          "config item (" +
          std::to_string(num_items) + ")");
    }
    for (int b : budgets) {
      if (b < 1) {
        return Status::InvalidArgument("budgets must be >= 1");
      }
    }
    points.push_back(std::move(budgets));
  }
  return points;
}

AllocateRequest BuildAllocateRequest(const ServeRequest& request,
                                     const BudgetVector& budgets,
                                     const std::vector<ItemId>& items,
                                     const std::atomic<bool>* cancel) {
  const uint64_t algo_seed =
      MixHash(request.seed, static_cast<uint64_t>(request.algo) + 0x100);
  const int sims = request.sims > 0 ? request.sims : kServeDefaultSims;
  const int eval_sims =
      request.eval_sims > 0 ? request.eval_sims : kServeDefaultEvalSims;

  AllocateRequest out;
  out.algo = request.algo;
  out.items = items;
  out.budgets = budgets;
  out.params.imm = {.epsilon = request.epsilon,
                    .ell = request.ell,
                    .seed = MixHash(algo_seed, kServeImmTag)};
  out.params.estimator = {.num_worlds = sims,
                          .seed = MixHash(algo_seed, kServeEstTag)};
  out.ranking = {.epsilon = request.epsilon,
                 .ell = request.ell,
                 .seed = MixHash(request.seed, kServeRankTag)};
  // Evaluation is keyed by the request seed alone (not the algorithm),
  // so two algorithms served with one seed are compared on the same
  // sampled universes — the sweep's convention.
  out.eval = {.num_worlds = eval_sims,
              .seed = MixHash(request.seed, kServeEvalTag)};
  out.evaluate = request.evaluate;
  out.cancel = cancel;
  return out;
}

std::string FormatServeResponse(
    const ServeRequest& request,
    const std::vector<ServePointResult>& results, bool degraded) {
  std::string out = "{";
  out += "\"id\":";
  AppendJsonString(&out, request.id);
  out += ",\"ok\":true,\"graph\":";
  AppendJsonString(&out, request.graph);
  out += ",\"algo\":";
  AppendJsonString(&out, AlgoName(request.algo));
  if (degraded) out += ",\"degraded\":true";
  out += ",\"results\":[";
  for (std::size_t p = 0; p < results.size(); ++p) {
    const ServePointResult& result = results[p];
    if (p > 0) out += ',';
    out += "{\"budgets\":[";
    for (std::size_t i = 0; i < result.budgets.size(); ++i) {
      if (i > 0) out += ',';
      AppendJsonNumber(&out, static_cast<int64_t>(result.budgets[i]));
    }
    out += ']';
    if (result.skipped) {
      out += ",\"skipped\":true,\"skip_reason\":";
      AppendJsonString(&out, result.skip_reason);
    } else {
      out += ",\"skipped\":false,\"welfare\":";
      AppendJsonNumber(&out, result.welfare);
      out += ",\"allocation\":[";
      for (std::size_t k = 0; k < result.allocation.size(); ++k) {
        if (k > 0) out += ',';
        out += '[';
        AppendJsonNumber(&out,
                         static_cast<uint64_t>(result.allocation[k].first));
        out += ',';
        AppendJsonNumber(&out,
                         static_cast<int64_t>(result.allocation[k].second));
        out += ']';
      }
      out += ']';
    }
    out += ",\"allocate_seconds\":";
    AppendJsonNumber(&out, result.allocate_seconds);
    out += ",\"evaluate_seconds\":";
    AppendJsonNumber(&out, result.evaluate_seconds);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string FormatServeError(std::string_view id, ServeErrorCode code,
                             std::string_view message) {
  std::string out = "{";
  out += "\"id\":";
  AppendJsonString(&out, id);
  out += ",\"ok\":false,\"error\":{\"code\":";
  AppendJsonString(&out, ServeErrorCodeName(code));
  out += ",\"message\":";
  AppendJsonString(&out, message);
  out += "}}";
  return out;
}

}  // namespace cwm
