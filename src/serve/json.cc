#include "serve/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cwm {

namespace {

/// Deep-enough for any sane request; shallow enough that a hostile
/// "[[[[..." line fails with a Status instead of a stack overflow.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    if (Status s = ParseValue(&value, 0); !s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        if (!ConsumeLiteral("true")) return Error("invalid literal");
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("invalid literal");
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("invalid literal");
        out->kind = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      if (Status s = ParseString(&key); !s.ok()) return s;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      if (Status s = ParseValue(&value, depth + 1); !s.ok()) return s;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue value;
      if (Status s = ParseValue(&value, depth + 1); !s.ok()) return s;
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("invalid hex digit in \\u escape");
          }
          // BMP-only UTF-8 encode (surrogate pairs degrade to two
          // replacement-free 3-byte sequences; fine for a protocol whose
          // strings are ASCII identifiers).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    // JSON forbids leading zeros ("01") — strtod would accept them, so
    // check the grammar's integer-part rule explicitly.
    const std::size_t digits = token[0] == '-' ? 1 : 0;
    if (token.size() > digits + 1 && token[digits] == '0' &&
        std::isdigit(static_cast<unsigned char>(token[digits + 1]))) {
      pos_ = start;
      return Error("invalid number (leading zero)");
    }
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      pos_ = start;
      return Error("invalid number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return Status::OK();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  // Last occurrence wins, matching common parsers.
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) found = &v;
  }
  return found;
}

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

void AppendJsonString(std::string* out, std::string_view text) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; null is the least-wrong representation.
    out->append("null");
    return;
  }
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    AppendJsonNumber(out, static_cast<int64_t>(value));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

void AppendJsonNumber(std::string* out, int64_t value) {
  out->append(std::to_string(value));
}

void AppendJsonNumber(std::string* out, uint64_t value) {
  out->append(std::to_string(value));
}

}  // namespace cwm
