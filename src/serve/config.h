// ServeConfig — the declarative startup description of a cwm_serve
// daemon: which graphs to load (each an Engine over a scenario's
// network + utility configuration, keyed by name), and the capacity
// knobs (listen port, worker count, queue bound, snapshot budget).
//
// JSON form (cwm_serve --config FILE):
//   {"port": 7077,                 // 0 = ephemeral (printed at startup)
//    "workers": 4,                 // worker threads; 0 = hw concurrency
//    "queue_capacity": 64,         // bounded request queue
//    "snapshot_budget_mb": 256,    // per-engine world-pool budget
//    "cache_dir": "",              // artifact cache ("" = none)
//    "graphs": [
//      {"name": "tiny",            // request routing key
//       "scenario": "smoke-tiny",  // registry scenario supplying specs
//       "network": 0,              // index into the scenario's networks
//       "config": 0,               // index into the scenario's configs
//       "scale": 1.0}]}            // CWM_BENCH_SCALE semantics
#ifndef CWM_SERVE_CONFIG_H_
#define CWM_SERVE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace cwm {

/// One graph the server loads at startup.
struct ServeGraphSpec {
  std::string name;      ///< routing key requests use
  std::string scenario;  ///< GlobalScenarioRegistry name
  std::size_t network_index = 0;
  std::size_t config_index = 0;
  double scale = 1.0;
};

struct ServeConfig {
  int port = 0;  ///< 0 = bind an ephemeral port
  unsigned workers = 0;  ///< 0 = hardware concurrency
  std::size_t queue_capacity = 64;
  std::size_t snapshot_budget_bytes = 256ull << 20;
  std::string cache_dir;
  std::vector<ServeGraphSpec> graphs;

  /// Structural validation (non-empty graphs, unique names, sane caps).
  Status Validate() const;
};

/// Parses the JSON config document (not a file path).
StatusOr<ServeConfig> ParseServeConfig(std::string_view text);

}  // namespace cwm

#endif  // CWM_SERVE_CONFIG_H_
