// cwm_serve's server core: a long-lived daemon that loads one Engine
// per configured graph at startup and serves allocation requests over a
// line-delimited JSON TCP protocol (serve/protocol.h).
//
// Architecture (one process):
//
//   acceptor thread ──► reader thread per connection
//                          │  parse line → ServeRequest
//                          │  TryPush ──► BoundedQueue (admission control)
//                          │     │ full → write `overloaded` immediately
//                          ▼     ▼
//                       worker pool (config.workers threads)
//                          │  ResolveServeBudgets + BuildAllocateRequest
//                          │  Engine::Allocate / AllocateBatch
//                          ▼
//                       response line (per-connection write mutex)
//
//   deadline watcher thread: flips each request's cancel flag at
//   arrival_time + deadline_ms; the engine's cooperative-cancellation
//   polls (RR chunks, greedy rounds) notice within ~10ms of work.
//
// Shutdown() drains gracefully: stop accepting, close reader sockets,
// close the queue (already-accepted requests still run and respond),
// join everything. Metrics: serve.requests, serve.responses,
// serve.rejected, serve.deadline_exceeded, serve.errors,
// serve.queue_depth (gauge), serve.request_seconds (histogram).
#ifndef CWM_SERVE_SERVER_H_
#define CWM_SERVE_SERVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "api/engine.h"
#include "serve/config.h"
#include "serve/protocol.h"
#include "store/artifact_cache.h"
#include "support/status.h"

namespace cwm {

/// The engines a server (or the --oneshot path) routes requests to,
/// keyed by ServeGraphSpec::name. Loading is the expensive startup step
/// (graph construction / cache mmap); lookups afterwards are const.
class ServeEngineSet {
 public:
  /// Opens every configured graph. Fails fast on the first graph that
  /// cannot load — a server with missing graphs is misconfigured.
  static StatusOr<std::unique_ptr<ServeEngineSet>> Load(
      const ServeConfig& config);

  ServeEngineSet(const ServeEngineSet&) = delete;
  ServeEngineSet& operator=(const ServeEngineSet&) = delete;

  /// Engine for a request's graph name; null when unknown.
  const Engine* Find(std::string_view name) const;

 private:
  ServeEngineSet() = default;

  std::unique_ptr<ArtifactCache> cache_;  // may be null (no cache_dir)
  std::map<std::string, std::unique_ptr<Engine>, std::less<>> engines_;
};

/// Runs one parsed request to completion against `engines` and returns
/// the response line (success or error; no trailing newline). This is
/// the single execution path shared by server workers, cwm_serve
/// --oneshot, and tests — bit-identical responses by construction.
///
/// `cancel` may be null (no deadline). When the run comes back
/// Cancelled and `cancel` is set, the error code is `deadline_exceeded`
/// if the request carried a deadline, else `cancelled` (shutdown).
std::string ExecuteServeRequest(const ServeEngineSet& engines,
                                const ServeRequest& request,
                                const std::atomic<bool>* cancel);

/// The daemon. Start() binds the socket, loads engines, and spins up
/// the acceptor/worker/deadline threads; Shutdown() (or destruction)
/// drains gracefully.
class Server {
 public:
  static StatusOr<std::unique_ptr<Server>> Start(ServeConfig config);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Destructor shuts down if Shutdown() was not called.
  ~Server();

  /// The bound TCP port (resolves config port 0 to the ephemeral pick).
  int port() const;

  /// Graceful shutdown, idempotent: stop accepting, let queued and
  /// in-flight requests finish and respond, then join every thread.
  void Shutdown();

 private:
  struct Impl;
  explicit Server(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace cwm

#endif  // CWM_SERVE_SERVER_H_
