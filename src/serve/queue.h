// Bounded MPMC work queue — cwm_serve's admission-control point.
//
// Connection readers TryPush parsed requests; worker threads PopBlocking.
// The capacity bound is the server's only buffering: when it is full the
// reader rejects the request with a structured `overloaded` error
// instead of queueing unboundedly (a saturated server degrades to fast
// rejections, never to memory growth). Close() wakes every blocked
// worker after the remaining items drain — the graceful-shutdown path.
#ifndef CWM_SERVE_QUEUE_H_
#define CWM_SERVE_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "support/check.h"

namespace cwm {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    CWM_CHECK(capacity_ > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues unless the queue is full or closed; never blocks. Returns
  /// false on rejection (the caller sends `overloaded` / `cancelled`).
  bool TryPush(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed AND
  /// drained; nullopt means "shut down, nothing left" (worker exits).
  std::optional<T> PopBlocking() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects future pushes and wakes all blocked poppers. Items already
  /// queued still drain (graceful shutdown runs accepted work).
  void Close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  /// True once Close() ran — lets a rejected pusher distinguish
  /// "saturated" (overloaded) from "shutting down" (cancelled).
  bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Instantaneous depth (the serve.queue_depth gauge).
  std::size_t depth() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cwm

#endif  // CWM_SERVE_QUEUE_H_
