#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <numeric>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/registry.h"
#include "serve/queue.h"
#include "support/check.h"
#include "support/failpoint.h"

namespace cwm {

namespace {

// Request-latency buckets, seconds (arrival to response write).
constexpr double kLatencyBounds[] = {0.001, 0.0025, 0.005, 0.01,  0.025,
                                     0.05,  0.1,    0.25,  0.5,   1.0,
                                     2.5,   5.0,    10.0,  30.0};

// A request line larger than this is a protocol violation, not a
// request: cap the reader's buffer so a client streaming garbage
// without newlines cannot grow server memory unboundedly.
constexpr std::size_t kMaxLineBytes = 1 << 20;

Counter& RequestsCounter() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("serve.requests");
  return counter;
}
Counter& ResponsesCounter() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("serve.responses");
  return counter;
}
Counter& RejectedCounter() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("serve.rejected");
  return counter;
}
Counter& DeadlineExceededCounter() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("serve.deadline_exceeded");
  return counter;
}
Counter& ErrorsCounter() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("serve.errors");
  return counter;
}
Counter& IoErrorsCounter() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("serve.io_errors");
  return counter;
}
Gauge& QueueDepthGauge() {
  static Gauge& gauge =
      MetricsRegistry::Global().GetGauge("serve.queue_depth");
  return gauge;
}
Histogram& RequestSecondsHistogram() {
  static Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "serve.request_seconds", kLatencyBounds);
  return histogram;
}

struct ExecOutcome {
  std::string line;  ///< the response (success or error), no newline
  bool ok = false;
  ServeErrorCode code = ServeErrorCode::kInternal;  ///< when !ok
};

ExecOutcome ErrorOutcome(const ServeRequest& request, ServeErrorCode code,
                         std::string_view message) {
  return {FormatServeError(request.id, code, message), false, code};
}

// The one execution path every consumer shares (workers, --oneshot,
// tests). Deliberately free of server state: engines + request + flag in,
// response line out.
ExecOutcome ExecuteInternal(const ServeEngineSet& engines,
                            const ServeRequest& request,
                            const std::atomic<bool>* cancel) {
  const Engine* engine = engines.Find(request.graph);
  if (engine == nullptr) {
    return ErrorOutcome(request, ServeErrorCode::kNotFound,
                        "unknown graph '" + request.graph + "'");
  }
  const int num_items = engine->config().num_items();

  StatusOr<std::vector<BudgetVector>> points =
      ResolveServeBudgets(request, num_items);
  if (!points.ok()) {
    return ErrorOutcome(request, ServeErrorCodeOf(points.status(), false),
                        points.status().message());
  }

  std::vector<ItemId> items = request.items;
  if (items.empty()) {
    items.resize(static_cast<std::size_t>(num_items));
    std::iota(items.begin(), items.end(), ItemId{0});
  }

  CWM_TRACE_SPAN("serve.execute",
                 {{"points", static_cast<int64_t>(points.value().size())},
                  {"deadline_ms", request.deadline_ms}});

  // Degraded detection: any storage fallback firing while this request
  // executes (quarantine+rebuild, heap load, cache flipped read-only)
  // bumps the shared counter; the delta marks the response `degraded`.
  // Concurrent requests can blame each other's degradation — acceptable:
  // the flag means "the substrate degraded under this answer", and the
  // answer's bytes are identical either way.
  const uint64_t degraded_before = DegradedEventsCounter().value();

  AllocateRequest allocate_request =
      BuildAllocateRequest(request, points.value().front(), items, cancel);
  std::vector<AllocateResult> results;
  Status status;
  if (points.value().size() == 1) {
    AllocateResult one;
    status = engine->Allocate(std::move(allocate_request), &one);
    if (status.ok()) results.push_back(std::move(one));
  } else {
    status = engine->AllocateBatch(std::move(allocate_request),
                                   std::span<const BudgetVector>(
                                       points.value()),
                                   &results);
  }
  if (!status.ok()) {
    const bool deadline_fired =
        cancel != nullptr && cancel->load(std::memory_order_acquire) &&
        request.deadline_ms > 0;
    return ErrorOutcome(request, ServeErrorCodeOf(status, deadline_fired),
                        status.message());
  }

  std::vector<ServePointResult> wire(results.size());
  for (std::size_t p = 0; p < results.size(); ++p) {
    const AllocateResult& result = results[p];
    ServePointResult& out = wire[p];
    out.budgets = points.value()[p];
    out.skipped = result.skipped;
    out.skip_reason = result.skip_reason;
    out.welfare = result.stats.welfare;
    out.allocate_seconds = result.allocate_seconds;
    out.evaluate_seconds = result.evaluate_seconds;
    const Allocation& allocation = result.allocation;
    for (ItemId i = 0; i < allocation.num_items(); ++i) {
      for (NodeId node : allocation.SeedsOf(i)) {
        out.allocation.emplace_back(node, i);
      }
    }
  }
  const bool degraded = DegradedEventsCounter().value() > degraded_before;
  return {FormatServeResponse(request, wire, degraded), true,
          ServeErrorCode::kInternal};
}

// Flips each armed request's cancel flag once its absolute deadline
// passes. One thread, min-heap by due time; granularity is the engine's
// cooperative poll interval, not this thread's (it wakes exactly at the
// earliest due time).
class DeadlineWatcher {
 public:
  DeadlineWatcher() : thread_([this] { Run(); }) {}

  ~DeadlineWatcher() { Stop(); }

  void Arm(std::chrono::steady_clock::time_point due,
           std::shared_ptr<std::atomic<bool>> flag) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      entries_.push(Entry{due, std::move(flag)});
    }
    wake_.notify_one();
  }

  void Stop() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) return;
      stop_ = true;
    }
    wake_.notify_all();
    thread_.join();
  }

 private:
  struct Entry {
    std::chrono::steady_clock::time_point due;
    std::shared_ptr<std::atomic<bool>> flag;
    bool operator>(const Entry& other) const { return due > other.due; }
  };

  void Run() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      if (entries_.empty()) {
        wake_.wait(lock, [&] { return stop_ || !entries_.empty(); });
        continue;
      }
      wake_.wait_until(lock, entries_.top().due);
      const auto now = std::chrono::steady_clock::now();
      while (!entries_.empty() && entries_.top().due <= now) {
        entries_.top().flag->store(true, std::memory_order_release);
        entries_.pop();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> entries_;
  bool stop_ = false;
  std::thread thread_;
};

// One accepted socket. The write mutex serializes response lines from
// concurrent workers (responses are in completion order, matched by id).
struct Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() { ::close(fd); }

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void WriteLine(std::string_view line) {
    const std::lock_guard<std::mutex> lock(write_mutex);
    std::string framed(line);
    framed += '\n';
    std::size_t sent = 0;
    while (sent < framed.size()) {
      // An injected send fault is a transient I/O error: count it and
      // retry — the response must still reach the client.
      if (!CWM_FAILPOINT_STATUS("serve.send").ok()) {
        IoErrorsCounter().Add(1);
        continue;
      }
      // MSG_NOSIGNAL: a client that hung up turns writes into EPIPE
      // errors, not process-killing SIGPIPEs.
      const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;  // stray signal; retry
      if (n <= 0) return;  // peer gone; nothing useful to do
      sent += static_cast<std::size_t>(n);
    }
  }

  const int fd;
  std::mutex write_mutex;
};

struct Job {
  ServeRequest request;
  std::shared_ptr<Connection> conn;
  std::shared_ptr<std::atomic<bool>> cancel;  ///< null = no deadline
  std::chrono::steady_clock::time_point arrival;
};

}  // namespace

StatusOr<std::unique_ptr<ServeEngineSet>> ServeEngineSet::Load(
    const ServeConfig& config) {
  if (Status valid = config.Validate(); !valid.ok()) return valid;

  std::unique_ptr<ServeEngineSet> set(new ServeEngineSet());
  if (!config.cache_dir.empty()) {
    StatusOr<std::unique_ptr<ArtifactCache>> cache =
        ArtifactCache::Open(config.cache_dir);
    if (cache.ok()) {
      set->cache_ = std::move(cache).value();
    } else {
      // An unopenable cache dir must not keep the service down: engines
      // build their graphs from scratch and serve uncached — slower,
      // bit-identical answers.
      NoteDegradedEvent("store.degraded.cache_disabled");
      std::fprintf(stderr,
                   "cwm_serve: cache disabled: %s (serving uncached; "
                   "results are unaffected)\n",
                   cache.status().ToString().c_str());
    }
  }

  for (const ServeGraphSpec& spec : config.graphs) {
    StatusOr<ScenarioSpec> scenario =
        GlobalScenarioRegistry().Find(spec.scenario);
    if (!scenario.ok()) return scenario.status();
    if (spec.network_index >= scenario.value().networks.size()) {
      return Status::InvalidArgument(
          "graph '" + spec.name + "': network index out of range for "
          "scenario '" + spec.scenario + "'");
    }
    if (spec.config_index >= scenario.value().configs.size()) {
      return Status::InvalidArgument(
          "graph '" + spec.name + "': config index out of range for "
          "scenario '" + spec.scenario + "'");
    }
    EngineOptions options;
    options.cache = set->cache_.get();
    options.snapshot_budget_bytes = config.snapshot_budget_bytes;
    StatusOr<std::unique_ptr<Engine>> engine = Engine::Open(
        scenario.value().networks[spec.network_index],
        scenario.value().configs[spec.config_index], options, spec.scale);
    if (!engine.ok()) return engine.status();
    set->engines_.emplace(spec.name, std::move(engine).value());
  }
  return set;
}

const Engine* ServeEngineSet::Find(std::string_view name) const {
  const auto it = engines_.find(name);
  return it == engines_.end() ? nullptr : it->second.get();
}

std::string ExecuteServeRequest(const ServeEngineSet& engines,
                                const ServeRequest& request,
                                const std::atomic<bool>* cancel) {
  return ExecuteInternal(engines, request, cancel).line;
}

struct Server::Impl {
  ServeConfig config;
  std::unique_ptr<ServeEngineSet> engines;
  int listen_fd = -1;
  int port = 0;

  std::unique_ptr<BoundedQueue<Job>> queue;
  DeadlineWatcher deadlines;

  std::thread acceptor;
  std::vector<std::thread> workers;

  std::mutex connections_mutex;
  std::vector<std::pair<std::shared_ptr<Connection>, std::thread>>
      connections;

  bool shut_down = false;
  std::mutex shutdown_mutex;

  void AcceptLoop() {
    while (true) {
      // An injected accept fault models a transient kernel error
      // (EMFILE, ENOBUFS): count it and keep accepting.
      if (!CWM_FAILPOINT_STATUS("serve.accept").ok()) {
        IoErrorsCounter().Add(1);
        continue;
      }
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        // EINTR: a stray signal must not kill the acceptor (and with it
        // the whole service). ECONNABORTED: the peer gave up while
        // queued — their loss, not a listener failure.
        if (errno == EINTR || errno == ECONNABORTED) {
          IoErrorsCounter().Add(1);
          continue;
        }
        return;  // listener shut down
      }
      auto conn = std::make_shared<Connection>(fd);
      const std::lock_guard<std::mutex> lock(connections_mutex);
      connections.emplace_back(
          conn, std::thread([this, conn] { ReadLoop(conn); }));
    }
  }

  void ReadLoop(const std::shared_ptr<Connection>& conn) {
    std::string buffer;
    char chunk[4096];
    while (true) {
      if (!CWM_FAILPOINT_STATUS("serve.recv").ok()) {
        IoErrorsCounter().Add(1);
        continue;  // transient read fault: the connection survives
      }
      const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;  // stray signal; retry
      if (n <= 0) return;  // EOF or reset (or our shutdown)
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t pos;
      while ((pos = buffer.find('\n')) != std::string::npos) {
        std::string line = buffer.substr(0, pos);
        buffer.erase(0, pos + 1);
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        HandleLine(conn, line);
      }
      if (buffer.size() > kMaxLineBytes) {
        conn->WriteLine(FormatServeError(
            "", ServeErrorCode::kInvalidArgument, "request line too long"));
        return;
      }
    }
  }

  void HandleLine(const std::shared_ptr<Connection>& conn,
                  std::string_view line) {
    RequestsCounter().Add(1);
    const auto arrival = std::chrono::steady_clock::now();

    StatusOr<ServeRequest> parsed = ParseServeRequest(line);
    if (!parsed.ok()) {
      ErrorsCounter().Add(1);
      conn->WriteLine(FormatServeError(
          "", ServeErrorCodeOf(parsed.status(), false),
          parsed.status().message()));
      return;
    }

    Job job;
    job.request = std::move(parsed).value();
    job.conn = conn;
    job.arrival = arrival;
    if (job.request.deadline_ms > 0) {
      job.cancel = std::make_shared<std::atomic<bool>>(false);
      deadlines.Arm(
          arrival + std::chrono::milliseconds(job.request.deadline_ms),
          job.cancel);
    }

    // Admission control: the bounded queue is the only buffering. A full
    // queue rejects fast with a structured error rather than queueing
    // unboundedly.
    const std::string id = job.request.id;
    // The injected queue fault models admission pressure: the client
    // gets the same structured overloaded error a real full queue sends.
    const bool pushed = CWM_FAILPOINT_STATUS("serve.queue_push").ok() &&
                        queue->TryPush(std::move(job));
    if (!pushed) {
      RejectedCounter().Add(1);
      const ServeErrorCode code = queue->closed()
                                      ? ServeErrorCode::kCancelled
                                      : ServeErrorCode::kOverloaded;
      conn->WriteLine(FormatServeError(
          id, code,
          code == ServeErrorCode::kOverloaded
              ? "request queue full; retry with backoff"
              : "server shutting down"));
      return;
    }
    QueueDepthGauge().Set(static_cast<double>(queue->depth()));
  }

  void WorkerLoop() {
    while (std::optional<Job> job = queue->PopBlocking()) {
      QueueDepthGauge().Set(static_cast<double>(queue->depth()));
      ExecOutcome outcome;
      if (job->cancel != nullptr &&
          job->cancel->load(std::memory_order_acquire)) {
        // Deadline passed while queued: don't start work we must discard.
        outcome = ErrorOutcome(job->request,
                               ServeErrorCode::kDeadlineExceeded,
                               "deadline expired before execution");
      } else {
        outcome =
            ExecuteInternal(*engines, job->request, job->cancel.get());
      }
      if (outcome.ok) {
        ResponsesCounter().Add(1);
      } else if (outcome.code == ServeErrorCode::kDeadlineExceeded) {
        DeadlineExceededCounter().Add(1);
      } else {
        ErrorsCounter().Add(1);
      }
      job->conn->WriteLine(outcome.line);
      RequestSecondsHistogram().Observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        job->arrival)
              .count());
    }
  }

  void Shutdown() {
    {
      const std::lock_guard<std::mutex> lock(shutdown_mutex);
      if (shut_down) return;
      shut_down = true;
    }
    // 1. Stop accepting: wake the blocked accept() and join the acceptor.
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
    if (acceptor.joinable()) acceptor.join();
    // 2. Unblock every reader (they enqueue what they already read, then
    //    exit on EOF) and join them.
    {
      const std::lock_guard<std::mutex> lock(connections_mutex);
      for (auto& [conn, thread] : connections) {
        ::shutdown(conn->fd, SHUT_RD);
      }
    }
    // Joining outside the lock would race new entries, but the acceptor
    // is already joined, so the vector is frozen.
    for (auto& [conn, thread] : connections) {
      if (thread.joinable()) thread.join();
    }
    // 3. Close the queue: accepted requests drain through the workers
    //    (responses still go out — the graceful part), then workers exit.
    queue->Close();
    for (std::thread& worker : workers) {
      if (worker.joinable()) worker.join();
    }
    // 4. Deadlines last: they must keep firing while the drain runs.
    deadlines.Stop();
  }
};

Server::Server(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

Server::~Server() {
  if (impl_ != nullptr) impl_->Shutdown();
}

int Server::port() const { return impl_->port; }

void Server::Shutdown() { impl_->Shutdown(); }

StatusOr<std::unique_ptr<Server>> Server::Start(ServeConfig config) {
  if (Status valid = config.Validate(); !valid.ok()) return valid;

  auto impl = std::make_unique<Impl>();
  StatusOr<std::unique_ptr<ServeEngineSet>> engines =
      ServeEngineSet::Load(config);
  if (!engines.ok()) return engines.status();
  impl->engines = std::move(engines).value();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket() failed");
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(config.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    return Status::IOError("bind() failed on port " +
                           std::to_string(config.port));
  }
  if (::listen(fd, 128) < 0) {
    ::close(fd);
    return Status::IOError("listen() failed");
  }
  socklen_t addr_len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) <
      0) {
    ::close(fd);
    return Status::IOError("getsockname() failed");
  }

  impl->listen_fd = fd;
  impl->port = static_cast<int>(ntohs(addr.sin_port));
  impl->queue = std::make_unique<BoundedQueue<Job>>(config.queue_capacity);

  const unsigned worker_count =
      config.workers > 0
          ? config.workers
          : std::max(1u, std::thread::hardware_concurrency());
  impl->config = std::move(config);

  Impl* raw = impl.get();
  impl->acceptor = std::thread([raw] { raw->AcceptLoop(); });
  impl->workers.reserve(worker_count);
  for (unsigned i = 0; i < worker_count; ++i) {
    impl->workers.emplace_back([raw] { raw->WorkerLoop(); });
  }

  return std::unique_ptr<Server>(new Server(std::move(impl)));
}

}  // namespace cwm
