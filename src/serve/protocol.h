// The cwm_serve wire protocol.
//
// Line-delimited JSON over a byte stream: the client writes one request
// object per line, the server writes exactly one response line per
// request (in completion order — responses carry the request's `id` so
// pipelined clients can match them up).
//
// Request:
//   {"id": "r1",                 // echoed back; optional
//    "graph": "tiny",            // ServeConfig graph name (required)
//    "algo": "SeqGRD",           // AlgoName (required)
//    "budgets": [5, 5],          // one point: per-item budgets, or a
//                                //   single broadcast value [5]
//                                // or several points: [[5,5],[10,10]]
//                                //   (served by Engine::AllocateBatch)
//    "items": [0, 1],            // optional; default: all config items
//    "seed": 1,                  // optional; default 1
//    "deadline_ms": 250,         // optional; 0/absent = no deadline
//    "sims": 64,                 // optional estimator worlds override
//    "eval_sims": 128,           // optional evaluation worlds override
//    "epsilon": 0.5, "ell": 1.0, // optional accuracy overrides
//    "evaluate": true}           // optional; default true
//
// Response (success):
//   {"id": "r1", "ok": true, "graph": "tiny", "algo": "SeqGRD",
//    "results": [{"budgets": [5,5], "welfare": 123.4,
//                 "allocation": [[node, item], ...],
//                 "skipped": false, "allocate_seconds": 0.01,
//                 "evaluate_seconds": 0.002}]}
//
// Response (error):
//   {"id": "r1", "ok": false,
//    "error": {"code": "overloaded", "message": "..."}}
//
// Error codes: "invalid_argument" (malformed JSON / unknown fields),
// "not_found" (unknown graph or algorithm), "overloaded" (admission
// control rejected — bounded queue full), "deadline_exceeded" (the
// request's deadline fired mid-run; partial work discarded),
// "cancelled" (server shutting down), "internal" (anything else).
//
// Determinism: BuildAllocateRequest derives every seed from the
// request's (seed, algo) alone, so the same request against the same
// graph produces a bit-identical response from any server, any worker
// thread, and the cwm_serve --oneshot path — the property the serve
// tests and scripts/serve_bench.py verify against direct Engine calls.
#ifndef CWM_SERVE_PROTOCOL_H_
#define CWM_SERVE_PROTOCOL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/allocator.h"
#include "serve/json.h"
#include "support/status.h"

namespace cwm {

/// One parsed request line.
struct ServeRequest {
  std::string id;      ///< echoed in the response; may be empty
  std::string graph;   ///< ServeConfig graph name
  AlgoKind algo = AlgoKind::kSeqGrdNm;
  /// One or more budget points; each already broadcast to one entry per
  /// config item by BuildAllocateRequest (parse keeps them raw).
  std::vector<std::vector<int>> budget_points;
  std::vector<ItemId> items;  ///< empty = all config items
  uint64_t seed = 1;
  int64_t deadline_ms = 0;  ///< 0 = no deadline
  int sims = 0;             ///< 0 = server default
  int eval_sims = 0;        ///< 0 = server default
  double epsilon = 0.5;
  double ell = 1.0;
  bool evaluate = true;
};

/// Per-point allocation outcome, flattened for the wire.
struct ServePointResult {
  BudgetVector budgets;
  bool skipped = false;
  std::string skip_reason;
  double welfare = 0.0;
  double allocate_seconds = 0.0;
  double evaluate_seconds = 0.0;
  /// (node, item) pairs in allocation order.
  std::vector<std::pair<NodeId, ItemId>> allocation;
};

/// Wire error codes (stable strings; see file comment).
enum class ServeErrorCode {
  kInvalidArgument,
  kNotFound,
  kOverloaded,
  kDeadlineExceeded,
  kCancelled,
  kInternal,
};
const char* ServeErrorCodeName(ServeErrorCode code);

/// Maps an engine Status onto the wire code (Cancelled becomes
/// deadline_exceeded only when the caller says the deadline fired).
ServeErrorCode ServeErrorCodeOf(const Status& status, bool deadline_fired);

/// Parses one request line. Unknown top-level keys are rejected (typos
/// must not silently change meaning). Budget values must be >= 1.
StatusOr<ServeRequest> ParseServeRequest(std::string_view line);

/// Default estimator/evaluation world counts when the request does not
/// override them (matching SweepOptions' defaults keeps one-request
/// numbers comparable with sweep rows).
inline constexpr int kServeDefaultSims = 64;
inline constexpr int kServeDefaultEvalSims = 128;

/// Resolves the request's budget points against the configuration's item
/// count: broadcasts single-value points, validates sizes and
/// positivity. Returns one BudgetVector per point.
StatusOr<std::vector<BudgetVector>> ResolveServeBudgets(
    const ServeRequest& request, int num_items);

/// Builds the AllocateRequest a worker (or the --oneshot path, or a
/// test's direct Engine call) runs for this request — the ONE place
/// serve-side seeds are derived, so every path is bit-identical by
/// construction. `budgets` is the resolved point this run uses;
/// `cancel` is the worker's deadline flag (may be null).
AllocateRequest BuildAllocateRequest(const ServeRequest& request,
                                     const BudgetVector& budgets,
                                     const std::vector<ItemId>& items,
                                     const std::atomic<bool>* cancel);

/// Formats the success response line (no trailing newline). `degraded`
/// adds a `"degraded":true` field: the results are correct (degradations
/// are bit-identical by contract) but a storage fallback fired while
/// executing — clients may alert on it. False omits the field entirely,
/// so healthy responses are byte-identical to pre-degraded-mode builds.
std::string FormatServeResponse(const ServeRequest& request,
                                const std::vector<ServePointResult>& results,
                                bool degraded = false);

/// Formats an error response line (no trailing newline). `id` may be
/// empty (unparseable request lines have no id to echo).
std::string FormatServeError(std::string_view id, ServeErrorCode code,
                             std::string_view message);

}  // namespace cwm

#endif  // CWM_SERVE_PROTOCOL_H_
