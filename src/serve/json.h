// Minimal JSON for the serving protocol (serve/protocol.h).
//
// The wire format is line-delimited JSON: one object per line, request in
// and response out. The repo deliberately carries no external JSON
// dependency, so this header provides the little that the protocol
// needs — a recursive-descent parser into a plain value tree, and an
// escaping writer — with Status-carrying errors instead of exceptions
// (a malformed client line must never take the daemon down).
//
// Scope: UTF-8 pass-through (no codepoint validation), numbers parsed as
// double (the protocol's integers are all well within 2^53), \uXXXX
// escapes decoded for the BMP only. Nesting depth is capped so a
// adversarial "[[[[..." line cannot overflow the stack.
#ifndef CWM_SERVE_JSON_H_
#define CWM_SERVE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/status.h"

namespace cwm {

/// One parsed JSON value. A plain tagged tree: cheap to traverse, no
/// lifetime ties to the input text.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered members (duplicate keys keep the last).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool IsNull() const { return kind == Kind::kNull; }
  bool IsBool() const { return kind == Kind::kBool; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsObject() const { return kind == Kind::kObject; }

  /// Member lookup (objects only); nullptr when absent.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses one complete JSON document; trailing non-whitespace is an
/// error (a line must be exactly one object).
StatusOr<JsonValue> ParseJson(std::string_view text);

/// Appends `text` to `out` as a quoted JSON string with full escaping.
void AppendJsonString(std::string* out, std::string_view text);

/// Appends a double in shortest round-trip form ("%.17g" trimmed; the
/// protocol's welfare numbers survive a parse round trip bit-exactly).
void AppendJsonNumber(std::string* out, double value);

/// Appends an integer (exact, no exponent form).
void AppendJsonNumber(std::string* out, int64_t value);
void AppendJsonNumber(std::string* out, uint64_t value);

}  // namespace cwm

#endif  // CWM_SERVE_JSON_H_
