// cwm_run — scenario-engine CLI.
//
//   cwm_run --list                      enumerate registered scenarios
//   cwm_run --describe <scenario>      print a scenario's spec as JSON
//   cwm_run <scenario>... [options]    run scenarios
//
// Options:
//   --out FILE        write JSON-Lines results (FILE '-' = stdout)
//   --csv FILE        write CSV results
//   --threads N       task-level parallelism (0 = hardware concurrency)
//   --cache-dir DIR   artifact cache (CWM_CACHE_DIR): graphs and RR
//                     collections are mmap-served from DIR when their
//                     build recipe matches, and stored there on miss.
//                     Bit-identical results either way; hit/miss stats
//                     print to stderr after each sweep.
//   --rr-threads N    RR-set sampling threads per task (default 1; any
//                     value yields bit-identical results — the sampler
//                     derives one RNG stream per sample index). Two-level
//                     budget: threads x rr-threads workers may be live at
//                     once; keep the product within the core count.
//   --inner-threads N Monte-Carlo threads per task (default 1; >1 trades
//                     reproducibility across settings for speed)
//   --sims N          estimator worlds for specs that don't pin them
//   --eval-sims N     evaluation worlds for specs that don't pin them
//   --scale X         node-count multiplier for scalable networks
//   --seed S          override the spec's sweep seeds with {S}
//   --snapshot-budget-mb N
//                     per-estimator memory budget for materialized world
//                     snapshots backing batched welfare evaluation
//                     (default 256; 0 streams every world lazily).
//                     Bit-identical results at any value.
//   --slow            run greedyWM/Balance-C on every cell (CWM_GREEDY=1)
//   --timing          include wall-clock seconds in --out/--csv records
//                     (off by default so artifacts are bit-reproducible)
//   --quiet           suppress the progress table on stdout
//
// Environment knobs (CWM_SIMS, CWM_EVAL_SIMS, CWM_BENCH_SCALE, CWM_GREEDY,
// CWM_THREADS, CWM_INNER_THREADS, CWM_RR_THREADS, CWM_SNAPSHOT_BUDGET_MB)
// provide defaults; flags win.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/registry.h"
#include "scenario/sink.h"
#include "scenario/sweep.h"

namespace {

using namespace cwm;

int Usage(const char* argv0, int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: %s --list\n"
               "       %s --describe <scenario>\n"
               "       %s <scenario>... [--out FILE] [--csv FILE]\n"
               "         [--threads N] [--rr-threads N] [--inner-threads N]\n"
               "         [--sims N] [--eval-sims N] [--scale X] [--seed S]\n"
               "         [--snapshot-budget-mb N]\n"
               "         [--cache-dir DIR] [--slow] [--timing] [--quiet]\n",
               argv0, argv0, argv0);
  return code;
}

void ListScenarios() {
  const ScenarioRegistry& registry = GlobalScenarioRegistry();
  std::printf("%zu registered scenarios:\n\n", registry.All().size());
  for (const ScenarioSpec& spec : registry.All()) {
    const std::size_t rows = ExpandGrid(spec, false).size();
    std::printf("  %-22s %s\n", spec.name.c_str(), spec.title.c_str());
    std::printf("  %-22s   %s; %zu networks x %zu configs x %zu budgets "
                "x %zu seeds x %zu algos = %zu rows\n",
                "",
                spec.paper_ref.empty() ? "beyond paper"
                                       : spec.paper_ref.c_str(),
                spec.networks.size(), spec.configs.size(),
                spec.budget_points.size(), spec.seeds.size(),
                spec.algorithms.size(), rows);
  }
}

bool ParseValue(int argc, char** argv, int* i, const char* flag,
                std::string* out) {
  if (std::strcmp(argv[*i], flag) != 0) return false;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "%s requires a value\n", flag);
    std::exit(2);
  }
  *out = argv[++*i];
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0], 2);

  std::vector<std::string> scenario_names;
  std::string out_path, csv_path, value;
  bool list = false, quiet = false, timing = false;
  std::string describe;
  SweepOptions options = EnvSweepOptions();
  uint64_t seed_override = 0;
  bool has_seed_override = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return Usage(argv[0], 0);
    if (arg == "--list") { list = true; continue; }
    if (ParseValue(argc, argv, &i, "--describe", &describe)) continue;
    if (ParseValue(argc, argv, &i, "--out", &out_path)) continue;
    if (ParseValue(argc, argv, &i, "--csv", &csv_path)) continue;
    if (ParseValue(argc, argv, &i, "--threads", &value)) {
      options.num_threads = static_cast<unsigned>(std::atoi(value.c_str()));
      continue;
    }
    if (ParseValue(argc, argv, &i, "--rr-threads", &value)) {
      options.rr_threads =
          static_cast<unsigned>(std::max(1, std::atoi(value.c_str())));
      continue;
    }
    if (ParseValue(argc, argv, &i, "--inner-threads", &value)) {
      options.inner_threads =
          static_cast<unsigned>(std::max(1, std::atoi(value.c_str())));
      continue;
    }
    if (ParseValue(argc, argv, &i, "--sims", &value)) {
      options.default_sims = std::max(1, std::atoi(value.c_str()));
      continue;
    }
    if (ParseValue(argc, argv, &i, "--eval-sims", &value)) {
      options.default_eval_sims = std::max(1, std::atoi(value.c_str()));
      continue;
    }
    if (ParseValue(argc, argv, &i, "--scale", &value)) {
      options.scale = std::atof(value.c_str());
      if (options.scale <= 0) {
        std::fprintf(stderr, "--scale must be positive\n");
        return 2;
      }
      continue;
    }
    if (ParseValue(argc, argv, &i, "--seed", &value)) {
      char* end = nullptr;
      seed_override = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "--seed requires an unsigned integer, got '%s'\n",
                     value.c_str());
        return 2;
      }
      has_seed_override = true;
      continue;
    }
    if (ParseValue(argc, argv, &i, "--snapshot-budget-mb", &value)) {
      options.snapshot_budget_bytes =
          static_cast<std::size_t>(
              std::max(0, std::atoi(value.c_str())))
          << 20;
      continue;
    }
    if (ParseValue(argc, argv, &i, "--cache-dir", &value)) {
      options.cache_dir = value;
      continue;
    }
    if (arg == "--slow") { options.run_slow_everywhere = true; continue; }
    if (arg == "--timing") { timing = true; continue; }
    if (arg == "--quiet") { quiet = true; continue; }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(argv[0], 2);
    }
    scenario_names.push_back(arg);
  }

  if (list) {
    ListScenarios();
    return 0;
  }

  const ScenarioRegistry& registry = GlobalScenarioRegistry();

  if (!describe.empty()) {
    StatusOr<ScenarioSpec> spec = registry.Find(describe);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", SpecToJson(spec.value()).c_str());
    return 0;
  }

  if (scenario_names.empty()) {
    std::fprintf(stderr, "no scenario named; try --list\n");
    return 2;
  }

  // Resolve all names before running anything.
  std::vector<ScenarioSpec> specs;
  for (const std::string& name : scenario_names) {
    StatusOr<ScenarioSpec> spec = registry.Find(name);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 1;
    }
    specs.push_back(std::move(spec).value());
    if (has_seed_override) specs.back().seeds = {seed_override};
  }

  std::ofstream out_file, csv_file;
  const bool out_to_stdout = out_path == "-";
  if (!out_path.empty() && !out_to_stdout) {
    out_file.open(out_path);
    if (!out_file) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
  }
  if (!csv_path.empty()) {
    csv_file.open(csv_path);
    if (!csv_file) {
      std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
      return 1;
    }
  }

  const SinkOptions sink_options{.include_timing = timing};
  // The CSV header is written once, even when several scenarios stream
  // into the same file.
  if (csv_file.is_open()) csv_file << CsvHeader() << "\n";
  TablePrinter table(stdout);
  int failures = 0;
  for (ScenarioSpec& spec : specs) {
    if (!quiet) {
      std::printf("== %s  (%s)\n", spec.name.c_str(),
                  spec.paper_ref.empty() ? "beyond paper"
                                         : spec.paper_ref.c_str());
    }
    SweepOptions run_options = options;
    if (!quiet && !out_to_stdout) {
      run_options.on_result = [&table](const TaskResult& row) {
        table.Print(row);
      };
    }
    StatusOr<SweepResult> result = RunSweep(spec, run_options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   result.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (!quiet) {
      std::printf("== %s: %zu rows in %.2fs\n\n", spec.name.c_str(),
                  result.value().rows.size(),
                  result.value().total_seconds);
    }
    if (result.value().cache_enabled) {
      // stderr, even under --quiet: CI's warm-cache smoke greps this, and
      // it must never contaminate --out - (JSONL on stdout).
      const CacheStats& stats = result.value().cache_stats;
      std::fprintf(stderr,
                   "%s cache: graphs hits=%llu misses=%llu; "
                   "rr hits=%llu misses=%llu\n",
                   spec.name.c_str(),
                   static_cast<unsigned long long>(stats.graph_hits),
                   static_cast<unsigned long long>(stats.graph_misses),
                   static_cast<unsigned long long>(stats.rr_hits),
                   static_cast<unsigned long long>(stats.rr_misses));
    }
    if (out_to_stdout) {
      WriteJsonLines(result.value(), std::cout, sink_options);
    } else if (out_file.is_open()) {
      WriteJsonLines(result.value(), out_file, sink_options);
    }
    if (csv_file.is_open()) {
      for (const TaskResult& row : result.value().rows) {
        csv_file << TaskResultToCsv(row, sink_options) << "\n";
      }
    }
  }
  return failures == 0 ? 0 : 1;
}
