// cwm_run — scenario-engine CLI.
//
//   cwm_run --list                      enumerate registered scenarios
//   cwm_run --describe <scenario>      print a scenario's spec as JSON
//   cwm_run --describe algos           print the allocator registry
//                                      (names + capabilities)
//   cwm_run <scenario>... [options]    run scenarios
//
// Options:
//   --out FILE        write JSON-Lines results (FILE '-' = stdout)
//   --csv FILE        write CSV results
//   --algos CSV       run only these algorithms (registry names, e.g.
//                     "SeqGRD,MaxGRD"): each named scenario's algorithm
//                     axis is filtered to the requested subset; unknown
//                     names list the registry
//   --threads N       task-level parallelism (0 = hardware concurrency)
//   --cache-dir DIR   artifact cache (CWM_CACHE_DIR): graphs and RR
//                     collections are mmap-served from DIR when their
//                     build recipe matches, and stored there on miss.
//                     Bit-identical results either way; hit/miss stats
//                     print to stderr after each sweep.
//   --rr-threads N    RR-set sampling threads per task (default 1; any
//                     value yields bit-identical results — the sampler
//                     derives one RNG stream per sample index). Two-level
//                     budget: threads x rr-threads workers may be live at
//                     once; keep the product within the core count.
//   --inner-threads N Monte-Carlo threads per task (default 1; >1 trades
//                     reproducibility across settings for speed)
//   --sims N          estimator worlds for specs that don't pin them
//   --eval-sims N     evaluation worlds for specs that don't pin them
//   --scale X         node-count multiplier for scalable networks
//   --seed S          override the spec's sweep seeds with {S}
//   --snapshot-budget-mb N
//                     per-estimator memory budget for materialized world
//                     snapshots backing batched welfare evaluation
//                     (default 256; 0 streams every world lazily).
//                     Bit-identical results at any value.
//   --no-packed       evaluate welfare batches on the scalar path instead
//                     of the word-parallel packed kernel (CWM_PACKED=0).
//                     Bit-identical results either way; packed is just
//                     faster.
//   --shard I/N       run only grid cells with task index ≡ I (mod N), for
//                     multi-process sweeps (I in [0, N)). Every emitted
//                     row is bit-identical to the same row of an
//                     unsharded run; scripts/merge_artifacts.py
//                     interleaves the N shard files back into the exact
//                     single-process artifact.
//   --slow            run greedyWM/Balance-C on every cell (CWM_GREEDY=1)
//   --timing          include wall-clock timing (seconds + the sample_s/
//                     select_s/estimate_s phase breakdown) in --out/--csv
//                     records (off by default so artifacts are
//                     bit-reproducible)
//   --trace FILE      record spans from every instrumented layer and
//                     write Chrome trace-event JSON to FILE (load in
//                     chrome://tracing or https://ui.perfetto.dev).
//                     Observation only: results are bit-identical with
//                     and without it.
//   --metrics FILE    write the unified metrics registry (cache/pool/API
//                     counters, task-seconds histogram) as JSON to FILE
//   --quiet           suppress the progress table on stdout
//
// Environment knobs (CWM_SIMS, CWM_EVAL_SIMS, CWM_BENCH_SCALE, CWM_GREEDY,
// CWM_THREADS, CWM_INNER_THREADS, CWM_RR_THREADS, CWM_SNAPSHOT_BUDGET_MB,
// CWM_PACKED) provide defaults; flags win.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/registry.h"
#include "scenario/sink.h"
#include "scenario/sweep.h"
#include "support/failpoint.h"

namespace {

using namespace cwm;

int Usage(const char* argv0, int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: %s --list\n"
               "       %s --list-failpoints\n"
               "       %s --describe <scenario>|algos\n"
               "       %s <scenario>... [--out FILE] [--csv FILE]\n"
               "         [--algos CSV] [--threads N] [--rr-threads N]\n"
               "         [--inner-threads N]\n"
               "         [--sims N] [--eval-sims N] [--scale X] [--seed S]\n"
               "         [--snapshot-budget-mb N] [--no-packed]\n"
               "         [--cache-dir DIR] [--shard I/N] [--slow]\n"
               "         [--timing] [--quiet]\n"
               "         [--trace FILE.json] [--metrics FILE.json]\n",
               argv0, argv0, argv0, argv0);
  return code;
}

/// The allocator registry as a table — the source of truth for algorithm
/// names and capabilities (replaces the hand-maintained enum comments).
void DescribeAlgorithms() {
  const AllocatorRegistry& registry = GlobalAllocatorRegistry();
  std::printf("%zu registered allocators:\n\n", registry.All().size());
  std::printf("  %-12s %s\n", "name", "capabilities");
  for (const Allocator* allocator : registry.All()) {
    const AllocatorCapabilities caps = allocator->Capabilities();
    std::string notes;
    if (caps.slow) notes += " slow(gated)";
    if (caps.two_items_only) notes += " two-items-only";
    if (caps.needs_superior_item) notes += " needs-superior-item";
    if (caps.uses_shared_ranking) notes += " shared-ranking";
    if (notes.empty()) notes = " -";
    std::printf("  %-12s%s\n", allocator->Name(), notes.c_str());
  }
}

/// Parses --algos into kinds; exits with the registry listing on unknown
/// names.
std::vector<AlgoKind> ParseAlgosFilter(const std::string& csv) {
  std::vector<AlgoKind> kinds;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string name = csv.substr(start, comma - start);
    start = comma + 1;
    if (name.empty()) continue;
    const std::optional<AlgoKind> kind = ParseAlgo(name);
    if (!kind.has_value()) {
      std::string known;
      for (const std::string& n : GlobalAllocatorRegistry().Names()) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      std::fprintf(stderr, "--algos: unknown algorithm '%s'; registry: %s\n",
                   name.c_str(), known.c_str());
      std::exit(2);
    }
    kinds.push_back(*kind);
  }
  if (kinds.empty()) {
    std::fprintf(stderr, "--algos: no algorithm named\n");
    std::exit(2);
  }
  return kinds;
}

void ListScenarios() {
  const ScenarioRegistry& registry = GlobalScenarioRegistry();
  std::printf("%zu registered scenarios:\n\n", registry.All().size());
  for (const ScenarioSpec& spec : registry.All()) {
    const std::size_t rows = ExpandGrid(spec, false).size();
    std::printf("  %-22s %s\n", spec.name.c_str(), spec.title.c_str());
    std::printf("  %-22s   %s; %zu networks x %zu configs x %zu budgets "
                "x %zu seeds x %zu algos = %zu rows\n",
                "",
                spec.paper_ref.empty() ? "beyond paper"
                                       : spec.paper_ref.c_str(),
                spec.networks.size(), spec.configs.size(),
                spec.budget_points.size(), spec.seeds.size(),
                spec.algorithms.size(), rows);
  }
}

bool ParseValue(int argc, char** argv, int* i, const char* flag,
                std::string* out) {
  if (std::strcmp(argv[*i], flag) != 0) return false;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "%s requires a value\n", flag);
    std::exit(2);
  }
  *out = argv[++*i];
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0], 2);

  std::vector<std::string> scenario_names;
  std::string out_path, csv_path, trace_path, metrics_path, value;
  bool list = false, list_failpoints = false, quiet = false, timing = false;
  std::string describe, algos_csv;
  SweepOptions options = EnvSweepOptions();
  uint64_t seed_override = 0;
  bool has_seed_override = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return Usage(argv[0], 0);
    if (arg == "--list") { list = true; continue; }
    if (arg == "--list-failpoints") { list_failpoints = true; continue; }
    if (ParseValue(argc, argv, &i, "--describe", &describe)) continue;
    if (ParseValue(argc, argv, &i, "--out", &out_path)) continue;
    if (ParseValue(argc, argv, &i, "--csv", &csv_path)) continue;
    if (ParseValue(argc, argv, &i, "--algos", &algos_csv)) continue;
    if (ParseValue(argc, argv, &i, "--threads", &value)) {
      options.num_threads = static_cast<unsigned>(std::atoi(value.c_str()));
      continue;
    }
    if (ParseValue(argc, argv, &i, "--rr-threads", &value)) {
      options.rr_threads =
          static_cast<unsigned>(std::max(1, std::atoi(value.c_str())));
      continue;
    }
    if (ParseValue(argc, argv, &i, "--inner-threads", &value)) {
      options.inner_threads =
          static_cast<unsigned>(std::max(1, std::atoi(value.c_str())));
      continue;
    }
    if (ParseValue(argc, argv, &i, "--sims", &value)) {
      options.default_sims = std::max(1, std::atoi(value.c_str()));
      continue;
    }
    if (ParseValue(argc, argv, &i, "--eval-sims", &value)) {
      options.default_eval_sims = std::max(1, std::atoi(value.c_str()));
      continue;
    }
    if (ParseValue(argc, argv, &i, "--scale", &value)) {
      options.scale = std::atof(value.c_str());
      if (options.scale <= 0) {
        std::fprintf(stderr, "--scale must be positive\n");
        return 2;
      }
      continue;
    }
    if (ParseValue(argc, argv, &i, "--seed", &value)) {
      char* end = nullptr;
      seed_override = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "--seed requires an unsigned integer, got '%s'\n",
                     value.c_str());
        return 2;
      }
      has_seed_override = true;
      continue;
    }
    if (ParseValue(argc, argv, &i, "--snapshot-budget-mb", &value)) {
      options.snapshot_budget_bytes =
          static_cast<std::size_t>(
              std::max(0, std::atoi(value.c_str())))
          << 20;
      continue;
    }
    if (ParseValue(argc, argv, &i, "--cache-dir", &value)) {
      options.cache_dir = value;
      continue;
    }
    if (ParseValue(argc, argv, &i, "--shard", &value)) {
      char* end = nullptr;
      const unsigned long index = std::strtoul(value.c_str(), &end, 10);
      unsigned long count = 0;
      if (end != value.c_str() && *end == '/') {
        const char* rest = end + 1;
        count = std::strtoul(rest, &end, 10);
        if (end == rest) count = 0;
      }
      if (count == 0 || *end != '\0' || index >= count) {
        std::fprintf(stderr,
                     "--shard requires I/N with 0 <= I < N, got '%s'\n",
                     value.c_str());
        return 2;
      }
      options.shard_index = static_cast<unsigned>(index);
      options.shard_count = static_cast<unsigned>(count);
      continue;
    }
    if (ParseValue(argc, argv, &i, "--trace", &trace_path)) continue;
    if (ParseValue(argc, argv, &i, "--metrics", &metrics_path)) continue;
    if (arg == "--no-packed") { options.packed_kernel = false; continue; }
    if (arg == "--slow") { options.run_slow_everywhere = true; continue; }
    if (arg == "--timing") { timing = true; continue; }
    if (arg == "--quiet") { quiet = true; continue; }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(argv[0], 2);
    }
    scenario_names.push_back(arg);
  }

  if (list) {
    ListScenarios();
    return 0;
  }

  if (list_failpoints) {
    // One name per line: scripts/check_fault_injection.py iterates this.
    for (const FailpointInfo& info : FailpointRegistry::Global().List()) {
      std::printf("%s\n", info.name.c_str());
    }
    return 0;
  }

  const ScenarioRegistry& registry = GlobalScenarioRegistry();

  if (!describe.empty()) {
    if (describe == "algos") {
      DescribeAlgorithms();
      return 0;
    }
    StatusOr<ScenarioSpec> spec = registry.Find(describe);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", SpecToJson(spec.value()).c_str());
    return 0;
  }

  if (scenario_names.empty()) {
    std::fprintf(stderr, "no scenario named; try --list\n");
    return 2;
  }

  // Resolve all names before running anything.
  std::vector<AlgoKind> algos_filter;
  if (!algos_csv.empty()) algos_filter = ParseAlgosFilter(algos_csv);
  std::vector<ScenarioSpec> specs;
  for (const std::string& name : scenario_names) {
    StatusOr<ScenarioSpec> spec = registry.Find(name);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 1;
    }
    specs.push_back(std::move(spec).value());
    if (has_seed_override) specs.back().seeds = {seed_override};
    if (!algos_filter.empty()) {
      // Keep the spec's own order; run only the requested subset.
      std::vector<AlgoKind> kept;
      for (AlgoKind algo : specs.back().algorithms) {
        if (std::find(algos_filter.begin(), algos_filter.end(), algo) !=
            algos_filter.end()) {
          kept.push_back(algo);
        }
      }
      if (kept.empty()) {
        std::fprintf(stderr,
                     "--algos: no requested algorithm in scenario '%s'\n",
                     name.c_str());
        return 2;
      }
      specs.back().algorithms = std::move(kept);
    }
  }

  std::ofstream out_file, csv_file;
  const bool out_to_stdout = out_path == "-";
  if (!out_path.empty() && !out_to_stdout) {
    out_file.open(out_path);
    if (!out_file) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
  }
  if (!csv_path.empty()) {
    csv_file.open(csv_path);
    if (!csv_file) {
      std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
      return 1;
    }
  }

  const SinkOptions sink_options{.include_timing = timing};
  // The CSV header is written once, even when several scenarios stream
  // into the same file.
  if (csv_file.is_open()) csv_file << CsvHeader() << "\n";

  // Tracing spans every sweep of this invocation; the recorder flushes
  // once after the loop. Observation only — results are bit-identical
  // with or without it (the obs_test/golden gates enforce this).
  TraceRecorder recorder;
  if (!trace_path.empty()) recorder.Install();

  TablePrinter table(stdout);
  int failures = 0;
  for (ScenarioSpec& spec : specs) {
    if (!quiet) {
      std::printf("== %s  (%s)\n", spec.name.c_str(),
                  spec.paper_ref.empty() ? "beyond paper"
                                         : spec.paper_ref.c_str());
    }
    SweepOptions run_options = options;
    if (!quiet && !out_to_stdout) {
      run_options.on_result = [&table](const TaskResult& row) {
        table.Print(row);
      };
    }
    StatusOr<SweepResult> result = RunSweep(spec, run_options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   result.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (!quiet) {
      std::printf("== %s: %zu rows in %.2fs\n\n", spec.name.c_str(),
                  result.value().rows.size(),
                  result.value().total_seconds);
    }
    if (result.value().cache_enabled) {
      // stderr, even under --quiet: CI's warm-cache smoke greps
      // "graphs hits=" / "rr hits=" out of this line (ci.yml), and it
      // must never contaminate --out - (JSONL on stdout). The formatter
      // keeps the key=value grammar that contract depends on.
      const CacheStats& stats = result.value().cache_stats;
      MetricsLineFormatter line;
      line.Count("graphs hits", stats.graph_hits)
          .Count("misses", stats.graph_misses)
          .Sep("; ")
          .Count("rr hits", stats.rr_hits)
          .Count("misses", stats.rr_misses);
      std::fprintf(stderr, "%s cache: %s\n", spec.name.c_str(),
                   line.str().c_str());
    }
    // Keyed snapshot-pool telemetry (stderr like the cache stats; reuses
    // count estimators served by an already materialized pool).
    const WorldPoolStoreStats& pools = result.value().pool_stats;
    if (pools.pools_built > 0 || pools.pool_reuses > 0) {
      MetricsLineFormatter line;
      line.Count("built", pools.pools_built)
          .Count("reused", pools.pool_reuses)
          .Count("evicted", pools.pools_evicted)
          .Fixed("resident",
                 static_cast<double>(pools.resident_bytes) / (1 << 20), 1,
                 "MB");
      std::fprintf(stderr, "%s pools: %s\n", spec.name.c_str(),
                   line.str().c_str());
    }
    // Per-phase wall-time totals over the sweep's rows (only meaningful
    // per run, so stderr telemetry rather than an artifact column —
    // per-row values land in --out/--csv under --timing).
    {
      double sample = 0.0, select = 0.0, estimate = 0.0;
      for (const TaskResult& row : result.value().rows) {
        sample += row.sample_s;
        select += row.select_s;
        estimate += row.estimate_s;
      }
      if (sample + select + estimate > 0.0) {
        MetricsLineFormatter line;
        line.Fixed("sample", sample, 2, "s")
            .Fixed("select", select, 2, "s")
            .Fixed("estimate", estimate, 2, "s");
        std::fprintf(stderr, "%s phases: %s\n", spec.name.c_str(),
                     line.str().c_str());
      }
    }
    if (out_to_stdout) {
      WriteJsonLines(result.value(), std::cout, sink_options);
    } else if (out_file.is_open()) {
      WriteJsonLines(result.value(), out_file, sink_options);
    }
    if (csv_file.is_open()) {
      for (const TaskResult& row : result.value().rows) {
        csv_file << TaskResultToCsv(row, sink_options) << "\n";
      }
    }
  }

  if (!trace_path.empty()) {
    // Uninstall before flushing so no worker started by a failed sweep
    // can append mid-serialization.
    recorder.Uninstall();
    std::ofstream trace_file(trace_path);
    if (!trace_file) {
      std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
      return 1;
    }
    recorder.WriteChromeJson(trace_file);
    std::fprintf(stderr, "trace: %zu events -> %s (chrome://tracing)\n",
                 recorder.snapshot_events().size(), trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream metrics_file(metrics_path);
    if (!metrics_file) {
      std::fprintf(stderr, "cannot open %s\n", metrics_path.c_str());
      return 1;
    }
    metrics_file << MetricsToJson(MetricsRegistry::Global().Snapshot())
                 << "\n";
    std::fprintf(stderr, "metrics: %s\n", metrics_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}
