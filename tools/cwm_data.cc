// cwm_data — artifact-store management CLI.
//
//   cwm_data import FILE --out OUT.cwg [options]
//       Ingests a SNAP-format edge list ("u v" or "u v p" lines, '#'
//       comments) into the binary graph format. Options:
//         --undirected        add both directions per line
//         --default-prob P    probability for lines without a column
//                             (required for such files unless a --prob
//                             model overwrites probabilities anyway)
//         --prob MODEL        wc | const | trivalency | asis (default
//                             asis: keep the file's probabilities)
//         --prob-value X      probability for --prob const (default 0.01)
//         --seed S            trivalency assignment seed (default 31)
//
//   cwm_data build FAMILY [--nodes N] [--degree D] [--aux X] [--seed S]
//                  [--prob MODEL] [--prob-value X] [--scale X]
//                  [--cache-dir DIR]
//       Synthesizes a registry network family (nethept-like, orkut-like,
//       erdos-renyi, ...) and pre-warms the artifact cache with it —
//       exactly the entry a sweep over the same spec will hit.
//
//   cwm_data list [--cache-dir DIR]
//       Lists cache entries with sizes and recipes/provenance.
//
//   cwm_data info FILE...
//       Prints the header of .cwg/.cwr files.
//
//   cwm_data verify FILE... | verify --cache-dir DIR
//       Full checksum + structural verification.
//
//   cwm_data gc --cache-dir DIR --max-bytes N
//       Deletes oldest entries until the cache fits in N bytes.
//
//   cwm_data doctor [--cache-dir DIR] [--repair]
//       Health-checks every cache entry: full checksum + structural
//       verification, plus (for graphs) a non-empty recipe sidecar.
//       Sick entries are quarantined into <cache>/quarantine/ — the
//       same self-healing path a running sweep takes — or deleted
//       outright with --repair.
//
//   cwm_data gen-delta BASE.cwg --out OUT.cwd --edits N [--seed S]
//       Generates a deterministic churn delta log against a base graph
//       (inserts, deletes, reweights — delta/delta_log.h), recording the
//       base and result content hashes so application is cross-checked.
//
//   cwm_data patch BASE.cwg --delta LOG.cwd [--delta LOG2.cwd ...]
//                  --out OUT.cwg
//       Applies one or more delta logs in order and writes the composed
//       graph plus an OUT.cwg.chain sidecar recording the full delta
//       ancestry (extending BASE's own sidecar when it has one). `info`
//       prints the chain.
//
//   cwm_data compact GRAPH.cwg [--out OUT.cwg]
//       Re-baselines a patched graph: rewrites it as a standalone
//       artifact whose recipe hash folds the delta chain, and drops the
//       chain sidecar. In place without --out.
//
// --cache-dir defaults to $CWM_CACHE_DIR everywhere.
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "delta/delta_log.h"
#include "delta/overlay.h"
#include "graph/edge_prob.h"
#include "graph/loader.h"
#include "scenario/scenario.h"
#include "store/artifact_cache.h"
#include "store/format.h"
#include "store/graph_store.h"
#include "store/rr_store.h"

namespace {

using namespace cwm;

int Usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: cwm_data import FILE --out OUT.cwg [--undirected]\n"
      "         [--default-prob P] [--prob wc|const|trivalency|asis]\n"
      "         [--prob-value X] [--seed S]\n"
      "       cwm_data build FAMILY [--nodes N] [--degree D] [--aux X]\n"
      "         [--seed S] [--prob MODEL] [--prob-value X] [--scale X]\n"
      "         [--cache-dir DIR]\n"
      "       cwm_data list [--cache-dir DIR]\n"
      "       cwm_data info FILE...\n"
      "       cwm_data verify FILE... | cwm_data verify --cache-dir DIR\n"
      "       cwm_data gc --cache-dir DIR --max-bytes N\n"
      "       cwm_data doctor [--cache-dir DIR] [--repair]\n"
      "       cwm_data gen-delta BASE.cwg --out OUT.cwd --edits N "
      "[--seed S]\n"
      "       cwm_data patch BASE.cwg --delta LOG.cwd [--delta ...] "
      "--out OUT.cwg\n"
      "       cwm_data compact GRAPH.cwg [--out OUT.cwg]\n");
  return code;
}

/// Flag parsing over argv[2..]: collects positionals, recognizes
/// "--flag value" pairs into `flags` and bare switches into `switches`.
struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;
  std::vector<std::string> switches;

  const std::string* Flag(const std::string& name) const {
    for (const auto& [k, v] : flags) {
      if (k == name) return &v;
    }
    return nullptr;
  }
  /// All values of a repeatable flag (e.g. patch --delta A --delta B).
  std::vector<std::string> FlagValues(const std::string& name) const {
    std::vector<std::string> values;
    for (const auto& [k, v] : flags) {
      if (k == name) values.push_back(v);
    }
    return values;
  }
  bool Switch(const std::string& name) const {
    for (const std::string& s : switches) {
      if (s == name) return true;
    }
    return false;
  }
};

const char* kValueFlags[] = {"--out",        "--default-prob", "--prob",
                             "--prob-value", "--seed",         "--nodes",
                             "--degree",     "--aux",          "--scale",
                             "--cache-dir",  "--max-bytes",    "--delta",
                             "--edits"};

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--undirected" || arg == "--repair") {
      out->switches.push_back(arg);
      continue;
    }
    bool matched = false;
    for (const char* flag : kValueFlags) {
      if (arg != flag) continue;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return false;
      }
      out->flags.emplace_back(arg, argv[++i]);
      matched = true;
      break;
    }
    if (matched) continue;
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
    out->positional.push_back(arg);
  }
  return true;
}

std::string CacheDirOr(const Args& args) {
  if (const std::string* dir = args.Flag("--cache-dir")) return *dir;
  const char* env = std::getenv("CWM_CACHE_DIR");
  return env != nullptr ? env : "";
}

// Strict numeric parsing: the whole token must consume, so a typo'd
// value errors out instead of silently becoming 0 (e.g. `--default-prob
// O.5` producing a diffusion-impossible p=0 graph, or `gc --max-bytes
// 10GB` truncating to 10 and evicting the whole cache).
bool ParseU64Flag(const Args& args, const char* flag, uint64_t* out) {
  const std::string* value = args.Flag(flag);
  if (value == nullptr) return true;
  errno = 0;
  char* end = nullptr;
  const uint64_t parsed = std::strtoull(value->c_str(), &end, 10);
  // strtoull silently wraps a leading '-' to a huge value; require a
  // digit up front so "-1" errors instead of becoming 2^64 - 1.
  if (value->empty() || !std::isdigit(static_cast<unsigned char>((*value)[0])) ||
      errno != 0 || end == value->c_str() || *end != '\0') {
    std::fprintf(stderr, "%s requires an unsigned integer, got '%s'\n",
                 flag, value->c_str());
    return false;
  }
  *out = parsed;
  return true;
}

bool ParseDoubleFlag(const Args& args, const char* flag, double min_value,
                     double max_value, double* out) {
  const std::string* value = args.Flag(flag);
  if (value == nullptr) return true;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (errno != 0 || end == value->c_str() || *end != '\0' ||
      !(parsed >= min_value && parsed <= max_value)) {
    std::fprintf(stderr, "%s requires a number in [%g, %g], got '%s'\n",
                 flag, min_value, max_value, value->c_str());
    return false;
  }
  *out = parsed;
  return true;
}

bool ParseProbModel(const Args& args, ProbModel* model) {
  const std::string* name = args.Flag("--prob");
  if (name == nullptr) return true;
  if (*name == "wc") *model = ProbModel::kWeightedCascade;
  else if (*name == "const") *model = ProbModel::kConstant;
  else if (*name == "trivalency") *model = ProbModel::kTrivalency;
  else if (*name == "asis") *model = ProbModel::kAsIs;
  else {
    std::fprintf(stderr, "unknown --prob model: %s\n", name->c_str());
    return false;
  }
  return true;
}

int CmdImport(const Args& args) {
  if (args.positional.size() != 1) return Usage(2);
  const std::string* out_path = args.Flag("--out");
  if (out_path == nullptr) {
    std::fprintf(stderr, "import requires --out OUT.cwg\n");
    return 2;
  }
  ProbModel model = ProbModel::kAsIs;
  if (!ParseProbModel(args, &model)) return 2;

  LoadOptions options;
  options.undirected = args.Switch("--undirected");
  if (args.Flag("--default-prob") != nullptr) {
    if (!ParseDoubleFlag(args, "--default-prob", 0.0, 1.0,
                         &options.default_prob)) {
      return 2;
    }
  } else if (model != ProbModel::kAsIs) {
    // The model overwrites probabilities; parsing may fill in anything.
    options.default_prob = 0.0;
  }

  StatusOr<Graph> loaded = ReadEdgeList(args.positional[0], options);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Graph graph = std::move(loaded).value();
  switch (model) {
    case ProbModel::kWeightedCascade:
      graph = WithWeightedCascade(graph);
      break;
    case ProbModel::kConstant: {
      double prob_value = 0.01;
      if (!ParseDoubleFlag(args, "--prob-value", 0.0, 1.0, &prob_value)) {
        return 2;
      }
      graph = WithConstantProb(graph, prob_value);
      break;
    }
    case ProbModel::kTrivalency: {
      uint64_t seed = 31;
      if (!ParseU64Flag(args, "--seed", &seed)) return 2;
      graph = WithTrivalency(graph, seed);
      break;
    }
    case ProbModel::kAsIs:
      break;
  }

  const Status written = WriteGraphFile(graph, *out_path);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu nodes, %zu edges, hash %s\n", out_path->c_str(),
              graph.num_nodes(), graph.num_edges(),
              HashToHex(GraphContentHash(graph)).c_str());
  return 0;
}

int CmdBuild(const Args& args) {
  if (args.positional.size() != 1) return Usage(2);
  const std::string cache_dir = CacheDirOr(args);
  if (cache_dir.empty()) {
    std::fprintf(stderr,
                 "build requires --cache-dir or CWM_CACHE_DIR (it exists "
                 "to pre-warm the cache)\n");
    return 2;
  }

  NetworkSpec spec;
  spec.family = args.positional[0];
  if (!IsKnownNetworkFamily(spec.family) || spec.family == "edge-list" ||
      spec.family == "theorem2-gadget") {
    std::fprintf(stderr, "unknown (or non-generator) network family: %s\n",
                 spec.family.c_str());
    return 2;
  }
  uint64_t nodes = 0, degree = 0;
  if (!ParseU64Flag(args, "--nodes", &nodes) ||
      !ParseU64Flag(args, "--degree", &degree) ||
      !ParseU64Flag(args, "--seed", &spec.seed) ||
      !ParseDoubleFlag(args, "--aux", 0.0, 1e9, &spec.aux) ||
      !ParseDoubleFlag(args, "--prob-value", 0.0, 1.0, &spec.prob_value) ||
      !ParseProbModel(args, &spec.prob)) {
    return 2;
  }
  spec.num_nodes = nodes;
  spec.degree = degree;
  double scale = 1.0;
  if (!ParseDoubleFlag(args, "--scale", 1e-9, 1e9, &scale)) return 2;

  StatusOr<std::unique_ptr<ArtifactCache>> cache =
      ArtifactCache::Open(cache_dir);
  if (!cache.ok()) {
    std::fprintf(stderr, "%s\n", cache.status().ToString().c_str());
    return 1;
  }
  StatusOr<Graph> graph = spec.Build(scale, cache.value().get());
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const CacheStats stats = cache.value()->stats();
  std::printf("%s: %zu nodes, %zu edges, hash %s (%s)\n  %s\n",
              spec.Label().c_str(), graph.value().num_nodes(),
              graph.value().num_edges(),
              HashToHex(GraphContentHash(graph.value())).c_str(),
              stats.graph_hits > 0 ? "already cached" : "stored",
              cache.value()->GraphPathFor(spec.CacheRecipe(scale)).c_str());
  return 0;
}

int CmdList(const Args& args) {
  const std::string cache_dir = CacheDirOr(args);
  if (cache_dir.empty()) {
    std::fprintf(stderr, "list requires --cache-dir or CWM_CACHE_DIR\n");
    return 2;
  }
  StatusOr<std::unique_ptr<ArtifactCache>> cache =
      ArtifactCache::Open(cache_dir);
  if (!cache.ok()) {
    std::fprintf(stderr, "%s\n", cache.status().ToString().c_str());
    return 1;
  }
  uint64_t total = 0;
  const std::vector<CacheEntry> entries = cache.value()->List();
  for (const CacheEntry& entry : entries) {
    total += entry.bytes;
    std::printf("%-5s %12llu  %s\n      %s\n",
                entry.is_graph ? "graph" : "rr",
                static_cast<unsigned long long>(entry.bytes),
                entry.path.c_str(), entry.recipe.c_str());
  }
  std::printf("%zu entries, %llu bytes\n", entries.size(),
              static_cast<unsigned long long>(total));
  return 0;
}

int InfoOne(const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".cwd") {
    StatusOr<DeltaFileHeader> header = ReadDeltaHeader(path);
    if (!header.ok()) {
      std::fprintf(stderr, "%s\n", header.status().ToString().c_str());
      return 1;
    }
    const DeltaFileHeader& h = header.value();
    std::printf("%s: delta v%u, %llu edits, %llu nodes, base=%s result=%s\n",
                path.c_str(), h.version,
                static_cast<unsigned long long>(h.num_edits),
                static_cast<unsigned long long>(h.num_nodes),
                HashToHex(h.base_hash).c_str(),
                h.result_hash != 0 ? HashToHex(h.result_hash).c_str()
                                   : "(unrecorded)");
    return 0;
  }
  if (path.size() > 4 && path.substr(path.size() - 4) == ".cwr") {
    StatusOr<RrFileHeader> header = ReadRrHeader(path);
    if (!header.ok()) {
      std::fprintf(stderr, "%s\n", header.status().ToString().c_str());
      return 1;
    }
    const RrFileHeader& h = header.value();
    std::printf("%s: rr v%u, %llu sets, %llu members, %llu nodes, graph=%s "
                "seed=%llu source=%s era=%llu\n",
                path.c_str(), h.version,
                static_cast<unsigned long long>(h.num_sets),
                static_cast<unsigned long long>(h.num_members),
                static_cast<unsigned long long>(h.num_nodes),
                HashToHex(h.graph_hash).c_str(),
                static_cast<unsigned long long>(h.sample_seed),
                HashToHex(h.source_id).c_str(),
                static_cast<unsigned long long>(h.era_start));
    return 0;
  }
  StatusOr<GraphFileHeader> header = ReadGraphHeader(path);
  if (!header.ok()) {
    std::fprintf(stderr, "%s\n", header.status().ToString().c_str());
    return 1;
  }
  const GraphFileHeader& h = header.value();
  std::printf("%s: graph v%u, %llu nodes, %llu edges, recipe=%s, "
              "content=%s\n",
              path.c_str(), h.version,
              static_cast<unsigned long long>(h.num_nodes),
              static_cast<unsigned long long>(h.num_edges),
              HashToHex(h.recipe_hash).c_str(),
              h.content_hash != 0 ? HashToHex(h.content_hash).c_str()
                                  : "(pre-v1.1 file)");
  // Delta ancestry, when the graph was produced by `patch`.
  const StatusOr<DeltaChainFile> chain = ReadChainSidecar(path);
  if (chain.ok()) {
    std::printf("  delta chain: base=%s\n",
                HashToHex(chain.value().base_hash).c_str());
    for (const DeltaChainLink& link : chain.value().links) {
      std::printf("    delta=%s edits=%llu dirty=%llu result=%s\n",
                  HashToHex(link.log_hash).c_str(),
                  static_cast<unsigned long long>(link.num_edits),
                  static_cast<unsigned long long>(link.dirty_count),
                  HashToHex(link.result_hash).c_str());
    }
  }
  return 0;
}

int VerifyOne(const std::string& path) {
  const std::string ext =
      path.size() > 4 ? path.substr(path.size() - 4) : "";
  const Status status = ext == ".cwr"   ? VerifyRrFile(path)
                        : ext == ".cwd" ? VerifyDeltaFile(path)
                                        : VerifyGraphFile(path);
  if (!status.ok()) {
    std::printf("FAIL  %s: %s\n", path.c_str(), status.ToString().c_str());
    return 1;
  }
  std::printf("OK    %s\n", path.c_str());
  return 0;
}

int CmdVerify(const Args& args) {
  std::vector<std::string> paths = args.positional;
  if (paths.empty()) {
    const std::string cache_dir = CacheDirOr(args);
    if (cache_dir.empty()) {
      std::fprintf(stderr,
                   "verify requires file paths, --cache-dir, or "
                   "CWM_CACHE_DIR\n");
      return 2;
    }
    StatusOr<std::unique_ptr<ArtifactCache>> cache =
        ArtifactCache::Open(cache_dir);
    if (!cache.ok()) {
      std::fprintf(stderr, "%s\n", cache.status().ToString().c_str());
      return 1;
    }
    for (const CacheEntry& entry : cache.value()->List()) {
      paths.push_back(entry.path);
    }
  }
  int failures = 0;
  for (const std::string& path : paths) failures += VerifyOne(path);
  std::printf("%zu files, %d failures\n", paths.size(), failures);
  return failures == 0 ? 0 : 1;
}

int CmdGc(const Args& args) {
  const std::string cache_dir = CacheDirOr(args);
  if (cache_dir.empty() || args.Flag("--max-bytes") == nullptr) {
    std::fprintf(stderr, "gc requires --cache-dir (or CWM_CACHE_DIR) and "
                         "--max-bytes N\n");
    return 2;
  }
  uint64_t max_bytes = 0;
  if (!ParseU64Flag(args, "--max-bytes", &max_bytes)) return 2;
  StatusOr<std::unique_ptr<ArtifactCache>> cache =
      ArtifactCache::Open(cache_dir);
  if (!cache.ok()) {
    std::fprintf(stderr, "%s\n", cache.status().ToString().c_str());
    return 1;
  }
  const GcResult result = cache.value()->Gc(max_bytes);
  std::printf("gc: %llu -> %llu bytes, %zu files removed\n",
              static_cast<unsigned long long>(result.bytes_before),
              static_cast<unsigned long long>(result.bytes_after),
              result.files_removed);
  return 0;
}

int CmdDoctor(const Args& args) {
  const std::string cache_dir = CacheDirOr(args);
  if (cache_dir.empty()) {
    std::fprintf(stderr, "doctor requires --cache-dir or CWM_CACHE_DIR\n");
    return 2;
  }
  const bool repair = args.Switch("--repair");
  StatusOr<std::unique_ptr<ArtifactCache>> cache =
      ArtifactCache::Open(cache_dir);
  if (!cache.ok()) {
    std::fprintf(stderr, "%s\n", cache.status().ToString().c_str());
    return 1;
  }
  const std::vector<CacheEntry> entries = cache.value()->List();
  std::size_t healthy = 0, sick = 0, quarantined = 0, deleted = 0;
  for (const CacheEntry& entry : entries) {
    Status status = entry.is_graph ? VerifyGraphFile(entry.path)
                                   : VerifyRrFile(entry.path);
    if (status.ok() && entry.is_graph && entry.recipe.empty()) {
      // An orphaned .cwg is unreachable by recipe lookup and GetOrBuild
      // would rebuild over it forever — treat it as sick.
      status = Status::Corruption("missing or empty recipe sidecar");
    }
    if (status.ok()) {
      ++healthy;
      continue;
    }
    ++sick;
    std::printf("SICK  %s: %s\n", entry.path.c_str(),
                status.ToString().c_str());
    if (repair) {
      std::remove(entry.path.c_str());
      if (entry.is_graph) {
        std::remove(
            (entry.path.substr(0, entry.path.size() - 4) + ".recipe")
                .c_str());
      }
      ++deleted;
      std::printf("      deleted\n");
    } else {
      const Status moved = cache.value()->QuarantineEntry(entry.path);
      if (moved.ok()) {
        ++quarantined;
        std::printf("      quarantined -> %s\n",
                    cache.value()->QuarantineDir().c_str());
      } else {
        std::printf("      quarantine failed: %s\n",
                    moved.ToString().c_str());
      }
    }
  }
  std::printf("doctor: %zu entries, %zu healthy, %zu sick "
              "(%zu quarantined, %zu deleted)\n",
              entries.size(), healthy, sick, quarantined, deleted);
  return sick == 0 ? 0 : 1;
}

int CmdGenDelta(const Args& args) {
  if (args.positional.size() != 1) return Usage(2);
  const std::string* out_path = args.Flag("--out");
  if (out_path == nullptr || args.Flag("--edits") == nullptr) {
    std::fprintf(stderr,
                 "gen-delta requires --out OUT.cwd and --edits N\n");
    return 2;
  }
  uint64_t edits = 0, seed = 1;
  if (!ParseU64Flag(args, "--edits", &edits) ||
      !ParseU64Flag(args, "--seed", &seed)) {
    return 2;
  }
  const StatusOr<Graph> base = OpenGraphFile(args.positional[0]);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }
  DeltaLog log = GenerateChurnDelta(base.value(), seed, edits);
  // Record the composition's hash so every later application of this log
  // is cross-checked against what the generator saw.
  const StatusOr<AppliedDelta> applied =
      ApplyDeltaToGraph(base.value(), log, log.base_hash);
  if (!applied.ok()) {
    std::fprintf(stderr, "%s\n", applied.status().ToString().c_str());
    return 1;
  }
  log.result_hash = applied.value().result_hash;
  if (const Status written = WriteDeltaFile(log, *out_path); !written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu edits, %zu dirty nodes, base=%s result=%s\n",
              out_path->c_str(), log.edits.size(),
              applied.value().dirty_nodes.size(),
              HashToHex(log.base_hash).c_str(),
              HashToHex(log.result_hash).c_str());
  return 0;
}

int CmdPatch(const Args& args) {
  if (args.positional.size() != 1) return Usage(2);
  const std::string* out_path = args.Flag("--out");
  const std::vector<std::string> delta_paths = args.FlagValues("--delta");
  if (out_path == nullptr || delta_paths.empty()) {
    std::fprintf(stderr,
                 "patch requires --delta LOG.cwd (repeatable) and "
                 "--out OUT.cwg\n");
    return 2;
  }
  uint64_t base_hash = 0;
  StatusOr<Graph> base = OpenGraphFile(args.positional[0], &base_hash);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }
  // A base that is itself delta-derived keeps its ancestry: the new
  // sidecar extends the old chain, so the recipe hash stays the fold of
  // every log ever applied since the original base.
  DeltaChainFile chain;
  chain.base_hash = base_hash;
  if (const StatusOr<DeltaChainFile> prior =
          ReadChainSidecar(args.positional[0]);
      prior.ok()) {
    chain = prior.value();
  }

  DeltaOverlay overlay(std::move(base).value(), base_hash);
  for (const std::string& delta_path : delta_paths) {
    const StatusOr<DeltaLog> log = OpenDeltaFile(delta_path);
    if (!log.ok()) {
      std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
      return 1;
    }
    if (const Status applied = overlay.Apply(log.value()); !applied.ok()) {
      std::fprintf(stderr, "%s: %s\n", delta_path.c_str(),
                   applied.ToString().c_str());
      return 1;
    }
    std::printf("%s: %zu edits, %zu dirty nodes -> %s\n", delta_path.c_str(),
                log.value().edits.size(), overlay.last_dirty_nodes().size(),
                HashToHex(overlay.content_hash()).c_str());
  }
  chain.links.insert(chain.links.end(), overlay.chain().begin(),
                     overlay.chain().end());

  const uint64_t recipe =
      DeltaChainRecipeHash(chain.base_hash, chain.links);
  if (const Status written = WriteGraphFile(overlay.graph(), *out_path,
                                            recipe, overlay.content_hash());
      !written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  if (const Status sidecar = WriteChainSidecar(*out_path, chain);
      !sidecar.ok()) {
    std::fprintf(stderr, "%s\n", sidecar.ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu nodes, %zu edges, content=%s, chain of %zu\n",
              out_path->c_str(), overlay.graph().num_nodes(),
              overlay.graph().num_edges(),
              HashToHex(overlay.content_hash()).c_str(),
              chain.links.size());
  return 0;
}

int CmdCompact(const Args& args) {
  if (args.positional.size() != 1) return Usage(2);
  const std::string& in_path = args.positional[0];
  const std::string* out_flag = args.Flag("--out");
  const std::string out_path = out_flag != nullptr ? *out_flag : in_path;

  const StatusOr<DeltaChainFile> chain = ReadChainSidecar(in_path);
  if (!chain.ok()) {
    std::fprintf(stderr, "%s (nothing to compact)\n",
                 chain.status().ToString().c_str());
    return 1;
  }
  uint64_t content_hash = 0;
  StatusOr<Graph> graph = OpenGraphFile(in_path, &content_hash);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const uint64_t recipe =
      DeltaChainRecipeHash(chain.value().base_hash, chain.value().links);
  // An in-place rewrite is safe under the open mapping: the write is
  // temp + rename, so the mmap keeps referencing the replaced inode.
  if (const Status written =
          WriteGraphFile(graph.value(), out_path, recipe, content_hash);
      !written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::remove((in_path + ".chain").c_str());
  if (out_path != in_path) std::remove((out_path + ".chain").c_str());
  std::printf("%s: re-baselined (%zu-delta chain folded into recipe %s), "
              "content=%s\n",
              out_path.c_str(), chain.value().links.size(),
              HashToHex(recipe).c_str(), HashToHex(content_hash).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(2);
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") return Usage(0);
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  if (command == "import") return CmdImport(args);
  if (command == "build") return CmdBuild(args);
  if (command == "list") return CmdList(args);
  if (command == "info") {
    if (args.positional.empty()) return Usage(2);
    int failures = 0;
    for (const std::string& path : args.positional) {
      failures += InfoOne(path);
    }
    return failures == 0 ? 0 : 1;
  }
  if (command == "verify") return CmdVerify(args);
  if (command == "gc") return CmdGc(args);
  if (command == "doctor") return CmdDoctor(args);
  if (command == "gen-delta") return CmdGenDelta(args);
  if (command == "patch") return CmdPatch(args);
  if (command == "compact") return CmdCompact(args);
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return Usage(2);
}
