// cwm_serve — the allocation service daemon.
//
//   cwm_serve --config FILE [options]    serve requests over TCP
//   cwm_serve --config FILE --oneshot REQUEST
//                                        run one request in-process and
//                                        print its response line (the
//                                        bit-identical ground truth the
//                                        bench and tests compare against)
//
// The config is the ServeConfig JSON document (serve/config.h); pass a
// file path, or the document itself when the value starts with '{'.
//
// Options:
//   --config FILE|JSON   serve config (required)
//   --port N             override the config's listen port (0 = ephemeral)
//   --workers N          override the worker thread count (0 = hardware)
//   --queue-capacity N   override the bounded request-queue capacity
//   --oneshot REQUEST    execute one request line in-process (no socket,
//                        no deadline) and print the response to stdout
//   --metrics FILE       write the metrics registry as JSON on exit
//   --quiet              suppress the startup banner on stderr
//   --help               this text
//
// Daemon mode prints exactly one line to stdout once ready:
//   listening on 127.0.0.1:<port>
// (scripts parse the port from it when the config asks for an ephemeral
// one), then serves until SIGINT/SIGTERM, drains in-flight requests, and
// exits 0. The wire protocol is documented in src/serve/protocol.h and
// docs/serving.md.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "serve/config.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

using namespace cwm;

int Usage(const char* argv0, int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: %s --config FILE|JSON [--port N] [--workers N]\n"
               "         [--queue-capacity N] [--metrics FILE.json]\n"
               "         [--quiet] [--help]\n"
               "       %s --config FILE|JSON --oneshot REQUEST\n",
               argv0, argv0);
  return code;
}

bool ParseValue(int argc, char** argv, int* i, const char* flag,
                std::string* out) {
  if (std::strcmp(argv[*i], flag) != 0) return false;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "%s requires a value\n", flag);
    std::exit(2);
  }
  *out = argv[++*i];
  return true;
}

/// --config accepts the document inline (starts with '{') or a path.
StatusOr<ServeConfig> LoadConfig(const std::string& value) {
  if (!value.empty() && value.front() == '{') {
    return ParseServeConfig(value);
  }
  std::ifstream file(value);
  if (!file) {
    return Status::IOError("cannot open config file '" + value + "'");
  }
  std::ostringstream text;
  text << file.rdbuf();
  return ParseServeConfig(text.str());
}

void WriteMetrics(const std::string& path) {
  if (path.empty()) return;
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  file << MetricsToJson(MetricsRegistry::Global().Snapshot()) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_value, oneshot, metrics_path, value;
  int port_override = -1;
  int workers_override = -1;
  int queue_override = -1;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return Usage(argv[0], 0);
    if (ParseValue(argc, argv, &i, "--config", &config_value)) continue;
    if (ParseValue(argc, argv, &i, "--oneshot", &oneshot)) continue;
    if (ParseValue(argc, argv, &i, "--metrics", &metrics_path)) continue;
    if (ParseValue(argc, argv, &i, "--port", &value)) {
      port_override = std::atoi(value.c_str());
      continue;
    }
    if (ParseValue(argc, argv, &i, "--workers", &value)) {
      workers_override = std::atoi(value.c_str());
      continue;
    }
    if (ParseValue(argc, argv, &i, "--queue-capacity", &value)) {
      queue_override = std::atoi(value.c_str());
      continue;
    }
    if (arg == "--quiet") { quiet = true; continue; }
    std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
    return Usage(argv[0], 2);
  }

  if (config_value.empty()) {
    std::fprintf(stderr, "--config is required\n");
    return Usage(argv[0], 2);
  }

  StatusOr<ServeConfig> config = LoadConfig(config_value);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  if (port_override >= 0) config.value().port = port_override;
  if (workers_override >= 0) {
    config.value().workers = static_cast<unsigned>(workers_override);
  }
  if (queue_override >= 1) {
    config.value().queue_capacity =
        static_cast<std::size_t>(queue_override);
  }

  if (!oneshot.empty()) {
    // In-process execution: same parse, same seed derivation, same
    // engine path as a served request — the ground-truth oracle.
    StatusOr<std::unique_ptr<ServeEngineSet>> engines =
        ServeEngineSet::Load(config.value());
    if (!engines.ok()) {
      std::fprintf(stderr, "%s\n", engines.status().ToString().c_str());
      return 1;
    }
    StatusOr<ServeRequest> request = ParseServeRequest(oneshot);
    if (!request.ok()) {
      std::printf("%s\n",
                  FormatServeError("",
                                   ServeErrorCodeOf(request.status(), false),
                                   request.status().message())
                      .c_str());
      WriteMetrics(metrics_path);
      return 1;
    }
    const std::string response = ExecuteServeRequest(
        *engines.value(), request.value(), /*cancel=*/nullptr);
    std::printf("%s\n", response.c_str());
    WriteMetrics(metrics_path);
    return response.find("\"ok\":true") != std::string::npos ? 0 : 1;
  }

  // Daemon mode: block the termination signals before starting threads
  // so every thread inherits the mask and sigwait below is the single
  // delivery point.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  StatusOr<std::unique_ptr<Server>> server =
      Server::Start(std::move(config).value());
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  if (!quiet) {
    std::fprintf(stderr, "cwm_serve: ready; Ctrl-C to drain and exit\n");
  }
  std::printf("listening on 127.0.0.1:%d\n", server.value()->port());
  std::fflush(stdout);

  int signo = 0;
  sigwait(&mask, &signo);
  if (!quiet) {
    std::fprintf(stderr, "cwm_serve: signal %d; draining\n", signo);
  }
  server.value()->Shutdown();
  WriteMetrics(metrics_path);
  return 0;
}
