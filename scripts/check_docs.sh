#!/usr/bin/env bash
# Docs-drift gate: the README's flag and env-knob tables must match the
# binaries and the sweep engine they document, docs/serving.md must match
# cwm_serve --help, docs/dynamic-graphs.md must match the delta verbs of
# cwm_data --help, the docs/robustness.md failpoint table must match the
# sites in src/ and the failpoint.cc inventory, and the docs/ book must
# exist with intact relative links. Run from the repository root with the
# cwm_run binary as $1 (default build/cwm_run), cwm_serve as $2
# (default build/cwm_serve), and cwm_data as $3 (default build/cwm_data).
set -euo pipefail

CWM_RUN="${1:-build/cwm_run}"
CWM_SERVE="${2:-build/cwm_serve}"
CWM_DATA="${3:-build/cwm_data}"
status=0

if [[ ! -x "$CWM_RUN" ]]; then
  echo "cwm_run binary not found at $CWM_RUN (build first)" >&2
  exit 2
fi
if [[ ! -x "$CWM_SERVE" ]]; then
  echo "cwm_serve binary not found at $CWM_SERVE (build first)" >&2
  exit 2
fi
if [[ ! -x "$CWM_DATA" ]]; then
  echo "cwm_data binary not found at $CWM_DATA (build first)" >&2
  exit 2
fi

# --- 1. README flag table vs. `cwm_run --help` ---------------------------
# Flags the binary advertises (from the usage synopsis), minus --help
# itself, which the synopsis does not list.
help_flags=$("$CWM_RUN" --help | grep -oE -- '--[a-z-]+' | sort -u)
# Flags the README documents: first cell of each row of the flags table.
readme_flags=$(grep -oE '^\| `--[a-z-]+' README.md | grep -oE -- '--[a-z-]+' \
  | sort -u)

undocumented=$(comm -23 <(echo "$help_flags") <(echo "$readme_flags"))
if [[ -n "$undocumented" ]]; then
  echo "FLAGS IN --help BUT MISSING FROM README.md:" >&2
  echo "$undocumented" >&2
  status=1
fi
stale=$(comm -13 <(echo "$help_flags") <(echo "$readme_flags"))
if [[ -n "$stale" ]]; then
  echo "FLAGS DOCUMENTED IN README.md BUT ABSENT FROM --help:" >&2
  echo "$stale" >&2
  status=1
fi

# --- 1b. docs/serving.md flag table vs. `cwm_serve --help` ----------------
serve_help_flags=$("$CWM_SERVE" --help | grep -oE -- '--[a-z-]+' | sort -u)
serve_doc_flags=$(grep -oE '^\| `--[a-z-]+' docs/serving.md \
  | grep -oE -- '--[a-z-]+' | sort -u)

serve_undocumented=$(comm -23 <(echo "$serve_help_flags") \
                              <(echo "$serve_doc_flags"))
if [[ -n "$serve_undocumented" ]]; then
  echo "FLAGS IN cwm_serve --help BUT MISSING FROM docs/serving.md:" >&2
  echo "$serve_undocumented" >&2
  status=1
fi
serve_stale=$(comm -13 <(echo "$serve_help_flags") <(echo "$serve_doc_flags"))
if [[ -n "$serve_stale" ]]; then
  echo "FLAGS DOCUMENTED IN docs/serving.md BUT ABSENT FROM cwm_serve --help:" >&2
  echo "$serve_stale" >&2
  status=1
fi

# --- 1c. docs/dynamic-graphs.md vs. the delta verbs of cwm_data ----------
# The chapter's flag table must cover exactly the flags of the delta
# subcommands (gen-delta / patch / compact), and the verbs themselves
# must exist on both sides.
for verb in gen-delta patch compact; do
  if ! "$CWM_DATA" --help | grep -qE "cwm_data $verb "; then
    echo "DELTA VERB '$verb' MISSING FROM cwm_data --help" >&2
    status=1
  fi
  if ! grep -q "cwm_data $verb" docs/dynamic-graphs.md; then
    echo "DELTA VERB '$verb' MISSING FROM docs/dynamic-graphs.md" >&2
    status=1
  fi
done
data_delta_flags=$("$CWM_DATA" --help \
  | grep -E 'cwm_data (gen-delta|patch|compact) ' \
  | grep -oE -- '--[a-z-]+' | sort -u)
delta_doc_flags=$(grep -oE '^\| `--[a-z-]+' docs/dynamic-graphs.md \
  | grep -oE -- '--[a-z-]+' | sort -u)

delta_undocumented=$(comm -23 <(echo "$data_delta_flags") \
                              <(echo "$delta_doc_flags"))
if [[ -n "$delta_undocumented" ]]; then
  echo "DELTA FLAGS IN cwm_data --help BUT MISSING FROM docs/dynamic-graphs.md:" >&2
  echo "$delta_undocumented" >&2
  status=1
fi
delta_stale=$(comm -13 <(echo "$data_delta_flags") <(echo "$delta_doc_flags"))
if [[ -n "$delta_stale" ]]; then
  echo "FLAGS DOCUMENTED IN docs/dynamic-graphs.md BUT ABSENT FROM the cwm_data delta verbs:" >&2
  echo "$delta_stale" >&2
  status=1
fi

# --- 2. README env-knob table vs. the knobs the code reads ---------------
code_knobs=$( (grep -ohE 'Env(Int|Double)\("CWM_[A-Z_]+' \
                 src/scenario/sweep.cc | grep -oE 'CWM_[A-Z_]+';
               grep -ohE 'getenv\("CWM_[A-Z_]+' src/scenario/sweep.cc \
                 | grep -oE 'CWM_[A-Z_]+') | sort -u)
readme_knobs=$(grep -oE '^\| `CWM_[A-Z_]+' README.md | grep -oE 'CWM_[A-Z_]+' \
  | sort -u)

unknown_knobs=$(comm -23 <(echo "$code_knobs") <(echo "$readme_knobs"))
if [[ -n "$unknown_knobs" ]]; then
  echo "ENV KNOBS READ BY THE SWEEP ENGINE BUT MISSING FROM README.md:" >&2
  echo "$unknown_knobs" >&2
  status=1
fi
stale_knobs=$(comm -13 <(echo "$code_knobs") <(echo "$readme_knobs"))
if [[ -n "$stale_knobs" ]]; then
  echo "ENV KNOBS DOCUMENTED IN README.md BUT NOT READ BY sweep.cc:" >&2
  echo "$stale_knobs" >&2
  status=1
fi

# --- 2b. Failpoint inventory: code sites vs. registry vs. docs table -----
# Three sources must agree: the CWM_FAILPOINT sites in src/, the static
# inventory in failpoint.cc, and the docs/robustness.md table (rows
# between the BEGIN/END_FAILPOINT_TABLE markers).
code_sites=$(grep -rhoE 'CWM_FAILPOINT(_STATUS)?\("[a-z_.]+"' src/ \
  | grep -oE '"[a-z_.]+"' | tr -d '"' | sort -u)
inventory_sites=$(sed -n '/BEGIN_FAILPOINT_INVENTORY/,/END_FAILPOINT_INVENTORY/p' \
  src/support/failpoint.cc | grep -oE '"[a-z_.]+"' | tr -d '"' | sort -u)
doc_sites=$(sed -n '/BEGIN_FAILPOINT_TABLE/,/END_FAILPOINT_TABLE/p' \
  docs/robustness.md | grep -oE '^\| `[a-z_.]+`' | tr -d '`| ' | sort -u)

unregistered=$(comm -23 <(echo "$code_sites") <(echo "$inventory_sites"))
if [[ -n "$unregistered" ]]; then
  echo "FAILPOINT SITES IN src/ BUT MISSING FROM THE failpoint.cc INVENTORY:" >&2
  echo "$unregistered" >&2
  status=1
fi
unused=$(comm -13 <(echo "$code_sites") <(echo "$inventory_sites"))
if [[ -n "$unused" ]]; then
  echo "INVENTORY FAILPOINTS WITH NO CWM_FAILPOINT SITE IN src/:" >&2
  echo "$unused" >&2
  status=1
fi
undoc_sites=$(comm -23 <(echo "$inventory_sites") <(echo "$doc_sites"))
if [[ -n "$undoc_sites" ]]; then
  echo "FAILPOINTS MISSING FROM THE docs/robustness.md TABLE:" >&2
  echo "$undoc_sites" >&2
  status=1
fi
stale_sites=$(comm -13 <(echo "$inventory_sites") <(echo "$doc_sites"))
if [[ -n "$stale_sites" ]]; then
  echo "docs/robustness.md TABLE ROWS WITH NO REGISTERED FAILPOINT:" >&2
  echo "$stale_sites" >&2
  status=1
fi

# --- 3. The docs book exists and its relative links resolve --------------
for doc in docs/ARCHITECTURE.md docs/kernel.md docs/determinism.md \
           docs/embedding.md docs/serving.md docs/robustness.md \
           docs/dynamic-graphs.md; do
  if [[ ! -f "$doc" ]]; then
    echo "MISSING DOC: $doc" >&2
    status=1
  fi
done
for doc in README.md docs/*.md; do
  [[ -f "$doc" ]] || continue
  dir=$(dirname "$doc")
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    if [[ ! -e "$dir/$target" ]]; then
      echo "BROKEN LINK in $doc: $target" >&2
      status=1
    fi
  done < <(grep -oE '\]\([A-Za-z0-9_./-]+\.(md|cc|h|cpp)' "$doc" \
             | sed -E 's/^\]\(//' | sed -E 's/#.*$//')
done

if [[ $status -eq 0 ]]; then
  echo "docs in sync: flags, env knobs, book files, relative links"
fi
exit $status
