#!/usr/bin/env python3
"""CI gate for `cwm_run --trace` / `--metrics`.

Runs a traced smoke sweep against a temporary artifact cache and checks:

  * the trace file is well-formed Chrome trace-event JSON: a traceEvents
    list whose entries all carry name/ph/pid/tid/ts, with 'X' events
    additionally carrying a non-negative dur;
  * the trace contains spans from every instrumented layer (span names
    follow `<layer>.<verb>`): rr, store, simulate, api, scenario;
  * the stderr stats lines keep the substrings the warm-cache smoke
    greps ("cache: graphs hits=", "rr hits=");
  * the --metrics file is valid JSON with the unified cache counters.

Usage:
  check_trace.py ./build/cwm_run [--scenario smoke-tiny]
"""
import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REQUIRED_LAYERS = {"rr", "store", "simulate", "api", "scenario"}


def validate_trace(path):
    """Returns the set of `<layer>` prefixes seen across span names."""
    with open(path) as fh:
        trace = json.load(fh)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise SystemExit(f"FAIL: {path} has no traceEvents")
    layers = set()
    spans = 0
    for event in events:
        for field in ("name", "ph", "pid", "tid", "ts"):
            if field not in event:
                raise SystemExit(f"FAIL: event missing '{field}': {event}")
        if event["ph"] == "X":
            spans += 1
            if float(event.get("dur", -1.0)) < 0.0:
                raise SystemExit(f"FAIL: 'X' event without dur: {event}")
        layers.add(str(event["name"]).split(".", 1)[0])
    if spans == 0:
        raise SystemExit(f"FAIL: {path} contains no complete spans")
    dropped = trace.get("metadata", {}).get("events_dropped", 0)
    print(f"trace: {len(events)} events ({spans} spans, {dropped} dropped), "
          f"layers: {', '.join(sorted(layers))}")
    return layers


def validate_metrics(path):
    with open(path) as fh:
        metrics = json.load(fh)
    counters = metrics.get("counters", {})
    for name in ("cache.graph_hits", "cache.graph_misses",
                 "cache.rr_hits", "cache.rr_misses"):
        if name not in counters:
            raise SystemExit(f"FAIL: metrics missing counter '{name}'")
    if "histograms" not in metrics:
        raise SystemExit("FAIL: metrics missing 'histograms'")
    print(f"metrics: {len(counters)} counters, "
          f"{len(metrics.get('gauges', {}))} gauges, "
          f"{len(metrics['histograms'])} histograms")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("cwm_run", help="path to the cwm_run binary")
    parser.add_argument("--scenario", default="smoke-tiny",
                        help="scenario to sweep (default smoke-tiny)")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="cwm_trace_") as tmp:
        tmp = Path(tmp)
        trace_path = tmp / "trace.json"
        metrics_path = tmp / "metrics.json"
        cmd = [args.cwm_run, args.scenario,
               "--threads", "2",
               "--cache-dir", str(tmp / "cache"),
               "--trace", str(trace_path),
               "--metrics", str(metrics_path),
               "--quiet"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        sys.stderr.write(proc.stderr)
        if proc.returncode != 0:
            raise SystemExit(f"FAIL: {' '.join(cmd)} exited "
                             f"{proc.returncode}")

        # The stderr stats contract the warm-cache CI smoke greps.
        for needle in ("cache: graphs hits=", "rr hits="):
            if needle not in proc.stderr:
                raise SystemExit(
                    f"FAIL: stderr lost the '{needle}' stats substring")

        layers = validate_trace(trace_path)
        missing = REQUIRED_LAYERS - layers
        if missing:
            raise SystemExit("FAIL: trace missing spans from layers: "
                             + ", ".join(sorted(missing)))
        validate_metrics(metrics_path)

    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
