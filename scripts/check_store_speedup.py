#!/usr/bin/env python3
"""CI perf gate for the binary artifact store.

Reads a google-benchmark JSON file containing BM_GraphBuildOrkutLike
(cold: regenerate + re-weight the network) and BM_GraphStoreOpenOrkutLike
(warm: one zero-copy mmap open of the .cwg image) and fails (exit 1)
unless the warm path is at least `--min-speedup` times faster.

Usage:
  check_store_speedup.py bench.json [--min-speedup 10.0]
"""
import argparse
import json
import sys


_NS_PER_UNIT = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}


def best_time(benchmarks, name):
    """Best (lowest) real_time across repetitions of `name`, in ns."""
    times = [float(bench["real_time"]) *
             _NS_PER_UNIT.get(bench.get("time_unit", "ns"), 1)
             for bench in benchmarks
             if bench.get("name") == name
             and bench.get("run_type", "iteration") == "iteration"
             # SkipWithError still emits an entry with a near-zero time;
             # counting it would let a broken open path "pass" the gate.
             and not bench.get("error_occurred", False)]
    if not times:
        raise SystemExit(f"benchmark '{name}' not found in the JSON input")
    return min(times)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="google-benchmark JSON output")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="required cold/warm time ratio (default 10)")
    args = parser.parse_args()

    with open(args.json_path) as fh:
        report = json.load(fh)
    benchmarks = report.get("benchmarks", [])

    build = best_time(benchmarks, "BM_GraphBuildOrkutLike")
    open_ = best_time(benchmarks, "BM_GraphStoreOpenOrkutLike")
    speedup = build / open_ if open_ > 0 else float("inf")
    print(f"Graph availability: regenerate = {build / 1e6:,.2f} ms, "
          f"store open = {open_ / 1e6:,.3f} ms "
          f"(speedup {speedup:.1f}x, gate {args.min_speedup:.1f}x)")
    if speedup < args.min_speedup:
        print(f"FAIL: the binary store open is only {speedup:.1f}x faster "
              f"than regeneration (needs >= {args.min_speedup:.1f}x)",
              file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
