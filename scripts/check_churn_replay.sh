#!/usr/bin/env bash
# Churn-replay smoke gate for the dynamic-graph delta subsystem.
#
# Replays a deterministic churn chain through the cwm_data delta verbs
# and asserts, at EVERY step, that the incremental artifact is
# byte-identical to a from-scratch rebuild:
#
#  * step-by-step patching (g0 -> g1 -> g2 -> g3, one delta at a time)
#    must produce the same .cwg bytes and the same .chain sidecar as
#    applying the whole prefix in one patch invocation from the base —
#    the recipe-hash fold is path-independent by construction
#    (delta/overlay.h), and this gate proves it end to end through the
#    CLI, store headers included;
#  * compacting the incremental and the from-scratch compositions must
#    produce byte-identical standalone artifacts with no chain sidecar;
#  * every artifact passes `cwm_data verify`;
#  * the `churn-replay` registry scenario (the same machinery driven
#    declaratively via NetworkSpec::churn_steps) is bit-deterministic
#    across thread counts.
#
# Usage: scripts/check_churn_replay.sh [path/to/cwm_run] [path/to/cwm_data]
set -euo pipefail

CWM_RUN="${1:-./build/cwm_run}"
CWM_DATA="${2:-./build/cwm_data}"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

STEPS=3
EDITS=10

# Base graph: the churn-replay scenario's network (tiny ER, weighted
# cascade), synthesized into a throwaway cache and copied out as a
# standalone artifact.
"$CWM_DATA" build erdos-renyi --nodes 300 --degree 4 \
  --cache-dir "$tmpdir/cache" > /dev/null
base_cwg=$(echo "$tmpdir"/cache/graphs/*.cwg)
cp "$base_cwg" "$tmpdir/g0.cwg"

prev="$tmpdir/g0.cwg"
deltas=()
for step in $(seq 1 "$STEPS"); do
  # The delta is generated against the *incremental* head, so the
  # one-shot replay below also validates every log's base-hash check.
  "$CWM_DATA" gen-delta "$prev" --out "$tmpdir/d$step.cwd" \
    --edits "$EDITS" --seed "$step" > /dev/null
  deltas+=(--delta "$tmpdir/d$step.cwd")

  "$CWM_DATA" patch "$prev" --delta "$tmpdir/d$step.cwd" \
    --out "$tmpdir/g$step.cwg" > /dev/null
  "$CWM_DATA" patch "$tmpdir/g0.cwg" "${deltas[@]}" \
    --out "$tmpdir/G$step.cwg" > /dev/null

  cmp "$tmpdir/g$step.cwg" "$tmpdir/G$step.cwg"
  cmp "$tmpdir/g$step.cwg.chain" "$tmpdir/G$step.cwg.chain"
  "$CWM_DATA" verify "$tmpdir/g$step.cwg" "$tmpdir/d$step.cwd" > /dev/null
  prev="$tmpdir/g$step.cwg"
done

"$CWM_DATA" compact "$tmpdir/g$STEPS.cwg" --out "$tmpdir/c_inc.cwg" \
  > /dev/null
"$CWM_DATA" compact "$tmpdir/G$STEPS.cwg" --out "$tmpdir/c_scratch.cwg" \
  > /dev/null
cmp "$tmpdir/c_inc.cwg" "$tmpdir/c_scratch.cwg"
if [[ -e "$tmpdir/c_inc.cwg.chain" ]]; then
  echo "compact left a chain sidecar on $tmpdir/c_inc.cwg" >&2
  exit 1
fi
"$CWM_DATA" verify "$tmpdir/c_inc.cwg" > /dev/null

# The declarative route: the churn-replay scenario folds the same kind of
# chain inside NetworkSpec::Build, and must stay bit-deterministic at any
# thread count like every other sweep.
"$CWM_RUN" churn-replay --threads 1 --out "$tmpdir/churn1.jsonl" --quiet
"$CWM_RUN" churn-replay --threads 4 --out "$tmpdir/churn4.jsonl" --quiet
cmp "$tmpdir/churn1.jsonl" "$tmpdir/churn4.jsonl"

echo "churn replay gate: incremental == from-scratch at every step"
