#!/usr/bin/env python3
"""CI perf gate for disabled-tracing overhead.

Reads a google-benchmark JSON file containing BM_TraceOverhead runs and
fails (exit 1) if the arm with an instrumentation site but no installed
recorder (Arg 0) is more than `--max-overhead` slower than the arm with
no instrumentation at all (Arg 2). Best-of-repetitions throughput on
both sides, so scheduler noise shrinks the measured gap rather than
inflating it. The enabled-recorder arm (Arg 1) is reported for context
but not gated.

Usage:
  check_trace_overhead.py bench.json [--max-overhead 0.02]
"""
import argparse
import json
import sys


def throughput(benchmarks, arg):
    """Best work-units/s across repetitions of the `arg` arm."""
    name = f"BM_TraceOverhead/{arg}/real_time"
    rates = [float(bench["items_per_second"]) for bench in benchmarks
             if bench.get("name") == name
             and bench.get("run_type", "iteration") == "iteration"
             and not bench.get("error_occurred", False)]
    if not rates:
        raise SystemExit(f"benchmark '{name}' not found in the JSON input")
    return max(rates)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="google-benchmark JSON output")
    parser.add_argument("--max-overhead", type=float, default=0.02,
                        help="max fractional slowdown of the disabled-"
                             "tracing arm vs the uninstrumented baseline "
                             "(default 0.02 = 2%%)")
    args = parser.parse_args()

    with open(args.json_path) as fh:
        report = json.load(fh)
    benchmarks = report.get("benchmarks", [])

    disabled = throughput(benchmarks, 0)
    enabled = throughput(benchmarks, 1)
    baseline = throughput(benchmarks, 2)
    overhead = (baseline / disabled - 1.0) if disabled > 0 else float("inf")
    print(f"Trace overhead: baseline = {baseline:,.0f} units/s, "
          f"disabled-tracing = {disabled:,.0f} units/s "
          f"(overhead {overhead * 100:.2f}%, "
          f"gate {args.max_overhead * 100:.2f}%), "
          f"enabled-tracing = {enabled:,.0f} units/s (not gated)")
    if overhead > args.max_overhead:
        print(f"FAIL: disabled tracing costs {overhead * 100:.2f}% "
              f"(needs <= {args.max_overhead * 100:.2f}%)",
              file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
