#!/usr/bin/env python3
"""CI perf gate for the word-parallel (bit-packed) diffusion kernel.

Reads a google-benchmark JSON file containing BM_PackedDiffusion runs
(items/s = worlds x candidates evaluated per second; arg pair is
(packed 0/1, worlds)) and fails (exit 1) unless the packed kernel's
per-world throughput is at least `--min-speedup` times the scalar
snapshot path at the same world count.

Usage:
  check_packed_speedup.py bench.json [--worlds 256] [--min-speedup 8.0]
"""
import argparse
import json
import sys


def throughput(benchmarks, packed, worlds):
    """Best (worlds x candidates)/s across repetitions of one arm."""
    name = f"BM_PackedDiffusion/{int(packed)}/{worlds}/real_time"
    rates = [float(bench["items_per_second"]) for bench in benchmarks
             if bench.get("name") == name
             and bench.get("run_type", "iteration") == "iteration"
             and not bench.get("error_occurred", False)]
    if not rates:
        raise SystemExit(f"benchmark '{name}' not found in the JSON input")
    return max(rates)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="google-benchmark JSON output")
    parser.add_argument("--worlds", type=int, default=256,
                        help="world-count arm to compare (default 256)")
    parser.add_argument("--min-speedup", type=float, default=8.0,
                        help="required packed/scalar per-world throughput "
                             "ratio (default 8.0)")
    args = parser.parse_args()

    with open(args.json_path) as fh:
        report = json.load(fh)
    benchmarks = report.get("benchmarks", [])

    scalar = throughput(benchmarks, packed=False, worlds=args.worlds)
    packed = throughput(benchmarks, packed=True, worlds=args.worlds)
    speedup = packed / scalar if scalar > 0 else 0.0
    print(f"Diffusion throughput at {args.worlds} worlds: scalar = "
          f"{scalar:,.0f} world-candidates/s, packed = {packed:,.0f} "
          f"world-candidates/s (speedup {speedup:.2f}x, "
          f"gate {args.min_speedup:.2f}x)")
    if speedup < args.min_speedup:
        print(f"FAIL: packed kernel throughput is only {speedup:.2f}x the "
              f"scalar path (needs >= {args.min_speedup:.2f}x)",
              file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
