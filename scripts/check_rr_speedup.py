#!/usr/bin/env python3
"""CI perf gate for the parallel RR-set pipeline.

Reads a google-benchmark JSON file containing BM_RrPipelineSampling runs
and fails (exit 1) unless the multi-thread throughput is at least
`--min-speedup` times the single-thread throughput.

Usage:
  check_rr_speedup.py bench.json [--threads 4] [--min-speedup 2.0]
"""
import argparse
import json
import sys


def throughput(benchmarks, threads):
    """Best items/s across repetitions of the `threads`-worker arm."""
    name = f"BM_RrPipelineSampling/{threads}/real_time"
    rates = [float(bench["items_per_second"]) for bench in benchmarks
             if bench.get("name") == name
             and bench.get("run_type", "iteration") == "iteration"
             and not bench.get("error_occurred", False)]
    if not rates:
        raise SystemExit(f"benchmark '{name}' not found in the JSON input")
    return max(rates)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="google-benchmark JSON output")
    parser.add_argument("--threads", type=int, default=4,
                        help="multi-thread arm to compare (default 4)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required throughput ratio vs 1 thread")
    args = parser.parse_args()

    with open(args.json_path) as fh:
        report = json.load(fh)
    benchmarks = report.get("benchmarks", [])

    base = throughput(benchmarks, 1)
    multi = throughput(benchmarks, args.threads)
    speedup = multi / base if base > 0 else 0.0
    print(f"RR sampling throughput: 1 thread = {base:,.0f} sets/s, "
          f"{args.threads} threads = {multi:,.0f} sets/s "
          f"(speedup {speedup:.2f}x, gate {args.min_speedup:.2f}x)")
    if speedup < args.min_speedup:
        print(f"FAIL: {args.threads}-thread throughput is only "
              f"{speedup:.2f}x the single-thread baseline "
              f"(needs >= {args.min_speedup:.2f}x)", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
