#!/usr/bin/env python3
"""Load benchmark + correctness gate for the cwm_serve daemon.

Starts cwm_serve on an ephemeral port, opens K concurrent connections,
and drives M requests per connection (round-robin over a small algorithm
x seed grid). Reports throughput and latency percentiles as JSON and
optionally gates on them (CI's serve smoke):

  * --min-throughput R   fail unless completed requests/s >= R
  * --max-p99 S          fail unless p99 latency <= S seconds
  * zero mismatches: every response payload must be bit-identical to the
    ground truth printed by `cwm_serve --oneshot` for the same request
    (timing fields excluded) — the serve path may never change results.

Usage:
  serve_bench.py ./build/cwm_serve [--connections 4] [--requests 25]
      [--graph-scenario smoke-tiny] [--sims 20] [--eval-sims 24]
      [--out serve_bench.json] [--min-throughput 0] [--max-p99 0]

Exit status: 0 on pass, 1 on any gate failure or response mismatch.
"""
import argparse
import json
import re
import socket
import subprocess
import sys
import threading
import time

CONFIG_TEMPLATE = {
    "port": 0,
    "workers": 0,
    "queue_capacity": 256,
    "graphs": [],
}

ALGOS = ["SeqGRD-NM", "SeqGRD", "MaxGRD"]


def strip_timings(value):
    """Drops *_seconds and "degraded" keys recursively.

    Timings are wall-clock noise; "degraded" marks a storage fallback
    that is bit-identical by contract, so a degraded server response
    must still match a healthy --oneshot oracle payload-for-payload.
    """
    if isinstance(value, dict):
        return {k: strip_timings(v) for k, v in value.items()
                if not (k.endswith("_seconds") or k == "degraded")}
    if isinstance(value, list):
        return [strip_timings(v) for v in value]
    return value


def connect_with_backoff(port, attempts=8, base_delay=0.05):
    """Connects to the server, retrying with exponential backoff.

    The listening banner precedes accept-readiness only on a healthy
    server; under fault injection (or a slow machine) the first connect
    can race the socket setup, and one refused connect should not fail
    a whole bench run.
    """
    delay = base_delay
    for attempt in range(attempts):
        try:
            return socket.create_connection(("127.0.0.1", port),
                                            timeout=120)
        except OSError:
            if attempt == attempts - 1:
                raise
            time.sleep(delay)
            delay *= 2


def make_request(index, args):
    algo = ALGOS[index % len(ALGOS)]
    seed = 1 + index // len(ALGOS)
    return {
        "id": f"r{index}",
        "graph": "bench",
        "algo": algo,
        "budgets": [3],
        "seed": seed,
        "sims": args.sims,
        "eval_sims": args.eval_sims,
    }


def drive_connection(port, requests, results, slot):
    """Sends each request and awaits its response; records latencies."""
    latencies, responses = [], {}
    with connect_with_backoff(port) as sock:
        reader = sock.makefile("r", encoding="utf-8")
        for request in requests:
            line = json.dumps(request)
            start = time.monotonic()
            sock.sendall((line + "\n").encode())
            response = reader.readline()
            latencies.append(time.monotonic() - start)
            responses[request["id"]] = json.loads(response)
    results[slot] = (latencies, responses)


def percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("serve_binary", help="path to cwm_serve")
    parser.add_argument("--connections", type=int, default=4)
    parser.add_argument("--requests", type=int, default=25,
                        help="requests per connection")
    parser.add_argument("--graph-scenario", default="smoke-tiny",
                        help="registry scenario backing the served graph")
    parser.add_argument("--sims", type=int, default=20)
    parser.add_argument("--eval-sims", type=int, default=24)
    parser.add_argument("--out", default="",
                        help="write the report JSON here too")
    parser.add_argument("--min-throughput", type=float, default=0.0,
                        help="required completed requests/s (0 = no gate)")
    parser.add_argument("--max-p99", type=float, default=0.0,
                        help="max p99 latency in seconds (0 = no gate)")
    args = parser.parse_args()

    config = dict(CONFIG_TEMPLATE)
    config["graphs"] = [{"name": "bench",
                        "scenario": args.graph_scenario}]
    config_json = json.dumps(config)

    server = subprocess.Popen(
        [args.serve_binary, "--config", config_json, "--quiet"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
    try:
        banner = server.stdout.readline()
        match = re.search(r"listening on 127\.0\.0\.1:(\d+)", banner)
        if not match:
            raise SystemExit(f"unexpected cwm_serve banner: {banner!r}")
        port = int(match.group(1))

        total = args.connections * args.requests
        plans = [[make_request(c * args.requests + r, args)
                  for r in range(args.requests)]
                 for c in range(args.connections)]

        results = [None] * args.connections
        threads = [threading.Thread(target=drive_connection,
                                    args=(port, plans[c], results, c))
                   for c in range(args.connections)]
        start = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.monotonic() - start
    finally:
        server.terminate()
        server.wait(timeout=60)

    latencies = sorted(lat for slot in results for lat in slot[0])
    responses = {}
    for slot in results:
        responses.update(slot[1])

    failures = sum(1 for response in responses.values()
                   if not response.get("ok", False))

    # Ground truth: one --oneshot run per distinct request payload
    # (ids differ but payloads repeat across connections, so dedup).
    mismatches = 0
    checked = 0
    oracle = {}
    for plan in plans:
        for request in plan:
            key = json.dumps(
                {k: v for k, v in request.items() if k != "id"},
                sort_keys=True)
            if key not in oracle:
                proc = subprocess.run(
                    [args.serve_binary, "--config", config_json,
                     "--oneshot", json.dumps(request)],
                    capture_output=True, text=True)
                if proc.returncode != 0:
                    raise SystemExit(
                        f"--oneshot failed: {proc.stderr.strip()}")
                oracle[key] = strip_timings(json.loads(proc.stdout))
            served = strip_timings(responses[request["id"]])
            served.pop("id", None)
            expect = dict(oracle[key])
            expect.pop("id", None)
            checked += 1
            if served != expect:
                mismatches += 1
                if mismatches <= 3:
                    print(f"MISMATCH for {request['id']}:\n"
                          f"  served: {served}\n  direct: {expect}",
                          file=sys.stderr)

    report = {
        "connections": args.connections,
        "requests": total,
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(total / wall, 2) if wall > 0 else 0.0,
        "latency_seconds": {
            "p50": round(percentile(latencies, 0.50), 5),
            "p90": round(percentile(latencies, 0.90), 5),
            "p99": round(percentile(latencies, 0.99), 5),
            "max": round(latencies[-1], 5) if latencies else 0.0,
        },
        "failed_responses": failures,
        "oneshot_checked": checked,
        "oneshot_mismatches": mismatches,
    }
    print(json.dumps(report, indent=2))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")

    ok = failures == 0 and mismatches == 0
    if args.min_throughput > 0 and report["throughput_rps"] < args.min_throughput:
        print(f"FAIL: throughput {report['throughput_rps']} req/s below "
              f"gate {args.min_throughput}", file=sys.stderr)
        ok = False
    if args.max_p99 > 0 and report["latency_seconds"]["p99"] > args.max_p99:
        print(f"FAIL: p99 {report['latency_seconds']['p99']}s above gate "
              f"{args.max_p99}s", file=sys.stderr)
        ok = False
    if failures:
        print(f"FAIL: {failures} non-ok responses", file=sys.stderr)
    if mismatches:
        print(f"FAIL: {mismatches} responses differ from --oneshot ground "
              f"truth", file=sys.stderr)
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
