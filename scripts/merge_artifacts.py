#!/usr/bin/env python3
"""Merge sharded cwm_run JSONL artifacts back into the single-process file.

`cwm_run <scenario> --shard I/N --out shard_I.jsonl` partitions the task
grid by task index modulo N; every emitted row is bit-identical to the
same row of an unsharded run. This script interleaves the N shard files
by the rows' "task" field and writes the exact byte sequence the
unsharded `cwm_run <scenario> --out merged.jsonl` would have produced:
one spec record per scenario (identical across shards, verified here)
followed by its result records in ascending task order.

Shards may list multiple scenarios (cwm_run runs them sequentially);
each shard must contain the same scenario sequence.

Usage:
  merge_artifacts.py shard_0.jsonl shard_1.jsonl ... [-o merged.jsonl]
"""
import argparse
import json
import sys


def read_segments(path):
    """Splits one shard file into [(spec_line, [result_line, ...]), ...].

    Lines are kept verbatim (byte fidelity); JSON is parsed only to
    classify records and extract the task index.
    """
    segments = []
    with open(path, "r", encoding="utf-8") as fh:
        for raw in fh:
            line = raw.rstrip("\n")
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "spec":
                segments.append((line, []))
            elif kind == "result":
                if not segments:
                    raise SystemExit(f"{path}: result record before any spec")
                if "task" not in record:
                    raise SystemExit(f"{path}: result record without a task "
                                     f"index (not a shardable artifact)")
                segments[-1][1].append((int(record["task"]), line))
            else:
                raise SystemExit(f"{path}: unknown record type {kind!r}")
    return segments


def merge(shard_segments, out):
    """Interleaves per-scenario segments from every shard into `out`."""
    num_scenarios = {len(segments) for segments in shard_segments}
    if len(num_scenarios) != 1:
        raise SystemExit("shards disagree on the number of scenarios: "
                         f"{sorted(num_scenarios)}")
    rows_out = 0
    for scenario in range(num_scenarios.pop()):
        specs = {segments[scenario][0] for segments in shard_segments}
        if len(specs) != 1:
            raise SystemExit(f"shards disagree on the spec record of "
                             f"scenario #{scenario}; were they produced by "
                             f"the same cwm_run configuration?")
        out.write(specs.pop() + "\n")
        rows = []
        for segments in shard_segments:
            rows.extend(segments[scenario][1])
        rows.sort(key=lambda task_line: task_line[0])
        for index, (task, line) in enumerate(rows):
            if index > 0 and rows[index - 1][0] == task:
                raise SystemExit(f"duplicate task {task} in scenario "
                                 f"#{scenario}: the same shard was passed "
                                 f"twice or shards overlap")
        for _, line in rows:
            out.write(line + "\n")
        rows_out += len(rows)
    return rows_out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("shards", nargs="+",
                        help="JSONL artifacts from cwm_run --shard runs")
    parser.add_argument("-o", "--out", default="-",
                        help="merged output path ('-' = stdout)")
    args = parser.parse_args()

    shard_segments = [read_segments(path) for path in args.shards]
    if args.out == "-":
        merge(shard_segments, sys.stdout)
    else:
        with open(args.out, "w", encoding="utf-8") as fh:
            rows = merge(shard_segments, fh)
        print(f"merged {len(args.shards)} shards, {rows} rows -> {args.out}",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
