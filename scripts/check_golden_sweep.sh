#!/usr/bin/env bash
# Golden sweep gate: the registry-routed sweep engine must produce
# byte-identical JSONL artifacts to the checked-in goldens (captured at
# the pre-registry-rewiring HEAD) at 1 and 8 task threads. Any diff means
# the cwm::api rewiring changed results — which it must never do.
#
# Usage: scripts/check_golden_sweep.sh [path/to/cwm_run]
# Regenerate goldens (only with an intentional, reviewed change in
# results): ./build/cwm_run smoke-tiny --threads 1 --out \
#   tests/golden/smoke_tiny.jsonl --quiet   (same for smoke-supgrd with
#   --rr-threads 1)
set -euo pipefail

CWM_RUN="${1:-./build/cwm_run}"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

"$CWM_RUN" smoke-tiny --threads 1 --out "$tmpdir/tiny1.jsonl" --quiet
"$CWM_RUN" smoke-tiny --threads 8 --out "$tmpdir/tiny8.jsonl" --quiet
"$CWM_RUN" smoke-supgrd --threads 1 --rr-threads 1 \
  --out "$tmpdir/sup1.jsonl" --quiet
"$CWM_RUN" smoke-supgrd --threads 8 --rr-threads 8 \
  --out "$tmpdir/sup8.jsonl" --quiet

cmp "$tmpdir/tiny1.jsonl" tests/golden/smoke_tiny.jsonl
cmp "$tmpdir/tiny8.jsonl" tests/golden/smoke_tiny.jsonl
cmp "$tmpdir/sup1.jsonl" tests/golden/smoke_supgrd.jsonl
cmp "$tmpdir/sup8.jsonl" tests/golden/smoke_supgrd.jsonl
echo "golden sweep gate: byte-identical at 1 and 8 threads"
