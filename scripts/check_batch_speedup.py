#!/usr/bin/env python3
"""CI perf gate for the batched world-snapshot welfare estimator.

Reads a google-benchmark JSON file containing BM_WelfareBatch runs
(items/s = candidate allocations scored per second; every iteration
builds its world snapshots once and sweeps the whole batch through them)
and fails (exit 1) unless per-candidate throughput at `--batch` is at
least `--min-speedup` times the batch-1 baseline.

Usage:
  check_batch_speedup.py bench.json [--batch 16] [--min-speedup 3.0]
"""
import argparse
import json
import sys


def throughput(benchmarks, batch):
    """Best candidates/s across repetitions of the `batch`-candidate arm."""
    name = f"BM_WelfareBatch/{batch}/real_time"
    rates = [float(bench["items_per_second"]) for bench in benchmarks
             if bench.get("name") == name
             and bench.get("run_type", "iteration") == "iteration"
             and not bench.get("error_occurred", False)]
    if not rates:
        raise SystemExit(f"benchmark '{name}' not found in the JSON input")
    return max(rates)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="google-benchmark JSON output")
    parser.add_argument("--batch", type=int, default=16,
                        help="batch arm to compare (default 16)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required per-candidate throughput ratio vs "
                             "batch 1 (default 3.0)")
    args = parser.parse_args()

    with open(args.json_path) as fh:
        report = json.load(fh)
    benchmarks = report.get("benchmarks", [])

    base = throughput(benchmarks, 1)
    batched = throughput(benchmarks, args.batch)
    speedup = batched / base if base > 0 else 0.0
    print(f"Welfare estimation throughput: batch 1 = {base:,.0f} "
          f"candidates/s, batch {args.batch} = {batched:,.0f} candidates/s "
          f"(per-candidate speedup {speedup:.2f}x, "
          f"gate {args.min_speedup:.2f}x)")
    if speedup < args.min_speedup:
        print(f"FAIL: batch-{args.batch} per-candidate throughput is only "
              f"{speedup:.2f}x the batch-1 baseline "
              f"(needs >= {args.min_speedup:.2f}x)", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
