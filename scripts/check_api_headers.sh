#!/usr/bin/env bash
# Header self-containment gate for the stable API layer: every src/api/*.h
# — plus the simulate headers an embedder reaches for when tuning the
# estimator (EstimatorOptions / the packed kernel surface) — must compile
# standalone (a translation unit that includes only the header), so
# embedders can include any of them first without hidden include-order
# dependencies. Run from the repository root.
set -euo pipefail

CXX="${CXX:-g++}"
status=0
for header in src/api/*.h src/simulate/estimator.h \
              src/simulate/packed_world.h src/simulate/world_pool.h; do
  if "$CXX" -std=c++20 -fsyntax-only -Isrc -x c++ "$header"; then
    echo "self-contained: $header"
  else
    echo "NOT self-contained: $header" >&2
    status=1
  fi
done
exit $status
