#!/usr/bin/env python3
"""CI gate for the failpoint subsystem and the degraded-mode contract.

Iterates every failpoint `cwm_run --list-failpoints` reports and proves,
for each one, that injecting the fault:

  * never crashes or fails a run (exit status stays 0, the server stays
    alive);
  * never changes results — sweep JSONL and serve response payloads stay
    byte-identical to a healthy run (timing fields and the `degraded`
    flag excluded by contract);
  * is visible — the degraded/io-error counters in --metrics are
    nonzero, so operators can tell a self-healed run from a healthy one.

Store/cache sites run under an unlimited `error` policy across a cold
and a warm sweep (the degraded paths must hold up under *every* fault,
not just the first). Serve transport sites use `1*error`: an unlimited
accept/send fault would starve the socket forever by design, which is a
liveness property the server cannot (and should not) paper over.

Usage:
  check_fault_injection.py ./build/cwm_run ./build/cwm_serve
      [--scenario smoke-tiny]
"""
import argparse
import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SERVE_REQUEST = {
    "id": "fi",
    "graph": "fi",
    "algo": "SeqGRD-NM",
    "budgets": [3],
    "seed": 7,
    "sims": 20,
    "eval_sims": 24,
}

# Counters that prove a degradation was recorded, by site prefix.
DEGRADED_COUNTERS = ("store.degraded.events", "cache.quarantined")
SERVE_COUNTERS = ("serve.io_errors", "serve.rejected")


def clean_env():
    env = dict(os.environ)
    env.pop("CWM_FAILPOINTS", None)
    env.pop("CWM_CACHE_DIR", None)
    return env


def run_sweep(cwm_run, scenario, cache_dir, out, metrics, failpoints=None):
    env = clean_env()
    if failpoints:
        env["CWM_FAILPOINTS"] = failpoints
    proc = subprocess.run(
        [cwm_run, scenario, "--cache-dir", str(cache_dir), "--quiet",
         "--out", str(out), "--metrics", str(metrics)],
        env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        raise SystemExit(
            f"FAIL: cwm_run exited {proc.returncode} with "
            f"CWM_FAILPOINTS={failpoints!r}\n{proc.stderr}")
    return Path(out).read_bytes()


def counters_of(metrics_path):
    with open(metrics_path) as fh:
        return json.load(fh).get("counters", {})


def check_store_site(cwm_run, scenario, healthy, site, workdir):
    """Unlimited errors at `site` across a cold and a warm sweep."""
    cache = workdir / f"cache_{site}"
    seen = {}
    for phase in ("cold", "warm"):
        out = workdir / f"{site}.{phase}.jsonl"
        metrics = workdir / f"{site}.{phase}.metrics.json"
        got = run_sweep(cwm_run, scenario, cache, out, metrics,
                        failpoints=f"{site}=error")
        if got != healthy:
            raise SystemExit(
                f"FAIL: {site} ({phase}): degraded sweep output differs "
                f"from the healthy run — the degraded path changed "
                f"results")
        for name, value in counters_of(metrics).items():
            seen[name] = seen.get(name, 0) + value
    if not any(seen.get(name, 0) > 0 for name in DEGRADED_COUNTERS):
        raise SystemExit(
            f"FAIL: {site}: no degraded event was counted "
            f"({', '.join(DEGRADED_COUNTERS)} all zero) — the fault was "
            f"silently absorbed or the site never fired")
    print(f"ok  {site}: byte-identical, "
          f"degraded events={seen.get('store.degraded.events', 0)}")


def serve_config(scenario):
    return json.dumps({
        "port": 0,
        "workers": 2,
        "queue_capacity": 8,
        "graphs": [{"name": "fi", "scenario": scenario}],
    })


def oneshot_oracle(cwm_serve, config):
    proc = subprocess.run(
        [cwm_serve, "--config", config, "--oneshot",
         json.dumps(SERVE_REQUEST)],
        env=clean_env(), capture_output=True, text=True)
    if proc.returncode != 0:
        raise SystemExit(f"FAIL: --oneshot oracle failed: {proc.stderr}")
    return strip_volatile(json.loads(proc.stdout))


def strip_volatile(value):
    """Drops *_seconds and the `degraded` flag: both vary by contract."""
    if isinstance(value, dict):
        return {k: strip_volatile(v) for k, v in value.items()
                if not (k.endswith("_seconds") or k == "degraded")}
    if isinstance(value, list):
        return [strip_volatile(v) for v in value]
    return value


def check_serve_site(cwm_serve, config, oracle, site, workdir):
    """One injected fault at `site` while serving live requests."""
    metrics = workdir / f"{site}.serve.metrics.json"
    env = clean_env()
    env["CWM_FAILPOINTS"] = f"{site}=1*error"
    server = subprocess.Popen(
        [cwm_serve, "--config", config, "--quiet",
         "--metrics", str(metrics)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True)
    try:
        banner = server.stdout.readline()
        match = re.search(r"listening on 127\.0\.0\.1:(\d+)", banner)
        if not match:
            raise SystemExit(f"FAIL: {site}: bad banner {banner!r}")
        port = int(match.group(1))

        # Three tries: one response may legitimately be a structured
        # rejection (serve.queue_push surfaces as `overloaded`), but the
        # connection and server must survive and then serve correctly.
        ok_payloads = []
        with socket.create_connection(("127.0.0.1", port),
                                      timeout=120) as sock:
            reader = sock.makefile("r", encoding="utf-8")
            for attempt in range(3):
                sock.sendall(
                    (json.dumps(SERVE_REQUEST) + "\n").encode())
                line = reader.readline()
                if not line:
                    raise SystemExit(
                        f"FAIL: {site}: connection died mid-injection")
                response = json.loads(line)
                if response.get("ok"):
                    ok_payloads.append(strip_volatile(response))
        if not ok_payloads:
            raise SystemExit(
                f"FAIL: {site}: no successful response in 3 attempts")
        for payload in ok_payloads:
            if payload != oracle:
                raise SystemExit(
                    f"FAIL: {site}: served payload differs from the "
                    f"--oneshot oracle\n  served: {payload}\n"
                    f"  oracle: {oracle}")
        if server.poll() is not None:
            raise SystemExit(f"FAIL: {site}: server exited mid-test")
    finally:
        server.send_signal(signal.SIGTERM)
        server.wait(timeout=60)

    counters = counters_of(metrics)
    noted = {name: counters.get(name, 0) for name in SERVE_COUNTERS}
    if not any(noted.values()):
        raise SystemExit(
            f"FAIL: {site}: fault left no trace in {SERVE_COUNTERS}")
    print(f"ok  {site}: server alive, responses match oracle, {noted}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("cwm_run", help="path to cwm_run")
    parser.add_argument("cwm_serve", help="path to cwm_serve")
    parser.add_argument("--scenario", default="smoke-tiny")
    args = parser.parse_args()

    listing = subprocess.run([args.cwm_run, "--list-failpoints"],
                             env=clean_env(), capture_output=True,
                             text=True)
    if listing.returncode != 0:
        raise SystemExit(f"FAIL: --list-failpoints: {listing.stderr}")
    sites = [line.strip() for line in listing.stdout.splitlines()
             if line.strip()]
    if len(sites) < 10:
        raise SystemExit(
            f"FAIL: only {len(sites)} registered failpoints — the "
            f"inventory looks truncated: {sites}")

    serve_sites = [s for s in sites if s.startswith("serve.")]
    store_sites = [s for s in sites if not s.startswith("serve.")]
    print(f"{len(sites)} failpoints "
          f"({len(store_sites)} store/cache, {len(serve_sites)} serve)")

    with tempfile.TemporaryDirectory(prefix="cwm_fault_") as tmp:
        workdir = Path(tmp)
        healthy = run_sweep(args.cwm_run, args.scenario,
                            workdir / "cache_healthy",
                            workdir / "healthy.jsonl",
                            workdir / "healthy.metrics.json")
        if counters_of(
                workdir / "healthy.metrics.json").get(
                    "store.degraded.events", 0) != 0:
            raise SystemExit(
                "FAIL: healthy baseline already counts degraded events")
        for site in store_sites:
            check_store_site(args.cwm_run, args.scenario, healthy, site,
                             workdir)

        config = serve_config(args.scenario)
        oracle = oneshot_oracle(args.cwm_serve, config)
        for site in serve_sites:
            check_serve_site(args.cwm_serve, config, oracle, site,
                             workdir)

    print("PASS: every failpoint degrades cleanly and bit-identically")
    return 0


if __name__ == "__main__":
    sys.exit(main())
