#!/usr/bin/env python3
"""CI perf gate for the dynamic-graph delta subsystem.

Reads a google-benchmark JSON file containing BM_ApplyDeltaIncremental/E
(splice the delta into the in-memory base CSR, then re-key the cached RR
era: clean sets reused verbatim, dirty ones resampled bit-identically)
and BM_ApplyDeltaFullRebuild/E (regenerate the network from its recipe,
compose the edits, resample the whole era from scratch) and fails
(exit 1) unless the incremental path is at least `--min-speedup` times
faster at `--edits` edits. Both arms produce bit-identical artifacts
(tests/delta_test.cc), so the ratio is pure speedup. The gated pair runs
a subcritical uniform-p independent-cascade fixture; the weighted-cascade
pair (BM_ApplyDelta*Wc) is informational only — giant RR sets under the
critical cascade bound reuse-by-time regardless of era size (see
docs/dynamic-graphs.md).

Usage:
  check_delta_speedup.py bench.json [--edits 10] [--min-speedup 10.0]
"""
import argparse
import json
import sys


_NS_PER_UNIT = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}


def best_time(benchmarks, name):
    """Best (lowest) real_time across repetitions of `name`, in ns."""
    times = [float(bench["real_time"]) *
             _NS_PER_UNIT.get(bench.get("time_unit", "ns"), 1)
             for bench in benchmarks
             if bench.get("name") == name
             and bench.get("run_type", "iteration") == "iteration"
             # SkipWithError still emits an entry with a near-zero time;
             # counting it would let a broken arm "pass" the gate.
             and not bench.get("error_occurred", False)]
    if not times:
        raise SystemExit(f"benchmark '{name}' not found in the JSON input")
    return min(times)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="google-benchmark JSON output")
    parser.add_argument("--edits", type=int, default=10,
                        help="delta size (benchmark arg) to gate on")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="required full/incremental time ratio")
    args = parser.parse_args()

    with open(args.json_path) as fh:
        report = json.load(fh)
    benchmarks = report.get("benchmarks", [])

    incremental = best_time(benchmarks,
                            f"BM_ApplyDeltaIncremental/{args.edits}")
    full = best_time(benchmarks, f"BM_ApplyDeltaFullRebuild/{args.edits}")
    speedup = full / incremental if incremental > 0 else float("inf")
    print(f"Delta absorption at {args.edits} edits: "
          f"full rebuild+resample = {full / 1e6:,.2f} ms, "
          f"incremental = {incremental / 1e6:,.2f} ms "
          f"(speedup {speedup:.1f}x, gate {args.min_speedup:.1f}x)")
    if speedup < args.min_speedup:
        print(f"FAIL: incremental delta application is only {speedup:.1f}x "
              f"faster than a full rebuild (needs >= "
              f"{args.min_speedup:.1f}x)", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
