// Minimal third-party embedding of the cwm::api allocation interface:
// open an Engine over a declarative network + utility configuration, run
// any registered algorithm through one AllocateRequest, read the welfare.
// Build:  cmake --build build --target embed_api && ./build/embed_api
#include <cstdio>

#include "api/engine.h"

int main() {
  using namespace cwm;
  // The Engine owns the graph (mmap-served if EngineOptions::cache is
  // bound), the utility configuration, and a keyed snapshot-pool store
  // shared by every Allocate call.
  const StatusOr<std::unique_ptr<Engine>> engine = Engine::Open(
      {.family = "erdos-renyi", .num_nodes = 500, .degree = 6},
      {.name = "C1"});
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  AllocateRequest request;
  request.algo = AlgoKind::kBestOf;  // or ParseAlgo("BestOf").value()
  request.items = {0, 1};
  request.budgets = {10, 10};
  request.params.estimator.num_worlds = 100;  // marginal-check precision
  request.eval.num_worlds = 200;              // evaluation precision

  AllocateResult result;
  if (const Status s = engine.value()->Allocate(request, &result); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("%s (%s): welfare %.2f, %zu seed pairs, %.2fs\n",
              AlgoName(request.algo), result.note.c_str(),
              result.stats.welfare, result.allocation.TotalPairs(),
              result.allocate_seconds);
  return 0;
}
