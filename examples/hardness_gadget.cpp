// Why CWelMax is inapproximable: an executable tour of the Theorem 2
// reduction (Fig. 2 + Table 1).
//
// Builds the SET-COVER gadget for a YES instance and a NO instance, runs
// the deterministic UIC diffusion, and prints the welfare achieved by
// cover seeds vs non-cover seeds vs direct g-node seeding — reproducing
// the c * N^2 * U({i1,i4}) separation that powers the hardness proof.
//
// Build & run:  ./build/examples/hardness_gadget
#include <cstdio>

#include "exp/reduction.h"
#include "simulate/estimator.h"

namespace {

using namespace cwm;

double Welfare(const Theorem2Gadget& gadget, const Allocation& i1_seeds) {
  // Edge probabilities are 1 and the Table 1 utilities are noiseless:
  // one possible world is exact.
  WelfareEstimator est(gadget.graph, gadget.utility,
                       {.num_worlds = 1, .seed = 1});
  return est.Welfare(Allocation::Union(i1_seeds, gadget.fixed_sp));
}

}  // namespace

int main() {
  // YES instance: elements {0,1,2}; sets {0,1}, {2}, {0,2}; k = 2.
  SetCoverInstance yes;
  yes.num_elements = 3;
  yes.sets = {{0, 1}, {2}, {0, 2}};
  yes.k = 2;

  const std::size_t N = 60;  // the proof needs N > 8n/c = 60
  const Theorem2Gadget gadget = BuildTheorem2Gadget(yes, N);
  std::printf("gadget: %zu nodes, %zu edges, %zu d-nodes, N = %zu copies\n",
              gadget.graph.num_nodes(), gadget.graph.num_edges(),
              gadget.num_d_nodes, N);
  std::printf("utility landmarks: U(i1)=%.1f U({i2,i3})=%.1f U(i4)=%.1f "
              "U({i1,i4})=%.1f\n",
              gadget.utility.DetUtility(0x1), gadget.utility.DetUtility(0x6),
              gadget.utility.DetUtility(0x8), gadget.utility.DetUtility(0x9));

  const double n2_u = static_cast<double>(N * N) *
                      gadget.utility.DetUtility(0x9);
  std::printf("\nhardness threshold c*N^2*U({i1,i4}) = %.0f (c = 0.4)\n",
              0.4 * n2_u);

  // Cover seeds: S0 + S1 cover every element. i1 sweeps the g/f/d layers
  // before {i2,i3} can assemble; d-nodes then add i4: welfare explodes.
  Allocation cover(4);
  cover.Add(gadget.s_nodes[0], 0);
  cover.Add(gadget.s_nodes[1], 0);
  const double w_cover = Welfare(gadget, cover);
  std::printf("\ncover seeds {S0, S1}:       welfare = %10.0f  (> N^2*U = "
              "%.0f: Claim 1 holds)\n",
              w_cover, n2_u);

  // Non-cover seeds: element 1 stays uncovered; its g-node adopts i2; the
  // {i2,i3} bundle outruns i1 at every f-node and blocks i4 at every
  // d-node.
  Allocation non_cover(4);
  non_cover.Add(gadget.s_nodes[1], 0);
  non_cover.Add(gadget.s_nodes[2], 0);
  const double w_non = Welfare(gadget, non_cover);
  std::printf("non-cover seeds {S1, S2}:   welfare = %10.0f  (blocked by "
              "the {i2,i3} bundle)\n",
              w_non);

  // The proof's best NO-instance strategy: seed g-nodes directly — only k
  // of the N copies are saved.
  Allocation gseed(4);
  gseed.Add(gadget.g_nodes[0], 0);
  gseed.Add(gadget.g_nodes[1], 0);
  const double w_g = Welfare(gadget, gseed);
  std::printf("direct g-node seeds:        welfare = %10.0f  (saves only k "
              "of N copies)\n",
              w_g);

  std::printf("\nseparation: non-cover/cover = %.2f, g-seed/cover = %.2f "
              "(both < c = 0.4)\n",
              w_non / w_cover, w_g / w_cover);
  std::printf("=> any constant-factor approximation would decide SET "
              "COVER (Theorem 2).\n");
  return 0;
}
