// Quickstart: the smallest end-to-end use of the cwm library.
//
//  1. Build (or load) an influence graph and assign weighted-cascade
//     probabilities.
//  2. Describe the items: values, additive prices, noise.
//  3. Run SeqGRD to pick seed users for both items under a budget.
//  4. Estimate the expected social welfare of the chosen allocation.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "algo/seq_grd.h"
#include "graph/edge_prob.h"
#include "graph/generators.h"
#include "model/utility.h"
#include "simulate/estimator.h"

int main() {
  using namespace cwm;

  // 1. A synthetic social network: 5000 users, power-law degrees, and the
  //    standard weighted-cascade influence probabilities p(u,v) = 1/din(v).
  //    (Use ReadEdgeList() from graph/loader.h for a real SNAP file.)
  const Graph graph = WithWeightedCascade(BarabasiAlbert(5000, 2, /*seed=*/7));
  std::printf("network: %zu nodes, %zu edges\n", graph.num_nodes(),
              graph.num_edges());

  // 2. Two competing items. Item 0 is worth 4 at price 3 (utility 1);
  //    item 1 is worth 4.9 at price 4 (utility 0.9). Owning both adds no
  //    value beyond the better one, so adopting both never pays: pure
  //    competition. Each user's valuation is perturbed by N(0, 1) noise.
  UtilityConfigBuilder builder(2);
  builder.SetName("quickstart")
      .SetItemValue(0, 4.0)
      .SetItemPrice(0, 3.0)
      .SetItemValue(1, 4.9)
      .SetItemPrice(1, 4.0)
      .SetBundleValue(0b11, 4.9)
      .SetAllNoise(NoiseDistribution::Normal(1.0));
  StatusOr<UtilityConfig> config = std::move(builder).Build();
  if (!config.ok()) {
    std::printf("bad utility config: %s\n", config.status().ToString().c_str());
    return 1;
  }

  // 3. Pick 10 seeds per item with SeqGRD (no pre-existing campaigns).
  AlgoParams params;
  params.imm = {.epsilon = 0.5, .ell = 1.0, .seed = 42};
  params.estimator = {.num_worlds = 500, .seed = 43};
  const Allocation allocation =
      SeqGrd(graph, config.value(), Allocation(2), /*items=*/{0, 1},
             /*budgets=*/{10, 10}, params);
  std::printf("allocation: %s\n", allocation.ToString().c_str());

  // 4. Expected social welfare (and who adopts what).
  WelfareEstimator estimator(graph, config.value(),
                             {.num_worlds = 2000, .seed = 44});
  const WelfareStats stats = estimator.Stats(allocation);
  std::printf("expected social welfare: %.1f\n", stats.welfare);
  std::printf("expected adopters: item0=%.1f item1=%.1f (any: %.1f)\n",
              stats.adopters_per_item[0], stats.adopters_per_item[1],
              stats.adopting_nodes);
  return 0;
}
