// Music-platform scenario (the paper's §1 and §6.4 motivation): a
// streaming host promotes four competing genres whose utilities were
// learned from Last.fm listening logs (Table 5). The host controls every
// recommendation and wants engaged, satisfied users — i.e., maximum social
// welfare — not merely maximum play counts.
//
// This example contrasts a welfare-aware allocation (SeqGRD-NM) with a
// naive round-robin over the same influential users, showing the Table 6
// effect: same total adoptions, better welfare, adoptions shifted toward
// the genres users actually value.
//
// Build & run:  ./build/examples/music_platform
#include <cstdio>

#include "baselines/simple_alloc.h"
#include "exp/configs.h"
#include "graph/edge_prob.h"
#include "graph/generators.h"
#include "rrset/prima_plus.h"
#include "simulate/estimator.h"

int main() {
  using namespace cwm;

  // A listener-follows-listener network (directed, heavy-tailed).
  const Graph graph = WithWeightedCascade(
      DirectedPreferentialAttachment(20000, 6, 0.15, /*seed=*/11));

  // Genre utilities reconstructed from the published discrete-choice fits:
  // U(genre) = ln(10000 * p_genre); bundles are strictly worse than their
  // best genre (pure competition), matching the Last.fm co-adoption data.
  const UtilityConfig genres = MakeLastFmConfig();
  std::printf("genre utilities (Table 5):\n");
  for (ItemId i = 0; i < genres.num_items(); ++i) {
    std::printf("  %-18s %.2f\n", kLastFmGenres[i],
                genres.DetUtility(SingletonSet(i)));
  }

  // The host budget: 25 promoted users per genre. One shared ranking of
  // influential users (PRIMA+ greedy order), then two assignment policies.
  const int kBudget = 25;
  const std::vector<ItemId> items{0, 1, 2, 3};
  const BudgetVector budgets(4, kBudget);
  const ImmResult ranking =
      PrimaPlus(graph, {}, budgets, 4 * kBudget,
                {.epsilon = 0.5, .ell = 1.0, .seed = 21});

  const Allocation naive =
      RoundRobinAllocate(4, ranking.seeds, items, budgets);
  const Allocation welfare_aware = BlockAllocate(
      4, ranking.seeds, genres.ItemsByTruncatedUtilityDesc(), budgets);

  WelfareEstimator estimator(graph, genres, {.num_worlds = 800, .seed = 23});
  const WelfareStats s_naive = estimator.Stats(naive);
  const WelfareStats s_aware = estimator.Stats(welfare_aware);

  auto print = [&](const char* name, const WelfareStats& s) {
    double total = 0;
    for (double a : s.adopters_per_item) total += a;
    std::printf("\n%s:\n  welfare = %.1f, total adoptions = %.1f\n", name,
                s.welfare, total);
    for (ItemId i = 0; i < 4; ++i) {
      std::printf("  %-18s %.1f adopters\n", kLastFmGenres[i],
                  s.adopters_per_item[i]);
    }
  };
  print("round-robin promotion", s_naive);
  print("welfare-aware promotion (SeqGRD-NM assignment)", s_aware);

  std::printf("\nwelfare gain: %+.1f%%\n",
              100.0 * (s_aware.welfare - s_naive.welfare) / s_naive.welfare);
  std::printf("Note how total adoptions barely move while adoptions shift "
              "toward preferred genres — the Table 6 effect.\n");
  return 0;
}
