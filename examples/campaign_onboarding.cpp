// Campaign-onboarding scenario (§3's "fixed allocation" setting and
// §6.2.3): two budget phone plans are already being promoted on the
// platform (their seeds are fixed — the allocation S_P). A premium plan
// now launches: it is strictly better for every user (a *superior item*
// under bounded noise), and plans are mutually exclusive (pure
// competition).
//
// This is exactly SupGRD's regime: welfare is monotone submodular in the
// premium plan's seed set, and SupGRD gives a (1 - 1/e - eps) guarantee.
// The example also shows the precondition check failing gracefully when
// the noise is unbounded.
//
// Build & run:  ./build/examples/campaign_onboarding
#include <cstdio>

#include "algo/seq_grd.h"
#include "algo/sup_grd.h"
#include "graph/edge_prob.h"
#include "graph/generators.h"
#include "model/utility.h"
#include "rrset/imm.h"
#include "simulate/estimator.h"

int main() {
  using namespace cwm;

  const Graph graph =
      WithWeightedCascade(BarabasiAlbert(15000, 3, /*seed=*/31));

  // Item 0: premium plan (utility ~1.0); items 1, 2: budget plans
  // (utilities ~0.55, 0.5). Noise clamped to +-0.2 => item 0 is superior.
  UtilityConfigBuilder builder(3);
  builder.SetName("phone-plans")
      .SetItemValue(0, 6.0)
      .SetItemPrice(0, 5.0)
      .SetItemValue(1, 8.55)
      .SetItemPrice(1, 8.0)
      .SetItemValue(2, 8.5)
      .SetItemPrice(2, 8.0)
      .SetAllNoise(NoiseDistribution::ClampedNormal(0.07, 0.2));
  // Default bundle completion (max singleton value) + positive prices
  // makes every multi-plan bundle strictly worse: pure competition.
  const UtilityConfig plans = std::move(builder).Build().value();

  // Existing campaigns: the two budget plans each hold 30 strong seeds.
  const ImmParams imm{.epsilon = 0.5, .ell = 1.0, .seed = 41};
  const ImmResult top = Imm(graph, 60, imm);
  Allocation fixed(3);
  for (std::size_t k = 0; k < top.seeds.size(); ++k) {
    fixed.Add(top.seeds[k], k % 2 == 0 ? 1 : 2);
  }
  std::printf("fixed campaigns: %zu seeds for plan B, %zu for plan C\n",
              fixed.SeedsOf(1).size(), fixed.SeedsOf(2).size());

  // Precondition check, then SupGRD for the premium plan.
  const Status ok = CanRunSupGrd(plans, fixed);
  std::printf("SupGRD preconditions: %s\n", ok.ToString().c_str());
  if (!ok.ok()) return 1;

  AlgoParams params;
  params.imm = imm;
  params.estimator = {.num_worlds = 400, .seed = 43};
  AlgoDiagnostics diag;
  const Allocation premium = SupGrd(graph, plans, fixed, /*budget=*/30,
                                    params, &diag);
  std::printf("SupGRD: %zu seeds, internal marginal-welfare estimate %.1f "
              "(%zu RR sets)\n",
              premium.SeedsOf(0).size(), diag.internal_estimate,
              diag.rr_count);

  // Compare against SeqGRD-NM in the same setting (Fig 5's comparison).
  const Allocation seq =
      SeqGrdNm(graph, plans, fixed, {0}, {30, 1, 1}, params);

  WelfareEstimator estimator(graph, plans, {.num_worlds = 1500, .seed = 47});
  const double base = estimator.Welfare(fixed);
  const double with_sup =
      estimator.Welfare(Allocation::Union(premium, fixed));
  const double with_seq = estimator.Welfare(Allocation::Union(seq, fixed));
  std::printf("\nwelfare before premium launch:     %.1f\n", base);
  std::printf("welfare with SupGRD onboarding:    %.1f (+%.1f)\n", with_sup,
              with_sup - base);
  std::printf("welfare with SeqGRD-NM onboarding: %.1f (+%.1f)\n", with_seq,
              with_seq - base);

  // Show the precondition check rejecting unbounded noise.
  UtilityConfigBuilder bad(3);
  bad.SetItemValue(0, 6.0).SetItemPrice(0, 5.0);
  bad.SetItemValue(1, 8.55).SetItemPrice(1, 8.0);
  bad.SetItemValue(2, 8.5).SetItemPrice(2, 8.0);
  bad.SetAllNoise(NoiseDistribution::Normal(1.0));
  const UtilityConfig unbounded = std::move(bad).Build().value();
  std::printf("\nwith unbounded noise instead: %s\n",
              CanRunSupGrd(unbounded, fixed).ToString().c_str());
  return 0;
}
