// Golden bit-equality tests for the batched world-snapshot estimator:
// StatsBatch / MarginalWelfareBatch / MarginalBalancedExposureBatch must
// return values *bit-identical* to the streaming methods for every
// candidate — at 1/2/8 threads, for empty allocations and batch size 1,
// and whether worlds come from materialized snapshots or the streaming
// fallback (tiny / zero snapshot budget).
#include <gtest/gtest.h>

#include <vector>

#include "exp/configs.h"
#include "graph/graph_builder.h"
#include "model/allocation.h"
#include "simulate/estimator.h"
#include "simulate/world_pool.h"

namespace cwm {
namespace {

/// A reproducible sparse digraph with mixed probabilities, including
/// p = 0 and p = 1 edges (the EdgeWorld short-circuit cases).
Graph TestGraph() {
  GraphBuilder b(120);
  Rng rng(42);
  for (int e = 0; e < 600; ++e) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(120));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(120));
    if (u == v) continue;
    double p = rng.NextDouble();
    if (e % 17 == 0) p = 1.0;
    if (e % 23 == 0) p = 0.0;
    b.AddEdge(u, v, p);
  }
  return std::move(b).Build();
}

/// Candidate allocations spanning the shapes the algorithms submit:
/// empty, single pair, per-item prefixes, overlapping seeds.
std::vector<Allocation> Candidates(int num_items) {
  std::vector<Allocation> out;
  out.emplace_back(num_items);  // empty allocation
  Allocation single(num_items);
  single.Add(3, 0);
  out.push_back(single);
  Allocation spread(num_items);
  for (NodeId v = 0; v < 10; ++v) spread.Add(v * 11, 0);
  out.push_back(spread);
  if (num_items >= 2) {
    Allocation both(num_items);
    both.Add(5, 0);
    both.Add(5, 1);
    both.Add(40, 1);
    out.push_back(both);
    Allocation second(num_items);
    for (NodeId v = 0; v < 6; ++v) second.Add(v * 7 + 1, 1);
    out.push_back(second);
  }
  return out;
}

void ExpectStatsBitEqual(const WelfareStats& a, const WelfareStats& b) {
  EXPECT_EQ(a.welfare, b.welfare);
  EXPECT_EQ(a.adopting_nodes, b.adopting_nodes);
  ASSERT_EQ(a.adopters_per_item.size(), b.adopters_per_item.size());
  for (std::size_t i = 0; i < a.adopters_per_item.size(); ++i) {
    EXPECT_EQ(a.adopters_per_item[i], b.adopters_per_item[i]);
  }
}

class EstimatorBatchTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(EstimatorBatchTest, StatsBatchBitEqualsStreaming) {
  const Graph g = TestGraph();
  // C5 carries clamped-normal noise, so the per-world utility tables are
  // genuinely world-dependent — the noise stream must replay exactly.
  const UtilityConfig c = MakeConfigC5();
  const WelfareEstimator est(
      g, c, {.num_worlds = 33, .seed = 77, .num_threads = GetParam()});
  const std::vector<Allocation> candidates = Candidates(c.num_items());
  const std::vector<WelfareStats> batched = est.StatsBatch(candidates);
  ASSERT_EQ(batched.size(), candidates.size());
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    ExpectStatsBitEqual(batched[j], est.Stats(candidates[j]));
  }
}

TEST_P(EstimatorBatchTest, MarginalWelfareBatchBitEqualsStreaming) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC5();
  const WelfareEstimator est(
      g, c, {.num_worlds = 33, .seed = 99, .num_threads = GetParam()});
  const std::vector<Allocation> extras = Candidates(c.num_items());

  Allocation base(c.num_items());
  base.Add(7, 0);
  base.Add(50, 1);
  for (const Allocation& b : {Allocation(c.num_items()), base}) {
    const std::vector<double> batched = est.MarginalWelfareBatch(b, extras);
    ASSERT_EQ(batched.size(), extras.size());
    for (std::size_t j = 0; j < extras.size(); ++j) {
      EXPECT_EQ(batched[j], est.MarginalWelfare(b, extras[j]))
          << "extra " << j << " base " << b.ToString();
    }
  }
}

TEST_P(EstimatorBatchTest, MarginalBalancedExposureBatchBitEqualsStreaming) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC1();
  const WelfareEstimator est(
      g, c, {.num_worlds = 25, .seed = 5, .num_threads = GetParam()});
  const std::vector<Allocation> extras = Candidates(c.num_items());
  Allocation base(c.num_items());
  base.Add(2, 1);
  for (const Allocation& b : {Allocation(c.num_items()), base}) {
    const std::vector<double> batched =
        est.MarginalBalancedExposureBatch(b, extras);
    for (std::size_t j = 0; j < extras.size(); ++j) {
      EXPECT_EQ(batched[j], est.MarginalBalancedExposure(b, extras[j]));
    }
  }
}

TEST_P(EstimatorBatchTest, TinyBudgetStreamsWorldsWithIdenticalResults) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC5();
  // 1 byte: every world falls back to streaming regeneration inside the
  // batch loop. 0: materialization disabled outright. Both must match the
  // default-budget batch bit for bit.
  const std::vector<Allocation> candidates = Candidates(c.num_items());
  // packed_kernel off: this test is about the snapshot pool's streaming
  // fallback, so the reference must actually build snapshots.
  const WelfareEstimator full(g, c,
                              {.num_worlds = 33,
                               .seed = 13,
                               .num_threads = GetParam(),
                               .packed_kernel = false});
  const std::vector<WelfareStats> reference = full.StatsBatch(candidates);
  EXPECT_GT(full.snapshot_stats().snapshotted, 0);
  for (const std::size_t budget : {std::size_t{1}, std::size_t{0}}) {
    const WelfareEstimator starved(g, c,
                                   {.num_worlds = 33,
                                    .seed = 13,
                                    .num_threads = GetParam(),
                                    .snapshot_budget_bytes = budget});
    const std::vector<WelfareStats> streamed =
        starved.StatsBatch(candidates);
    EXPECT_EQ(starved.snapshot_stats().snapshotted, 0);
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      ExpectStatsBitEqual(streamed[j], reference[j]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, EstimatorBatchTest,
                         ::testing::Values(1u, 2u, 8u));

TEST(EstimatorBatchTest, BatchOfOneAndEmptyBatch) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC1();
  const WelfareEstimator est(g, c, {.num_worlds = 16, .seed = 3});
  Allocation alloc(c.num_items());
  alloc.Add(0, 0);
  const std::vector<WelfareStats> one = est.StatsBatch({&alloc, 1});
  ASSERT_EQ(one.size(), 1u);
  ExpectStatsBitEqual(one[0], est.Stats(alloc));
  EXPECT_TRUE(est.StatsBatch({}).empty());
  EXPECT_TRUE(est.MarginalWelfareBatch(alloc, {}).empty());
}

TEST(EstimatorBatchTest, PoolIsBuiltOnceAndReused) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC1();
  const WelfareEstimator est(g, c, {.num_worlds = 20, .seed = 21});
  EXPECT_EQ(est.snapshot_stats().snapshotted, 0);  // lazy until first batch
  Allocation alloc(c.num_items());
  alloc.Add(1, 0);
  const std::vector<WelfareStats> first = est.StatsBatch({&alloc, 1});
  const WorldPoolStats stats = est.snapshot_stats();
  EXPECT_EQ(stats.snapshotted, 20);
  EXPECT_GT(stats.bytes, 0u);
  const std::vector<WelfareStats> second = est.StatsBatch({&alloc, 1});
  ExpectStatsBitEqual(first[0], second[0]);
  EXPECT_EQ(est.snapshot_stats().bytes, stats.bytes);  // same pool object
}

TEST(WorldSnapshotTest, LiveOutMatchesLazyEdgeWorld) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC1();
  const uint64_t seed = 0xABCDEF;
  const WorldSnapshot snapshot(g, c, WorldEdgeSeedOf(seed, 4),
                               WorldNoiseRngOf(seed, 4));
  const EdgeWorld lazy{WorldEdgeSeedOf(seed, 4)};
  std::size_t live_total = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<NodeId> expect;
    const auto out = g.OutEdges(u);
    for (std::size_t k = 0; k < out.size(); ++k) {
      if (lazy.Live(g.OutEdgeId(u, k), out[k].prob)) {
        expect.push_back(out[k].to);
      }
    }
    const auto got = snapshot.LiveOut(u);
    ASSERT_EQ(got.size(), expect.size()) << "node " << u;
    for (std::size_t k = 0; k < expect.size(); ++k) {
      EXPECT_EQ(got[k], expect[k]);
    }
    live_total += expect.size();
  }
  EXPECT_EQ(snapshot.live_edges(), live_total);
}

TEST(WorldPoolTest, BudgetBoundsThePrefixDeterministically) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC1();
  const WorldPool all(g, c, /*seed=*/9, /*num_worlds=*/12,
                      /*budget_bytes=*/64ull << 20, /*num_threads=*/1);
  EXPECT_EQ(all.stats().snapshotted, 12);
  // The same pool built with more threads materializes the same prefix.
  const WorldPool threaded(g, c, 9, 12, 64ull << 20, 4);
  EXPECT_EQ(threaded.stats().snapshotted, 12);
  for (int w = 0; w < 12; ++w) {
    ASSERT_NE(all.Get(w), nullptr);
    EXPECT_EQ(all.Get(w)->live_edges(), threaded.Get(w)->live_edges());
  }
  EXPECT_EQ(all.Get(12), nullptr);

  // A budget covering roughly half the worlds materializes a strict,
  // deterministic prefix and streams the rest.
  const std::size_t half_budget = all.stats().bytes / 2;
  const WorldPool half(g, c, 9, 12, half_budget, 2);
  const int prefix = half.stats().snapshotted;
  EXPECT_GT(prefix, 0);
  EXPECT_LT(prefix, 12);
  for (int w = 0; w < 12; ++w) {
    EXPECT_EQ(half.Get(w) != nullptr, w < prefix) << "world " << w;
  }
}

}  // namespace
}  // namespace cwm
