// Tests for the cwm::api layer: AlgoKind name round-trips, allocator
// registry coverage (every enum value resolves — a new algorithm cannot
// silently miss registration), Engine semantics (reuse bit-identical to
// fresh engines, keyed snapshot-pool sharing, precondition skips,
// cooperative cancellation, progress hooks), and the sweep's pool-reuse
// telemetry.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/registry.h"
#include "exp/configs.h"
#include "graph/graph_builder.h"
#include "obs/metrics.h"
#include "scenario/registry.h"
#include "scenario/sweep.h"
#include "support/rng.h"

namespace cwm {
namespace {

/// A reproducible sparse digraph (same shape as the estimator tests).
Graph TestGraph() {
  GraphBuilder b(150);
  Rng rng(42);
  for (int e = 0; e < 900; ++e) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(150));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(150));
    if (u == v) continue;
    b.AddEdge(u, v, 0.4 * rng.NextDouble());
  }
  return std::move(b).Build();
}

/// A small request exercising the full path (RR sampling + marginal
/// checks + evaluation) quickly.
AllocateRequest TinyRequest(AlgoKind algo) {
  AllocateRequest request;
  request.algo = algo;
  request.items = {0, 1};
  request.budgets = {3, 3};
  request.params.imm.seed = 11;
  request.params.estimator = {.num_worlds = 20, .seed = 21,
                              .num_threads = 1};
  request.ranking.seed = 31;
  request.eval = {.num_worlds = 40, .seed = 41, .num_threads = 1};
  return request;
}

void ExpectResultsBitEqual(const AllocateResult& a, const AllocateResult& b) {
  EXPECT_EQ(a.allocation.ToString(), b.allocation.ToString());
  EXPECT_EQ(a.stats.welfare, b.stats.welfare);
  EXPECT_EQ(a.stats.adopting_nodes, b.stats.adopting_nodes);
  ASSERT_EQ(a.stats.adopters_per_item.size(),
            b.stats.adopters_per_item.size());
  for (std::size_t i = 0; i < a.stats.adopters_per_item.size(); ++i) {
    EXPECT_EQ(a.stats.adopters_per_item[i], b.stats.adopters_per_item[i]);
  }
  EXPECT_EQ(a.note, b.note);
  EXPECT_EQ(a.skipped, b.skipped);
}

TEST(AlgoKindTest, NameParseRoundTripsForEveryKind) {
  for (AlgoKind kind : AllAlgoKinds()) {
    const std::optional<AlgoKind> parsed = ParseAlgo(AlgoName(kind));
    ASSERT_TRUE(parsed.has_value()) << AlgoName(kind);
    EXPECT_EQ(*parsed, kind) << AlgoName(kind);
  }
  EXPECT_FALSE(ParseAlgo("NoSuchAlgorithm").has_value());
  EXPECT_FALSE(ParseAlgo("").has_value());
}

TEST(AlgoKindTest, AllKindsAreDistinctAndNamed) {
  std::set<AlgoKind> kinds;
  std::set<std::string> names;
  for (AlgoKind kind : AllAlgoKinds()) {
    kinds.insert(kind);
    names.insert(AlgoName(kind));
    EXPECT_STRNE(AlgoName(kind), "?");
  }
  EXPECT_EQ(kinds.size(), AllAlgoKinds().size());
  EXPECT_EQ(names.size(), AllAlgoKinds().size());
}

TEST(RegistryTest, EveryAlgoKindHasARegisteredAllocator) {
  const AllocatorRegistry& registry = GlobalAllocatorRegistry();
  for (AlgoKind kind : AllAlgoKinds()) {
    const Allocator* allocator = registry.Find(kind);
    ASSERT_NE(allocator, nullptr) << AlgoName(kind);
    EXPECT_EQ(allocator->Kind(), kind);
    EXPECT_STREQ(allocator->Name(), AlgoName(kind));
    // Name lookups resolve to the same allocator.
    EXPECT_EQ(registry.Find(AlgoName(kind)), allocator);
    // The registry-free gating predicate agrees with the capabilities.
    EXPECT_EQ(allocator->Capabilities().slow, IsSlowAlgo(kind))
        << AlgoName(kind);
  }
  EXPECT_EQ(registry.All().size(), AllAlgoKinds().size());
}

TEST(RegistryTest, KnownCapabilitiesAreDeclared) {
  const AllocatorRegistry& registry = GlobalAllocatorRegistry();
  EXPECT_TRUE(registry.Find(AlgoKind::kSupGrd)
                  ->Capabilities()
                  .needs_superior_item);
  EXPECT_TRUE(registry.Find(AlgoKind::kBalanceC)
                  ->Capabilities()
                  .two_items_only);
  EXPECT_TRUE(
      registry.Find(AlgoKind::kRoundRobin)->Capabilities().uses_shared_ranking);
  EXPECT_FALSE(registry.Find(AlgoKind::kSeqGrd)->Capabilities().slow);
}

TEST(RegistryTest, RejectsDuplicateRegistration) {
  AllocatorRegistry registry;
  RegisterBuiltinAllocators(registry);
  EXPECT_EQ(registry.All().size(), AllAlgoKinds().size());
  // Registering any builtin again must fail on the kind collision.
  AllocatorRegistry second;
  RegisterBuiltinAllocators(second);
  EXPECT_EQ(second.All().size(), AllAlgoKinds().size());
  class Fake final : public Allocator {
   public:
    AlgoKind Kind() const override { return AlgoKind::kSeqGrd; }
    AllocatorCapabilities Capabilities() const override { return {}; }
    Status Allocate(const AllocateRequest&,
                    AllocateResult*) const override {
      return Status::OK();
    }
  };
  const Status duplicate = registry.Register(std::make_unique<Fake>());
  EXPECT_FALSE(duplicate.ok());
  EXPECT_EQ(registry.All().size(), AllAlgoKinds().size());
}

TEST(EngineTest, ReusedEngineBitIdenticalToFreshEnginesAndSharesPools) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC1();

  // Two consecutive Allocate calls on one engine...
  Engine reused(g, c);
  AllocateResult reused_first, reused_second;
  ASSERT_TRUE(
      reused.Allocate(TinyRequest(AlgoKind::kSeqGrd), &reused_first).ok());
  ASSERT_TRUE(
      reused.Allocate(TinyRequest(AlgoKind::kMaxGrd), &reused_second).ok());

  // ...must be bit-identical to two fresh engines.
  Engine fresh_a(g, c), fresh_b(g, c);
  AllocateResult fresh_first, fresh_second;
  ASSERT_TRUE(
      fresh_a.Allocate(TinyRequest(AlgoKind::kSeqGrd), &fresh_first).ok());
  ASSERT_TRUE(
      fresh_b.Allocate(TinyRequest(AlgoKind::kMaxGrd), &fresh_second).ok());

  ExpectResultsBitEqual(reused_first, fresh_first);
  ExpectResultsBitEqual(reused_second, fresh_second);

  // The two calls share the evaluation worlds (same eval seed/sims), so
  // the keyed pool store must report cross-estimator snapshot reuse.
  EXPECT_GE(reused.pool_stats().pool_reuses, 1u);
  EXPECT_GE(reused.pool_stats().pools_built, 1u);
}

TEST(EngineTest, SupGrdPreconditionBecomesSkippedResult) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC1();  // no superior item fixed in S_P
  Engine engine(g, c);
  AllocateResult result;
  const Status status =
      engine.Allocate(TinyRequest(AlgoKind::kSupGrd), &result);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(result.skipped);
  EXPECT_NE(result.skip_reason.find("SupGRD preconditions"),
            std::string::npos)
      << result.skip_reason;
}

TEST(EngineTest, UnknownKindIsNotFound) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC1();
  Engine engine(g, c);
  AllocateRequest request = TinyRequest(static_cast<AlgoKind>(10'000));
  AllocateResult result;
  const Status status = engine.Allocate(std::move(request), &result);
  EXPECT_EQ(status.code(), Status::Code::kNotFound);
}

TEST(EngineTest, CooperativeCancellationReturnsCancelled) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC1();
  Engine engine(g, c);
  std::atomic<bool> cancel{true};
  AllocateRequest request = TinyRequest(AlgoKind::kSeqGrdNm);
  request.cancel = &cancel;
  AllocateResult result;
  const Status status = engine.Allocate(std::move(request), &result);
  EXPECT_EQ(status.code(), Status::Code::kCancelled);
}

TEST(EngineTest, PreCancelledRequestFailsFastAndCountsPolls) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC1();
  Engine engine(g, c);
  Counter& checks =
      MetricsRegistry::Global().GetCounter("api.cancel_checks");
  const uint64_t before = checks.value();
  std::atomic<bool> cancel{true};
  // A request whose uncancelled run samples plenty (SeqGRD with marginal
  // checks): the pre-set flag must short-circuit it at the first poll.
  AllocateRequest request = TinyRequest(AlgoKind::kSeqGrd);
  request.params.estimator.num_worlds = 2000;
  request.cancel = &cancel;
  AllocateResult result;
  const auto start = std::chrono::steady_clock::now();
  const Status status = engine.Allocate(std::move(request), &result);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();
  EXPECT_EQ(status.code(), Status::Code::kCancelled);
  EXPECT_GT(checks.value(), before);  // every poll is counted
  EXPECT_LT(elapsed, 5.0);  // orders of magnitude under the full run
}

TEST(EngineTest, AllocateBatchOfOneIsBitIdenticalToAllocate) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC1();
  Engine engine(g, c);
  // The algorithms that share a PRIMA+ ranking across the batch, plus a
  // fallback algorithm (per-point Allocate) for contrast.
  for (AlgoKind algo : {AlgoKind::kSeqGrd, AlgoKind::kSeqGrdNm,
                        AlgoKind::kMaxGrd, AlgoKind::kRoundRobin}) {
    AllocateResult single;
    ASSERT_TRUE(engine.Allocate(TinyRequest(algo), &single).ok())
        << AlgoName(algo);
    const std::vector<BudgetVector> points = {{3, 3}};
    std::vector<AllocateResult> batch;
    ASSERT_TRUE(engine
                    .AllocateBatch(TinyRequest(algo),
                                   std::span<const BudgetVector>(points),
                                   &batch)
                    .ok())
        << AlgoName(algo);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].allocation.ToString(), single.allocation.ToString())
        << AlgoName(algo);
    EXPECT_EQ(batch[0].stats.welfare, single.stats.welfare)
        << AlgoName(algo);
    EXPECT_EQ(batch[0].skipped, single.skipped);
  }
}

TEST(EngineTest, AllocateBatchServesEveryBudgetPoint) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC1();
  Engine engine(g, c);
  const std::vector<BudgetVector> points = {{2, 2}, {4, 4}, {6, 6}};
  for (AlgoKind algo :
       {AlgoKind::kSeqGrd, AlgoKind::kMaxGrd, AlgoKind::kRoundRobin}) {
    std::vector<AllocateResult> batch;
    ASSERT_TRUE(engine
                    .AllocateBatch(TinyRequest(algo),
                                   std::span<const BudgetVector>(points),
                                   &batch)
                    .ok())
        << AlgoName(algo);
    ASSERT_EQ(batch.size(), points.size());
    for (std::size_t p = 0; p < points.size(); ++p) {
      EXPECT_FALSE(batch[p].skipped);
      // Every point's allocation respects its own budget exactly —
      // MaxGRD spends one item's budget (everything on the best item),
      // the others spend every item's.
      const std::size_t want =
          algo == AlgoKind::kMaxGrd
              ? static_cast<std::size_t>(points[p][0])
              : static_cast<std::size_t>(points[p][0] + points[p][1]);
      EXPECT_EQ(batch[p].allocation.TotalPairs(), want)
          << AlgoName(algo) << " point " << p;
      EXPECT_GT(batch[p].stats.welfare, 0.0);
    }
    // More budget never hurts the estimated welfare materially; the
    // batch rows must at least be monotone-ish (loose sanity, not a
    // bit-exact contract).
    EXPECT_GE(batch[2].stats.welfare, batch[0].stats.welfare * 0.9);
  }
}

TEST(EngineTest, AllocateBatchRejectsEmptyPoints) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC1();
  Engine engine(g, c);
  std::vector<AllocateResult> batch;
  const Status status =
      engine.AllocateBatch(TinyRequest(AlgoKind::kSeqGrd), {}, &batch);
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
}

TEST(EngineTest, ProgressHookReportsStages) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC1();
  Engine engine(g, c);
  std::vector<std::string> stages;
  AllocateRequest request = TinyRequest(AlgoKind::kBestOf);
  request.progress = [&stages](std::string_view stage) {
    stages.emplace_back(stage);
  };
  AllocateResult result;
  ASSERT_TRUE(engine.Allocate(std::move(request), &result).ok());
  ASSERT_GE(stages.size(), 2u);
  EXPECT_EQ(stages.front(), "BestOf");
  EXPECT_EQ(stages.back(), "evaluate");
  EXPECT_FALSE(result.note.empty());  // "chose SeqGRD" / "chose MaxGRD"
}

TEST(EngineTest, OpenOwnsGraphAndConfig) {
  const StatusOr<std::unique_ptr<Engine>> engine = Engine::Open(
      {.family = "erdos-renyi", .num_nodes = 200, .degree = 4},
      {.name = "C1"});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_GT(engine.value()->graph().num_nodes(), 0u);
  EXPECT_NE(engine.value()->graph_hash(), 0u);
  AllocateResult result;
  ASSERT_TRUE(engine.value()
                  ->Allocate(TinyRequest(AlgoKind::kSeqGrdNm), &result)
                  .ok());
  EXPECT_FALSE(result.skipped);
  EXPECT_GT(result.stats.welfare, 0.0);
  EXPECT_EQ(result.allocation.TotalPairs(), 6u);
}

TEST(EngineTest, EvaluateOffSkipsEvaluation) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC1();
  Engine engine(g, c);
  AllocateRequest request = TinyRequest(AlgoKind::kSeqGrdNm);
  request.evaluate = false;
  AllocateResult result;
  ASSERT_TRUE(engine.Allocate(std::move(request), &result).ok());
  EXPECT_EQ(result.stats.welfare, 0.0);
  EXPECT_EQ(result.evaluate_seconds, 0.0);
  EXPECT_EQ(result.allocation.TotalPairs(), 6u);
}

TEST(SweepTest, GoldenTaskReportsCrossEstimatorPoolReuse) {
  // The acceptance telemetry: in a golden scenario, the per-cell keyed
  // pool must show estimators sharing materialized worlds (every task of
  // a cell resolves the cell evaluator's pool by key).
  const StatusOr<ScenarioSpec> spec =
      GlobalScenarioRegistry().Find("smoke-tiny");
  ASSERT_TRUE(spec.ok());
  SweepOptions options;
  options.num_threads = 2;
  options.default_sims = 20;
  options.default_eval_sims = 30;
  const StatusOr<SweepResult> result = RunSweep(spec.value(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result.value().pool_stats.pool_reuses, 1u);
  EXPECT_GE(result.value().pool_stats.pools_built, 1u);
}

}  // namespace
}  // namespace cwm
